"""Compatibility shim so `python setup.py develop` works on old
setuptools without the `wheel` package (offline environments)."""
from setuptools import setup

setup()
