"""Race the analyses up the Van Horn–Mairson worst-case ladder.

Grows the §2.2 doubling term until each analysis exceeds a per-cell
time budget, reporting how far each one gets — a miniature of the
§6.1.1 experiment ("the feasible range of context-sensitive analysis
of functional programs has been increased by two-to-three orders of
magnitude").

    python examples/worst_case_race.py [seconds-per-cell]
"""

import sys

from repro import (
    AnalysisTimeout, Budget, analyze_kcfa, analyze_mcfa,
    analyze_poly_kcfa, analyze_zerocfa,
)
from repro.generators.worstcase import worst_case_program

ANALYSES = {
    "k=1": lambda p, b: analyze_kcfa(p, 1, b),
    "m=1": lambda p, b: analyze_mcfa(p, 1, b),
    "poly k=1": lambda p, b: analyze_poly_kcfa(p, 1, b),
    "k=0": lambda p, b: analyze_zerocfa(p, b),
}


def deepest_feasible(analyze, timeout, max_depth=60):
    reached = 0
    terms = 0
    for depth in range(2, max_depth + 1):
        program = worst_case_program(depth)
        try:
            analyze(program, Budget(max_seconds=timeout))
        except AnalysisTimeout:
            break
        reached = depth
        terms = program.term_count()
    return reached, terms


def main():
    timeout = float(sys.argv[1]) if len(sys.argv) > 1 else 2.0
    print(f"per-cell budget: {timeout:.1f}s "
          "(scaled-down version of the paper's 1 hour)\n")
    results = {}
    for name, analyze in ANALYSES.items():
        depth, terms = deepest_feasible(analyze, timeout)
        results[name] = (depth, terms)
        print(f"{name:>9}: deepest feasible chain = {depth} levels "
              f"({terms} terms)")
    k1_depth = results["k=1"][0]
    m1_depth = results["m=1"][0]
    print(f"\nm-CFA handles {m1_depth - k1_depth} more doubling "
          "levels than k-CFA —")
    print(f"each level doubles k-CFA's work, so that is a factor of "
          f"~2^{m1_depth - k1_depth} in feasible worst-case size.")


if __name__ == "__main__":
    main()
