"""Abstract garbage collection — the paper's §8 future work, live.

Shows the ΓCFA mechanism on both sides of the functional/OO bridge:
collecting a dead binding before the variable is re-bound gives the
analysis a strong update, so even 0CFA answers exactly.

    python examples/abstract_gc.py
"""

from repro import compile_program, parse_fj
from repro.analysis import analyze_kcfa, analyze_kcfa_gc
from repro.fj import analyze_fj_kcfa
from repro.fj.examples import OO_IDENTITY
from repro.fj.gc import analyze_fj_kcfa_gc

FUNCTIONAL = """
(define (id x) x)
(id 1)
(id 2)
"""


def show(values):
    return "{" + ", ".join(sorted(
        getattr(v, "classname", repr(v)) for v in values)) + "}"


def main():
    print("=== functional side ===")
    print(FUNCTIONAL)
    program = compile_program(FUNCTIONAL)
    plain = analyze_kcfa(program, 0)
    collected = analyze_kcfa_gc(program, 0)
    print("0CFA says the program returns:     ",
          show(plain.halt_values))
    print("0CFA + abstract GC says it returns:",
          show(collected.halt_values))
    print()
    print("Between the two calls, x's binding is dead; collection")
    print("removes it, so the second binding is a strong update.")

    print("\n=== object-oriented side (the §8 hypothesis) ===")
    fj_program = parse_fj(OO_IDENTITY)
    fj_plain = analyze_fj_kcfa(fj_program, 0)
    fj_collected = analyze_fj_kcfa_gc(fj_program, 0)
    print("FJ 0CFA points the result at:      ",
          show(fj_plain.halt_values))
    print("FJ 0CFA + abstract GC points it at:",
          show(fj_collected.halt_values))
    print()
    print('"We hypothesize that its benefits for speed and precision')
    print(' will carry over." — confirmed.')


if __name__ == "__main__":
    main()
