"""The OO sensitivity ladder: one kernel, many context policies.

The kernel refactor turned "which analysis" into a data point — every
entry in `repro.analysis.registry` is the same abstract machine with a
different context policy.  This script walks the OO rungs on the
receiver-polymorphic identity example (the OO cousin of the paper's §6
`identity`/`do-something` example):

* `fj-kcfa` / `fj-poly` — call-site sensitivity: the two
  `id.identity(...)` call sites get distinct contexts, so `a` and `b`
  stay separate;
* `fj-obj` (pure object sensitivity, obj^n) — contexts come from the
  *receiver's allocation site*: both calls dispatch on the same `id`
  object, so at depth 1 the bindings merge, exactly as 0CFA merges
  the functional identity example;
* `fj-hybrid` — receiver allocation site *and* call sites in one
  bounded window: the ladder rung that keeps both kinds of precision;
* `fj-mcfa` — m-CFA transplanted to FJ: top-m stack frames with
  `this` re-bound by field copying (§5.2's move with fields as the
  free variables).

    python examples/oo_sensitivity.py [depth]
"""

import sys

from repro import parse_fj, run_fj
from repro.analysis.registry import registry
from repro.fj.examples import OO_IDENTITY


def classes(result, var):
    names = sorted({obj.classname for obj in result.points_to(var)})
    return "{" + ", ".join(names) + "}"


def main():
    depth = int(sys.argv[1]) if len(sys.argv) > 1 else 1
    program = parse_fj(OO_IDENTITY)
    print("concrete result:", run_fj(program).value)

    print(f"\nthe ladder "
          f"(a = id.identity(new A()); b = id.identity(new B())):")
    print(f"  {'analysis':16} {'a points to':14} {'b points to':14} "
          f"envs")
    rungs = [(spec, n)
             for spec in registry().specs("fj")
             if spec.engine == "single-store"  # keep the demo fast
             for n in ((depth, depth + 1)
                       if spec.name == "fj-obj" else (depth,))]
    for spec, n in rungs:
        result = spec.run(program, n)
        label = f"{spec.name}({n})"
        print(f"  {label:16} {classes(result, 'a'):14} "
              f"{classes(result, 'b'):14} "
              f"{result.total_environments()}")

    print("\nwhy pure object sensitivity merges at *every* depth:")
    print("both calls dispatch on the same receiver object, and")
    print("fj-obj draws its context from the receiver's allocation")
    print("chain alone — the OO mirror of 0CFA on the paper's")
    print("functional identity example, and no amount of depth")
    print("helps when the chain is the same.  fj-hybrid's window")
    print("concatenates the receiver chain with the last n call")
    print("sites, so it keeps the distinction at every depth — the")
    print("rung of the ladder this program needs.")

    # Cross-validation the registry makes cheap: FJ m-CFA's stack
    # frames coincide with the §4.4 collapse under invocation
    # ticking on this example.
    flows = {spec.name: spec.run(program, depth).halt_values
             for spec in registry().specs("fj")
             if spec.name in ("fj-poly", "fj-mcfa")}
    reprs = {name: sorted(map(repr, values))
             for name, values in flows.items()}
    assert len(set(map(tuple, reprs.values()))) == 1, reprs
    print("\ncross-check: fj-poly and fj-mcfa agree on the halt "
          "flow set here")


if __name__ == "__main__":
    main()
