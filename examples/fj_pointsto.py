"""Points-to analysis of a Featherweight Java program.

Runs OO k-CFA on the dynamic-dispatch example and shows what OO
analyses call the analysis products: points-to sets, on-the-fly call
graph (invocation targets), and monomorphic call sites suitable for
devirtualization.

    python examples/fj_pointsto.py [k]
"""

import sys

from repro import analyze_fj_kcfa, parse_fj, run_fj
from repro.fj import analyze_fj_poly
from repro.fj.examples import DISPATCH


def main():
    k = int(sys.argv[1]) if len(sys.argv) > 1 else 1
    program = parse_fj(DISPATCH)

    concrete = run_fj(program)
    print("concrete run returns:", concrete.value)

    result = analyze_fj_kcfa(program, k)
    print(f"\nFJ k-CFA (k = {k}, invocation ticking):")
    print(f"  {len(result.configs)} abstract configurations, "
          f"{len(result.objects)} abstract objects")

    print("\npoints-to sets (variables, joined over contexts):")
    for var in ("x", "y", "a"):
        objs = result.points_to(var)
        if objs:
            classes = sorted({obj.classname for obj in objs})
            print(f"  {var}: {classes}")

    print("\non-the-fly call graph (invocation site -> targets):")
    for label in sorted(result.invoke_targets):
        targets = sorted(result.invoke_targets[label])
        stmt = program.stmt_by_label[label]
        marker = "MONO" if len(targets) == 1 else "POLY"
        print(f"  @{label} {str(stmt):34s} -> {targets}  [{marker}]")

    mono = result.monomorphic_call_sites()
    print(f"\n{len(mono)} devirtualizable (monomorphic) site(s): "
          f"{mono}")

    # The §4.4 collapse computes the same call graph, cheaper:
    poly = analyze_fj_poly(program, k)
    assert poly.invoke_targets == result.invoke_targets
    print(f"\ncollapsed (BEnv ≅ Time) machine agrees; "
          f"steps {poly.steps} vs {result.steps}")


if __name__ == "__main__":
    main()
