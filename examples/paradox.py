"""The k-CFA paradox, live: one program, two paradigms, same analysis.

Reproduces the Figure 1 / Figure 2 comparison for chosen N and M:
the functional version's inner lambda is analyzed in N·M abstract
environments; the object-oriented version stays linear in N+M,
because constructing an explicit closure object copies all captured
variables in a single context.

    python examples/paradox.py [N] [M]
"""

import sys

from repro import analyze_kcfa, analyze_mcfa, parse_fj
from repro.fj import analyze_fj_kcfa
from repro.generators.paradox import (
    find_cxy_lambda, paradox_fj_source, paradox_functional_program,
    paradox_functional_source,
)


def main():
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 4
    m = int(sys.argv[2]) if len(sys.argv) > 2 else 6

    print(f"=== The paradox with N={n}, M={m} ===\n")

    # --- Figure 2: functional form, implicit closures --------------
    fun_program = paradox_functional_program(n, m)
    fun_result = analyze_kcfa(fun_program, 1)
    cxy = find_cxy_lambda(fun_program)
    print("functional 1-CFA:")
    print(f"  inner lambda ('baz') analyzed in "
          f"{fun_result.environment_count(cxy)} environments "
          f"(N*M = {n * m})")
    print(f"  total environments: {fun_result.total_environments()}")
    print(f"  worklist steps: {fun_result.steps}")

    # --- Figure 1: OO form, explicit closure objects ----------------
    fj_program = parse_fj(paradox_fj_source(n, m),
                          entry_method="caller")
    fj_result = analyze_fj_kcfa(fj_program, 1)
    print("\nobject-oriented 1-CFA (same specification!):")
    print(f"  total environments: {fj_result.total_environments()} "
          f"(3(N+M)+1 = {3 * (n + m) + 1})")
    print(f"  abstract ClosureXY objects: "
          f"{len(fj_result.objects_of_class('ClosureXY'))} (= M)")
    print(f"  worklist steps: {fj_result.steps}")

    # Figure 1's table rows: ClosureXY.x merges all N, .y stays exact.
    print("\n  Figure 1's points-to rows:")
    for obj in sorted(fj_result.objects_of_class("ClosureXY"),
                      key=lambda o: o.benv["y"]):
        xs = len(fj_result.store.get(obj.benv["x"]))
        ys = len(fj_result.store.get(obj.benv["y"]))
        print(f"    ClosureXY@{obj.benv['y'][1]}: "
              f"|x| = {xs} (merged over callers), |y| = {ys}")

    # --- the payoff: m-CFA makes the functional side cheap ----------
    mcfa_result = analyze_mcfa(fun_program, 1)
    print("\nfunctional m-CFA (the paper's fix):")
    print(f"  inner lambda analyzed in "
          f"{mcfa_result.environment_count(cxy)} environment(s)")
    print(f"  worklist steps: {mcfa_result.steps}")

    print("\nfunctional source (Figure 2 shape):")
    print(paradox_functional_source(min(n, 2), min(m, 2)))


if __name__ == "__main__":
    main()
