"""The context-sensitivity ladder on the §6 identity example.

Walks k-CFA, m-CFA and naive polynomial k-CFA up from 0 to 3 on the
perturbed identity program and prints what each analysis thinks the
program can return — making the §6 degeneration (and its absence for
m-CFA) visible at every level.

    python examples/precision_ladder.py
"""

from repro import (
    analyze_kcfa, analyze_mcfa, analyze_poly_kcfa, compile_program,
    run_shared,
)

SOURCE = """
(define (do-something) 42)
(define (identity x) (do-something) x)
(identity 3)
(identity 4)
"""


def show(values):
    return "{" + ", ".join(sorted(repr(v) for v in values)) + "}"


def main():
    program = compile_program(SOURCE)
    print("program:")
    print(SOURCE)
    print("concrete result:", run_shared(program).value)
    print()
    header = f"{'level':>6} | {'k-CFA':^12} | {'m-CFA':^12} | " \
             f"{'poly k-CFA':^12}"
    print(header)
    print("-" * len(header))
    for level in range(4):
        k = analyze_kcfa(program, level)
        m = analyze_mcfa(program, level)
        poly = analyze_poly_kcfa(program, level)
        print(f"{level:>6} | {show(k.halt_values):^12} | "
              f"{show(m.halt_values):^12} | "
              f"{show(poly.halt_values):^12}")
    print()
    print("k-CFA and m-CFA sharpen to {4} at level 1; the naive")
    print("polynomial variant needs level 3 to see past the")
    print("intervening (do-something) call and its return — with")
    print("longer chains of intervening calls, no fixed k suffices "
          "(§6).")


if __name__ == "__main__":
    main()
