"""Quickstart: parse a Scheme program, run m-CFA, inspect the results.

    python examples/quickstart.py
"""

from repro import analyze_mcfa, compile_program, run_shared

SOURCE = """
(define (compose f g) (lambda (x) (f (g x))))
(define (inc n) (+ n 1))
(define (dbl n) (* n 2))
(define inc-then-dbl (compose dbl inc))
(inc-then-dbl 20)
"""


def main():
    # 1. Compile: read → desugar → alpha-rename → CPS-convert.
    program = compile_program(SOURCE)
    print("program statistics:", program.stats())

    # 2. Run it concretely (the analyses are about predicting this).
    concrete = run_shared(program)
    print("concrete result:", concrete.value,
          f"({concrete.steps} machine steps)")

    # 3. Analyze with m-CFA at m = 1 — the paper's contribution:
    #    polynomial-time context-sensitive control-flow analysis.
    result = analyze_mcfa(program, m=1)
    print("\nanalysis:", result)
    print("abstract result:", set(result.halt_values))

    # 4. What flows where?  Flow sets for the interesting variables.
    for stem in ("f", "g", "inc-then-dbl"):
        for name in sorted(program.variables):
            if name.split("%")[0] == stem:
                lams = result.lambdas_of(name)
                if lams:
                    print(f"  {name} may be:",
                          ", ".join(f"λ@{lam.label}" for lam in lams))

    # 5. The §6.2 precision metric: call sites safe to inline.
    sites = result.inlinable_call_sites()
    print(f"\n{len(sites)} call sites have exactly one callee "
          f"(inlinable): {sites}")

    # 6. The analysis also yields a lambda-level call graph.
    graph = result.call_graph()
    print(f"call graph: {graph.number_of_nodes()} nodes, "
          f"{graph.number_of_edges()} edges")


if __name__ == "__main__":
    main()
