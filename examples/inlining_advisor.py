"""An inlining advisor built on the analysis results — the §6.2
metric turned into a (toy) compiler client.

For each §6.2 suite program, runs 0CFA and m-CFA(1) and reports which
call sites each analysis can prove monomorphic, i.e. safe to inline,
and what context-sensitivity bought.

    python examples/inlining_advisor.py [program-name]
"""

import sys

from repro import analyze_mcfa, analyze_zerocfa
from repro.benchsuite import BY_NAME, SUITE


def advise(bench):
    program = bench.compile()
    zero = analyze_zerocfa(program)
    mcfa = analyze_mcfa(program, 1)

    zero_sites = set(zero.inlinable_call_sites())
    mcfa_sites = set(mcfa.inlinable_call_sites())
    gained = mcfa_sites - zero_sites

    print(f"=== {bench.name} — {bench.description} ===")
    print(f"  term count: {program.term_count()}")
    print(f"  0CFA:     {len(zero_sites)} inlinable call sites")
    print(f"  m-CFA(1): {len(mcfa_sites)} inlinable call sites")
    if gained:
        print(f"  context-sensitivity unlocked {len(gained)} more "
              "site(s):")
        for label in sorted(gained):
            call = program.calls_by_label[label]
            (callee,) = mcfa.callees_of(label)
            print(f"    call @{label} -> λ@{callee.label}   "
                  f"{str(call)[:60]}")
    else:
        print("  context-sensitivity added no inlinable sites here")
    # sites an inliner must leave alone (genuinely polymorphic)
    polymorphic = [label for label, callees in mcfa.callees.items()
                   if len(callees) > 1]
    print(f"  {len(polymorphic)} site(s) are genuinely polymorphic "
          "under m-CFA(1)")
    print()


def main():
    if len(sys.argv) > 1:
        benches = [BY_NAME[sys.argv[1]]]
    else:
        benches = SUITE
    for bench in benches:
        advise(bench)


if __name__ == "__main__":
    main()
