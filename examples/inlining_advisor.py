"""An inlining advisor on the client-analysis layer — the §6.2
metric turned into a (toy) compiler client.

For each §6.2 suite program, runs 0CFA and m-CFA(1) and compares
what the :mod:`repro.analysis.clients` passes conclude: which call
sites each analysis proves monomorphic (the ``mono`` pass), which of
those the ``inlining`` pass would actually inline (user procedures
only), and what context-sensitivity bought.  The same passes are
reachable from the CLI as ``python -m repro query FILE --kind
inlining`` and from the service's ``query`` op.

    python examples/inlining_advisor.py [program-name]
"""

import sys

from repro import analyze_mcfa, analyze_zerocfa
from repro.analysis.clients import run_result_query
from repro.benchsuite import BY_NAME, SUITE


def advise(bench):
    program = bench.compile()
    zero = run_result_query(analyze_zerocfa(program), "inlining")
    mcfa_result = analyze_mcfa(program, 1)
    mcfa = run_result_query(mcfa_result, "inlining")
    mono = run_result_query(mcfa_result, "mono")

    zero_sites = {site["site"] for site in zero["sites"]}
    mcfa_sites = {site["site"] for site in mcfa["sites"]}
    gained = mcfa_sites - zero_sites

    print(f"=== {bench.name} — {bench.description} ===")
    print(f"  term count: {program.term_count()}")
    print(f"  0CFA:     {zero['count']} inlinable call sites")
    print(f"  m-CFA(1): {mcfa['count']} inlinable call sites "
          f"({mono['count']} monomorphic incl. continuations)")
    if gained:
        print(f"  context-sensitivity unlocked {len(gained)} more "
              "site(s):")
        for site in mcfa["sites"]:
            if site["site"] in gained:
                print(f"    call @{site['site']} -> "
                      f"λ@{site['callee']}   "
                      f"({site['operator'][:50]} ...)")
    else:
        print("  context-sensitivity added no inlinable sites here")
    # sites an inliner must leave alone (genuinely polymorphic)
    polymorphic = [site for site in
                   run_result_query(mcfa_result, "call-graph")["sites"]
                   if len(site["targets"]) > 1]
    print(f"  {len(polymorphic)} site(s) are genuinely polymorphic "
          "under m-CFA(1)")
    print()


def main():
    if len(sys.argv) > 1:
        benches = [BY_NAME[sys.argv[1]]]
    else:
        benches = SUITE
    for bench in benches:
        advise(bench)


if __name__ == "__main__":
    main()
