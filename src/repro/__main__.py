"""Command-line interface: ``python -m repro <command> ...``.

Commands:

* ``analyze FILE`` — run any registered analysis on a source file
  (Scheme or Featherweight Java, per the analysis's language) and
  print its reports.
* ``analyses`` — list every registered analysis with its policy
  parameters (context abstraction, environment representation,
  language), straight from the analysis registry.
* ``run FILE`` — run a program on the concrete machines.
* ``fj FILE`` — parse and analyze a Featherweight Java file.
* ``tables`` — regenerate the paper's tables (delegates to the
  benchmark harnesses).
* ``bench`` — run the benchmark matrix in parallel and write a
  ``BENCH_*.json`` report.
* ``serve`` — run the persistent analysis server (async NDJSON front
  door over TCP or a Unix socket, consistent-hash sharded worker
  fleet, result cache).
* ``stress`` — drive hundreds of concurrent clients against the
  service and report throughput, latency percentiles and loss.
* ``submit`` — send one job to a running server and render the same
  reports as ``analyze``.

Examples::

    python -m repro analyze examples/prog.scm --analysis mcfa -n 1
    python -m repro analyze prog.scm --analysis kcfa -n 2 --simplify
    python -m repro analyze prog.java --analysis fj-mcfa -n 1
    python -m repro analyses --language fj
    python -m repro fj prog.java --entry-method caller -k 1
    python -m repro tables --table worstcase --timeout 5
    python -m repro bench --quick
    python -m repro bench --copies 4 --contexts 0,1,2 --jobs 8
    python -m repro serve --port 7557 --cache &
    python -m repro submit prog.scm --analysis kcfa -n 1 --port 7557
"""

from __future__ import annotations

import argparse
import sys

from repro.analysis.registry import registry
from repro.errors import ReproError, UsageError
from repro.service.jobs import REPORT_CHOICES, VALUE_MODES

#: Every registered analysis name (Scheme and FJ), sourced from the
#: registry.  Unknown names are rejected by ``JobSpec.validate`` (a
#: :class:`~repro.errors.UsageError`, exit 2), not by argparse;
#: this tuple exists for the docs-drift and consistency tests.
ANALYSES = registry().names()


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="k-CFA / m-CFA control-flow analyses "
                    "(PLDI 2010 paradox paper reproduction)")
    commands = parser.add_subparsers(dest="command", required=True)

    analyze = commands.add_parser(
        "analyze", help="analyze a source file (Scheme or FJ)")
    analyze.add_argument("file", help="source path ('-' stdin)")
    analyze.add_argument("--analysis", default="mcfa", metavar="NAME",
                         help="a registered analysis name "
                              "(see `repro analyses`; default mcfa)")
    analyze.add_argument("-n", "--context", type=int, default=1,
                         help="the k or m (default 1)")
    analyze.add_argument("--simplify", action="store_true",
                         help="shrink-simplify the CPS term first")
    analyze.add_argument("--timeout", type=float, default=None,
                         help="wall-clock budget in seconds")
    analyze.add_argument("--report",
                         choices=list(REPORT_CHOICES),
                         default="all")
    analyze.add_argument("--values", choices=list(VALUE_MODES),
                         default="interned",
                         help="value-domain representation "
                              "(default interned)")
    analyze.add_argument("--no-specialize", action="store_true",
                         help="run the generic engine loop instead "
                              "of the per-policy specialized one "
                              "(results are byte-identical)")
    analyze.add_argument("--codegen", choices=["on", "off"],
                         default="on",
                         help="generated per-node step source for "
                              "covered policies (default on; "
                              "results are byte-identical)")
    analyze.add_argument("--cache", action="store_true",
                         help="reuse/persist results in the default "
                              "cache dir (~/.cache/repro)")
    analyze.add_argument("--cache-dir", default=None,
                         help="cache directory (implies --cache)")

    analyses_cmd = commands.add_parser(
        "analyses",
        help="list every registered analysis and its policy")
    analyses_cmd.add_argument("--language",
                              choices=["all", "scheme", "fj"],
                              default="all",
                              help="restrict to one language")
    analyses_cmd.add_argument("--names", action="store_true",
                              help="print bare names only "
                                   "(for scripting)")

    run = commands.add_parser(
        "run", help="run a Scheme program on the concrete machines")
    run.add_argument("file")
    run.add_argument("--machine", choices=["shared", "flat", "direct"],
                     default="shared")

    fj = commands.add_parser(
        "fj", help="analyze a Featherweight Java file")
    fj.add_argument("file")
    fj.add_argument("-k", type=int, default=1)
    fj.add_argument("--entry-class", default="Main")
    fj.add_argument("--entry-method", default="main")
    fj.add_argument("--tick", choices=["invocation", "statement"],
                    default="invocation")
    fj.add_argument("--gc", action="store_true",
                    help="enable abstract garbage collection")
    fj.add_argument("--typecheck", action="store_true",
                    help="run the FJ type checker before analyzing")

    tables = commands.add_parser(
        "tables", help="regenerate the paper's tables")
    tables.add_argument("--table",
                        choices=["worstcase", "precision", "envs",
                                 "identity", "fj-vs-fun", "ablation"],
                        default="identity")
    tables.add_argument("--timeout", type=float, default=10.0)

    bench = commands.add_parser(
        "bench", help="run the benchmark matrix in parallel")
    bench.add_argument("--programs", default=None,
                       help="comma-separated program names "
                            "(default: whole suite + FJ examples)")
    bench.add_argument("--analyses", default=None,
                       help="comma-separated analyses, or 'all' for "
                            "every registered analysis (default: "
                            "kcfa,mcfa,poly,zero,fj-kcfa,fj-poly,"
                            "fj-mcfa,fj-hybrid)")
    bench.add_argument("--contexts", default="0,1",
                       help="comma-separated k/m values (default 0,1)")
    bench.add_argument("--obj-depth", default=None,
                       help="comma-separated receiver-chain depths "
                            "for the hybrid ladder (fj-hybrid only; "
                            "adds an obj-depth axis to the matrix)")
    bench.add_argument("--specialize", default=None, metavar="MODES",
                       help="comma-separated engine paths to bench: "
                            "on, off or on,off for a before/after "
                            "matrix (default on)")
    bench.add_argument("--no-specialize", action="store_true",
                       help="shorthand for --specialize off")
    bench.add_argument("--codegen", default=None, metavar="MODES",
                       help="comma-separated codegen modes to "
                            "bench: on, off or on,off for a "
                            "before/after matrix (default on)")
    bench.add_argument("--repeat", type=int, default=1,
                       help="run each cell N times and report the "
                            "fastest (min-of-N; default 1)")
    bench.add_argument("--copies", type=int, default=1,
                       help="scale factor for Scheme programs")
    bench.add_argument("--timeout", type=float, default=30.0,
                       help="per-task wall-clock budget in seconds")
    bench.add_argument("--jobs", type=int, default=None,
                       help="worker processes (default: all cores)")
    bench.add_argument("--serial", action="store_true",
                       help="run in-process (the parallel baseline)")
    bench.add_argument("--quick", action="store_true",
                       help="small smoke matrix (CI)")
    bench.add_argument("--values", default="interned",
                       help="comma-separated value-domain modes: "
                            "interned, plain (default interned); "
                            "'plain,interned' benches before/after")
    bench.add_argument("--cache", action="store_true",
                       help="reuse/persist ok rows in the default "
                            "cache dir (~/.cache/repro)")
    bench.add_argument("--cache-dir", default=None,
                       help="cache directory (implies --cache)")
    bench.add_argument("--output", default=None,
                       help="report path ('-' to skip writing; "
                            "default BENCH_<timestamp>.json)")

    serve = commands.add_parser(
        "serve", help="run the persistent analysis server")
    serve.add_argument("--socket", default=None,
                       help="listen on this Unix socket path "
                            "instead of TCP")
    serve.add_argument("--host", default="127.0.0.1",
                       help="TCP bind address (default 127.0.0.1)")
    serve.add_argument("--port", type=int, default=7557,
                       help="TCP port; 0 binds a free port "
                            "(default 7557)")
    serve.add_argument("--workers", type=int, default=None,
                       help="worker processes (default: all cores)")
    serve.add_argument("--max-queue", type=int, default=8,
                       help="per-worker admission queue depth; a "
                            "submission whose shard is this deep "
                            "gets a busy event instead of queueing "
                            "(default 8)")
    serve.add_argument("--job-timeout", type=float, default=60.0,
                       help="default per-job wall-clock budget in "
                            "seconds for requests that set none "
                            "(default 60)")
    serve.add_argument("--cache", action="store_true",
                       help="reuse/persist results in the default "
                            "cache dir (~/.cache/repro)")
    serve.add_argument("--cache-dir", default=None,
                       help="cache directory (implies --cache)")
    serve.add_argument("--no-specialize", action="store_true",
                       help="run every job on the generic engine "
                            "loop (results are byte-identical)")
    serve.add_argument("--codegen", choices=["on", "off"],
                       default="on",
                       help="generated step source on the worker "
                            "fleet (default on; off pins every job "
                            "to the compiled loops)")
    serve.add_argument("--ready-file", default=None,
                       help="write the bound endpoint (host:port or "
                            "socket path) here once listening")

    stress = commands.add_parser(
        "stress",
        help="drive concurrent clients against the analysis service")
    stress.add_argument("--clients", type=int, default=200,
                        help="concurrent client connections "
                             "(default 200)")
    stress.add_argument("--requests", type=int, default=2,
                        help="sequential jobs per client; round 2+ "
                             "hits warm workers (default 2)")
    stress.add_argument("--distinct", type=int, default=8,
                        help="distinct programs in the request mix "
                             "(default 8)")
    stress.add_argument("--workers", type=int, default=4,
                        help="fleet size for the in-process server "
                             "(ignored with --endpoint; default 4)")
    stress.add_argument("--max-queue", type=int, default=None,
                        help="per-worker admission queue depth for "
                             "the in-process server (default: the "
                             "server default)")
    stress.add_argument("--endpoint", default=None,
                        help="drive a running server (host:port or "
                             "socket path) instead of starting one")
    stress.add_argument("--analysis", default="mcfa", metavar="NAME",
                        help="analysis for every job (default mcfa)")
    stress.add_argument("-n", "--context", type=int, default=1,
                        help="the k or m (default 1)")
    stress.add_argument("--timeout", type=float, default=30.0,
                        help="per-job wall-clock budget in seconds "
                             "(default 30)")
    stress.add_argument("--deadline", type=float, default=300.0,
                        help="overall campaign deadline in seconds; "
                             "unfinished jobs count as dropped "
                             "(default 300)")
    stress.add_argument("--no-verify", action="store_true",
                        help="skip byte-comparing responses against "
                             "local runs of the same programs")
    stress.add_argument("--json", default=None, metavar="PATH",
                        help="also write the report as JSON "
                             "('-' for stdout)")

    submit = commands.add_parser(
        "submit", help="submit a job to a running analysis server")
    submit.add_argument("file", nargs="?", default=None,
                        help="source path ('-' stdin); "
                             "optional with --server-stats or "
                             "--shutdown")
    submit.add_argument("--analysis", default="mcfa", metavar="NAME",
                        help="a registered analysis name "
                             "(see `repro analyses`; default mcfa)")
    submit.add_argument("-n", "--context", type=int, default=1,
                        help="the k or m (default 1)")
    submit.add_argument("--simplify", action="store_true",
                        help="shrink-simplify the CPS term first")
    submit.add_argument("--timeout", type=float, default=None,
                        help="per-job wall-clock budget in seconds "
                             "(default: the server's --job-timeout)")
    submit.add_argument("--report",
                        choices=list(REPORT_CHOICES), default="all")
    submit.add_argument("--values", choices=list(VALUE_MODES),
                        default="interned",
                        help="value-domain representation "
                             "(default interned)")
    submit.add_argument("--socket", default=None,
                        help="connect to this Unix socket path "
                             "instead of TCP")
    submit.add_argument("--host", default="127.0.0.1",
                        help="server TCP address (default 127.0.0.1)")
    submit.add_argument("--port", type=int, default=7557,
                        help="server TCP port (default 7557)")
    submit.add_argument("--no-specialize", action="store_true",
                        help="ask for the generic engine loop "
                             "(results are byte-identical)")
    submit.add_argument("--codegen", choices=["on", "off"],
                        default="on",
                        help="ask for generated step source "
                             "(default on; results are "
                             "byte-identical)")
    submit.add_argument("--session", action="store_true",
                        help="open a warm analysis session on the "
                             "worker (prints its id on stderr for "
                             "`repro edit` / `repro query`)")
    submit.add_argument("--list-analyses", action="store_true",
                        help="print the server's registered analyses "
                             "(the `analyses` op) and exit")
    submit.add_argument("--server-stats", action="store_true",
                        help="print the server's scheduler/cache "
                             "statistics and exit")
    submit.add_argument("--shutdown", action="store_true",
                        help="ask the server to shut down cleanly "
                             "and exit")
    submit.add_argument("--quiet", action="store_true",
                        help="suppress streamed progress events on "
                             "stderr")

    def _connection_arguments(subparser):
        subparser.add_argument("--socket", default=None,
                               help="connect to this Unix socket "
                                    "path instead of TCP")
        subparser.add_argument("--host", default="127.0.0.1",
                               help="server TCP address "
                                    "(default 127.0.0.1)")
        subparser.add_argument("--port", type=int, default=7557,
                               help="server TCP port (default 7557)")
        subparser.add_argument("--quiet", action="store_true",
                               help="suppress streamed progress "
                                    "events on stderr")

    edit = commands.add_parser(
        "edit", help="incrementally re-analyze a warm session "
                     "against an edited source")
    edit.add_argument("session",
                      help="the session id a `submit --session` "
                           "printed")
    edit.add_argument("file", help="edited source path ('-' stdin)")
    edit.add_argument("--timeout", type=float, default=None,
                      help="wall-clock budget in seconds (default: "
                           "the server's --job-timeout)")
    _connection_arguments(edit)

    query = commands.add_parser(
        "query", help="client-analysis queries: `query SESSION KIND "
                      "[TARGET]` asks a warm session; `query FILE "
                      "--kind KIND` runs a batch pass locally, no "
                      "session or server needed")
    query.add_argument("session", metavar="SESSION|FILE",
                       help="a session id a `submit --session` "
                            "printed, or (with --kind) a source "
                            "path ('-' stdin)")
    query.add_argument("kind", nargs="?", default=None,
                       help="session form: what to ask (value-of, "
                            "call-sites-of, escaping, call-graph, "
                            "mono, inlining)")
    query.add_argument("target", nargs="?", default=None,
                       help="a variable name (value-of) or a lambda "
                            "label (call-sites-of, escaping)")
    query.add_argument("--kind", dest="batch_kind", default=None,
                       metavar="KIND",
                       help="batch mode: run this client pass over "
                            "a fresh analysis of FILE (call-graph, "
                            "escaping, mono, devirt, inlining, "
                            "value-of) and print its JSON answer")
    query.add_argument("--target", dest="batch_target", default=None,
                       metavar="TARGET",
                       help="batch mode: the query target (value-of "
                            "only)")
    query.add_argument("--analysis", default="mcfa", metavar="NAME",
                       help="batch mode: a registered analysis name "
                            "(default mcfa)")
    query.add_argument("-n", "--context", type=int, default=1,
                       help="batch mode: the k or m (default 1)")
    query.add_argument("--simplify", action="store_true",
                       help="batch mode: shrink-simplify the CPS "
                            "term first")
    query.add_argument("--values", choices=list(VALUE_MODES),
                       default="interned",
                       help="batch mode: value-domain "
                            "representation (default interned)")
    query.add_argument("--timeout", type=float, default=None,
                       help="batch mode: wall-clock budget in "
                            "seconds")
    query.add_argument("--dot", default=None, metavar="PATH",
                       help="batch mode: also write the answer's "
                            "DOT export (call-graph only) to PATH")
    query.add_argument("--cache", action="store_true",
                       help="batch mode: reuse/persist results in "
                            "the default cache dir (~/.cache/repro)")
    query.add_argument("--cache-dir", default=None,
                       help="batch mode: cache directory (implies "
                            "--cache)")
    _connection_arguments(query)
    return parser


def _read_source(path: str) -> str:
    if path == "-":
        return sys.stdin.read()
    with open(path, "r", encoding="utf-8") as handle:
        return handle.read()


def _validate_analysis_args(args) -> None:
    """Fail fast on option errors, before any source is read — a
    typo must not block on stdin or be masked by a file error."""
    from repro.service.jobs import validate_job_options
    validate_job_options(args.analysis, args.context,
                         simplify=args.simplify, report=args.report,
                         values=args.values)


def _cmd_analyze(args) -> int:
    from repro.cache import open_cache
    from repro.service.jobs import (
        JobSpec, cache_payload, job_cache_key, run_job,
    )
    _validate_analysis_args(args)
    spec = JobSpec(source=_read_source(args.file),
                   analysis=args.analysis, context=args.context,
                   simplify=args.simplify, report=args.report,
                   values=args.values, timeout=args.timeout,
                   specialize=not args.no_specialize,
                   codegen=args.codegen == "on").validate()
    cache = open_cache(args.cache_dir, args.cache or args.cache_dir)
    if args.cache_dir:
        # Keep generated modules beside the relocated result cache.
        from pathlib import Path

        from repro.analysis.codegen import set_default_codegen_cache
        from repro.cache import CodegenCache
        set_default_codegen_cache(
            CodegenCache(Path(args.cache_dir) / "codegen"))
    key = job_cache_key(spec) if cache is not None else None
    if cache is not None:
        payload = cache.get(key)
        if payload is not None:
            sys.stdout.write(payload["stdout"])
            print("(cached result)", file=sys.stderr)
            return 0
    row = run_job(spec)
    if row["status"] != "ok":
        print(f"error: {row['error']}", file=sys.stderr)
        return 1
    sys.stdout.write(row["stdout"])
    if cache is not None:
        cache.put(key, cache_payload(row))
    return 0


def _cmd_analyses(args) -> int:
    from repro.analysis.registry import registry_listing
    from repro.reporting import analyses_report
    language = None if args.language == "all" else args.language
    rows = registry_listing(language)
    if args.names:
        for row in rows:
            print(row["name"])
        return 0
    print(analyses_report(rows, language, len(registry()),
                          "repro.analysis.registry"))
    return 0


def _cmd_run(args) -> int:
    source = _read_source(args.file)
    from repro.scheme.values import scheme_repr
    if args.machine == "direct":
        from repro.scheme.interp import run_source
        print(scheme_repr(run_source(source)))
        return 0
    from repro.scheme.cps_transform import compile_program
    program = compile_program(source)
    if args.machine == "shared":
        from repro.concrete import run_shared
        result = run_shared(program)
    else:
        from repro.concrete import run_flat
        result = run_flat(program)
    print(scheme_repr(result.value))
    print(f"({result.steps} steps)", file=sys.stderr)
    return 0


def _cmd_fj(args) -> int:
    from repro.fj import analyze_fj_kcfa, parse_fj
    from repro.fj.gc import analyze_fj_kcfa_gc
    from repro.reporting import fj_report
    if args.k < 0:
        raise UsageError(f"-k must be non-negative, got {args.k}")
    program = parse_fj(_read_source(args.file),
                       entry_class=args.entry_class,
                       entry_method=args.entry_method)
    if args.typecheck:
        from repro.fj.typecheck import typecheck_program
        report = typecheck_program(program)
        print(report.summary())
        for error in report.errors:
            print(f"  error: {error}")
        for warning in report.warnings:
            print(f"  warning: {warning}")
        if not report:
            return 1
    if args.gc:
        result = analyze_fj_kcfa_gc(program, args.k,
                                    tick_policy=args.tick)
    else:
        result = analyze_fj_kcfa(program, args.k,
                                 tick_policy=args.tick)
    print(fj_report(result))
    return 0


def _cmd_bench(args) -> int:
    from repro.benchsuite.runner import (
        DEFAULT_ANALYSES, build_matrix, default_programs,
        default_report_path, run_batch,
    )
    from repro.cache import open_cache
    from repro.reporting import bench_report_table
    if args.no_specialize and args.specialize is not None:
        raise UsageError(
            "--no-specialize conflicts with --specialize; pass one")
    specialize_modes = ["off"] if args.no_specialize \
        else (args.specialize or "on").split(",")
    codegen_modes = (args.codegen or "on").split(",")
    obj_depths = None
    if args.obj_depth is not None:
        try:
            obj_depths = [int(value)
                          for value in args.obj_depth.split(",")]
        except ValueError:
            raise UsageError(
                f"--obj-depth must be comma-separated integers, got "
                f"{args.obj_depth!r}") from None
        if any(depth < 0 for depth in obj_depths):
            raise UsageError(
                f"--obj-depth values must be non-negative, got "
                f"{args.obj_depth!r}")
    if args.quick:
        overridden = [flag for flag, value in
                      [("--programs", args.programs),
                       ("--analyses", args.analyses),
                       ("--contexts", args.contexts != "0,1"),
                       ("--copies", args.copies != 1),
                       ("--obj-depth", args.obj_depth)] if value]
        if overridden:
            print(f"warning: --quick uses a fixed smoke matrix; "
                  f"ignoring {', '.join(overridden)}",
                  file=sys.stderr)
        programs = ["eta", "map", "pairs"]
        analyses = ["mcfa", "zero", "fj-poly"]
        contexts = [0, 1]
        copies = 1
        obj_depths = None
        timeout = min(args.timeout, 10.0)
    else:
        programs = (args.programs.split(",") if args.programs
                    else default_programs())
        analyses = (args.analyses.split(",") if args.analyses
                    else list(DEFAULT_ANALYSES))
        if "all" in analyses:
            # Expand 'all' wherever it appears in the list, from the
            # live registry (not an import-time snapshot) so
            # runtime-registered analyses are included; build_matrix
            # dedups while preserving order.
            analyses = [name
                        for item in analyses
                        for name in (registry().names()
                                     if item == "all" else (item,))]
        try:
            contexts = [int(value)
                        for value in args.contexts.split(",")]
        except ValueError:
            raise UsageError(
                f"--contexts must be comma-separated integers, got "
                f"{args.contexts!r}") from None
        if any(context < 0 for context in contexts):
            raise UsageError(
                f"--contexts values must be non-negative, got "
                f"{args.contexts!r}")
        copies = args.copies
        timeout = args.timeout
    if args.repeat < 1:
        raise UsageError(
            f"--repeat must be a positive integer, got {args.repeat}")
    values = args.values.split(",")
    tasks = build_matrix(programs, analyses, contexts, copies=copies,
                         timeout=timeout, values=values,
                         specialize=specialize_modes,
                         codegen=codegen_modes,
                         obj_depths=obj_depths, repeat=args.repeat)
    if not tasks:
        print("error: empty benchmark matrix", file=sys.stderr)
        return 1
    cache = open_cache(args.cache_dir, args.cache or args.cache_dir)
    values_axis = f" x {len(values)} value modes" \
        if len(values) > 1 else ""
    engine_axis = f" x {len(specialize_modes)} engine paths" \
        if len(specialize_modes) > 1 else ""
    codegen_axis = f" x {len(codegen_modes)} codegen modes" \
        if len(codegen_modes) > 1 else ""
    obj_axis = f" x {len(obj_depths)} obj depths" \
        if obj_depths is not None and len(obj_depths) > 1 else ""
    print(f"bench: {len(tasks)} tasks "
          f"({len(programs)} programs x {len(analyses)} analyses "
          f"x {len(contexts)} contexts{values_axis}{engine_axis}"
          f"{codegen_axis}{obj_axis})", file=sys.stderr)
    report = run_batch(
        tasks, jobs=args.jobs, serial=args.serial, cache=cache,
        progress=lambda line: print(line, file=sys.stderr, flush=True))
    if cache is not None:
        print(f"cache: {cache.stats.hits} hits, "
              f"{cache.stats.misses} misses, "
              f"{cache.stats.writes} writes "
              f"({cache.directory})", file=sys.stderr)
    print(bench_report_table(report))
    output = args.output
    if output != "-":
        path = report.write(output or default_report_path())
        print(f"report written to {path}", file=sys.stderr)
    return 0 if all(row["status"] != "error"
                    for row in report.rows) else 1


def _cmd_serve(args) -> int:
    from repro.cache import open_cache
    from repro.service.server import AnalysisServer
    cache = open_cache(args.cache_dir, args.cache or args.cache_dir)
    if args.max_queue < 1:
        raise UsageError(f"--max-queue must be a positive integer, "
                         f"got {args.max_queue}")
    codegen_dir = None
    if args.cache_dir:
        from pathlib import Path
        codegen_dir = str(Path(args.cache_dir) / "codegen")
    server = AnalysisServer(
        host=args.host, port=args.port, socket_path=args.socket,
        workers=args.workers, cache=cache,
        default_timeout=args.job_timeout,
        specialize=not args.no_specialize,
        codegen=args.codegen == "on",
        codegen_dir=codegen_dir,
        max_queue=args.max_queue).start()
    print(f"serving on {server.endpoint} "
          f"({server.workers} workers"
          + (f", cache {cache.directory}" if cache is not None
             else ", cache disabled") + ")",
          file=sys.stderr, flush=True)
    if args.ready_file:
        with open(args.ready_file, "w", encoding="utf-8") as handle:
            handle.write(server.endpoint + "\n")
    try:
        server.wait()
    except KeyboardInterrupt:
        pass
    finally:
        server.stop()
    print("server stopped", file=sys.stderr)
    return 0


def _cmd_stress(args) -> int:
    import json

    from repro.reporting import stress_report
    from repro.service.jobs import validate_job_options
    from repro.service.stress import run_stress
    validate_job_options(args.analysis, args.context)
    if args.clients < 1 or args.requests < 1 or args.distinct < 1:
        raise UsageError("--clients, --requests and --distinct must "
                         "all be positive integers")
    if args.max_queue is not None and args.max_queue < 1:
        raise UsageError(f"--max-queue must be a positive integer, "
                         f"got {args.max_queue}")
    report = run_stress(
        endpoint=args.endpoint, clients=args.clients,
        requests=args.requests, distinct=args.distinct,
        workers=args.workers, max_queue=args.max_queue,
        analysis=args.analysis, context=args.context,
        job_timeout=args.timeout, deadline=args.deadline,
        verify=not args.no_verify)
    print(stress_report(report))
    if args.json:
        text = json.dumps(report.as_dict(), indent=2, sort_keys=True)
        if args.json == "-":
            print(text)
        else:
            with open(args.json, "w", encoding="utf-8") as handle:
                handle.write(text + "\n")
            print(f"report written to {args.json}", file=sys.stderr)
    # Loss or cross-wired results fail the run; busy bounces and
    # timeouts do not (they are backpressure working as designed).
    clean = (report.dropped == 0 and report.duplicated == 0
             and report.mismatched == 0 and report.errors == 0)
    return 0 if clean else 1


def _connect_client(args):
    """A connected :class:`ServiceClient`, or ``None`` after printing
    the can't-reach message (callers exit 1)."""
    from repro.service.client import ServiceClient
    try:
        return ServiceClient(host=args.host, port=args.port,
                             socket_path=args.socket)
    except OSError as error:
        target = args.socket or f"{args.host}:{args.port}"
        print(f"error: cannot reach server at {target}: {error} "
              f"(is `python -m repro serve` running?)",
              file=sys.stderr)
        return None


def _event_printer(args):
    from repro.reporting import job_event_line
    if args.quiet:
        return None
    return lambda event: print(job_event_line(event),
                               file=sys.stderr, flush=True)


def _cmd_submit(args) -> int:
    from repro.reporting import service_stats_report
    if not (args.server_stats or args.shutdown
            or args.list_analyses):
        # Same usage-error contract as analyze (exit 2), checked
        # client-side so a typo needs neither a server nor stdin.
        _validate_analysis_args(args)
    client = _connect_client(args)
    if client is None:
        return 1
    with client:
        if args.list_analyses:
            from repro.reporting import analyses_report
            rows = client.analyses()
            print(analyses_report(
                rows, None, len(rows),
                f"analyses op, {args.socket or args.host}"))
            return 0
        if args.server_stats:
            print(service_stats_report(client.stats()))
            return 0
        if args.shutdown:
            client.shutdown()
            print("server shutting down", file=sys.stderr)
            return 0
        if not args.file:
            print("error: submit needs a file (or --server-stats / "
                  "--list-analyses / --shutdown)", file=sys.stderr)
            return 2
        final = client.submit(
            source=_read_source(args.file), analysis=args.analysis,
            context=args.context, simplify=args.simplify,
            report=args.report, values=args.values,
            timeout=args.timeout,
            specialize=not args.no_specialize,
            codegen=args.codegen == "on",
            session=args.session, on_event=_event_printer(args))
    if final.get("status") == "ok":
        sys.stdout.write(final["stdout"])
        if final.get("session"):
            print(f"session {final['session']} open — follow up "
                  f"with `repro edit {final['session']} <file>` or "
                  f"`repro query {final['session']} <kind> "
                  f"<target>`", file=sys.stderr)
        elif final.get("cached"):
            print("(cached result)", file=sys.stderr)
        elif final.get("coalesced"):
            print("(coalesced with an identical in-flight job)",
                  file=sys.stderr)
        return 0
    print(f"error: {final.get('error', final)}", file=sys.stderr)
    return 1


def _cmd_edit(args) -> int:
    client = _connect_client(args)
    if client is None:
        return 1
    with client:
        final = client.edit(args.session,
                            source=_read_source(args.file),
                            timeout=args.timeout,
                            on_event=_event_printer(args))
    if final.get("status") == "ok":
        sys.stdout.write(final["stdout"])
        mode = final.get("mode", "?")
        detail = f"({final.get('reason', '')})" if mode == "scratch" \
            else (f"({final.get('cleared', '?')} addresses cleared, "
                  f"{final.get('seeds', '?')} seeds, "
                  f"{final.get('steps', '?')} engine steps)")
        print(f"session {args.session}: {mode} {detail}",
              file=sys.stderr)
        return 0
    print(f"error: {final.get('error', final)}", file=sys.stderr)
    return 1


def _cmd_query(args) -> int:
    from repro.analysis.clients import validate_query
    from repro.reporting import query_answer_report
    if args.batch_kind is not None:
        return _cmd_query_batch(args)
    if args.kind is None:
        raise UsageError(
            "query needs KIND against a session, or --kind KIND for "
            "batch mode over a source file")
    # Validate client-side before any connection: a typo exits 2
    # with the same one-line message the server would send.
    validate_query(args.kind, args.target, session=True)
    client = _connect_client(args)
    if client is None:
        return 1
    with client:
        final = client.query(args.session, args.kind, args.target,
                             on_event=_event_printer(args))
    if final.get("status") == "ok":
        print(query_answer_report(final.get("answer") or {}))
        return 0
    print(f"error: {final.get('error', final)}", file=sys.stderr)
    return 1


def _cmd_query_batch(args) -> int:
    """``query FILE --kind KIND``: run the analysis locally (like
    ``analyze``) and print the client pass's JSON answer — the exact
    bytes the service's sessionless query op streams as ``stdout``."""
    from repro.analysis.clients import validate_query
    from repro.cache import open_cache
    from repro.service.jobs import (
        JobSpec, cache_payload, job_cache_key, run_job,
        validate_job_options,
    )
    if args.kind is not None or args.target is not None:
        raise UsageError(
            "batch mode takes no positional KIND/TARGET; use --kind "
            "and --target")
    # Option errors fail fast, before any source is read.
    language = validate_job_options(
        args.analysis, args.context, simplify=args.simplify,
        values=args.values).language
    validate_query(args.batch_kind, args.batch_target,
                   language=language)
    if args.dot is not None and args.batch_kind != "call-graph":
        raise UsageError(
            f"--dot needs a kind with a DOT export (call-graph), "
            f"not {args.batch_kind!r}")
    spec = JobSpec(source=_read_source(args.session),
                   analysis=args.analysis, context=args.context,
                   simplify=args.simplify, values=args.values,
                   timeout=args.timeout,
                   query_kind=args.batch_kind,
                   query_target=args.batch_target).validate()
    cache = open_cache(args.cache_dir, args.cache or args.cache_dir)
    key = job_cache_key(spec) if cache is not None else None
    payload = cache.get(key) if cache is not None else None
    if payload is not None:
        sys.stdout.write(payload["stdout"])
        answer = payload.get("answer")
        print("(cached result)", file=sys.stderr)
    else:
        row = run_job(spec)
        if row["status"] != "ok":
            print(f"error: {row['error']}", file=sys.stderr)
            return 1
        sys.stdout.write(row["stdout"])
        answer = row.get("answer")
        if cache is not None:
            cache.put(key, cache_payload(row))
    if args.dot is not None:
        dot = (answer or {}).get("dot")
        if not dot:
            print("error: answer carries no DOT export",
                  file=sys.stderr)
            return 1
        with open(args.dot, "w", encoding="utf-8") as handle:
            handle.write(dot)
        print(f"wrote {args.dot}", file=sys.stderr)
    return 0


def _cmd_tables(args) -> int:
    if args.table == "worstcase":
        from benchmarks.bench_table1_worstcase import generate_table
        from repro.metrics.timing import format_table
        headers, rows = generate_table(timeout=args.timeout)
        print(format_table(headers, rows))
        return 0
    module_for = {
        "precision": "bench_table2_precision",
        "envs": "bench_fig1_fig2_envs",
        "identity": "bench_identity_example",
        "fj-vs-fun": "bench_fj_vs_fun",
        "ablation": "bench_ablation_store",
    }
    import importlib
    import os
    sys.path.insert(0, os.path.join(os.path.dirname(
        os.path.dirname(os.path.abspath(__file__))), "..",
        "benchmarks"))
    module = importlib.import_module(module_for[args.table])
    module.main()
    return 0


def main(argv=None) -> int:
    args = _build_parser().parse_args(argv)
    handler = {
        "analyze": _cmd_analyze,
        "analyses": _cmd_analyses,
        "run": _cmd_run,
        "fj": _cmd_fj,
        "tables": _cmd_tables,
        "bench": _cmd_bench,
        "serve": _cmd_serve,
        "stress": _cmd_stress,
        "submit": _cmd_submit,
        "edit": _cmd_edit,
        "query": _cmd_query,
    }[args.command]
    try:
        return handler(args)
    except UsageError as error:
        # Bad options (unknown analysis, invalid --context): one-line
        # message, argparse-style exit status.
        print(f"error: {error}", file=sys.stderr)
        return 2
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    except FileNotFoundError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    raise SystemExit(main())
