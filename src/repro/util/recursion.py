"""Recursion headroom for the tree-walking passes.

The front-end passes (desugarer, alpha-renamer, free-variable
analysis, CPS converter, pretty printers, simplifier) recurse over the
AST, using a handful of Python frames per node.  Realistic CFA inputs
nest thousands of terms deep — a 400-deep ``begin`` chain already
overflows CPython's default 1000-frame limit.

All entry points wrap themselves in :func:`deep_recursion`, which
raises the interpreter limit for the dynamic extent of the pass and
restores it afterwards.  The machines and analyses are iterative and
need no headroom.
"""

from __future__ import annotations

import contextlib
import sys

#: Enough for programs a few thousand nodes deep (several frames per
#: node), while staying well inside typical C-stack allowances.
DEFAULT_LIMIT = 20_000


@contextlib.contextmanager
def deep_recursion(limit: int = DEFAULT_LIMIT):
    """Temporarily raise the recursion limit (never lowers it)."""
    previous = sys.getrecursionlimit()
    if limit > previous:
        sys.setrecursionlimit(limit)
    try:
        yield
    finally:
        sys.setrecursionlimit(previous)
