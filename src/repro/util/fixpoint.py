"""Worklist engines for fixpoint computations.

Two flavours are provided:

* :class:`Worklist` — a plain deduplicating FIFO/LIFO worklist; used by
  the naive reachable-states analyses (paper Section 3.6) where the
  system-space is a set of states.

* :class:`DependencyWorklist` — a worklist of *configurations* paired
  with read-dependency tracking over store addresses; used by the
  single-threaded-store analyses (paper Section 3.7).  When the global
  store grows at an address, only the configurations that previously
  *read* that address are re-enqueued.  This is the efficient
  realization of Shivers's "one store to represent all stores"
  optimization and is what makes the m-CFA rows of the worst-case table
  finish in reasonable time.
"""

from __future__ import annotations

from collections import deque
from typing import Generic, Hashable, Iterable, Iterator, TypeVar

T = TypeVar("T", bound=Hashable)
A = TypeVar("A", bound=Hashable)


class Worklist(Generic[T]):
    """A deduplicating worklist.

    Items are admitted at most once per *epoch*; :meth:`reset_seen`
    starts a new epoch.  Iteration order is FIFO by default, which gives
    breadth-first exploration of the transition relation (useful for
    deterministic traces in tests); pass ``lifo=True`` for depth-first.
    """

    def __init__(self, items: Iterable[T] = (), lifo: bool = False):
        self._queue: deque[T] = deque()
        self._seen: set[T] = set()
        self._pending: set[T] = set()
        self._lifo = lifo
        for item in items:
            self.add(item)

    def add(self, item: T) -> bool:
        """Enqueue *item* unless it was already admitted this epoch.

        Returns True if the item was actually enqueued.
        """
        if item in self._seen:
            return False
        self._seen.add(item)
        self._pending.add(item)
        self._queue.append(item)
        return True

    def add_all(self, items: Iterable[T]) -> int:
        """Enqueue every new item; return how many were admitted."""
        return sum(1 for item in items if self.add(item))

    def pop(self) -> T:
        item = self._queue.pop() if self._lifo else self._queue.popleft()
        self._pending.discard(item)
        return item

    def force(self, item: T) -> None:
        """Re-enqueue *item* even if it was seen before (store grew).

        The pending set is maintained persistently, so this is O(1)
        rather than an O(n) rebuild of the queue contents per call.
        """
        if item not in self._pending:
            self._pending.add(item)
            self._queue.append(item)

    def __bool__(self) -> bool:
        return bool(self._queue)

    def __len__(self) -> int:
        return len(self._queue)

    @property
    def seen(self) -> frozenset[T]:
        """Every item admitted this epoch (the reachable set)."""
        return frozenset(self._seen)

    def reset_seen(self) -> None:
        self._seen.clear()


class DependencyWorklist(Generic[T, A]):
    """Worklist with read-dependency tracking over addresses.

    The driver registers, for each processed configuration, the set of
    addresses it read (:meth:`record_reads`).  When the global store is
    later joined at some address (:meth:`dirty`), every configuration
    that read it is re-enqueued.  Configurations are deduplicated while
    pending, so a configuration is processed at most once per store
    change that affects it.

    Re-enqueues are *delta-propagating*: the worklist remembers which
    addresses caused each pending re-enqueue, and :meth:`pop_delta`
    hands the accumulated change-set back to the driver alongside the
    configuration.  A first visit (or a plain :meth:`add`) carries no
    delta — the driver must treat the whole read-set as new.
    """

    def __init__(self):
        self._queue: deque[T] = deque()
        self._pending: set[T] = set()
        self._seen: set[T] = set()
        self._readers: dict[A, set[T]] = {}
        self._delta: dict[T, set[A]] = {}
        self.requeue_count = 0

    def add(self, item: T) -> bool:
        """Enqueue a newly-discovered configuration (dedup vs. seen)."""
        if item in self._seen:
            return False
        self._seen.add(item)
        return self._enqueue(item)

    def _enqueue(self, item: T) -> bool:
        if item in self._pending:
            return False
        self._pending.add(item)
        self._queue.append(item)
        return True

    def pop(self) -> T:
        item, _delta = self.pop_delta()
        return item

    def pop_delta(self) -> tuple[T, frozenset[A] | None]:
        """Pop a configuration with the addresses that re-enqueued it.

        Returns ``(item, None)`` on the item's first visit, and
        ``(item, changed)`` when the item is a dirtied reader —
        ``changed`` being exactly the addresses whose store growth
        caused the re-enqueue since the item last ran.
        """
        item = self._queue.popleft()
        self._pending.discard(item)
        delta = self._delta.pop(item, None)
        return item, frozenset(delta) if delta is not None else None

    def record_reads(self, item: T, addresses: Iterable[A]) -> None:
        """Remember that *item* read each address in *addresses*."""
        readers = self._readers
        for addr in addresses:
            existing = readers.get(addr)
            if existing is None:
                readers[addr] = {item}
            else:
                existing.add(item)

    def readers_of(self, address: A) -> frozenset[T]:
        """The configurations known to have read *address*."""
        return frozenset(self._readers.get(address, ()))

    def dirty(self, addresses: Iterable[A]) -> int:
        """The store grew at *addresses*: re-enqueue every reader.

        Each reader is enqueued at most once no matter how many of its
        addresses changed; the changed addresses accumulate into the
        reader's pending delta (see :meth:`pop_delta`).  Returns the
        number of configurations newly re-enqueued.
        """
        requeued = 0
        readers_of = self._readers.get
        delta = self._delta
        pending = self._pending
        queue = self._queue
        for addr in addresses:
            for reader in readers_of(addr, ()):
                if reader not in pending:
                    pending.add(reader)
                    queue.append(reader)
                    requeued += 1
                existing = delta.get(reader)
                if existing is None:
                    delta[reader] = {addr}
                else:
                    existing.add(addr)
        self.requeue_count += requeued
        return requeued

    def __bool__(self) -> bool:
        return bool(self._queue)

    def __len__(self) -> int:
        return len(self._queue)

    @property
    def seen(self) -> frozenset[T]:
        """Every configuration ever admitted (the reachable set)."""
        return frozenset(self._seen)

    def __iter__(self) -> Iterator[T]:
        return iter(tuple(self._queue))
