"""Step/time budgets shared by concrete machines and analyses.

The worst-case table of the paper (Section 6.1.1) reports ``∞`` for
analyses that ran past one hour.  Our harness reproduces that with a
:class:`Budget`: analyses call :meth:`Budget.charge` once per transfer-
function application and an :class:`~repro.errors.AnalysisTimeout` is
raised when either the step or the wall-clock limit is exceeded.
"""

from __future__ import annotations

import time

from repro.errors import AnalysisTimeout


class Budget:
    """A combined step-count and wall-clock budget.

    ``Budget()`` is unlimited.  ``Budget(max_steps=10_000)`` bounds
    transfer-function applications; ``Budget(max_seconds=5.0)`` bounds
    wall-clock time (checked every ``check_every`` charges to keep the
    overhead of ``time.monotonic`` negligible).
    """

    def __init__(self, max_steps: int | None = None,
                 max_seconds: float | None = None,
                 check_every: int = 256):
        self.max_steps = max_steps
        self.max_seconds = max_seconds
        self.check_every = max(1, check_every)
        self.steps = 0
        self._started_at: float | None = None

    def start(self) -> "Budget":
        """Reset the counters; returns self for chaining."""
        self.steps = 0
        self._started_at = time.monotonic()
        return self

    def ensure_started(self) -> "Budget":
        """Start the clock only if it is not already running.

        Engines call this instead of :meth:`start` so a caller that
        started the budget earlier — to charge compilation or queue
        time against the same allowance — keeps its clock; a fresh
        budget still starts here.
        """
        if self._started_at is None:
            self.start()
        return self

    @property
    def elapsed(self) -> float:
        if self._started_at is None:
            return 0.0
        return time.monotonic() - self._started_at

    def charge(self, amount: int = 1) -> None:
        """Account for *amount* units of work; raise on exhaustion."""
        if self._started_at is None:
            self.start()
        self.steps += amount
        if self.max_steps is not None and self.steps > self.max_steps:
            raise AnalysisTimeout(
                f"analysis exceeded step budget of {self.max_steps}",
                elapsed=self.elapsed)
        if (self.max_seconds is not None
                and self.steps % self.check_every == 0
                and self.elapsed > self.max_seconds):
            raise AnalysisTimeout(
                f"analysis exceeded time budget of {self.max_seconds}s",
                elapsed=self.elapsed)

    def exhausted(self) -> bool:
        """Non-raising check, for cooperative loops."""
        if self.max_steps is not None and self.steps >= self.max_steps:
            return True
        if self.max_seconds is not None and self.elapsed > self.max_seconds:
            return True
        return False
