"""Fresh-name generation.

Alpha-renaming, CPS conversion and A-normalization all need fresh
variable names that cannot collide with user-written names.  A
:class:`GensymFactory` produces names of the form ``base%N`` — the ``%``
character is accepted by our readers but cannot appear in user source,
which guarantees freshness without a global registry.
"""

from __future__ import annotations

import itertools


class GensymFactory:
    """Produce fresh names, one numbering sequence per factory.

    >>> g = GensymFactory()
    >>> g.fresh("k")
    'k%0'
    >>> g.fresh("k")
    'k%1'
    >>> g.fresh("tmp")
    'tmp%2'
    """

    SEPARATOR = "%"

    def __init__(self, start: int = 0):
        self._counter = itertools.count(start)

    def fresh(self, base: str = "g") -> str:
        """Return a name guaranteed distinct from user names and from
        every name previously returned by this factory."""
        base = base.split(self.SEPARATOR, 1)[0] or "g"
        return f"{base}{self.SEPARATOR}{next(self._counter)}"

    @classmethod
    def is_generated(cls, name: str) -> bool:
        """True if *name* was produced by some :class:`GensymFactory`."""
        return cls.SEPARATOR in name

    @classmethod
    def base_of(cls, name: str) -> str:
        """The human-readable stem of a possibly-generated name."""
        return name.split(cls.SEPARATOR, 1)[0]
