"""Shared infrastructure: gensym, fixpoint engines, budgets."""

from repro.util.gensym import GensymFactory
from repro.util.fixpoint import Worklist, DependencyWorklist
from repro.util.budget import Budget

__all__ = ["GensymFactory", "Worklist", "DependencyWorklist", "Budget"]
