"""PEP 562 lazy module attributes, shared by the package ``__init__``
files.

``repro`` and ``repro.analysis`` expose convenience re-exports, but
importing any ``repro.*`` submodule executes those ``__init__`` files
first — and CLI startup, worker spawns and registry consultations
must not pay for the whole analyzer stack.  :func:`lazy_attrs` gives
a package the module-level ``__getattr__``/``__dir__`` pair that
resolves each re-export on first access and caches it.

This module deliberately imports nothing from ``repro`` (it is loaded
from package ``__init__`` files mid-initialization).
"""

from __future__ import annotations

import importlib


def lazy_attrs(module_name: str, module_globals: dict,
               mapping: dict[str, str]):
    """Build ``(__getattr__, __dir__)`` for a lazily-exporting module.

    ``mapping`` maps each public attribute to the module that defines
    it.  Resolution imports that module on first access and caches
    the value in ``module_globals``, so ``__getattr__`` runs at most
    once per name.
    """

    def __getattr__(name: str):
        target = mapping.get(name)
        if target is None:
            # Fall back to submodules: the eager from-imports used to
            # bind e.g. ``repro.cache`` as an attribute of ``repro``,
            # and ``import repro; repro.cache.open_cache(...)`` must
            # keep working.
            qualified = f"{module_name}.{name}"
            try:
                value = importlib.import_module(qualified)
            except ModuleNotFoundError as error:
                if error.name != qualified:
                    raise  # a real import failure inside the submodule
                raise AttributeError(
                    f"module {module_name!r} has no attribute "
                    f"{name!r}") from None
        else:
            value = getattr(importlib.import_module(target), name)
        module_globals[name] = value
        return value

    def __dir__():
        return sorted(set(module_globals) | set(mapping))

    return __getattr__, __dir__
