"""Program container: a validated CPS term plus derived tables.

A :class:`Program` wraps the root call of a CPS term and
pre-computes what the analyses need to look up constantly:

* label → node maps for calls and lambdas,
* the binder map (variable name → the construct that binds it),
* free-variable sets,
* size statistics (the "Terms" measure of the paper's §6.1.1 table).

Construction validates the well-formedness invariants that the
analyses silently rely on: globally unique labels, globally unique
binder names (the front end alpha-renames), closedness, and the CPS
discipline that every lambda body is a call.
"""

from __future__ import annotations

from dataclasses import dataclass, field as dataclass_field
from typing import Iterable

from repro.errors import CPSSyntaxError
from repro.cps.syntax import (
    AppCall, Call, FixCall, Label, Lam, Lit, PrimCall, Ref, call_exps,
    free_vars_of_call, iter_calls, iter_lams, term_count,
)
from repro.scheme.primitives import lookup_primitive


@dataclass
class Program:
    """A validated whole CPS program."""

    root: Call
    calls_by_label: dict[Label, Call] = dataclass_field(init=False)
    lams_by_label: dict[Label, Lam] = dataclass_field(init=False)
    binder_of: dict[str, object] = dataclass_field(init=False)

    def __post_init__(self):
        self.calls_by_label = {}
        self.lams_by_label = {}
        self.binder_of = {}
        self._validate()

    # -- validation ------------------------------------------------------

    def _validate(self) -> None:
        for call in iter_calls(self.root):
            if call.label in self.calls_by_label or \
                    call.label in self.lams_by_label:
                raise CPSSyntaxError(
                    f"duplicate label {call.label} on {call}")
            self.calls_by_label[call.label] = call
            self._validate_call(call)
        for lam in iter_lams(self.root):
            if lam.label in self.calls_by_label or \
                    lam.label in self.lams_by_label:
                raise CPSSyntaxError(
                    f"duplicate label {lam.label} on {lam}")
            self.lams_by_label[lam.label] = lam
            for param in lam.params:
                self._bind(param, lam)
        for call in self.calls_by_label.values():
            if isinstance(call, FixCall):
                for name, lam in call.bindings:
                    self._bind(name, call)
                    if not isinstance(lam, Lam) or not lam.is_user:
                        raise CPSSyntaxError(
                            f"fix binding {name} must be a user lambda")
        free = free_vars_of_call(self.root)
        if free:
            raise CPSSyntaxError(
                f"program is not closed; free: {sorted(free)}")
        for call in self.calls_by_label.values():
            if isinstance(call, PrimCall):
                prim = lookup_primitive(call.op)
                if prim is None:
                    raise CPSSyntaxError(
                        f"unknown primitive %{call.op} at {call.label}")
                try:
                    prim.check_arity(len(call.args))
                except Exception as exc:
                    raise CPSSyntaxError(str(exc)) from None

    def _validate_call(self, call: Call) -> None:
        for exp in call_exps(call):
            if not isinstance(exp, (Ref, Lit, Lam)):
                raise CPSSyntaxError(
                    f"non-atomic expression {exp!r} in call {call.label}")

    def _bind(self, name: str, binder: object) -> None:
        if name in self.binder_of:
            raise CPSSyntaxError(
                f"binder {name!r} is not unique; alpha-rename first")
        self.binder_of[name] = binder

    # -- accessors ---------------------------------------------------------

    @property
    def calls(self) -> Iterable[Call]:
        return self.calls_by_label.values()

    @property
    def lams(self) -> Iterable[Lam]:
        return self.lams_by_label.values()

    @property
    def user_lams(self) -> list[Lam]:
        return [lam for lam in self.lams if lam.is_user]

    @property
    def cont_lams(self) -> list[Lam]:
        return [lam for lam in self.lams if lam.is_cont]

    @property
    def variables(self) -> frozenset[str]:
        return frozenset(self.binder_of)

    def term_count(self) -> int:
        """The "Terms" size measure used by the worst-case table."""
        return term_count(self.root)

    def app_call_labels(self) -> list[Label]:
        """Labels of application call sites (candidate inline sites)."""
        return [label for label, call in self.calls_by_label.items()
                if isinstance(call, AppCall)]

    def stats(self) -> dict[str, int]:
        """Size statistics, handy for benchmark tables."""
        return {
            "terms": self.term_count(),
            "calls": len(self.calls_by_label),
            "lambdas": len(self.lams_by_label),
            "user_lambdas": len(self.user_lams),
            "cont_lambdas": len(self.cont_lams),
            "variables": len(self.binder_of),
        }

    def __str__(self) -> str:
        return str(self.root)


def label_maximum(root: Call) -> Label:
    """The largest label in a term (for allocating fresh labels)."""
    result = -1
    for call in iter_calls(root):
        result = max(result, call.label)
    for lam in iter_lams(root):
        result = max(result, lam.label)
    return result
