"""The labeled, partitioned CPS core language (paper §3.1 + ΔCFA)."""

from repro.cps.syntax import (
    AppCall, Call, CExp, FixCall, HaltCall, IfCall, Label, Lam, LamKind,
    Lit, PrimCall, Ref, call_children, call_exps, free_vars_of_call,
    free_vars_of_exp, free_vars_of_lam, iter_calls, iter_lams, term_count,
)
from repro.cps.program import Program, label_maximum
from repro.cps.parser import parse_cps, parse_cps_call
from repro.cps.pretty import pretty_cps
from repro.cps.simplify import simplify_program

__all__ = [
    "AppCall", "Call", "CExp", "FixCall", "HaltCall", "IfCall", "Label",
    "Lam", "LamKind", "Lit", "PrimCall", "Ref",
    "call_children", "call_exps", "free_vars_of_call", "free_vars_of_exp",
    "free_vars_of_lam", "iter_calls", "iter_lams", "term_count",
    "Program", "label_maximum", "parse_cps", "parse_cps_call",
    "pretty_cps", "simplify_program",
]
