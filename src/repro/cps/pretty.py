"""Pretty-printer for CPS terms, optionally with labels.

The output of :func:`pretty_cps` (without labels) re-reads through
:func:`repro.cps.parser.parse_cps` to a structurally identical term,
which round-trip tests exploit.
"""

from __future__ import annotations

from repro.cps.syntax import (
    AppCall, FixCall, HaltCall, IfCall, Lam, Lit, PrimCall, Ref,
)
from repro.scheme.sexp import write_sexp

_INDENT = "  "


def pretty_cps(node, show_labels: bool = False, width: int = 76) -> str:
    """Render a CPS call or expression."""
    from repro.util.recursion import deep_recursion
    with deep_recursion():
        return _render(node, 0, width, show_labels)


def _tag(node, show_labels: bool) -> str:
    return f"@{node.label}" if show_labels else ""


def _render(node, depth: int, width: int, labels: bool) -> str:
    flat = _flat(node, labels)
    if len(flat) + depth * len(_INDENT) <= width:
        return flat
    pad = _INDENT * (depth + 1)
    if isinstance(node, Lam):
        head = "lambda" if node.is_user else "cont"
        return (f"({head} ({' '.join(node.params)})\n"
                f"{pad}{_render(node.body, depth + 1, width, labels)})"
                f"{_tag(node, labels)}")
    if isinstance(node, AppCall):
        parts = [_render(e, depth + 1, width, labels)
                 for e in (node.fn, *node.args)]
        return "(" + ("\n" + pad).join(parts) + ")" + _tag(node, labels)
    if isinstance(node, IfCall):
        return (f"(%if {_render(node.test, depth + 1, width, labels)}\n"
                f"{pad}{_render(node.then, depth + 1, width, labels)}\n"
                f"{pad}{_render(node.orelse, depth + 1, width, labels)})"
                f"{_tag(node, labels)}")
    if isinstance(node, PrimCall):
        parts = [f"%{node.op}"]
        parts += [_render(e, depth + 1, width, labels)
                  for e in (*node.args, node.cont)]
        return "(" + ("\n" + pad).join(parts) + ")" + _tag(node, labels)
    if isinstance(node, FixCall):
        inner = _INDENT * (depth + 2)
        bindings = ("\n" + inner).join(
            f"({name} {_render(lam, depth + 2, width, labels)})"
            for name, lam in node.bindings)
        return (f"(%fix ({bindings})\n"
                f"{pad}{_render(node.body, depth + 1, width, labels)})"
                f"{_tag(node, labels)}")
    return flat


def _flat(node, labels: bool) -> str:
    if isinstance(node, Ref):
        return node.name
    if isinstance(node, Lit):
        if isinstance(node.datum, (bool, int)):
            return write_sexp(node.datum)
        if isinstance(node.datum, str) and not hasattr(node.datum, "pos"):
            return write_sexp(node.datum)
        return "'" + write_sexp(node.datum)
    if isinstance(node, Lam):
        head = "lambda" if node.is_user else "cont"
        return (f"({head} ({' '.join(node.params)}) "
                f"{_flat(node.body, labels)}){_tag(node, labels)}")
    if isinstance(node, AppCall):
        inner = " ".join(_flat(e, labels)
                         for e in (node.fn, *node.args))
        return f"({inner}){_tag(node, labels)}"
    if isinstance(node, IfCall):
        return (f"(%if {_flat(node.test, labels)} "
                f"{_flat(node.then, labels)} "
                f"{_flat(node.orelse, labels)}){_tag(node, labels)}")
    if isinstance(node, PrimCall):
        inner = " ".join(_flat(e, labels)
                         for e in (*node.args, node.cont))
        return f"(%{node.op} {inner}){_tag(node, labels)}"
    if isinstance(node, FixCall):
        bindings = " ".join(f"({name} {_flat(lam, labels)})"
                            for name, lam in node.bindings)
        return (f"(%fix ({bindings}) {_flat(node.body, labels)})"
                f"{_tag(node, labels)}")
    if isinstance(node, HaltCall):
        return f"(%halt {_flat(node.arg, labels)}){_tag(node, labels)}"
    raise TypeError(f"not a CPS node: {node!r}")
