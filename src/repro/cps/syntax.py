"""The labeled CPS language that all functional analyses consume.

The grammar follows the paper (Figure 3) with the ΔCFA partition the
m-CFA section relies on — lambdas are split into *user* procedures and
*continuations* — plus three pragmatic call forms that a real Scheme
front end needs (conditionals, primitive operations and ``letrec``);
DESIGN.md records why these extensions do not change the analyses::

    exp  ::= Ref(v) | Lit(d) | Lam(kind, (v ...), call)^l
    call ::= AppCall(exp, (exp ...))^l
           | IfCall(exp, call, call)^l
           | PrimCall(op, (exp ...), exp)^l
           | FixCall(((v, Lam) ...), call)^l
           | HaltCall(exp)^l

Every ``Lam`` and every call carries a unique integer label.  ``Lam``
and call nodes use **identity** hashing: each node occurs exactly once
in a well-formed program, closures over the same lambda share the node,
and identity comparison keeps abstract closures cheap to hash in the
analysis hot loops.  ``Ref`` and ``Lit`` are structural.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterator, Union

Label = int


class LamKind(enum.Enum):
    """The ΔCFA partition: ordinary procedures vs. continuations.

    m-CFA's environment allocator branches on this (paper §5.3): a
    *procedure* call pushes a frame of context, a *continuation* call
    restores the environment the continuation closed over.
    """

    USER = "user"
    CONT = "cont"

    def __repr__(self) -> str:  # terse in analysis dumps
        return self.value


CExp = Union["Ref", "Lit", "Lam"]
Call = Union["AppCall", "IfCall", "PrimCall", "FixCall", "HaltCall"]


@dataclass(frozen=True, slots=True)
class Ref:
    """A variable reference (atomic)."""

    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True, slots=True)
class Lit:
    """A literal datum (atomic); abstracts to the basic top value."""

    datum: object

    def __str__(self) -> str:
        from repro.scheme.sexp import write_sexp
        if isinstance(self.datum, (bool, int)):
            return write_sexp(self.datum)
        return "'" + write_sexp(self.datum)


@dataclass(frozen=True, eq=False, slots=True)
class Lam:
    """``(λ (v1 ... vn) call)^label`` — identity equality.

    Hashes by label: labels are validated unique across every call
    and lambda of a program, and a deterministic hash keeps set
    iteration orders (hence engine trajectories and ``steps`` counts)
    reproducible across processes — an identity hash would vary with
    heap layout.
    """

    kind: LamKind
    params: tuple[str, ...]
    body: Call
    label: Label

    def __hash__(self) -> int:
        return self.label

    def __str__(self) -> str:
        head = "λ" if self.kind is LamKind.USER else "κ"
        return f"({head} ({' '.join(self.params)}) {self.body})"

    @property
    def is_user(self) -> bool:
        return self.kind is LamKind.USER

    @property
    def is_cont(self) -> bool:
        return self.kind is LamKind.CONT


@dataclass(frozen=True, eq=False, slots=True)
class AppCall:
    """``(f e1 ... en)^label`` — procedure or continuation application."""

    fn: CExp
    args: tuple[CExp, ...]
    label: Label

    def __hash__(self) -> int:
        return self.label

    def __str__(self) -> str:
        parts = " ".join(str(e) for e in (self.fn, *self.args))
        return f"({parts})"


@dataclass(frozen=True, eq=False, slots=True)
class IfCall:
    """``(%if e then-call else-call)^label``.

    The concrete machines test truthiness; the abstract machines branch
    to both arms (every non-closure value abstracts to basic top).
    """

    test: CExp
    then: Call
    orelse: Call
    label: Label

    def __hash__(self) -> int:
        return self.label

    def __str__(self) -> str:
        return f"(%if {self.test} {self.then} {self.orelse})"


@dataclass(frozen=True, eq=False, slots=True)
class PrimCall:
    """``(%op e1 ... en k)^label`` — primitive, result passed to k."""

    op: str
    args: tuple[CExp, ...]
    cont: CExp
    label: Label

    def __hash__(self) -> int:
        return self.label

    def __str__(self) -> str:
        parts = " ".join(str(e) for e in (*self.args, self.cont))
        return f"(%{self.op} {parts})"


@dataclass(frozen=True, eq=False, slots=True)
class FixCall:
    """``(%fix ((f lam) ...) call)^label`` — mutual recursion."""

    bindings: tuple[tuple[str, Lam], ...]
    body: Call
    label: Label

    def __hash__(self) -> int:
        return self.label

    def __str__(self) -> str:
        bound = " ".join(f"({name} {lam})" for name, lam in self.bindings)
        return f"(%fix ({bound}) {self.body})"


@dataclass(frozen=True, eq=False, slots=True)
class HaltCall:
    """``(%halt e)^label`` — deliver the program's final value."""

    arg: CExp
    label: Label

    def __hash__(self) -> int:
        return self.label

    def __str__(self) -> str:
        return f"(%halt {self.arg})"


def call_children(call: Call) -> tuple[Call, ...]:
    """Sub-calls syntactically nested in *call* (not through lambdas)."""
    if isinstance(call, IfCall):
        return (call.then, call.orelse)
    if isinstance(call, FixCall):
        return (call.body,)
    return ()


def call_exps(call: Call) -> tuple[CExp, ...]:
    """The atomic expressions evaluated by *call*."""
    if isinstance(call, AppCall):
        return (call.fn, *call.args)
    if isinstance(call, IfCall):
        return (call.test,)
    if isinstance(call, PrimCall):
        return (*call.args, call.cont)
    if isinstance(call, FixCall):
        return tuple(lam for _, lam in call.bindings)
    if isinstance(call, HaltCall):
        return (call.arg,)
    raise TypeError(f"not a call: {call!r}")


def iter_calls(root: Call) -> Iterator[Call]:
    """Every call node reachable from *root*, including through lambdas."""
    stack: list[Call] = [root]
    while stack:
        call = stack.pop()
        yield call
        stack.extend(call_children(call))
        for exp in call_exps(call):
            if isinstance(exp, Lam):
                stack.append(exp.body)


def iter_lams(root: Call) -> Iterator[Lam]:
    """Every lambda node reachable from *root*."""
    for call in iter_calls(root):
        for exp in call_exps(call):
            if isinstance(exp, Lam):
                yield exp


def term_count(root: Call) -> int:
    """Number of expressions + calls — the "Terms" column of §6.1.1."""
    count = 0
    for call in iter_calls(root):
        count += 1 + len(call_exps(call))
        if isinstance(call, FixCall):
            count += len(call.bindings)  # the bound names
    return count


def free_vars_of_lam(lam: Lam) -> frozenset[str]:
    """Free variables of a lambda (cached per node identity).

    Used by the flat-environment machines, where the free variables of
    the callee are *copied* into each freshly allocated environment.
    """
    cached = _FREE_VARS_CACHE.get(id(lam))
    if cached is None:
        cached = free_vars_of_call(lam.body) - frozenset(lam.params)
        _FREE_VARS_CACHE[id(lam)] = cached
        _FREE_VARS_KEEPALIVE.append(lam)
    return cached


_FREE_VARS_CACHE: dict[int, frozenset[str]] = {}
_FREE_VARS_KEEPALIVE: list[Lam] = []  # pin nodes so ids stay valid


def free_vars_of_exp(exp: CExp) -> frozenset[str]:
    if isinstance(exp, Ref):
        return frozenset({exp.name})
    if isinstance(exp, Lit):
        return frozenset()
    if isinstance(exp, Lam):
        return free_vars_of_lam(exp)
    raise TypeError(f"not an atomic expression: {exp!r}")


def free_vars_of_call(call: Call) -> frozenset[str]:
    result: frozenset[str] = frozenset()
    for exp in call_exps(call):
        result |= free_vars_of_exp(exp)
    for child in call_children(call):
        result |= free_vars_of_call(child)
    if isinstance(call, FixCall):
        result -= frozenset(name for name, _ in call.bindings)
    return result
