"""Shrink simplification of CPS terms (administrative β-contraction).

The one-pass CPS converter avoids most administrative redexes, but
``let``-style continuation bindings and join-point plumbing still leave
patterns like::

    ((κ (x) body) atom)      ; β-redex with an atomic argument
    (κ (rv) (k rv))          ; an eta-expanded continuation

This pass performs the two classic *shrink* reductions — β-contraction
of continuation redexes whose argument is atomic, and η-reduction of
continuation wrappers — repeated to a fixed point.  Shrinking never
duplicates work (arguments are atomic, each binding is used however
many times but substituting an atom is size-reducing), so the result
is observationally equivalent; the test suite checks this by running
both terms on the concrete machines.

Labels are reassigned afterwards so the output satisfies the Program
invariants; a fresh term is built (input is never mutated).
"""

from __future__ import annotations

import itertools

from repro.cps.program import Program
from repro.cps.syntax import (
    AppCall, Call, CExp, FixCall, HaltCall, IfCall, Lam, Lit,
    PrimCall, Ref,
)


def simplify_program(program: Program, max_rounds: int = 20) -> Program:
    """Shrink-simplify; returns a fresh validated Program."""
    from repro.util.recursion import deep_recursion
    with deep_recursion():
        root = program.root
        for _ in range(max_rounds):
            simplifier = _Simplifier()
            root = simplifier.call(root, {})
            if not simplifier.changed:
                break
        return Program(_relabel(root))


class _Simplifier:
    """One bottom-up rewriting pass; records whether anything fired."""

    def __init__(self):
        self.changed = False

    # -- expressions -----------------------------------------------------

    def exp(self, exp: CExp, env: dict[str, CExp]) -> CExp:
        if isinstance(exp, Ref):
            replacement = env.get(exp.name)
            return replacement if replacement is not None else exp
        if isinstance(exp, Lit):
            return exp
        if isinstance(exp, Lam):
            contracted = self._eta(exp, env)
            if contracted is not None:
                self.changed = True
                return contracted
            return Lam(exp.kind, exp.params,
                       self.call(exp.body, env), exp.label)
        raise TypeError(f"not an atomic expression: {exp!r}")

    def _eta(self, lam: Lam, env: dict[str, CExp]) -> CExp | None:
        """``(κ (rv) (k rv))`` → ``k`` (continuations only; user
        lambdas carry arity/context semantics worth preserving)."""
        if not lam.is_cont or len(lam.params) != 1:
            return None
        body = lam.body
        if not isinstance(body, AppCall) or len(body.args) != 1:
            return None
        (arg,) = body.args
        param = lam.params[0]
        if not (isinstance(arg, Ref) and arg.name == param):
            return None
        fn = body.fn
        if isinstance(fn, Ref) and fn.name != param:
            return self.exp(fn, env)
        return None

    # -- calls -------------------------------------------------------------

    def call(self, call: Call, env: dict[str, CExp]) -> Call:
        if isinstance(call, AppCall):
            fn = self.exp(call.fn, env)
            args = tuple(self.exp(arg, env) for arg in call.args)
            if (isinstance(fn, Lam) and fn.is_cont
                    and len(fn.params) == len(args)
                    and all(isinstance(a, (Ref, Lit)) for a in args)):
                # β-contraction: substitute atomic arguments directly.
                self.changed = True
                extended = dict(env)
                for param, arg in zip(fn.params, args):
                    extended[param] = arg
                return self.call(fn.body, extended)
            return AppCall(fn, args, call.label)
        if isinstance(call, IfCall):
            return IfCall(self.exp(call.test, env),
                          self.call(call.then, env),
                          self.call(call.orelse, env), call.label)
        if isinstance(call, PrimCall):
            return PrimCall(call.op,
                            tuple(self.exp(a, env) for a in call.args),
                            self.exp(call.cont, env), call.label)
        if isinstance(call, FixCall):
            bindings = tuple(
                (name, self.exp(lam, env)) for name, lam in
                call.bindings)
            return FixCall(bindings, self.call(call.body, env),
                           call.label)
        if isinstance(call, HaltCall):
            return HaltCall(self.exp(call.arg, env), call.label)
        raise TypeError(f"not a call: {call!r}")


def _relabel(root: Call) -> Call:
    """Rebuild the term with fresh, dense, unique labels."""
    counter = itertools.count()

    def fresh() -> int:
        return next(counter)

    def exp(node: CExp) -> CExp:
        if isinstance(node, (Ref, Lit)):
            return node
        if isinstance(node, Lam):
            body = call(node.body)
            return Lam(node.kind, node.params, body, fresh())
        raise TypeError(f"not an atomic expression: {node!r}")

    def call(node: Call) -> Call:
        if isinstance(node, AppCall):
            return AppCall(exp(node.fn),
                           tuple(exp(a) for a in node.args), fresh())
        if isinstance(node, IfCall):
            return IfCall(exp(node.test), call(node.then),
                          call(node.orelse), fresh())
        if isinstance(node, PrimCall):
            return PrimCall(node.op, tuple(exp(a) for a in node.args),
                            exp(node.cont), fresh())
        if isinstance(node, FixCall):
            return FixCall(tuple((name, exp(lam))
                                 for name, lam in node.bindings),
                           call(node.body), fresh())
        if isinstance(node, HaltCall):
            return HaltCall(exp(node.arg), fresh())
        raise TypeError(f"not a call: {node!r}")

    return call(root)
