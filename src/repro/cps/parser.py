"""Parse CPS terms written directly in surface syntax.

Mostly used by tests and the worst-case generator, where controlling
the exact CPS shape matters.  Syntax::

    (lambda (v ...) call)      user lambda  (also: λ)
    (cont (v ...) call)        continuation lambda  (also: κ)
    (%if e then-call else-call)
    (%cons a b k) (%car p k) ...   primitive calls (note the %)
    (%fix ((f lam) ...) call)
    (%halt e)
    (f e ...)                  application
    'datum / 123 / #t / "s"    literals

Labels are assigned in reading order.  The parser does not alpha-rename;
it validates through :class:`~repro.cps.program.Program`, which demands
unique binders — write your terms accordingly.
"""

from __future__ import annotations

import itertools

from repro.errors import CPSSyntaxError
from repro.cps.program import Program
from repro.cps.syntax import (
    AppCall, Call, CExp, FixCall, HaltCall, IfCall, Lam, LamKind, Lit,
    PrimCall, Ref,
)
from repro.scheme.primitives import lookup_primitive
from repro.scheme.sexp import Symbol, parse_sexp

_USER_HEADS = frozenset({"lambda", "λ"})
_CONT_HEADS = frozenset({"cont", "κ", "kappa"})


class _CPSParser:
    def __init__(self):
        self._labels = itertools.count()

    def new_label(self) -> int:
        return next(self._labels)

    def parse_call(self, form) -> Call:
        if not isinstance(form, (tuple, list)) or len(form) == 0:
            raise CPSSyntaxError(f"expected a call, got {form!r}")
        head = form[0]
        if isinstance(head, Symbol) and str(head).startswith("%"):
            return self._special_call(str(head)[1:], form)
        fn = self.parse_exp(form[0])
        args = tuple(self.parse_exp(arg) for arg in form[1:])
        return AppCall(fn, args, self.new_label())

    def _special_call(self, name: str, form) -> Call:
        if name == "if":
            if len(form) != 4:
                raise CPSSyntaxError("%if expects (test then else)")
            test = self.parse_exp(form[1])
            label = self.new_label()
            return IfCall(test, self.parse_call(form[2]),
                          self.parse_call(form[3]), label)
        if name == "halt":
            if len(form) != 2:
                raise CPSSyntaxError("%halt expects one argument")
            return HaltCall(self.parse_exp(form[1]), self.new_label())
        if name == "fix":
            if len(form) != 3 or not isinstance(form[1], (tuple, list)):
                raise CPSSyntaxError("%fix expects (bindings) call")
            bindings = []
            for binding in form[1]:
                if (not isinstance(binding, (tuple, list))
                        or len(binding) != 2
                        or not isinstance(binding[0], Symbol)):
                    raise CPSSyntaxError(
                        f"malformed %fix binding {binding!r}")
                lam = self.parse_exp(binding[1])
                if not isinstance(lam, Lam) or not lam.is_user:
                    raise CPSSyntaxError(
                        f"%fix binding {binding[0]} must be a user "
                        "lambda")
                bindings.append((str(binding[0]), lam))
            label = self.new_label()
            return FixCall(tuple(bindings), self.parse_call(form[2]),
                           label)
        prim = lookup_primitive(name)
        if prim is None:
            raise CPSSyntaxError(f"unknown primitive %{name}")
        if len(form) < 2:
            raise CPSSyntaxError(f"%{name} needs a continuation argument")
        args = tuple(self.parse_exp(arg) for arg in form[1:-1])
        cont = self.parse_exp(form[-1])
        return PrimCall(name, args, cont, self.new_label())

    def parse_exp(self, form) -> CExp:
        if isinstance(form, Symbol):
            return Ref(str(form))
        if isinstance(form, (bool, int)):
            return Lit(form)
        if isinstance(form, str):
            return Lit(form)
        if isinstance(form, (tuple, list)) and form:
            head = form[0]
            if isinstance(head, Symbol):
                if str(head) in _USER_HEADS:
                    return self._parse_lam(form, LamKind.USER)
                if str(head) in _CONT_HEADS:
                    return self._parse_lam(form, LamKind.CONT)
                if str(head) == "quote":
                    if len(form) != 2:
                        raise CPSSyntaxError("quote expects one datum")
                    return Lit(form[1])
        raise CPSSyntaxError(f"not an atomic CPS expression: {form!r}")

    def _parse_lam(self, form, kind: LamKind) -> Lam:
        if len(form) != 3 or not isinstance(form[1], (tuple, list)):
            raise CPSSyntaxError(f"malformed lambda {form!r}")
        if not all(isinstance(p, Symbol) for p in form[1]):
            raise CPSSyntaxError(f"lambda parameters must be symbols")
        params = tuple(str(p) for p in form[1])
        label = self.new_label()
        body = self.parse_call(form[2])
        return Lam(kind, params, body, label)


def parse_cps(text: str) -> Program:
    """Parse program text as one CPS call term."""
    from repro.util.recursion import deep_recursion
    form = parse_sexp(text)
    with deep_recursion():
        return Program(_CPSParser().parse_call(form))


def parse_cps_call(text: str) -> Call:
    """Parse a call without program validation (open terms allowed)."""
    form = parse_sexp(text)
    return _CPSParser().parse_call(form)
