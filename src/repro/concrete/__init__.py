"""Concrete CPS machines: ground truth for the abstract analyses.

* :mod:`repro.concrete.shared_env` — the §3.2 machine k-CFA abstracts.
* :mod:`repro.concrete.flat_env` — the §5.1 machine m-CFA abstracts.

Both machines compute the same values for every program (they differ
only in environment representation), which is itself tested.
"""

from repro.concrete.values import (
    FlatAddr, FlatClosure, FlatEnv, SharedAddr, SharedClosure,
)
from repro.concrete.shared_env import (
    SharedEnvMachine, SharedEnvResult, TraceEntry, run_shared,
)
from repro.concrete.flat_env import (
    FlatEnvMachine, FlatEnvResult, FlatTraceEntry, run_flat,
)

__all__ = [
    "FlatAddr", "FlatClosure", "FlatEnv", "SharedAddr", "SharedClosure",
    "SharedEnvMachine", "SharedEnvResult", "TraceEntry", "run_shared",
    "FlatEnvMachine", "FlatEnvResult", "FlatTraceEntry", "run_flat",
]
