"""Concrete flat-environment CPS machine (paper §5.1/§5.3).

An environment is a *base address*; a variable's address is the pair
``(variable, environment)``.  Entering a procedure allocates a fresh
environment and **copies** the values of the callee's free variables
into it — the flat-closure discipline from functional-language
compilation that m-CFA abstracts.

Following §5.3, environments are ``(serial, frames)`` where ``frames``
is the call-site history the abstraction retains and ``serial`` is a
machine-global counter guaranteeing concrete freshness.  The allocator
distinguishes the two lambda kinds:

* entering a **procedure** pushes the call site: frames' = call : frames
* entering a **continuation** restores the frames of the environment
  the continuation closed over (a "return").
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import EvaluationError, FuelExhausted, \
    UnboundVariableError
from repro.cps.program import Program
from repro.cps.syntax import (
    AppCall, Call, CExp, FixCall, HaltCall, IfCall, Lam, Lit, PrimCall,
    Ref, free_vars_of_lam,
)
from repro.concrete.values import FlatAddr, FlatClosure, FlatEnv
from repro.scheme.primitives import lookup_primitive
from repro.scheme.values import Value, datum_to_value, is_truthy

DEFAULT_FUEL = 5_000_000


@dataclass(frozen=True, slots=True)
class FlatTraceEntry:
    """One recorded state of the flat machine."""

    call: Call
    env: FlatEnv


@dataclass
class FlatEnvResult:
    """Outcome of a flat-environment run."""

    value: Value
    steps: int
    store: dict[FlatAddr, Value]
    trace: list[FlatTraceEntry] = field(default_factory=list)


class FlatEnvMachine:
    """Driver for the concrete flat-environment semantics."""

    def __init__(self, program: Program, fuel: int = DEFAULT_FUEL,
                 record_trace: bool = False, env_policy: str = "stack"):
        if env_policy not in ("stack", "history"):
            raise ValueError(f"unknown env_policy {env_policy!r}")
        self.program = program
        self.fuel = fuel
        self.record_trace = record_trace
        self.env_policy = env_policy
        self.store: dict[FlatAddr, Value] = {}
        self.trace: list[FlatTraceEntry] = []
        self._serial = 0

    # -- the environment allocator (§5.3) -------------------------------
    #
    # "stack" is the paper's allocator: procedures push a frame,
    # continuations restore the closure's frames — the concrete
    # semantics m-CFA abstracts (α = first_m of the frames).
    # "history" pushes the call label for *every* call; it is the
    # concrete counterpart whose first_k-abstraction is naive
    # polynomial k-CFA, used by the soundness harness.

    def new_env(self, call: Call, env: FlatEnv,
                closure: FlatClosure) -> FlatEnv:
        self._serial += 1
        if self.env_policy == "history" or closure.lam.is_user:
            return (self._serial, (call.label, *env[1]))
        return (self._serial, closure.env[1])

    # -- expression evaluator E ------------------------------------------

    def evaluate(self, exp: CExp, env: FlatEnv) -> Value:
        if isinstance(exp, Ref):
            address = (exp.name, env)
            if address not in self.store:
                raise UnboundVariableError(exp.name, "flat-env machine")
            return self.store[address]
        if isinstance(exp, Lit):
            return datum_to_value(exp.datum)
        if isinstance(exp, Lam):
            return FlatClosure(exp, env)
        raise TypeError(f"not an atomic expression: {exp!r}")

    # -- the transition relation -------------------------------------------

    def run(self) -> FlatEnvResult:
        call: Call = self.program.root
        env: FlatEnv = (0, ())
        steps = 0
        while True:
            steps += 1
            if steps > self.fuel:
                raise FuelExhausted(self.fuel, trace=self.trace)
            if self.record_trace:
                self.trace.append(FlatTraceEntry(call, env))
            if isinstance(call, HaltCall):
                value = self.evaluate(call.arg, env)
                return FlatEnvResult(value, steps, self.store, self.trace)
            call, env = self.step(call, env)

    def step(self, call: Call, env: FlatEnv) -> tuple[Call, FlatEnv]:
        if isinstance(call, AppCall):
            closure = self.evaluate(call.fn, env)
            args = [self.evaluate(arg, env) for arg in call.args]
            return self.enter(call, closure, args, env)
        if isinstance(call, IfCall):
            test = self.evaluate(call.test, env)
            return (call.then if is_truthy(test) else call.orelse), env
        if isinstance(call, PrimCall):
            prim = lookup_primitive(call.op)
            args = tuple(self.evaluate(arg, env) for arg in call.args)
            result = prim.apply(args)
            cont = self.evaluate(call.cont, env)
            return self.enter(call, cont, [result], env)
        if isinstance(call, FixCall):
            for name, lam in call.bindings:
                self.store[(name, env)] = FlatClosure(lam, env)
            return call.body, env
        raise TypeError(f"cannot step call {call!r}")

    def enter(self, call: Call, closure: Value, args: list[Value],
              env: FlatEnv) -> tuple[Call, FlatEnv]:
        """Apply a closure: allocate a flat environment, bind parameters
        and copy the free variables (the §5.1 rule)."""
        if not isinstance(closure, FlatClosure):
            raise EvaluationError(
                f"application of a non-procedure: {closure!r}")
        lam = closure.lam
        if len(args) != len(lam.params):
            raise EvaluationError(
                f"λ{lam.label} expects {len(lam.params)} argument(s), "
                f"got {len(args)}")
        new_env = self.new_env(call, env, closure)
        for free in free_vars_of_lam(lam):
            source = (free, closure.env)
            if source not in self.store:
                raise UnboundVariableError(free, "flat-env copy")
            self.store[(free, new_env)] = self.store[source]
        for name, value in zip(lam.params, args):
            self.store[(name, new_env)] = value
        return lam.body, new_env


def run_flat(program: Program, fuel: int = DEFAULT_FUEL,
             record_trace: bool = False,
             env_policy: str = "stack") -> FlatEnvResult:
    """Run *program* on the flat-environment machine."""
    return FlatEnvMachine(program, fuel, record_trace, env_policy).run()
