"""Closure representations for the two concrete CPS machines.

The shared-environment machine's closures pair a lambda with a *binding
environment* (variable → address); the flat-environment machine's
closures pair a lambda with a single *base environment address* (paper
§5.1).  Both derive from :class:`~repro.scheme.values.ProcedureValue`
so generic primitives apply."""

from __future__ import annotations

from dataclasses import dataclass

from repro.cps.syntax import Lam
from repro.scheme.values import ProcedureValue

#: Shared-env machine: a concrete address is (variable, birth time).
SharedAddr = tuple[str, int]

#: Flat-env machine: an environment is (serial, call-label frames).
#: The serial keeps concrete environments globally fresh; the frames
#: are what the m-CFA abstraction map retains.
FlatEnv = tuple[int, tuple[int, ...]]

#: Flat-env machine: a concrete address is (variable, environment).
FlatAddr = tuple[str, FlatEnv]


@dataclass(frozen=True, slots=True)
class SharedClosure(ProcedureValue):
    """A shared-environment closure ``(lam, β)``.

    ``benv`` is restricted to the lambda's free variables at creation —
    the standard implementation move, sound because the body can only
    reference free variables and parameters.
    """

    lam: Lam
    benv: tuple[tuple[str, int], ...]  # sorted (var, time) pairs

    def benv_dict(self) -> dict[str, int]:
        return dict(self.benv)

    def __repr__(self) -> str:
        return f"#<clo:{self.lam.label}>"


@dataclass(frozen=True, slots=True)
class FlatClosure(ProcedureValue):
    """A flat-environment closure ``(lam, ρ)`` — just a base address."""

    lam: Lam
    env: FlatEnv

    def __repr__(self) -> str:
        return f"#<flat-clo:{self.lam.label}@{self.env[0]}>"
