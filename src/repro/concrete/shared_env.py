"""Concrete shared-environment CPS machine (paper §3.2–3.3).

States are ``(call, β, σ, t)``; environments are factored through the
store: ``β`` maps variables to addresses ``(v, t)`` and the store maps
addresses to values.  Time-stamps are natural numbers and ``tick``
increments, which satisfies the freshness constraints (1)–(3) of §3.2,
so the store is *write-once*: the machine keeps one growing store
instead of copying it per state, which is observationally identical.

The machine optionally records the trace of ``(call, β, t)`` triples;
the soundness harness (:mod:`repro.analysis.abstraction`) abstracts
each recorded state with α and checks containment in an analysis
result.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import EvaluationError, FuelExhausted, \
    UnboundVariableError
from repro.cps.program import Program
from repro.cps.syntax import (
    AppCall, Call, CExp, FixCall, HaltCall, IfCall, Lam, Lit, PrimCall,
    Ref, free_vars_of_lam,
)
from repro.concrete.values import SharedAddr, SharedClosure
from repro.scheme.primitives import lookup_primitive
from repro.scheme.values import Value, datum_to_value, is_truthy

BEnv = dict  # str -> SharedAddr; copied on extension

DEFAULT_FUEL = 5_000_000


@dataclass(frozen=True, slots=True)
class TraceEntry:
    """One recorded machine state (store elided; it is write-once)."""

    call: Call
    benv: tuple[tuple[str, SharedAddr], ...]
    time: object  # int ("integer" mode) or tuple of labels ("history")


@dataclass
class SharedEnvResult:
    """Outcome of a shared-environment run."""

    value: Value
    steps: int
    final_time: object
    store: dict[SharedAddr, Value]
    trace: list[TraceEntry] = field(default_factory=list)


class SharedEnvMachine:
    """Driver for the concrete shared-environment semantics."""

    def __init__(self, program: Program, fuel: int = DEFAULT_FUEL,
                 record_trace: bool = False,
                 time_mode: str = "integer"):
        if time_mode not in ("integer", "history"):
            raise ValueError(f"unknown time_mode {time_mode!r}")
        self.program = program
        self.fuel = fuel
        self.record_trace = record_trace
        self.time_mode = time_mode
        self.store: dict[SharedAddr, Value] = {}
        self.trace: list[TraceEntry] = []

    # -- external parameters (§3.2): tick and alloc --------------------
    #
    # "integer" times are the fast default (tick increments, §3.2's
    # obvious solution).  "history" times are the paper's Time = Call*:
    # tick prepends the call label, so the k-CFA abstraction map
    # α(t) = first_k(t) is directly computable — the soundness harness
    # uses this mode.

    def initial_time(self):
        return 0 if self.time_mode == "integer" else ()

    def tick(self, call: Call, time):
        if self.time_mode == "integer":
            return time + 1
        return (call.label, *time)

    @staticmethod
    def alloc(var: str, time) -> SharedAddr:
        return (var, time)

    # -- expression evaluator E ----------------------------------------

    def evaluate(self, exp: CExp, benv: BEnv) -> Value:
        if isinstance(exp, Ref):
            if exp.name not in benv:
                raise UnboundVariableError(exp.name, "shared-env machine")
            return self.store[benv[exp.name]]
        if isinstance(exp, Lit):
            return datum_to_value(exp.datum)
        if isinstance(exp, Lam):
            captured = tuple(sorted(
                (name, benv[name][1]) for name in free_vars_of_lam(exp)))
            return SharedClosure(exp, captured)
        raise TypeError(f"not an atomic expression: {exp!r}")

    # -- the transition relation ----------------------------------------

    def run(self) -> SharedEnvResult:
        call: Call = self.program.root
        benv: BEnv = {}
        time = self.initial_time()
        steps = 0
        while True:
            steps += 1
            if steps > self.fuel:
                raise FuelExhausted(self.fuel, trace=self.trace)
            if self.record_trace:
                self.trace.append(TraceEntry(
                    call, tuple(sorted(benv.items())), time))
            if isinstance(call, HaltCall):
                value = self.evaluate(call.arg, benv)
                return SharedEnvResult(value, steps, time, self.store,
                                       self.trace)
            call, benv, time = self.step(call, benv, time)

    def step(self, call: Call, benv: BEnv,
             time) -> tuple[Call, BEnv, object]:
        if isinstance(call, AppCall):
            closure = self.evaluate(call.fn, benv)
            args = [self.evaluate(arg, benv) for arg in call.args]
            return self.enter(call, closure, args, time)
        if isinstance(call, IfCall):
            test = self.evaluate(call.test, benv)
            branch = call.then if is_truthy(test) else call.orelse
            return branch, benv, time
        if isinstance(call, PrimCall):
            prim = lookup_primitive(call.op)
            args = tuple(self.evaluate(arg, benv) for arg in call.args)
            result = prim.apply(args)
            cont = self.evaluate(call.cont, benv)
            return self.enter(call, cont, [result], time)
        if isinstance(call, FixCall):
            extended = dict(benv)
            for name, _ in call.bindings:
                extended[name] = self.alloc(name, time)
            for name, lam in call.bindings:
                self.store[extended[name]] = self.evaluate(lam, extended)
            return call.body, extended, time
        raise TypeError(f"cannot step call {call!r}")

    def enter(self, call: Call, closure: Value, args: list[Value],
              time) -> tuple[Call, BEnv, object]:
        """Apply a closure: tick, allocate, bind (the §3.2 rule)."""
        if not isinstance(closure, SharedClosure):
            raise EvaluationError(
                f"application of a non-procedure: {closure!r}")
        lam = closure.lam
        if len(args) != len(lam.params):
            raise EvaluationError(
                f"λ{lam.label} expects {len(lam.params)} argument(s), "
                f"got {len(args)}")
        new_time = self.tick(call, time)
        benv: BEnv = {name: (name, birth)
                      for name, birth in closure.benv}
        for name, value in zip(lam.params, args):
            address = self.alloc(name, new_time)
            benv[name] = address
            self.store[address] = value
        return lam.body, benv, new_time


def run_shared(program: Program, fuel: int = DEFAULT_FUEL,
               record_trace: bool = False,
               time_mode: str = "integer") -> SharedEnvResult:
    """Run *program* on the shared-environment machine."""
    return SharedEnvMachine(program, fuel, record_trace, time_mode).run()
