"""Scale the §6.2 suite programs to paper-sized term counts.

The authors' benchmark files ranged from hundreds to ~6k terms; our
re-implementations are a few hundred.  :func:`scaled_source` closes
the gap honestly — by *replicating the program logic* N times under
renamed top levels and combining the results — rather than padding
with dead code: every copy is reachable, analyzed and executed, so
analysis cost scales the way a genuinely larger program's would.

Renaming prefixes every top-level identifier (and nothing else), which
is safe because the suite programs only bind lexically and the prefix
``cN_`` cannot collide with any identifier they use.
"""

from __future__ import annotations

import re

from repro.benchsuite.programs import BY_NAME, BenchProgram
from repro.cps.program import Program
from repro.scheme.cps_transform import compile_program
from repro.scheme.sexp import Symbol, parse_sexps, write_sexp


def _toplevel_names(forms) -> set[str]:
    names = set()
    for form in forms:
        if (isinstance(form, tuple) and form
                and isinstance(form[0], Symbol)
                and str(form[0]) == "define"):
            header = form[1]
            if isinstance(header, Symbol):
                names.add(str(header))
            elif isinstance(header, tuple) and header:
                names.add(str(header[0]))
    return names


def _rename(datum, mapping: dict[str, str]):
    if isinstance(datum, Symbol):
        renamed = mapping.get(str(datum))
        return Symbol(renamed) if renamed else datum
    if isinstance(datum, tuple):
        if (len(datum) == 2 and isinstance(datum[0], Symbol)
                and str(datum[0]) == "quote"):
            return datum  # never rename inside quoted data
        return tuple(_rename(item, mapping) for item in datum)
    return datum


def scaled_source(bench: BenchProgram, copies: int) -> str:
    """Source with *copies* renamed instances, results combined.

    The combined program's value is the number of copies whose result
    equals the expected single-copy result, so running it concretely
    doubles as a correctness check: it must evaluate to *copies*.
    """
    if copies < 1:
        raise ValueError(f"copies must be >= 1, got {copies}")
    forms = parse_sexps(bench.source)
    defines = forms[:-1]
    final = forms[-1]
    names = _toplevel_names(forms)
    pieces: list[str] = []
    result_names = []
    for index in range(copies):
        mapping = {name: f"c{index}_{name}" for name in names}
        for form in defines:
            pieces.append(write_sexp(_rename(form, mapping)))
        result = f"copy{index}_result"
        result_names.append(result)
        pieces.append(
            f"(define {result} {write_sexp(_rename(final, mapping))})")
    expected = write_sexp(bench.expected)
    checks = " ".join(
        f"(if (equal? {name} {expected}) 1 0)"
        for name in result_names)
    pieces.append(f"(+ {checks})")
    return "\n".join(pieces)


def scaled_program(name: str, copies: int) -> Program:
    """Compile a scaled suite program."""
    return compile_program(scaled_source(BY_NAME[name], copies))


def scaled_expected(copies: int) -> int:
    """The concrete value every scaled program must produce."""
    return copies
