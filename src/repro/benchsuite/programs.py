"""The §6.2 benchmark programs, re-implemented in the Scheme subset.

The paper's suite: ``eta`` and ``map`` (functional idioms), ``sat`` (a
back-tracking SAT solver), ``regex`` (a regular-expression matcher
based on derivatives), ``scm2java`` (a Scheme compiler targeting Java),
``interp`` (a meta-circular Scheme interpreter) and ``scm2c`` (a Scheme
compiler targeting C).  Ours are smaller but structurally faithful —
each exercises the same shape of higher-order control flow, and each is
a *runnable* program (the tests execute every one on all three concrete
evaluators and compare results).

Every program is self-contained: list helpers are defined locally, as
in typical CFA benchmark suites, so the analyzed term includes them.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cps.program import Program
from repro.scheme.cps_transform import compile_program


@dataclass(frozen=True, slots=True)
class BenchProgram:
    """One suite entry: source text plus its expected concrete result."""

    name: str
    source: str
    expected: object  # int | bool | str
    description: str = ""

    def compile(self) -> Program:
        return compile_program(self.source)


ETA = BenchProgram(
    name="eta",
    description="eta-expansion and currying idioms",
    expected=759,
    source="""
(define (compose f g) (lambda (x) (f (g x))))
(define (curry2 f) (lambda (a) (lambda (b) (f a b))))
(define (uncurry2 f) (lambda (a b) ((f a) b)))
(define (flip f) (lambda (a b) (f b a)))
(define (eta1 f) (lambda (x) (f x)))
(define (eta2 f) (lambda (x y) (f x y)))
(define (const k) (lambda (ignored) k))
(define (twice f) (compose f f))
(define (iterate n f x)
  (if (= n 0) x (iterate (- n 1) f (f x))))
(define add (eta2 (lambda (a b) (+ a b))))
(define inc (eta1 ((curry2 add) 1)))
(define double (eta1 (lambda (v) (* 2 v))))
(define quad (twice double))
(define (sum3 a b c) (+ a (+ b c)))
(define (noise) 0)
(define (pick f) (noise) f)   ; identity with an intervening call (§6)
(let ((plus10 ((curry2 (flip add)) 10))
      (p1 (pick (lambda (u) (+ u 1))))
      (p2 (pick (lambda (w) (* w 2)))))
  (+ (sum3 (iterate 3 inc 0)                 ; 3
           (quad ((const 4) 99))             ; 16
           ((compose plus10 (compose quad inc))
            ((uncurry2 (curry2 add)) 88 89))) ; 178*4 -> 712+10 -> 722
     (p1 5)                                   ; 6
     (p2 6)))                                 ; 12
""")


MAP = BenchProgram(
    name="map",
    description="a small list library driven by higher-order functions",
    expected=106,
    source="""
(define (foldr f z xs)
  (if (null? xs) z (f (car xs) (foldr f z (cdr xs)))))
(define (foldl f z xs)
  (if (null? xs) z (foldl f (f z (car xs)) (cdr xs))))
(define (map1 f xs)
  (foldr (lambda (x acc) (cons (f x) acc)) '() xs))
(define (filter1 p xs)
  (foldr (lambda (x acc) (if (p x) (cons x acc) acc)) '() xs))
(define (append1 xs ys) (foldr cons ys xs))
(define (reverse1 xs) (foldl (lambda (acc x) (cons x acc)) '() xs))
(define (range a b) (if (= a b) '() (cons a (range (+ a 1) b))))
(define (sum xs) (foldl (lambda (acc x) (+ acc x)) 0 xs))
(define (even1? n) (= (* 2 (quotient n 2)) n))
(define (choose f) f)   ; identity with NO intervening call: only 0CFA
                        ; merges the two picks below (§6)
(let ((xs (range 1 9))
      (tripler (choose (lambda (v) (* v 3))))
      (plus7 (choose (lambda (v) (+ v 7)))))
  (let ((squares (map1 (lambda (v) (* v v)) xs)))
    (let ((evens (filter1 even1? xs)))
      (+ (sum (filter1 even1? squares))       ; 4+16+36+64 = 120
         (- (sum (reverse1 evens))            ; 2+4+6+8 = 20
            (sum (map1 (lambda (v) (+ v 10))
                       (append1 '(1 2) '(3 4)))))  ; 10+40 -> -88+120
         (tripler 2)                          ; 6
         (plus7 3)))))                        ; 10
""")


SAT = BenchProgram(
    name="sat",
    description="back-tracking DPLL-style SAT solver on CNF lists",
    expected=11,
    source="""
(define (negate lit) (- 0 lit))
(define (lit-var lit) (if (< lit 0) (- 0 lit) lit))
(define (mem-int x xs)
  (if (null? xs) #f (if (= (car xs) x) #t (mem-int x (cdr xs)))))
(define (remove-int x xs)
  (if (null? xs)
      '()
      (if (= (car xs) x)
          (remove-int x (cdr xs))
          (cons (car xs) (remove-int x (cdr xs))))))
(define (satisfied? clause lit) (mem-int lit clause))
(define (assign lit clauses)
  (if (null? clauses)
      '()
      (if (satisfied? (car clauses) lit)
          (assign lit (cdr clauses))
          (cons (remove-int (negate lit) (car clauses))
                (assign lit (cdr clauses))))))
(define (has-empty? clauses)
  (if (null? clauses)
      #f
      (if (null? (car clauses)) #t (has-empty? (cdr clauses)))))
(define (choose clauses) (lit-var (car (car clauses))))
(define (dpll clauses)
  (cond ((null? clauses) #t)
        ((has-empty? clauses) #f)
        (else (let ((v (choose clauses)))
                (or (dpll (assign v clauses))
                    (dpll (assign (negate v) clauses)))))))
(define (count-sat formulas)
  (if (null? formulas)
      0
      (+ (if (dpll (car formulas)) 1 0)
         (count-sat (cdr formulas)))))
(let ((sat1 '((1 2) (-1 2) (1 -2)))
      (unsat1 '((1 2) (-1 2) (1 -2) (-1 -2)))
      (sat2 '((1) (2 3) (-2 3) (-3 1)))
      (unsat2 '((1) (-1)))
      (sat3 '((1 2 3) (-1 -2) (-2 -3) (-1 -3) (2))))
  (+ (* 10 (count-sat (list sat1 sat2 sat3)))        ; 3 sat -> 30
     (- (count-sat (list unsat1 unsat2 sat1)) 20)))  ; 1 - 20 -> 11
""")


REGEX = BenchProgram(
    name="regex",
    description="regular-expression matcher via Brzozowski derivatives",
    expected=33,
    source="""
(define (re-tag r) (car r))
(define (nullable? r)
  (let ((t (re-tag r)))
    (cond ((eq? t 'empty) #f)
          ((eq? t 'eps) #t)
          ((eq? t 'chr) #f)
          ((eq? t 'seq) (and (nullable? (cadr r)) (nullable? (caddr r))))
          ((eq? t 'alt) (or (nullable? (cadr r)) (nullable? (caddr r))))
          ((eq? t 'star) #t)
          (else (error 'bad-regex)))))
(define (smart-seq r s)
  (cond ((eq? (re-tag r) 'empty) (list 'empty))
        ((eq? (re-tag s) 'empty) (list 'empty))
        ((eq? (re-tag r) 'eps) s)
        ((eq? (re-tag s) 'eps) r)
        (else (list 'seq r s))))
(define (smart-alt r s)
  (cond ((eq? (re-tag r) 'empty) s)
        ((eq? (re-tag s) 'empty) r)
        (else (list 'alt r s))))
(define (deriv c r)
  (let ((t (re-tag r)))
    (cond ((eq? t 'empty) (list 'empty))
          ((eq? t 'eps) (list 'empty))
          ((eq? t 'chr) (if (eq? c (cadr r)) (list 'eps) (list 'empty)))
          ((eq? t 'seq)
           (let ((left (smart-seq (deriv c (cadr r)) (caddr r))))
             (if (nullable? (cadr r))
                 (smart-alt left (deriv c (caddr r)))
                 left)))
          ((eq? t 'alt) (smart-alt (deriv c (cadr r)) (deriv c (caddr r))))
          ((eq? t 'star) (smart-seq (deriv c (cadr r)) r))
          (else (error 'bad-regex)))))
(define (matches? r cs)
  (if (null? cs) (nullable? r) (matches? (deriv (car cs) r) (cdr cs))))
(define (chr c) (list 'chr c))
(define (str->re cs)
  (if (null? cs) (list 'eps) (list 'seq (chr (car cs)) (str->re (cdr cs)))))
(define (count-matches r inputs)
  (if (null? inputs)
      0
      (+ (if (matches? r (car inputs)) 1 0)
         (count-matches r (cdr inputs)))))
(let ((ab-star (list 'star (list 'alt (chr 'a) (chr 'b)))))
  (let ((re1 (list 'seq ab-star (str->re '(c)))))     ; (a|b)*c
    (let ((re2 (list 'alt (str->re '(x y))             ; xy | z*
                     (list 'star (chr 'z)))))
      (+ (* 10 (count-matches re1 '((c) (a b c) (b b a c) (a b) (c c))))
         (count-matches re2 '((x y) () (z z z) (x z)))))))  ; 2*10 + ...
""")


INTERP = BenchProgram(
    name="interp",
    description="meta-circular interpreter for a mini-Scheme",
    expected=147,
    source="""
(define (zip-extend env names vals)
  (if (null? names)
      env
      (cons (cons (car names) (car vals))
            (zip-extend env (cdr names) (cdr vals)))))
(define (lookup x env)
  (cond ((null? env) (error 'unbound-variable x))
        ((eq? x (car (car env))) (cdr (car env)))
        (else (lookup x (cdr env)))))
(define (ev-list es env)
  (if (null? es) '() (cons (ev (car es) env) (ev-list (cdr es) env))))
(define (apply-prim name args)
  (cond ((eq? name 'add) (+ (car args) (cadr args)))
        ((eq? name 'sub) (- (car args) (cadr args)))
        ((eq? name 'mul) (* (car args) (cadr args)))
        ((eq? name 'eqn) (= (car args) (cadr args)))
        ((eq? name 'lt) (< (car args) (cadr args)))
        (else (error 'unknown-primitive name))))
(define (ap f args)
  (cond ((eq? (car f) 'closure)
         (ev (caddr f) (zip-extend (cadddr f) (cadr f) args)))
        ((eq? (car f) 'prim) (apply-prim (cadr f) args))
        (else (error 'not-a-function))))
(define (ev e env)
  (cond ((number? e) e)
        ((boolean? e) e)
        ((symbol? e) (lookup e env))
        ((eq? (car e) 'quote) (cadr e))
        ((eq? (car e) 'lambda)
         (list 'closure (cadr e) (caddr e) env))
        ((eq? (car e) 'if)
         (if (ev (cadr e) env) (ev (caddr e) env) (ev (cadddr e) env)))
        (else (ap (ev (car e) env) (ev-list (cdr e) env)))))
(define (base-env)
  (list (cons '+ (list 'prim 'add))
        (cons '- (list 'prim 'sub))
        (cons '* (list 'prim 'mul))
        (cons '= (list 'prim 'eqn))
        (cons '< (list 'prim 'lt))))
(define fact-src
  '((lambda (f n) (f f n))
    (lambda (self n) (if (= n 0) 1 (* n (self self (- n 1)))))
    5))
(define fib-src
  '((lambda (f n) (f f n))
    (lambda (self n)
      (if (< n 2) n (+ (self self (- n 1)) (self self (- n 2)))))
    8))
(define twice-src
  '(((lambda (f) (lambda (x) (f (f x)))) (lambda (y) (+ y 3))) 0))
(+ (ev fact-src (base-env))     ; 120
   (ev fib-src (base-env))      ; 21
   (ev twice-src (base-env)))   ; 6
""")


SCM2JAVA = BenchProgram(
    name="scm2java",
    description="mini Scheme-to-Java compiler emitting source strings",
    expected=('new Apply(new Lambda1("x", new Plus(new Var("x"), '
              'new Lit(1))), new Lit(41)) // new Lit(7)new Var("y")'),
    source="""
(define (str-join3 a b c) (string-append a (string-append b c)))
(define (str-join5 a b c d e)
  (string-append a (string-append b (str-join3 c d e))))
(define (emit-lit n) (str-join3 "new Lit(" (number->string n) ")"))
(define (emit-var x)
  (str-join3 "new Var(\\"" (symbol->string x) "\\")"))
(define (emit-lambda param body)
  (str-join5 "new Lambda1(\\"" (symbol->string param) "\\", " body ")"))
(define (emit-apply fn arg)
  (str-join5 "new Apply(" fn ", " arg ")"))
(define (emit-plus a b) (str-join5 "new Plus(" a ", " b ")"))
(define (emit-if c t e)
  (str-join3 (str-join5 "new If(" c ", " t ", ") (str-join3 e ")" "")))
(define (comp e)
  (cond ((number? e) (emit-lit e))
        ((symbol? e) (emit-var e))
        ((eq? (car e) 'lambda) (emit-lambda (car (cadr e))
                                            (comp (caddr e))))
        ((eq? (car e) 'if) (emit-if (comp (cadr e))
                                    (comp (caddr e))
                                    (comp (cadddr e))))
        ((eq? (car e) '+) (emit-plus (comp (cadr e)) (comp (caddr e))))
        (else (emit-apply (comp (car e)) (comp (cadr e))))))
(define (noise) 0)
(define (pick-emitter e) (noise) e)   ; the §6 context-rotation pattern
(let ((lit-emitter (pick-emitter emit-lit))
      (var-emitter (pick-emitter emit-var)))
  (string-append (comp '((lambda (x) (+ x 1)) 41))
                 (str-join3 " // " (lit-emitter 7) (var-emitter 'y))))
""")


SCM2C = BenchProgram(
    name="scm2c",
    description=("mini Scheme-to-C compiler with closure lifting, "
                 "counting emitted top-level functions"),
    expected=12,
    source="""
(define (count-lambdas e)
  (cond ((number? e) 0)
        ((symbol? e) 0)
        ((eq? (car e) 'lambda) (+ 1 (count-lambdas (caddr e))))
        ((eq? (car e) 'if) (+ (count-lambdas (cadr e))
                              (+ (count-lambdas (caddr e))
                                 (count-lambdas (cadddr e)))))
        ((eq? (car e) '+) (+ (count-lambdas (cadr e))
                             (count-lambdas (caddr e))))
        (else (+ (count-lambdas (car e)) (count-lambdas (cadr e))))))
(define (free-in? x e)
  (cond ((number? e) #f)
        ((symbol? e) (eq? x e))
        ((eq? (car e) 'lambda)
         (if (eq? x (car (cadr e))) #f (free-in? x (caddr e))))
        ((eq? (car e) 'if) (or (free-in? x (cadr e))
                               (free-in? x (caddr e))
                               (free-in? x (cadddr e))))
        ((eq? (car e) '+) (or (free-in? x (cadr e))
                              (free-in? x (caddr e))))
        (else (or (free-in? x (car e)) (free-in? x (cadr e))))))
(define (lift e fns)
  (cond ((number? e) fns)
        ((symbol? e) fns)
        ((eq? (car e) 'lambda) (cons e (lift (caddr e) fns)))
        ((eq? (car e) 'if)
         (lift (cadr e) (lift (caddr e) (lift (cadddr e) fns))))
        ((eq? (car e) '+) (lift (cadr e) (lift (caddr e) fns)))
        (else (lift (car e) (lift (cadr e) fns)))))
(define (emit-fn f index)
  (string-append "closure_t* fn_"
    (string-append (number->string index)
      (string-append "(env_t* env, value_t "
        (string-append (symbol->string (car (cadr f)))
                       ") { ... }")))))
(define (emit-all fns index)
  (if (null? fns)
      '()
      (cons (emit-fn (car fns) index)
            (emit-all (cdr fns) (+ index 1)))))
(define (length1 xs) (if (null? xs) 0 (+ 1 (length1 (cdr xs)))))
(define prog
  '((lambda (f) (f ((lambda (y) (+ y 1)) 2)))
    (lambda (x) (if (free x x) (+ x 1) ((lambda (z) z) x)))))
(define (noise) 0)
(define (pick-pass p) (noise) p)   ; the §6 context-rotation pattern
(let ((lambda-counter (pick-pass count-lambdas))
      (emit-counter (pick-pass length1)))
  (let ((fns (lift prog '())))
    (let ((emitted (emit-all fns 0)))
      (+ (if (free-in? 'free prog)
             (length1 emitted)       ; 4 lifted lambdas
             (count-lambdas prog))
         (lambda-counter prog)       ; 4
         (emit-counter fns)))))      ; 4
""")


SUITE: tuple[BenchProgram, ...] = (
    ETA, MAP, SAT, REGEX, INTERP, SCM2JAVA, SCM2C,
)

BY_NAME = {bench.name: bench for bench in SUITE}


def suite_programs() -> dict[str, Program]:
    """Compile the whole suite; name → CPS program."""
    return {bench.name: bench.compile() for bench in SUITE}
