"""The §6.2 benchmark programs (eta, map, sat, regex, interp,
scm2java, scm2c), re-implemented in the Scheme subset."""

from repro.benchsuite.programs import (
    BY_NAME, BenchProgram, ETA, INTERP, MAP, REGEX, SAT, SCM2C,
    SCM2JAVA, SUITE, suite_programs,
)
from repro.benchsuite.scaling import (
    scaled_expected, scaled_program, scaled_source,
)

__all__ = [
    "BY_NAME", "BenchProgram", "ETA", "INTERP", "MAP", "REGEX", "SAT",
    "SCM2C", "SCM2JAVA", "SUITE", "suite_programs",
    "scaled_expected", "scaled_program", "scaled_source",
]
