"""The §6.2 benchmark programs (eta, map, sat, regex, interp,
scm2java, scm2c), re-implemented in the Scheme subset, plus the
parallel batch runner behind ``python -m repro bench``."""

from repro.benchsuite.programs import (
    BY_NAME, BenchProgram, ETA, INTERP, MAP, REGEX, SAT, SCM2C,
    SCM2JAVA, SUITE, suite_programs,
)
from repro.benchsuite.runner import (
    ALL_ANALYSES, BenchReport, BenchTask, DEFAULT_ANALYSES,
    FJ_ANALYSES, SCHEME_ANALYSES, build_matrix, default_programs,
    default_report_path, run_batch, run_task,
)
from repro.benchsuite.scaling import (
    scaled_expected, scaled_program, scaled_source,
)

__all__ = [
    "BY_NAME", "BenchProgram", "ETA", "INTERP", "MAP", "REGEX", "SAT",
    "SCM2C", "SCM2JAVA", "SUITE", "suite_programs",
    "ALL_ANALYSES", "BenchReport", "BenchTask", "DEFAULT_ANALYSES",
    "FJ_ANALYSES", "SCHEME_ANALYSES", "build_matrix",
    "default_programs", "default_report_path", "run_batch", "run_task",
    "scaled_expected", "scaled_program", "scaled_source",
]
