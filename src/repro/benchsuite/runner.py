"""Parallel batch benchmark runner: the whole matrix, every core.

The harnesses under ``benchmarks/`` reproduce individual tables by
running analyses strictly serially.  This module is the
high-throughput path the ROADMAP asks for: it expands a benchmark
matrix — *program × analysis × context depth* (k or m), optionally at
a scale factor — into independent :class:`BenchTask` units and fans
them across a :class:`concurrent.futures.ProcessPoolExecutor`.  Each
task compiles its own program inside the worker process (so parsing
and CPS conversion parallelize too) and runs under a per-task
wall-clock :class:`~repro.util.budget.Budget`, so one exponential cell
cannot stall the batch: it times out cooperatively and is reported as
``timeout`` while the other workers keep draining the queue.

Results stream back as tasks finish and are written as a
machine-readable ``BENCH_*.json`` report (see :class:`BenchReport`),
giving the repo a perf trajectory that later PRs can diff against.

Entry points::

    python -m repro bench --quick            # smoke matrix
    python -m repro bench --copies 4 --jobs 8
    python benchmarks/bench_parallel_matrix.py   # serial-vs-parallel

The Scheme suite programs come from :mod:`repro.benchsuite.programs`
(scaled honestly via :mod:`repro.benchsuite.scaling`); the
Featherweight Java programs from :mod:`repro.fj.examples`.
"""

from __future__ import annotations

import json
import os
import platform
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import asdict, dataclass, field
from typing import Callable, Iterable

from repro.errors import AnalysisTimeout, UsageError
# The analysis names, value modes and per-analysis dispatch are owned
# by the central registry (via the shared job core) so that ``bench``
# workers and the analysis service run literally the same code path —
# a newly registered analysis is benchable with no edits here.
from repro.service.jobs import (
    FJ_ANALYSES, SCHEME_ANALYSES, VALUE_MODES, run_fj_analysis,
    run_scheme_analysis,
)
from repro.util.budget import Budget

#: Builtin analyses (import-time snapshot; see the jobs.py caveat —
#: build_matrix and run_task consult the live registry).
ALL_ANALYSES = SCHEME_ANALYSES + FJ_ANALYSES

#: The analyses a default ``bench`` run exercises: the §6.2 matrix
#: plus the registry's new OO policies (FJ m-CFA and the hybrid
#: sensitivity ladder).
DEFAULT_ANALYSES = ("kcfa", "mcfa", "poly", "zero", "fj-kcfa",
                    "fj-poly", "fj-mcfa", "fj-hybrid")

#: Worst-case ladder program names: ``worst<depth>`` (e.g. worst8)
#: generates the Van Horn–Mairson doubling term of that depth via
#: :func:`repro.generators.worstcase.worst_case_source`.
WORST_PREFIX = "worst"


def is_worst_case_name(name: str) -> bool:
    digits = name[len(WORST_PREFIX):]
    return name.startswith(WORST_PREFIX) and digits.isdigit() \
        and int(digits) >= 1  # worst0 is not a valid ladder term


def worst_case_depth(name: str) -> int:
    return int(name[len(WORST_PREFIX):])


#: FJ dispatch-chain ladder names: ``fjchain<depth>`` (e.g.
#: fjchain200) generate the scalable OO workload of
#: :func:`repro.generators.fj_chain.fj_chain_source`.
FJ_CHAIN_PREFIX = "fjchain"


def is_fj_chain_name(name: str) -> bool:
    digits = name[len(FJ_CHAIN_PREFIX):]
    return name.startswith(FJ_CHAIN_PREFIX) and digits.isdigit() \
        and int(digits) >= 1


def fj_chain_depth(name: str) -> int:
    return int(name[len(FJ_CHAIN_PREFIX):])


#: Seeded random-FJ ladder names: ``fjrand<seed>`` (e.g. fjrand42)
#: generate the well-typed terminating programs of
#: :func:`repro.generators.fj_random.fj_random_source` — the same
#: corpus the FJ property suite samples, so ``bench`` can sweep
#: arbitrary generated workloads by name alone.
FJ_RANDOM_PREFIX = "fjrand"


def is_fj_random_name(name: str) -> bool:
    digits = name[len(FJ_RANDOM_PREFIX):]
    return name.startswith(FJ_RANDOM_PREFIX) and digits.isdigit()


def fj_random_seed(name: str) -> int:
    return int(name[len(FJ_RANDOM_PREFIX):])


#: Engine-path modes of the bench ``--specialize`` axis.
SPECIALIZE_MODES = ("on", "off")

#: Modes of the bench ``--codegen`` axis (generated step source vs
#: the compiled specialized loops; byte-identical results).
CODEGEN_MODES = ("on", "off")


@dataclass(frozen=True, slots=True)
class BenchTask:
    """One cell of the benchmark matrix.

    ``program`` is a Scheme suite name (``eta``, ``map``, ...), a
    worst-case ladder name (``worst8``) or an FJ example name
    (``pairs``, ``dispatch``, ...); ``copies`` scales Scheme suite
    programs via :func:`repro.benchsuite.scaling.scaled_source` and is
    ignored for generated and FJ programs.  ``values`` selects the
    value-domain representation (see :data:`VALUE_MODES`);
    ``specialize`` the engine path (``on`` runs the per-policy
    specialized step loop, ``off`` the generic one — byte-identical
    results, so rows differ only in timing); ``codegen`` the
    generated-source tier on top of it (``off`` pins covered
    policies to the compiled loops — byte-identical again);
    ``obj_depth`` the hybrid ladder's receiver-chain depth
    (fj-hybrid only).
    """

    program: str
    analysis: str
    parameter: int
    copies: int = 1
    timeout: float = 30.0
    values: str = "interned"
    specialize: str = "on"
    codegen: str = "on"
    obj_depth: int | None = None
    #: Run the analysis this many times and report the fastest
    #: ``elapsed`` (min-of-N, the standard noise filter for committed
    #: numbers).  The result columns are identical across repeats —
    #: only the timing of the best run is kept.
    repeat: int = 1

    @property
    def task_id(self) -> str:
        scale = f"x{self.copies}" if self.copies > 1 else ""
        obj = f",obj={self.obj_depth}" if self.obj_depth is not None \
            else ""
        mode = f"[{self.values}]" if self.values != "interned" else ""
        path = "[generic]" if self.specialize == "off" else ""
        gen = "[nocodegen]" if self.specialize != "off" \
            and self.codegen == "off" else ""
        return (f"{self.program}{scale}:{self.analysis}"
                f"({self.parameter}{obj}){mode}{path}{gen}")


def task_source(task: BenchTask) -> str:
    """The exact program text a task analyzes — the cache-key input.

    Resolving the source is cheap (no compilation), so the batch
    driver can consult the persistent cache before dispatching the
    task to a worker.
    """
    from repro.benchsuite.programs import BY_NAME
    from repro.benchsuite.scaling import scaled_source
    from repro.fj.examples import ALL_EXAMPLES
    from repro.generators.fj_chain import fj_chain_source
    from repro.generators.fj_random import fj_random_source
    from repro.generators.worstcase import worst_case_source

    if is_worst_case_name(task.program):
        return worst_case_source(worst_case_depth(task.program))
    if is_fj_chain_name(task.program):
        return fj_chain_source(fj_chain_depth(task.program))
    if is_fj_random_name(task.program):
        return fj_random_source(fj_random_seed(task.program))
    if task.program in BY_NAME:
        bench = BY_NAME[task.program]
        if task.copies > 1:
            return scaled_source(bench, task.copies)
        return bench.source
    return ALL_EXAMPLES[task.program]


def _best_of(task: BenchTask, budget: Budget, run_once) -> dict:
    """Run a cell ``task.repeat`` times; keep the summary of the
    fastest run (its ``elapsed`` is the reported timing).

    The budget clock is restarted per run: ``task.timeout`` bounds
    each *analysis*, not the whole repeat loop — otherwise a cell
    near ``timeout / repeat`` would spuriously report ``timeout`` on
    a later repetition of a run that individually fits.
    """
    best = None
    for _ in range(max(1, task.repeat)):
        budget.start()
        result = run_once()
        if best is None or result.elapsed < best.elapsed:
            best = result
    summary = best.summary()
    summary["engine_path"] = getattr(best, "engine_path", "generic")
    return summary


def _run_scheme_task(task: BenchTask, budget: Budget) -> dict:
    from repro.benchsuite.programs import BY_NAME
    from repro.benchsuite.scaling import scaled_program
    from repro.generators.worstcase import worst_case_program

    if is_worst_case_name(task.program):
        program = worst_case_program(worst_case_depth(task.program))
    elif task.copies > 1:
        program = scaled_program(task.program, task.copies)
    else:
        program = BY_NAME[task.program].compile()
    return _best_of(task, budget, lambda: run_scheme_analysis(
        program, task.analysis, task.parameter, budget,
        plain=task.values == "plain",
        specialize=task.specialize != "off",
        codegen=task.codegen != "off",
        obj_depth=task.obj_depth))


def _run_fj_task(task: BenchTask, budget: Budget) -> dict:
    from repro.fj import parse_fj
    from repro.fj.examples import ALL_EXAMPLES
    from repro.generators.fj_chain import fj_chain_source
    from repro.generators.fj_random import fj_random_source

    if is_fj_chain_name(task.program):
        program = parse_fj(fj_chain_source(
            fj_chain_depth(task.program)))
    elif is_fj_random_name(task.program):
        program = parse_fj(fj_random_source(
            fj_random_seed(task.program)))
    else:
        program = parse_fj(ALL_EXAMPLES[task.program])
    return _best_of(task, budget, lambda: run_fj_analysis(
        program, task.analysis, task.parameter, budget,
        plain=task.values == "plain",
        specialize=task.specialize != "off",
        codegen=task.codegen != "off",
        obj_depth=task.obj_depth))


def run_task(task: BenchTask) -> dict:
    """Execute one matrix cell; always returns a row, never raises.

    This is the worker-process entry point: it compiles the program
    locally (parallelizing front-end work too) and runs the analysis
    under the task's wall-clock budget.  The row's ``status`` is
    ``ok``, ``timeout`` or ``error``.
    """
    row = {
        "task": task.task_id,
        "program": task.program,
        "analysis": task.analysis,
        "parameter": task.parameter,
        "copies": task.copies,
        "timeout": task.timeout,
        "values": task.values,
        "specialize": task.specialize,
        "codegen": task.codegen,
        "repeat": task.repeat,
        "pid": os.getpid(),
    }
    if task.obj_depth is not None:
        row["obj_depth"] = task.obj_depth
    budget = Budget(max_seconds=task.timeout)
    started = time.perf_counter()
    try:
        from repro.analysis.registry import registry
        if registry().get(task.analysis).language == "fj":
            summary = _run_fj_task(task, budget)
        else:
            summary = _run_scheme_task(task, budget)
        # The task's identity keys (analysis, parameter, ...) stay
        # authoritative so BENCH_*.json rows group consistently
        # across statuses; the summary's display name would differ
        # (e.g. "mcfa" vs "m-CFA").
        row.update({key: value for key, value in summary.items()
                    if key not in row})
        row["status"] = "ok"
    except AnalysisTimeout:
        row["status"] = "timeout"
    except Exception as error:  # keep the batch alive
        row["status"] = "error"
        row["error"] = f"{type(error).__name__}: {error}"
    row["wall_seconds"] = round(time.perf_counter() - started, 6)
    return row


def build_matrix(programs: Iterable[str], analyses: Iterable[str],
                 contexts: Iterable[int], copies: int = 1,
                 timeout: float = 30.0,
                 values: Iterable[str] = ("interned",),
                 specialize: Iterable[str] = ("on",),
                 codegen: Iterable[str] = ("on",),
                 obj_depths: Iterable[int] | None = None,
                 repeat: int = 1) -> list[BenchTask]:
    """Expand program × analysis × context × value-mode (× engine
    path × obj-depth) into tasks.

    Scheme analyses pair with Scheme programs (suite names or
    ``worst<depth>`` ladder terms) and FJ analyses with FJ programs;
    mismatched combinations are skipped rather than rejected, so one
    flag set can drive a heterogeneous matrix.  The ``obj_depths``
    axis is different: it only exists on the hybrid ladder, so
    passing it alongside any analysis without the axis is a
    :class:`~repro.errors.UsageError` (a silently skipped sweep would
    report an empty or misleading ladder).
    """
    from repro.benchsuite.programs import BY_NAME
    from repro.fj.examples import ALL_EXAMPLES

    from repro.analysis.registry import registry

    contexts = sorted(set(contexts))
    # Dedup while preserving order: duplicate cells would share a
    # task_id and make the report's row order nondeterministic.
    programs = list(dict.fromkeys(programs))
    analyses = list(dict.fromkeys(analyses))
    value_modes = list(dict.fromkeys(values))
    engine_paths = list(dict.fromkeys(specialize))
    codegen_modes = list(dict.fromkeys(codegen))
    depth_axis = None if obj_depths is None \
        else sorted(set(obj_depths))
    # Consult the registry live (not the import-time tuples) so an
    # analysis registered at runtime is benchable immediately.
    table = registry()
    unknown = [name for name in analyses if name not in table]
    if unknown:
        raise UsageError(
            f"unknown analyses {unknown!r}; choose from "
            f"{', '.join(table.names())}")
    unknown_modes = [mode for mode in value_modes
                     if mode not in VALUE_MODES]
    if unknown_modes:
        raise UsageError(
            f"unknown value modes {unknown_modes!r}; choose from "
            f"{', '.join(VALUE_MODES)}")
    unknown_paths = [mode for mode in engine_paths
                     if mode not in SPECIALIZE_MODES]
    if unknown_paths:
        raise UsageError(
            f"unknown specialize modes {unknown_paths!r}; choose "
            f"from {', '.join(SPECIALIZE_MODES)}")
    unknown_gen = [mode for mode in codegen_modes
                   if mode not in CODEGEN_MODES]
    if unknown_gen:
        raise UsageError(
            f"unknown codegen modes {unknown_gen!r}; choose from "
            f"{', '.join(CODEGEN_MODES)}")
    if depth_axis is not None:
        no_axis = [name for name in analyses
                   if not table.get(name).takes_obj_depth]
        if no_axis:
            capable = [spec.name for spec in table.specs()
                       if spec.takes_obj_depth]
            raise UsageError(
                f"--obj-depth applies only to "
                f"{', '.join(capable) or 'no registered analysis'}; "
                f"{', '.join(repr(name) for name in no_axis)} "
                f"has no obj-depth axis")
    tasks = []
    for program in programs:
        if program in BY_NAME or is_worst_case_name(program):
            language = "scheme"
        elif program in ALL_EXAMPLES or is_fj_chain_name(program) \
                or is_fj_random_name(program):
            language = "fj"
        else:
            raise UsageError(f"unknown benchmark program {program!r}")
        for analysis in analyses:
            if table.get(analysis).language != language:
                continue
            for parameter in contexts:
                # Context-free analyses (0CFA, the pushdown summary
                # rep) have no context knob; emit each once.
                if analysis in ("zero", "pushdown") \
                        and parameter != min(contexts):
                    continue
                for obj_depth in (depth_axis if depth_axis is not None
                                  else (None,)):
                    for mode in value_modes:
                        for path in engine_paths:
                            for gen in codegen_modes:
                                # Codegen rides on specialization:
                                # with the engine path off there is
                                # only one cell, not two identical
                                # generic ones.
                                if path == "off" and gen != \
                                        codegen_modes[0]:
                                    continue
                                tasks.append(BenchTask(
                                    program=program,
                                    analysis=analysis,
                                    parameter=parameter,
                                    copies=copies
                                    if program in BY_NAME else 1,
                                    timeout=timeout, values=mode,
                                    specialize=path,
                                    codegen=gen
                                    if path != "off" else "off",
                                    obj_depth=obj_depth,
                                    repeat=repeat))
    return tasks


def default_programs(include_fj: bool = True) -> list[str]:
    """Every Scheme suite program, plus the FJ examples."""
    from repro.benchsuite.programs import BY_NAME
    from repro.fj.examples import ALL_EXAMPLES

    names = list(BY_NAME)
    if include_fj:
        names += list(ALL_EXAMPLES)
    return names


@dataclass
class BenchReport:
    """A finished batch: environment, matrix shape, per-task rows."""

    rows: list[dict]
    jobs: int
    serial: bool
    elapsed: float
    started_at: str
    python: str = field(default_factory=platform.python_version)
    platform: str = field(default_factory=platform.platform)
    cpu_count: int = field(default_factory=lambda: os.cpu_count() or 1)

    @property
    def ok_rows(self) -> list[dict]:
        return [row for row in self.rows if row["status"] == "ok"]

    def counts(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for row in self.rows:
            counts[row["status"]] = counts.get(row["status"], 0) + 1
        return counts

    def total_analysis_seconds(self) -> float:
        """Σ per-task wall time — what a serial run would have cost."""
        return sum(row["wall_seconds"] for row in self.rows)

    def as_dict(self) -> dict:
        return asdict(self)

    def write(self, path: str) -> str:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.as_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        return path


def default_report_path(directory: str = ".") -> str:
    stamp = time.strftime("%Y%m%d_%H%M%S")
    return os.path.join(directory, f"BENCH_{stamp}.json")


def _task_cache_key(task: BenchTask) -> str:
    """The persistent-cache key of one matrix cell.

    Keyed by the exact program text (content hash), the analysis, the
    context depth and the result-relevant options; the timeout is
    excluded on purpose (a completed result does not depend on it, and
    timed-out rows are never cached).  ``values`` *is* included so the
    plain/interned timing rows stay distinct.
    """
    from repro.cache import cache_key
    return cache_key(task_source(task), task.analysis, task.parameter,
                     {"bench": True, "copies": task.copies,
                      "values": task.values,
                      "specialize": task.specialize,
                      "codegen": task.codegen,
                      "obj_depth": task.obj_depth,
                      "repeat": task.repeat})


def run_batch(tasks: list[BenchTask], jobs: int | None = None,
              serial: bool = False,
              progress: Callable[[str], None] | None = None,
              cache=None) -> BenchReport:
    """Run a batch of tasks, streaming progress as they finish.

    With ``serial=True`` (or a single job) everything runs in-process
    — the baseline the parallel path is measured against.  Otherwise
    tasks fan out across worker processes; results are collected with
    :func:`concurrent.futures.as_completed`, so a slow cell never
    blocks reporting of the cells that beat it.

    With a :class:`~repro.cache.ResultCache`, each cell is first
    looked up by content key (:func:`_task_cache_key`); hits skip the
    fixpoint entirely and are reported with ``"cached": True`` (their
    ``wall_seconds`` is the original run's).  Fresh ``ok`` rows are
    written back.  All cache I/O happens in the parent process.
    """
    jobs = max(1, jobs or os.cpu_count() or 1)
    emit = progress or (lambda message: None)
    started_at = time.strftime("%Y-%m-%dT%H:%M:%S")
    started = time.perf_counter()
    rows: list[dict] = []
    pending: list[BenchTask] = []
    keys: dict[BenchTask, str] = {}
    total = len(tasks)
    index = 0
    if cache is not None:
        for task in tasks:
            keys[task] = _task_cache_key(task)
            row = cache.get(keys[task])
            if row is None or row.get("status") != "ok":
                pending.append(task)
                continue
            row = dict(row)
            row["cached"] = True
            index += 1
            rows.append(row)
            emit(_progress_line(index, total, row))
    else:
        pending = list(tasks)

    def finish(row: dict, task: BenchTask) -> None:
        nonlocal index
        index += 1
        rows.append(row)
        if cache is not None and row["status"] == "ok":
            payload = {key: value for key, value in row.items()
                       if key != "pid"}
            cache.put(keys[task], payload)
        emit(_progress_line(index, total, row))

    # The recorded mode reflects what was *requested* for the batch;
    # a warm cache may leave too little pending work to bother
    # spinning up the pool, but that must not relabel a parallel run
    # as serial in the report.
    serial = serial or jobs == 1 or total <= 1
    if serial or len(pending) <= 1:
        for task in pending:
            finish(run_task(task), task)
    else:
        with ProcessPoolExecutor(max_workers=jobs) as pool:
            futures = {pool.submit(run_task, task): task
                       for task in pending}
            for future in as_completed(futures):
                finish(future.result(), futures[future])
    elapsed = time.perf_counter() - started
    # Deterministic report order regardless of completion order.
    order = {task.task_id: index for index, task in enumerate(tasks)}
    rows.sort(key=lambda row: order.get(row["task"], len(order)))
    return BenchReport(rows=rows, jobs=1 if serial else jobs,
                       serial=serial, elapsed=elapsed,
                       started_at=started_at)


def _progress_line(index: int, total: int, row: dict) -> str:
    mark = {"ok": "✓", "timeout": "∞", "error": "!"}[row["status"]]
    extra = ""
    if row.get("cached"):
        extra = " cached"
    elif row["status"] == "ok":
        extra = f" {row['wall_seconds']:.2f}s steps={row.get('steps')}"
    elif row["status"] == "error":
        extra = f" {row.get('error', '')}"
    return f"[{index}/{total}] {mark} {row['task']}{extra}"
