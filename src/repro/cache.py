"""Persistent result cache: analysis answers keyed by program content.

The serving pattern the ROADMAP aims at — the same queries arriving
again and again — never needs to re-run a fixpoint: an analysis is a
pure function of (program text, analysis name, context depth,
options).  This module memoizes that function on disk.

Key scheme
----------

A cache key is the SHA-256 of a canonical JSON document::

    {"schema": CACHE_SCHEMA_VERSION,
     "source_sha256": <hash of the exact program text>,
     "analysis": "kcfa", "parameter": 1,
     "options": {...sorted, analysis-relevant options only...}}

so any change to the program text, the analysis, the context depth or
a result-relevant option produces a different key.  Wall-clock
budgets are deliberately *not* part of the key: a completed result
does not depend on how long it was allowed to take (and timed-out
runs are never cached).

Invalidation rule
-----------------

``CACHE_SCHEMA_VERSION`` must be bumped whenever the meaning or shape
of cached payloads changes — a new analysis semantics, a changed
report format, different summary fields.  Old entries then miss (they
were written under a different schema) and are simply left behind;
``prune`` removes them.  Corrupt or truncated files are treated as
misses, never as errors.

Entries live one-per-file under the cache directory (default
``~/.cache/repro`` honoring ``XDG_CACHE_HOME``, or ``--cache-dir``),
written atomically via rename so concurrent readers never observe a
partial entry.

:class:`InflightTable` is the in-memory companion for concurrent
serving: it deduplicates identical requests that are *currently being
computed*, so a burst of the same question costs one analysis — the
disk cache then serves everything that arrives after the answer
lands.
"""

from __future__ import annotations

import hashlib
import json
import os
import re
import tempfile
import threading
from dataclasses import dataclass, field
from pathlib import Path
from typing import Mapping

#: Bump when the cached payload format or analysis semantics change.
#: v2: ``analyze``-shaped keys grew the ``values`` (plain/interned
#: domain) option, and payloads may carry ``wall_seconds``.
#: v3: summaries gained ``mono_sites`` and payloads may carry a
#: client-query ``answer`` (see :mod:`repro.analysis.clients`).
CACHE_SCHEMA_VERSION = 3


def default_cache_dir() -> Path:
    """``$XDG_CACHE_HOME/repro`` (``~/.cache/repro`` by default)."""
    root = os.environ.get("XDG_CACHE_HOME")
    base = Path(root) if root else Path.home() / ".cache"
    return base / "repro"


#: What a cache entry's filename stem looks like: a SHA-256 digest.
_KEY_SHAPED = re.compile(r"[0-9a-f]{64}")


def cache_key(source: str, analysis: str, parameter: int,
              options: Mapping | None = None) -> str:
    """The content-addressed key of one analysis question."""
    document = json.dumps({
        "schema": CACHE_SCHEMA_VERSION,
        "source_sha256": hashlib.sha256(
            source.encode("utf-8")).hexdigest(),
        "analysis": analysis,
        "parameter": parameter,
        "options": dict(sorted((options or {}).items())),
    }, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(document.encode("utf-8")).hexdigest()


@dataclass
class CacheStats:
    """Hit/miss accounting for one process's cache use."""

    hits: int = 0
    misses: int = 0
    writes: int = 0
    rejected: int = 0  # corrupt or schema-mismatched entries
    pruned: int = 0    # entries removed by prune()

    def as_dict(self) -> dict:
        return {"hits": self.hits, "misses": self.misses,
                "writes": self.writes, "rejected": self.rejected,
                "pruned": self.pruned}


@dataclass
class ResultCache:
    """A directory of JSON analysis results, one file per key.

    Safe to share across threads (the analysis server's connection
    threads and pool callbacks all use one instance): entry files are
    written atomically via rename, and the stats counters are guarded
    by a lock so concurrent increments are never lost.
    """

    directory: Path
    stats: CacheStats = field(default_factory=CacheStats)

    def __post_init__(self):
        self.directory = Path(self.directory).expanduser()
        self.directory.mkdir(parents=True, exist_ok=True)
        self._stats_lock = threading.Lock()

    def path_for(self, key: str) -> Path:
        return self.directory / f"{key}.json"

    def get(self, key: str, count_miss: bool = True) -> dict | None:
        """The cached payload for *key*, or None.

        Corrupt files, foreign JSON and entries written under a
        different ``CACHE_SCHEMA_VERSION`` are all counted as misses
        (and as ``rejected``) — the cache never raises on bad data.
        ``count_miss=False`` keeps a miss out of the stats: for
        re-probes of a key already counted once (the server's leader
        re-check), so hit rates computed from the counters stay
        honest.  Hits always count.
        """
        path = self.path_for(key)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                entry = json.load(handle)
        except FileNotFoundError:
            with self._stats_lock:
                self.stats.misses += count_miss
            return None
        except (json.JSONDecodeError, OSError, UnicodeDecodeError):
            with self._stats_lock:
                self.stats.misses += count_miss
                self.stats.rejected += 1
            return None
        if not isinstance(entry, dict) \
                or entry.get("schema") != CACHE_SCHEMA_VERSION \
                or entry.get("key") != key \
                or "payload" not in entry:
            with self._stats_lock:
                self.stats.misses += count_miss
                self.stats.rejected += 1
            return None
        with self._stats_lock:
            self.stats.hits += 1
        return entry["payload"]

    def put(self, key: str, payload: dict) -> Path:
        """Store *payload* under *key* (atomic rename)."""
        path = self.path_for(key)
        entry = {"schema": CACHE_SCHEMA_VERSION, "key": key,
                 "payload": payload}
        handle = tempfile.NamedTemporaryFile(
            "w", encoding="utf-8", dir=self.directory,
            prefix=".tmp-", suffix=".json", delete=False)
        try:
            with handle:
                json.dump(entry, handle, indent=2, sort_keys=True)
                handle.write("\n")
            os.replace(handle.name, path)
        except BaseException:
            try:
                os.unlink(handle.name)
            except OSError:
                pass
            raise
        with self._stats_lock:
            self.stats.writes += 1
        return path

    def _entry_paths(self):
        """Key-shaped entry files only.

        The directory can also hold in-progress ``.tmp-*`` writes and
        foreign files; counting or pruning those would misreport the
        cache (and prune must never delete a file it does not own).
        A real entry's stem is a SHA-256 hex digest.
        """
        for path in self.directory.glob("*.json"):
            if _KEY_SHAPED.fullmatch(path.stem):
                yield path

    def prune(self) -> int:
        """Delete entries that no longer parse under the current
        schema; returns how many were removed (also accumulated in
        ``stats.pruned``)."""
        removed = 0
        for path in self._entry_paths():
            try:
                with open(path, "r", encoding="utf-8") as handle:
                    entry = json.load(handle)
                keep = isinstance(entry, dict) and \
                    entry.get("schema") == CACHE_SCHEMA_VERSION
            except (json.JSONDecodeError, OSError, UnicodeDecodeError):
                keep = False
            if not keep:
                path.unlink(missing_ok=True)
                removed += 1
        with self._stats_lock:
            self.stats.pruned += removed
        return removed

    def __len__(self) -> int:
        return sum(1 for _ in self._entry_paths())


@dataclass
class InflightStats:
    """Leader/follower accounting for one :class:`InflightTable`."""

    leaders: int = 0
    followers: int = 0

    def as_dict(self) -> dict:
        return {"leaders": self.leaders, "followers": self.followers}


class InflightTable:
    """Thread-safe registry of in-flight computations, by key.

    The read-through companion to :class:`ResultCache`: when the same
    question arrives twice before the first answer lands, the second
    caller should wait for the first run, not start another.  The
    first subscriber under a key becomes the *leader* (and should
    start the computation); later subscribers coalesce onto the same
    entry.  Whoever finishes calls :meth:`complete` to pop every
    subscriber and fan the one result out.

    The table stores opaque subscriber tokens — callbacks, queues,
    (connection, job-id) pairs — and never calls them itself, so it
    works for any completion style.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._entries: dict[object, list] = {}
        self.stats = InflightStats()

    def join(self, key, subscriber) -> bool:
        """Register *subscriber* under *key*; True iff it is the
        leader (first in, responsible for running the computation)."""
        with self._lock:
            waiters = self._entries.get(key)
            if waiters is None:
                self._entries[key] = [subscriber]
                self.stats.leaders += 1
                return True
            waiters.append(subscriber)
            self.stats.followers += 1
            return False

    def complete(self, key) -> list:
        """Pop and return every subscriber of *key* (leader first,
        then followers in arrival order); [] if the key is unknown."""
        with self._lock:
            return self._entries.pop(key, [])

    def pending(self) -> int:
        """How many keys are currently in flight."""
        with self._lock:
            return len(self._entries)


class ProgramCache:
    """Bounded LRU of *compiled* programs, keyed by content.

    The fleet's warm-worker store: each worker process keeps one of
    these so a repeat submission that misses the result cache (say,
    a different context depth over the same source) still skips
    parse/CPS-transform/boot.  The payoff compounds because the
    specializer caches structural plans *on the Program object*
    (:mod:`repro.analysis.specialize`), so returning the same object
    also returns its already-built plans — the per-worker
    ``plans_reused`` stat the sharding tests observe counts exactly
    these hits.

    Keys are ``(language, sha256(source), simplify)``: everything
    that determines the compiled artifact and nothing that does not
    (analysis name, context depth and the report/values options all
    operate on the *same* compiled program).  For Scheme with
    ``simplify`` the post-simplification program is what's cached.

    Not thread-safe — each worker process owns exactly one, touched
    only from its job loop.
    """

    def __init__(self, capacity: int = 32):
        if capacity < 1:
            raise ValueError(f"capacity must be positive, got "
                             f"{capacity}")
        self.capacity = capacity
        self._entries: dict[tuple, object] = {}  # insertion = LRU order
        self._pins: dict[tuple, int] = {}  # key → live session count
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    @staticmethod
    def key(language: str, source: str, simplify: bool) -> tuple:
        return (language,
                hashlib.sha256(source.encode("utf-8")).hexdigest(),
                bool(simplify))

    def get(self, key: tuple):
        """The cached program, refreshed to most-recently-used, or
        None."""
        program = self._entries.pop(key, None)
        if program is None:
            self.misses += 1
            return None
        self._entries[key] = program  # re-insert at the MRU end
        self.hits += 1
        return program

    def put(self, key: tuple, program) -> None:
        self._entries.pop(key, None)
        self._entries[key] = program
        while len(self._entries) > self.capacity:
            victim = next((key for key in self._entries
                           if not self._pins.get(key)), None)
            if victim is None:
                break  # every entry is pinned by a live session
            del self._entries[victim]
            self.evictions += 1

    def pin(self, key: tuple) -> None:
        """Shield *key* from LRU eviction while a session references
        it.  Pins nest: each :meth:`pin` needs one :meth:`unpin`."""
        self._pins[key] = self._pins.get(key, 0) + 1

    def unpin(self, key: tuple) -> None:
        count = self._pins.get(key, 0) - 1
        if count > 0:
            self._pins[key] = count
        else:
            self._pins.pop(key, None)

    def pinned(self) -> int:
        """How many distinct keys are currently pinned."""
        return len(self._pins)

    def __len__(self) -> int:
        return len(self._entries)

    def as_dict(self) -> dict:
        return {"size": len(self._entries), "capacity": self.capacity,
                "pinned": len(self._pins),
                "hits": self.hits, "misses": self.misses,
                "evictions": self.evictions}


#: Bump whenever the shape of generated step-loop source changes —
#: emitter templates, the runtime-helper contract, or the meaning of
#: a kind string.  Stale modules then fail validation and regenerate.
CODEGEN_SCHEMA_VERSION = 5


def default_codegen_dir() -> Path:
    """Where generated step-loop modules live: next to the result
    cache (``~/.cache/repro/codegen``)."""
    return default_cache_dir() / "codegen"


class CodegenCache:
    """Disk + in-memory cache of generated step-loop modules.

    The codegen tier (:mod:`repro.analysis.codegen`) emits one Python
    module per ``(schema, kind, program)`` triple; emission walks the
    whole program, so repeat analyses — and especially the fleet's
    session/edit traffic — should pay it once.  Entries live
    one-per-file as ``<key>.py`` beside the result cache, written
    atomically, and an exec'd-namespace LRU keeps the hottest modules
    from even re-``exec``-ing.

    Honest invalidation: every generated module embeds its ``SCHEMA``
    and ``KEY``; :meth:`module_for` re-validates both after ``exec``,
    so a stale-schema file, a hand-edited module or a corrupt entry is
    counted ``rejected`` and regenerated in place — never served,
    never raised.  ``directory=None`` runs memory-only (tests, or
    ``--no-cache`` runs still get intra-process reuse).

    Not thread-safe — like :class:`ProgramCache`, each worker process
    owns exactly one.
    """

    def __init__(self, directory: Path | str | None = None,
                 capacity: int = 64, disk_capacity: int = 256):
        if capacity < 1:
            raise ValueError(f"capacity must be positive, got "
                             f"{capacity}")
        self.directory = None
        if directory is not None:
            self.directory = Path(directory).expanduser()
            self.directory.mkdir(parents=True, exist_ok=True)
        self.capacity = capacity
        self.disk_capacity = disk_capacity
        self._modules: dict[str, dict] = {}  # insertion = LRU order
        self.stats = CacheStats()

    def path_for(self, key: str) -> Path | None:
        if self.directory is None:
            return None
        return self.directory / f"{key}.py"

    def _validate(self, key: str, source: str) -> dict | None:
        """Exec *source* and return its namespace iff it is a
        well-formed generated module for *key* under the current
        schema; None (counted ``rejected``) otherwise."""
        namespace: dict = {}
        try:
            code = compile(source, f"<codegen {key[:12]}>", "exec")
            exec(code, namespace)
        except Exception:
            self.stats.rejected += 1
            return None
        if namespace.get("SCHEMA") != CODEGEN_SCHEMA_VERSION \
                or namespace.get("KEY") != key \
                or not callable(namespace.get("build")):
            self.stats.rejected += 1
            return None
        return namespace

    def _remember(self, key: str, namespace: dict) -> None:
        self._modules.pop(key, None)
        self._modules[key] = namespace
        while len(self._modules) > self.capacity:
            victim = next(iter(self._modules))
            del self._modules[victim]

    def module_for(self, key: str, generate) -> dict:
        """The exec'd namespace of the generated module for *key*,
        loading from disk when possible and calling ``generate()``
        (→ source text) only on a true miss.  Freshly generated
        source is validated too — a bad emitter is a bug, and raising
        here beats silently analyzing with the wrong loops."""
        namespace = self._modules.pop(key, None)
        if namespace is not None:
            self._modules[key] = namespace  # re-insert at MRU end
            self.stats.hits += 1
            return namespace
        path = self.path_for(key)
        if path is not None:
            try:
                source = path.read_text(encoding="utf-8")
            except (OSError, UnicodeDecodeError):
                source = None
            if source is not None:
                namespace = self._validate(key, source)
                if namespace is not None:
                    self.stats.hits += 1
                    self._remember(key, namespace)
                    return namespace
        self.stats.misses += 1
        source = generate()
        namespace = self._validate(key, source)
        if namespace is None:
            raise RuntimeError(
                f"freshly generated codegen module failed validation "
                f"(key {key[:12]}…)")
        if path is not None:
            handle = tempfile.NamedTemporaryFile(
                "w", encoding="utf-8", dir=self.directory,
                prefix=".tmp-", suffix=".py", delete=False)
            try:
                with handle:
                    handle.write(source)
                os.replace(handle.name, path)
                self.stats.writes += 1
            except BaseException:
                try:
                    os.unlink(handle.name)
                except OSError:
                    pass
                raise
        self._remember(key, namespace)
        return namespace

    def _entry_paths(self):
        if self.directory is None:
            return
        for path in self.directory.glob("*.py"):
            if _KEY_SHAPED.fullmatch(path.stem):
                yield path

    def prune(self) -> int:
        """Delete stale-schema and corrupt modules, then LRU-cap the
        directory by mtime; returns how many files were removed."""
        removed = 0
        survivors = []
        for path in self._entry_paths():
            try:
                source = path.read_text(encoding="utf-8")
                keep = f"SCHEMA = {CODEGEN_SCHEMA_VERSION}\n" in source
            except (OSError, UnicodeDecodeError):
                keep = False
            if keep:
                survivors.append(path)
            else:
                path.unlink(missing_ok=True)
                removed += 1
        if len(survivors) > self.disk_capacity:
            survivors.sort(key=lambda path: path.stat().st_mtime)
            for path in survivors[:len(survivors) - self.disk_capacity]:
                path.unlink(missing_ok=True)
                removed += 1
        self.stats.pruned += removed
        return removed

    def __len__(self) -> int:
        return sum(1 for _ in self._entry_paths())

    def as_dict(self) -> dict:
        counters = self.stats.as_dict()
        counters["memory"] = len(self._modules)
        return counters


def open_cache(cache_dir: str | None, enabled: bool) -> \
        "ResultCache | None":
    """CLI helper: a cache when *enabled*, at *cache_dir* or the
    default location."""
    if not enabled:
        return None
    return ResultCache(Path(cache_dir) if cache_dir
                       else default_cache_dir())
