"""Incremental re-analysis and demand-driven point queries.

The delta-propagating engine (:func:`~repro.analysis.engine.
run_single_store`) already re-enqueues exactly the readers of every
grown address; this module turns that machinery into an *editing*
workflow.  An :class:`AnalysisSession` holds one program's warm
analysis state — the monotone store, the reachable configurations and
the read/write/discovery maps a tracked run leaves behind
(:class:`~repro.analysis.engine.FixpointState`) — and replays an edit
in three moves:

1. **Align** the old labelled syntax tree against a fresh compile of
   the edited source (:func:`align_program`).  Structurally identical
   subtrees keep their *old* node objects (and therefore their old
   labels, configurations and addresses).  A node whose shape matches
   but whose children changed is *patched in place* — its object
   identity and label survive, only the changed child is swapped —
   provided the swap preserves the subtree's free-variable set (the
   id-keyed free-variable caches stay valid by construction).  Only
   genuinely mismatched structure is rebuilt, with fresh labels drawn
   above everything the session has ever used, so old and new facts
   can never collide.  Patching is what keeps a one-literal edit
   O(1)-dirty: the ancestors of the edit keep their identity, so
   their configurations — and everything dataflow-independent of the
   edited value — are untouched.  The session owns a private clone of
   its tree, so the mutation never reaches the worker's shared
   :class:`~repro.cache.ProgramCache`.

2. **Close over the damage** (:func:`affected_closure`).  A
   configuration is *stale* when its call node was detached or
   patched by the edit, or any label/variable in its context was
   retired.  The closure then grows
   along the recorded dependency maps: writes of affected
   configurations become *suspect* addresses, readers of suspect
   addresses become affected, and a configuration all of whose
   discoverers are affected is affected too (it may only have been
   reachable through deleted code).  Everything else is *kept*.

3. **Resume the fixpoint** from the warm store: suspect and stale
   addresses are cleared, the worklist is seeded with the new boot
   configuration, the kept writers of every cleared address (their
   reads are intact, so they re-derive their contributions verbatim)
   and the kept discoverers of affected configurations (so
   still-reachable work is re-produced).  Monotone chaotic iteration
   from this sound intermediate point converges to the same least
   fixpoint as a cold run.

Because the resumed store may transiently over-approximate (a kept
configuration can turn out unreachable in the new program), the
session *renders* its public result with one breadth-first pass from
the boot configuration over the final store.  Every fact the
:class:`~repro.analysis.kernel.Recorder` collects is monotone in the
store, so the pass reproduces exactly what a from-scratch run reports
— and it rebuilds the dependency maps at the same time, leaving the
session in precisely the state a cold tracked run would have left.

A diff that is too invasive (little structural sharing — new
top-level binders, a destabilised simplify pass) falls back to the
always-on shadow path: a from-scratch tracked run of the freshly
compiled program.  Fallbacks are reported, never silent.

Point queries (``value-of``, ``call-sites-of``, ``escaping``) answer
from the rendered store and configuration set directly — a demanded
slice of the dependency graph, no report materialised.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.analysis.engine import (
    EngineOptions, EngineRun, FixpointState, run_single_store,
)
from repro.analysis.domains import AbsStore
from repro.analysis.interning import PlainTable
from repro.analysis.kernel import (
    FConfig, KConfig, Kernel, Recorder, result_from_run,
)
from repro.analysis.policies import (
    call_site_tick, mcfa_allocator, poly_kcfa_allocator,
)
from repro.analysis.clients import (
    call_sites_of, escaping_point, parse_label, run_result_query,
    validate_query, value_of,
)
from repro.analysis.results import AnalysisResult
from repro.cps.program import Program, label_maximum
from repro.cps.syntax import (
    AppCall, FixCall, HaltCall, IfCall, Lam, Lit, PrimCall, Ref,
    free_vars_of_call, free_vars_of_exp,
)
from repro.errors import UsageError
from repro.util.budget import Budget

__all__ = [
    "SESSION_ANALYSES", "AnalysisSession", "ProgramDiff",
    "affected_closure", "align_program", "clone_program",
]

#: Analyses a session can hold warm state for: the single-store CPS
#: policies whose environment representations carry no analysis state
#: outside the store.  (``pushdown``'s summary tables are reset by
#: ``boot`` and would be lost on resume; the naive/GC engines have no
#: single store to resume.)
SESSION_ANALYSES = ("kcfa", "mcfa", "poly", "zero")

#: Below this fraction of structurally shared labelled nodes the diff
#: is judged too invasive and the edit takes the from-scratch path.
KEPT_RATIO_FLOOR = 0.5

_DISPLAY = {"kcfa": "k-CFA", "mcfa": "m-CFA", "poly": "poly-k-CFA",
            "zero": "0CFA"}


def build_session_machine(analysis: str, parameter: int,
                          program: Program) -> Kernel:
    """The generic (unspecialized) kernel for a session analysis.

    Sessions always run the generic step loop: specialized machines
    are trajectory-identical anyway, and the query layer needs the
    kernel's ``evaluate``.
    """
    from repro.analysis.kernel import FlatEnv, SharedEnv
    if analysis == "kcfa":
        return Kernel(program, SharedEnv(call_site_tick(parameter)))
    if analysis == "mcfa":
        return Kernel(program, FlatEnv(mcfa_allocator(parameter)))
    if analysis == "poly":
        return Kernel(program, FlatEnv(poly_kcfa_allocator(parameter)))
    if analysis == "zero":
        return Kernel(program, FlatEnv(mcfa_allocator(0)))
    raise UsageError(
        f"analysis {analysis!r} does not support sessions; choose "
        f"from {', '.join(SESSION_ANALYSES)}")


# ---------------------------------------------------------------------------
# Tree alignment: old program × new compile → shared-where-possible tree
# ---------------------------------------------------------------------------

@dataclass(slots=True)
class ProgramDiff:
    """What :func:`align_program` learned about an edit."""

    program: Program          # the aligned new program
    kept_labels: frozenset    # old labels that survived the edit
    dirty_labels: frozenset   # kept calls patched in place (semantics
    #                           below them changed; configs must rerun)
    retired_labels: frozenset  # old labels gone from the new program
    retired_names: frozenset  # old binder names gone from the program
    fresh_nodes: int          # labelled nodes rebuilt with new labels
    kept_ratio: float         # |kept| / labelled nodes of the result


def clone_program(program: Program) -> Program:
    """A label-preserving deep copy of *program*.

    Sessions patch their tree in place on every edit, so they must
    own it outright — the worker's :class:`~repro.cache.ProgramCache`
    hands out one shared instance per source.  Atoms (``Ref``/``Lit``)
    are immutable and safely shared; every labelled node is copied.
    """
    def cexp(exp):
        if isinstance(exp, Lam):
            return Lam(exp.kind, exp.params, ccall(exp.body), exp.label)
        return exp

    def ccall(call):
        if isinstance(call, AppCall):
            return AppCall(cexp(call.fn),
                           tuple(cexp(a) for a in call.args), call.label)
        if isinstance(call, IfCall):
            return IfCall(cexp(call.test), ccall(call.then),
                          ccall(call.orelse), call.label)
        if isinstance(call, PrimCall):
            return PrimCall(call.op, tuple(cexp(a) for a in call.args),
                            cexp(call.cont), call.label)
        if isinstance(call, FixCall):
            return FixCall(tuple((name, cexp(lam))
                                 for name, lam in call.bindings),
                           ccall(call.body), call.label)
        return HaltCall(cexp(call.arg), call.label)

    return Program(ccall(program.root))


def align_program(old: Program, new_root, fresh: Callable[[], int]
                  ) -> ProgramDiff:
    """Align *old* against a fresh compile's *new_root*.

    Mutates *old*'s tree into the aligned program.  Structurally
    identical subtrees are untouched; a node whose shape survives but
    whose children changed is *patched in place* (same object, same
    label, new children) when the change preserves the node's
    free-variable set — otherwise the node is rebuilt with a label
    drawn from *fresh* and the change bubbles up.  Patched calls are
    reported as *dirty*: their configurations are still configurations
    of the new program, but they must be re-stepped because the atoms
    they evaluate changed underneath them.
    """
    dirty: set = set()
    root, _replaced = _align_call(old.root, new_root, fresh, dirty)
    aligned = Program(root)
    old_labels = frozenset(old.calls_by_label) \
        | frozenset(old.lams_by_label)
    new_labels = frozenset(aligned.calls_by_label) \
        | frozenset(aligned.lams_by_label)
    kept = old_labels & new_labels
    retired_names = frozenset(old.variables) \
        - frozenset(aligned.variables)
    return ProgramDiff(
        program=aligned, kept_labels=kept,
        dirty_labels=frozenset(dirty),
        retired_labels=frozenset(old_labels - new_labels),
        retired_names=retired_names,
        fresh_nodes=len(new_labels - kept),
        kept_ratio=len(kept) / max(1, len(new_labels)))


def _patchable(pairs) -> bool:
    """May the parent swap these children in place?

    *pairs* holds ``(old_child, aligned_child, replaced)`` triples.
    Patching keeps the parent's object identity, so every cached
    free-variable set of every enclosing lambda (cached per node id)
    must stay correct: allowed exactly when each replaced child has
    the same free variables as the one it displaces.
    """
    for old_child, new_child, replaced in pairs:
        if not replaced:
            continue
        fv = free_vars_of_call if not isinstance(
            old_child, (Ref, Lit, Lam)) else free_vars_of_exp
        if fv(old_child) != fv(new_child):
            return False
    return True


def _patch(node, dirty, **fields):
    """Swap *fields* into frozen *node* in place; mark its label dirty."""
    for name, value in fields.items():
        object.__setattr__(node, name, value)
    dirty.add(node.label)
    return node, False


def _align_exp(old, new, fresh, dirty):
    """Align one atomic/lambda expression; ``(node, replaced)``.

    ``replaced`` is True when the returned node is a *new object* —
    the parent must change a field (patch or rebuild).  False covers
    both untouched and patched-in-place subtrees.
    """
    if isinstance(new, Ref):
        if isinstance(old, Ref) and old.name == new.name:
            return old, False
        return new, True  # Refs carry no label: the new node is fine
    if isinstance(new, Lit):
        # Mirror AConst's datum-type sensitivity: True and 1 compare
        # equal in Python but abstract to different constants.
        if isinstance(old, Lit) and type(old.datum) is type(new.datum) \
                and old.datum == new.datum:
            return old, False
        return new, True
    if isinstance(old, Lam) and old.kind is new.kind \
            and old.params == new.params:
        body, replaced = _align_call(old.body, new.body, fresh, dirty)
        if not replaced:
            return old, False
        if free_vars_of_call(old.body) == free_vars_of_call(body):
            # Swap the body in place: the lambda keeps its identity,
            # so closures already in the store keep meaning it — and
            # its cached free-variable set stays correct.  No dirty
            # label: configurations live at calls, and the detached
            # old body's are already stale by identity.
            object.__setattr__(old, "body", body)
            return old, False
        return Lam(new.kind, new.params, body, fresh()), True
    return _fresh_exp(new, fresh), True


def _align_call(old, new, fresh, dirty):
    """Align one call node; ``(node, replaced)``."""
    if type(old) is not type(new):
        return _fresh_call(new, fresh), True
    if isinstance(new, AppCall):
        if len(old.args) != len(new.args):
            return _fresh_call(new, fresh), True
        fn, rf = _align_exp(old.fn, new.fn, fresh, dirty)
        args = [_align_exp(o, n, fresh, dirty)
                for o, n in zip(old.args, new.args)]
        if not rf and not any(r for _, r in args):
            return old, False
        pairs = [(old.fn, fn, rf)] + [
            (o, e, r) for o, (e, r) in zip(old.args, args)]
        if _patchable(pairs):
            return _patch(old, dirty, fn=fn,
                          args=tuple(e for e, _ in args))
        return AppCall(fn, tuple(e for e, _ in args), fresh()), True
    if isinstance(new, IfCall):
        test, r0 = _align_exp(old.test, new.test, fresh, dirty)
        then, r1 = _align_call(old.then, new.then, fresh, dirty)
        orelse, r2 = _align_call(old.orelse, new.orelse, fresh, dirty)
        if not (r0 or r1 or r2):
            return old, False
        if _patchable([(old.test, test, r0), (old.then, then, r1),
                       (old.orelse, orelse, r2)]):
            return _patch(old, dirty, test=test, then=then,
                          orelse=orelse)
        return IfCall(test, then, orelse, fresh()), True
    if isinstance(new, PrimCall):
        if old.op != new.op or len(old.args) != len(new.args):
            return _fresh_call(new, fresh), True
        args = [_align_exp(o, n, fresh, dirty)
                for o, n in zip(old.args, new.args)]
        cont, rc = _align_exp(old.cont, new.cont, fresh, dirty)
        if not rc and not any(r for _, r in args):
            return old, False
        pairs = [(o, e, r) for o, (e, r) in zip(old.args, args)] \
            + [(old.cont, cont, rc)]
        if _patchable(pairs):
            return _patch(old, dirty, args=tuple(e for e, _ in args),
                          cont=cont)
        return PrimCall(new.op, tuple(e for e, _ in args), cont,
                        fresh()), True
    if isinstance(new, FixCall):
        if tuple(name for name, _ in old.bindings) \
                != tuple(name for name, _ in new.bindings):
            return _fresh_call(new, fresh), True
        lams = [_align_exp(o, n, fresh, dirty)
                for (_, o), (_, n) in zip(old.bindings, new.bindings)]
        body, rb = _align_call(old.body, new.body, fresh, dirty)
        if not rb and not any(r for _, r in lams):
            return old, False
        pairs = [(o, e, r) for (_, o), (e, r)
                 in zip(old.bindings, lams)] \
            + [(old.body, body, rb)]
        if _patchable(pairs):
            bindings = tuple((name, lam) for (name, _), (lam, _)
                             in zip(old.bindings, lams))
            return _patch(old, dirty, bindings=bindings, body=body)
        bindings = tuple((name, lam) for (name, _), (lam, _)
                         in zip(new.bindings, lams))
        return FixCall(bindings, body, fresh()), True
    # HaltCall
    arg, replaced = _align_exp(old.arg, new.arg, fresh, dirty)
    if not replaced:
        return old, False
    if _patchable([(old.arg, arg, replaced)]):
        return _patch(old, dirty, arg=arg)
    return HaltCall(arg, fresh()), True


def _fresh_exp(exp, fresh):
    """Deep-relabel one expression of the new tree (no sharing)."""
    if isinstance(exp, Lam):
        return Lam(exp.kind, exp.params, _fresh_call(exp.body, fresh),
                   fresh())
    return exp


def _fresh_call(call, fresh):
    """Deep-relabel one call of the new tree (no sharing)."""
    if isinstance(call, AppCall):
        return AppCall(_fresh_exp(call.fn, fresh),
                       tuple(_fresh_exp(a, fresh) for a in call.args),
                       fresh())
    if isinstance(call, IfCall):
        return IfCall(_fresh_exp(call.test, fresh),
                      _fresh_call(call.then, fresh),
                      _fresh_call(call.orelse, fresh), fresh())
    if isinstance(call, PrimCall):
        return PrimCall(call.op,
                        tuple(_fresh_exp(a, fresh) for a in call.args),
                        _fresh_exp(call.cont, fresh), fresh())
    if isinstance(call, FixCall):
        return FixCall(tuple((name, _fresh_exp(lam, fresh))
                             for name, lam in call.bindings),
                       _fresh_call(call.body, fresh), fresh())
    return HaltCall(_fresh_exp(call.arg, fresh), fresh())


# ---------------------------------------------------------------------------
# The affected closure: stale configurations → dirtied addresses
# ---------------------------------------------------------------------------

def _mentions_retired(items, retired_labels) -> bool:
    return any(label in retired_labels for label in items)


def _config_stale(config, aligned_calls, dirty_labels, retired_labels,
                  retired_names) -> bool:
    """Does *config* refer to anything the edit retired or patched?

    The call node is checked by *identity* against the aligned
    program — a kept configuration's call must be a node of the new
    tree, not merely share a label with one.  Configurations at dirty
    (patched-in-place) calls are stale too: the node survived but the
    atoms it evaluates changed, so their recorded steps are void.
    """
    call = config.call
    if aligned_calls.get(call.label) is not call \
            or call.label in dirty_labels:
        return True
    if isinstance(config, KConfig):
        for name, time in config.benv.items():
            if name in retired_names \
                    or _mentions_retired(time, retired_labels):
                return True
        return _mentions_retired(config.time, retired_labels)
    return _mentions_retired(config.env, retired_labels)


def _addr_stale(addr, retired_labels, retired_names) -> bool:
    name, context = addr
    if "@" in name:  # synthetic pair-field address: car@<label>
        try:
            if int(name.rsplit("@", 1)[1]) in retired_labels:
                return True
        except ValueError:
            pass
    elif name in retired_names:
        return True
    return isinstance(context, tuple) \
        and _mentions_retired(context, retired_labels)


@dataclass(slots=True)
class AffectedClosure:
    """The damage report :func:`affected_closure` hands the resume."""

    affected: set = field(default_factory=set)   # configs to retire
    suspect: set = field(default_factory=set)    # addrs they wrote


def affected_closure(state: FixpointState, diff: ProgramDiff,
                     boot_config) -> AffectedClosure:
    """Close the stale set over the recorded dependency maps.

    Three rules to fixpoint, seeded by the configurations the edit
    made stale outright:

    * every address an affected configuration wrote is suspect;
    * every reader of a suspect address is affected;
    * a configuration all of whose discoverers are affected is
      affected (the new boot configuration is exempt — it needs no
      discoverer).
    """
    aligned_calls = diff.program.calls_by_label
    dirty_labels = diff.dirty_labels
    retired_labels = diff.retired_labels
    retired_names = diff.retired_names
    closure = AffectedClosure()
    affected = closure.affected
    suspect = closure.suspect
    queue = []
    for config in state.seen:
        if _config_stale(config, aligned_calls, dirty_labels,
                         retired_labels, retired_names):
            affected.add(config)
            queue.append(config)
    written_by: dict = {}
    for addr, writers in state.writers.items():
        for config in writers:
            written_by.setdefault(config, []).append(addr)
    forward: dict = {}
    for succ, preds in state.discovered.items():
        for pred in preds:
            forward.setdefault(pred, []).append(succ)
    readers = state.readers
    discovered = state.discovered
    while queue:
        config = queue.pop()
        for addr in written_by.get(config, ()):
            if addr in suspect:
                continue
            suspect.add(addr)
            for reader in readers.get(addr, ()):
                if reader not in affected:
                    affected.add(reader)
                    queue.append(reader)
        for succ in forward.get(config, ()):
            if succ in affected or succ == boot_config:
                continue
            if all(pred in affected for pred in discovered[succ]):
                affected.add(succ)
                queue.append(succ)
    return closure


# ---------------------------------------------------------------------------
# The session
# ---------------------------------------------------------------------------

@dataclass(slots=True)
class EditOutcome:
    """One edit's result plus how it was obtained."""

    result: AnalysisResult
    mode: str            # "resumed" | "scratch"
    reason: str          # why scratch, or "" when resumed
    kept_ratio: float
    affected: int = 0    # configurations retired by the closure
    cleared: int = 0     # addresses cleared from the warm store
    seeds: int = 0       # configurations re-enqueued


class AnalysisSession:
    """One program's warm, editable, queryable analysis state."""

    __slots__ = ("analysis", "parameter", "plain", "program",
                 "machine", "store", "state", "boot_config", "result",
                 "edits", "resumed", "scratch", "_next_label")

    def __init__(self, program: Program, analysis: str, parameter: int,
                 plain: bool = False, budget: Budget | None = None):
        if analysis not in SESSION_ANALYSES:
            raise UsageError(
                f"analysis {analysis!r} does not support sessions; "
                f"choose from {', '.join(SESSION_ANALYSES)}")
        self.analysis = analysis
        self.parameter = parameter
        self.plain = plain
        self.edits = 0
        self.resumed = 0
        self.scratch = 0
        self._next_label = label_maximum(program.root) + 1
        self._run_scratch(program, budget)

    # -- fixpoint plumbing -------------------------------------------------

    def _fresh_label(self) -> int:
        label = self._next_label
        self._next_label += 1
        return label

    def _package(self, run: EngineRun) -> AnalysisResult:
        result = result_from_run(run, self.program,
                                 _DISPLAY[self.analysis],
                                 self.parameter)
        result.engine_path = "generic"
        return result

    def _adopt(self, program: Program, machine: Kernel,
               run: EngineRun) -> None:
        self.program = program
        self.machine = machine
        self.store = run.store
        self.state = run.fixpoint
        self.boot_config = machine.rep.initial_config(program)
        self.result = self._package(run)
        self._next_label = max(self._next_label,
                               label_maximum(program.root) + 1)

    def _run_scratch(self, program: Program,
                     budget: Budget | None) -> None:
        # The session patches its tree in place on later edits, so it
        # must own a private copy — the caller's program may be the
        # worker-wide cached instance.
        program = clone_program(program)
        machine = build_session_machine(self.analysis, self.parameter,
                                        program)
        run = run_single_store(
            machine, Recorder(),
            EngineOptions(budget=budget, track=True,
                          table_factory=PlainTable if self.plain
                          else None))
        self._adopt(program, machine, run)

    # -- editing -----------------------------------------------------------

    def edit(self, new_program: Program,
             budget: Budget | None = None) -> EditOutcome:
        """Re-analyze after an edit; warm resume when the diff allows.

        *new_program* is a fresh compile of the edited source; its
        labels are discarded in the warm path (the aligned tree keeps
        old labels for shared nodes and draws fresh ones for the
        rest) and kept verbatim in the scratch path.
        """
        self.edits += 1
        try:
            diff = align_program(self.program, new_program.root,
                                 self._fresh_label)
        except Exception as error:  # alignment must never kill a session
            return self._fall_back(new_program, budget,
                                   f"alignment failed: {error}", 0.0)
        if diff.kept_ratio < KEPT_RATIO_FLOOR:
            return self._fall_back(
                new_program, budget,
                f"only {diff.kept_ratio:.0%} of the tree survived "
                f"the edit", diff.kept_ratio)
        try:
            outcome = self._resume(diff, budget)
        except Exception as error:
            return self._fall_back(new_program, budget,
                                   f"resume failed: {error}",
                                   diff.kept_ratio)
        self.resumed += 1
        return outcome

    def _fall_back(self, new_program: Program, budget: Budget | None,
                   reason: str, kept_ratio: float) -> EditOutcome:
        self.scratch += 1
        self._run_scratch(new_program, budget)
        return EditOutcome(result=self.result, mode="scratch",
                           reason=reason, kept_ratio=kept_ratio)

    def _resume(self, diff: ProgramDiff,
                budget: Budget | None) -> EditOutcome:
        program = diff.program
        machine = build_session_machine(self.analysis, self.parameter,
                                        program)
        boot = machine.rep.initial_config(program)
        state = self.state
        closure = affected_closure(state, diff, boot)
        affected = closure.affected
        kept = state.seen - affected
        cleared = set(closure.suspect)
        for addr in self.store.addresses():
            if _addr_stale(addr, diff.retired_labels,
                           diff.retired_names):
                cleared.add(addr)
        # Seeds: the new boot, kept writers of every cleared address
        # (they re-derive their intact contributions), kept
        # discoverers of affected configurations (they re-produce the
        # still-reachable ones) — and, belt and braces, kept readers
        # of cleared addresses.
        seeds = [boot]
        seeded = {boot}
        old_writers = state.writers
        old_readers = state.readers
        for addr in cleared:
            for config in old_writers.get(addr, ()):
                if config not in affected and config not in seeded:
                    seeded.add(config)
                    seeds.append(config)
            for config in old_readers.get(addr, ()):
                if config not in affected and config not in seeded:
                    seeded.add(config)
                    seeds.append(config)
        old_discovered = state.discovered
        for config in affected:
            for pred in old_discovered.get(config, ()):
                if pred not in affected and pred not in seeded:
                    seeded.add(pred)
                    seeds.append(pred)
        resumed_state = FixpointState(
            seen=set(kept),
            readers={addr: live for addr, readers
                     in old_readers.items()
                     if (live := readers & kept)},
            writers={addr: live for addr, writers
                     in old_writers.items()
                     if (live := writers & kept)},
            discovered={succ: live for succ, preds
                        in old_discovered.items()
                        if succ in kept and (live := preds & kept)})
        self.store.clear_addresses(cleared)
        run = run_single_store(
            machine, Recorder(), EngineOptions(budget=budget),
            resume_store=self.store, resume_state=resumed_state,
            seeds=seeds)
        rendered = self._render(machine, program, run)
        self._adopt(program, machine, rendered)
        return EditOutcome(result=self.result, mode="resumed",
                           reason="", kept_ratio=diff.kept_ratio,
                           affected=len(affected),
                           cleared=len(cleared), seeds=len(seeds))

    def _render(self, machine: Kernel, program: Program,
                run: EngineRun) -> EngineRun:
        """One breadth-first pass from boot at the final store.

        The resumed store can over-approximate (a kept configuration
        may be unreachable in the new program), so the public result
        is re-derived: every Recorder fact is monotone in the store,
        so stepping each boot-reachable configuration once against
        the final store reproduces exactly the facts, configurations
        and store a from-scratch run reports — and rebuilds the
        dependency maps, leaving the session in cold-run-equivalent
        state.  The pass is O(reachable configurations); its steps
        are *not* added to the fixpoint's step counter.
        """
        source = run.store
        recorder = Recorder()
        rendered = AbsStore(source.table)
        state = FixpointState()
        readers_map = state.readers
        writers_map = state.writers
        discovered = state.discovered
        boot = machine.boot(rendered)
        seen = state.seen
        seen.add(boot)
        queue = [boot]
        index = 0
        while index < len(queue):
            config = queue[index]
            index += 1
            reads: set = set()
            succs = machine.step(config, source, reads, recorder)
            for addr in reads:
                readers_map.setdefault(addr, set()).add(config)
            for succ, joins in succs:
                for addr, mask in joins:
                    if mask:
                        writers_map.setdefault(addr, set()).add(config)
                        rendered.join_mask(addr, mask)
                if succ not in seen:
                    seen.add(succ)
                    queue.append(succ)
                discovered.setdefault(succ, set()).add(config)
        return EngineRun(
            store=rendered, configs=frozenset(seen), steps=run.steps,
            elapsed=run.elapsed, requeues=run.requeues,
            delta_addresses=run.delta_addresses, recorder=recorder,
            fixpoint=state)

    # -- point queries -----------------------------------------------------

    def query(self, kind: str, target: str | None = None) -> dict:
        """Answer one query from the warm state.

        The PR-10 client layer (:mod:`repro.analysis.clients`) holds
        every implementation; the session contributes its warm store,
        kernel and configuration set.  ``value-of <var>`` — the
        values flowing to a variable, joined over contexts;
        ``call-sites-of <lam label>`` — the call sites whose operator
        may be that lambda; ``escaping <lam label>`` — may the lambda
        escape to the halt continuation or into a heap (pair) cell.
        Point queries touch only the demanded slice of the store.
        Pass kinds (``call-graph``, ``mono``, ``inlining``, and
        ``escaping`` without a target) answer from the rendered
        result.
        """
        validate_query(kind, target, session=True)
        if kind == "value-of":
            return value_of(self.store, target)
        if kind == "call-sites-of":
            return call_sites_of(self.machine, self.store,
                                 self.state.seen, parse_label(target))
        if kind == "escaping" and target is not None:
            return escaping_point(self.machine, self.store,
                                  self.state.seen, parse_label(target))
        return run_result_query(self.result, kind, target)

    def stats(self) -> dict:
        """Counters for the service's session bookkeeping."""
        return {"analysis": self.analysis, "parameter": self.parameter,
                "edits": self.edits, "resumed": self.resumed,
                "scratch": self.scratch,
                "configs": len(self.state.seen),
                "store_entries": len(self.store),
                "next_label": self._next_label}
