"""Naive polynomial k-CFA: flat environments + last-k-call-sites (§6).

This is what one obtains by instantiating the Jagannathan–Weeks
framework with Shivers's contour-allocation strategy: polynomial, but
weakly context-sensitive in practice.  Any call a procedure makes —
including the continuation calls that sequence its body — rotates the
k-window of context, so bindings from distinct invocations merge k
calls into the procedure.  The paper's ``identity``/``do-something``
example (§6) and our §6.2 table reproduce the degeneration to 0CFA.
"""

from __future__ import annotations

from repro.cps.program import Program
from repro.analysis.flat_machine import analyze_flat, poly_kcfa_allocator
from repro.analysis.results import AnalysisResult
from repro.errors import UsageError
from repro.util.budget import Budget


def analyze_poly_kcfa(program: Program, k: int = 1,
                      budget: Budget | None = None,
                      plain: bool = False,
                      specialized: bool = True,
                      codegen: bool = True) -> AnalysisResult:
    """Run naive polynomial k-CFA to fixpoint."""
    if k < 0:
        raise UsageError(f"k must be non-negative, got {k}")
    return analyze_flat(program, poly_kcfa_allocator(k),
                        "poly-k-CFA", k, budget, plain=plain,
                        specialized=specialized, codegen=codegen)
