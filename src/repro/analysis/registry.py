"""The analysis registry: one source of truth for every front end.

Each analysis in the repository — Scheme/CPS or Featherweight Java —
is an :class:`AnalysisSpec`: a name, the policy axis that defines it
(context abstraction, address allocation, environment representation),
the engine that drives it, its complexity class per the paper, and a
factory that runs it.  The ``analyze``/``submit`` job core
(:mod:`repro.service.jobs`), the bench matrix
(:mod:`repro.benchsuite.runner`), the CLI (including the ``analyses``
subcommand) and the docs-drift tests all dispatch off this table, so
registering a spec here is the *only* step needed to expose a new
analysis everywhere at once — there are no per-front-end dispatch
tables left to edit.

The registry is populated lazily on first use (importing the analyzer
modules is deferred into each spec's factory, so consulting the table
stays cheap for worker processes that never run some analyses).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Callable

from repro.errors import UsageError


@dataclass(frozen=True)
class AnalysisSpec:
    """One analysis as a data point on the kernel's policy axis.

    ``factory(program, parameter, budget, plain, specialize,
    obj_depth)`` runs the analysis; ``concrete`` names the concrete
    machine mode the soundness property suite checks the analysis
    against (``shared-history``, ``flat-stack``, ``flat-history``,
    ``summary-stack`` for Scheme; ``fj`` for Featherweight Java).

    ``specialized`` is the registry's specialization knob: with it on
    (the default) runs go through the per-policy specialization stage
    (:mod:`repro.analysis.specialize`) — byte-identical to the generic
    step loop, gated by the golden and differential suites.  Specs
    whose engine the specializer does not cover (the naive §3.6
    drivers) register ``specialized=False``.  ``codegen`` is the rung
    above: generated-source step loops with bit-parallel transfer
    (:mod:`repro.analysis.codegen`), same byte-identity contract, only
    meaningful where ``specialized`` is — specs whose policy the
    emitter declines (shared envs, pushdown, receiver-sensitive flat
    FJ) register ``codegen=False``.  ``takes_obj_depth`` marks the
    hybrid ladder: only those specs accept the bench ``--obj-depth``
    axis.
    """

    name: str              # CLI name, e.g. "kcfa"
    display: str           # result/display name, e.g. "k-CFA"
    language: str          # "scheme" | "fj"
    env_rep: str           # "shared" | "flat" | "summary"
    engine: str            # "single-store" | "naive" | "naive+gc"
    context: str           # the tick/alloc policy, in words
    complexity: str        # per the paper, e.g. "EXPTIME-complete"
    factory: Callable      # (program, parameter, budget, plain, ...)
    concrete: str | None = None
    paper: str = ""        # section reference
    specialized: bool = True
    codegen: bool = True
    takes_obj_depth: bool = False

    def run(self, program, parameter: int, budget=None,
            plain: bool = False, specialize: bool | None = None,
            codegen: bool | None = None,
            obj_depth: int | None = None):
        """Run this analysis; the parameter is the k/m/n depth.

        ``specialize=None`` / ``codegen=None`` mean the spec's own
        defaults; ``True`` still runs the lower tier when the spec
        opted out.  ``obj_depth`` is only legal on hybrid-ladder specs
        (:class:`~repro.errors.UsageError` otherwise).
        """
        if obj_depth is not None and not self.takes_obj_depth:
            raise UsageError(
                f"analysis {self.name!r} has no obj-depth axis; "
                f"--obj-depth applies only to "
                f"{', '.join(_obj_depth_names()) or 'no registered analysis'}")
        effective = self.specialized if specialize is None \
            else (specialize and self.specialized)
        effective_codegen = self.codegen if codegen is None \
            else (codegen and self.codegen)
        return self.factory(program, parameter, budget, plain,
                            specialize=effective,
                            codegen=effective_codegen,
                            obj_depth=obj_depth)

    def listing(self) -> dict:
        """The JSON-able registry row served by the ``analyses``
        protocol op and rendered by ``python -m repro analyses`` —
        both front ends read this same projection."""
        return {
            "name": self.name, "display": self.display,
            "language": self.language, "env_rep": self.env_rep,
            "engine": self.engine, "context": self.context,
            "complexity": self.complexity, "paper": self.paper,
            "specialized": self.specialized,
            "codegen": self.codegen,
            "takes_obj_depth": self.takes_obj_depth,
        }


def _obj_depth_names() -> tuple[str, ...]:
    return tuple(spec.name for spec in registry().specs()
                 if spec.takes_obj_depth)


def registry_listing(language: str | None = None) -> list[dict]:
    """Every registered analysis as a JSON-able row (see
    :meth:`AnalysisSpec.listing`)."""
    return [spec.listing() for spec in registry().specs(language)]


class AnalysisRegistry:
    """An ordered name → :class:`AnalysisSpec` table."""

    def __init__(self):
        self._specs: dict[str, AnalysisSpec] = {}

    def register(self, spec: AnalysisSpec) -> AnalysisSpec:
        if spec.name in self._specs:
            raise ValueError(f"analysis {spec.name!r} already "
                             f"registered")
        self._specs[spec.name] = spec
        return spec

    def get(self, name: str, language: str | None = None
            ) -> AnalysisSpec:
        """Look up a spec; raises :class:`~repro.errors.UsageError`
        (exit code 2 at the CLI) with the valid choices on a miss."""
        spec = self._specs.get(name)
        if spec is not None:
            if language is None or spec.language == language:
                return spec
            raise UsageError(
                f"analysis {name!r} is a {spec.language} analysis, "
                f"not {language}; choose from "
                f"{', '.join(self.names(language))}")
        raise UsageError(
            f"unknown analysis {name!r}; choose from "
            f"{', '.join(self.names(language))}")

    def __contains__(self, name: str) -> bool:
        return name in self._specs

    def names(self, language: str | None = None) -> tuple[str, ...]:
        return tuple(spec.name for spec in self._specs.values()
                     if language is None or spec.language == language)

    def specs(self, language: str | None = None
              ) -> tuple[AnalysisSpec, ...]:
        return tuple(spec for spec in self._specs.values()
                     if language is None or spec.language == language)

    def __len__(self) -> int:
        return len(self._specs)


#: The process-wide registry.  Use :func:`registry` to read it — the
#: accessor populates the builtin analyses on first use.
REGISTRY = AnalysisRegistry()

_populated = False
_populate_lock = threading.Lock()


def registry() -> AnalysisRegistry:
    """The populated process-wide registry."""
    global _populated
    if not _populated:
        # Double-checked under a lock: concurrent first consultations
        # (library embedders calling from thread pools) must not race
        # _register_builtin against itself on the shared table.
        with _populate_lock:
            if not _populated:
                _register_builtin(REGISTRY)
                _populated = True
    return REGISTRY


def run_analysis(name: str, program, parameter: int, budget=None,
                 plain: bool = False, language: str | None = None,
                 specialize: bool | None = None,
                 codegen: bool | None = None,
                 obj_depth: int | None = None):
    """Dispatch one analysis by registry name."""
    return registry().get(name, language).run(
        program, parameter, budget, plain, specialize=specialize,
        codegen=codegen, obj_depth=obj_depth)


# -- the builtin analyses -------------------------------------------------
#
# Each declaration is the whole analysis: the kernel (or FJ machine)
# plus a context policy.  Factories import lazily so that touching the
# registry never pays for analyzer modules it does not run.


def _register_builtin(table: AnalysisRegistry) -> None:
    # Factories take (program, parameter, budget, plain) positionally
    # plus the keyword-only options AnalysisSpec.run threads through:
    # ``specialize`` (resolved against the spec's knob) and
    # ``obj_depth`` (hybrid ladder only — validated in run()).

    def kcfa(program, parameter, budget, plain, *, specialize=True,
             codegen=True, obj_depth=None):
        from repro.analysis.kcfa import analyze_kcfa
        return analyze_kcfa(program, parameter, budget, plain=plain,
                            specialized=specialize)

    def mcfa(program, parameter, budget, plain, *, specialize=True,
             codegen=True, obj_depth=None):
        from repro.analysis.mcfa import analyze_mcfa
        return analyze_mcfa(program, parameter, budget, plain=plain,
                            specialized=specialize, codegen=codegen)

    def poly(program, parameter, budget, plain, *, specialize=True,
             codegen=True, obj_depth=None):
        from repro.analysis.polykcfa import analyze_poly_kcfa
        return analyze_poly_kcfa(program, parameter, budget,
                                 plain=plain, specialized=specialize,
                                 codegen=codegen)

    def zero(program, parameter, budget, plain, *, specialize=True,
             codegen=True, obj_depth=None):
        from repro.analysis.zerocfa import analyze_zerocfa
        return analyze_zerocfa(program, budget, plain=plain,
                               specialized=specialize,
                               codegen=codegen)

    def pushdown(program, parameter, budget, plain, *,
                 specialize=True, codegen=True, obj_depth=None):
        from repro.analysis.pushdown import analyze_pushdown
        return analyze_pushdown(program, budget, plain=plain,
                                specialized=specialize)

    def kcfa_gc(program, parameter, budget, plain, *,
                specialize=True, codegen=True, obj_depth=None):
        from repro.analysis.gc import analyze_kcfa_gc
        return analyze_kcfa_gc(program, parameter, budget, plain=plain)

    def kcfa_naive(program, parameter, budget, plain, *,
                   specialize=True, codegen=True, obj_depth=None):
        from repro.analysis.kcfa import analyze_kcfa_naive
        return analyze_kcfa_naive(program, parameter, budget,
                                  plain=plain)

    def fj_kcfa(program, parameter, budget, plain, *,
                specialize=True, codegen=True, obj_depth=None):
        from repro.fj.kcfa import analyze_fj_kcfa
        return analyze_fj_kcfa(program, parameter, budget=budget,
                               plain=plain)

    def fj_poly(program, parameter, budget, plain, *,
                specialize=True, codegen=True, obj_depth=None):
        from repro.fj.poly import analyze_fj_poly
        return analyze_fj_poly(program, parameter, budget=budget,
                               plain=plain, specialized=specialize,
                               codegen=codegen)

    def fj_kcfa_gc(program, parameter, budget, plain, *,
                   specialize=True, codegen=True, obj_depth=None):
        from repro.fj.gc import analyze_fj_kcfa_gc
        return analyze_fj_kcfa_gc(program, parameter, budget=budget,
                                  plain=plain)

    def fj_mcfa(program, parameter, budget, plain, *,
                specialize=True, codegen=True, obj_depth=None):
        from repro.fj.mcfa import analyze_fj_mcfa
        return analyze_fj_mcfa(program, parameter, budget=budget,
                               plain=plain, specialized=specialize)

    def fj_hybrid(program, parameter, budget, plain, *,
                  specialize=True, codegen=True, obj_depth=None):
        from repro.fj.hybrid import analyze_fj_hybrid
        return analyze_fj_hybrid(
            program, parameter,
            obj_depth=1 if obj_depth is None else obj_depth,
            budget=budget, plain=plain, specialized=specialize)

    def fj_obj(program, parameter, budget, plain, *,
               specialize=True, codegen=True, obj_depth=None):
        from repro.fj.hybrid import analyze_fj_obj
        return analyze_fj_obj(program, parameter, budget=budget,
                              plain=plain, specialized=specialize)

    table.register(AnalysisSpec(
        name="kcfa", display="k-CFA", language="scheme",
        env_rep="shared", engine="single-store",
        context="tick: last k call sites; alloc: (var, time)",
        complexity="EXPTIME-complete (k >= 1)", factory=kcfa,
        concrete="shared-history", paper="§3.4–3.7",
        # Shared environments: addresses are (var, context) with
        # run-time contexts, so the emitter has no constants to fold
        # beyond what CompiledSharedKernel pre-binds — declined.
        codegen=False))
    table.register(AnalysisSpec(
        name="mcfa", display="m-CFA", language="scheme",
        env_rep="flat", engine="single-store",
        context="alloc: top-m stack frames, continuations restore",
        complexity="PTIME", factory=mcfa,
        concrete="flat-stack", paper="§5.2–5.3"))
    table.register(AnalysisSpec(
        name="poly", display="poly-k-CFA", language="scheme",
        env_rep="flat", engine="single-store",
        context="alloc: last k call sites (every call rotates)",
        complexity="PTIME", factory=poly,
        concrete="flat-history", paper="§6"))
    table.register(AnalysisSpec(
        name="zero", display="0CFA", language="scheme",
        env_rep="flat", engine="single-store",
        context="no context: [m=0]CFA == [k=0]CFA",
        complexity="PTIME", factory=zero,
        concrete="flat-stack", paper="§5.3"))
    table.register(AnalysisSpec(
        name="pushdown", display="pushdown", language="scheme",
        env_rep="summary", engine="single-store",
        context="entry summaries keyed on argument values; "
                "call-edge tables, continuations restore frames",
        complexity="PTIME (polynomial entry table)", factory=pushdown,
        concrete="summary-stack", paper="§6 / CFA2",
        # The specializer has no compiled step loop for the summary
        # rep yet; register the knob honestly (the analyses listing
        # and the bench --specialize axis must not advertise a path
        # that cannot run) — asserted in tests/test_pushdown.py.
        # Codegen stays declined with it: entry summaries key on
        # run-time argument signatures, nothing folds to literals.
        specialized=False, codegen=False))
    table.register(AnalysisSpec(
        name="kcfa-gc", display="k-CFA+GC", language="scheme",
        env_rep="shared", engine="naive+gc",
        context="tick: last k call sites; abstract GC per transition",
        complexity="EXPTIME (per-state stores)", factory=kcfa_gc,
        concrete="shared-history", paper="§8 / ΓCFA",
        specialized=False, codegen=False))
    table.register(AnalysisSpec(
        name="kcfa-naive", display="k-CFA-naive", language="scheme",
        env_rep="shared", engine="naive",
        context="tick: last k call sites; reachable-states driver",
        complexity="EXPTIME even for k=0", factory=kcfa_naive,
        concrete="shared-history", paper="§3.6",
        specialized=False, codegen=False))
    table.register(AnalysisSpec(
        name="fj-kcfa", display="FJ-k-CFA", language="fj",
        env_rep="shared", engine="single-store",
        context="tick: last k labels at invocations (Figure 9)",
        complexity="PTIME (objects close flat)", factory=fj_kcfa,
        concrete="fj", paper="§4.3",
        # The map-based Figure 9 machine has no specialization yet
        # (see ROADMAP); register the knob honestly so the analyses
        # listing and the bench --specialize axis do not advertise a
        # path that cannot run.  Codegen rides on specialization, so
        # it is declined with it.
        specialized=False, codegen=False))
    table.register(AnalysisSpec(
        name="fj-poly", display="FJ-poly-k-CFA", language="fj",
        env_rep="flat", engine="single-store",
        context="benv collapsed to its time (BEnv ~ Time)",
        complexity="PTIME", factory=fj_poly,
        concrete="fj", paper="§4.4"))
    table.register(AnalysisSpec(
        name="fj-kcfa-gc", display="FJ-k-CFA+GC", language="fj",
        env_rep="shared", engine="naive+gc",
        context="Figure 9 ticks; abstract GC per transition",
        complexity="per-state stores", factory=fj_kcfa_gc,
        concrete="fj", paper="§8", specialized=False,
        codegen=False))
    table.register(AnalysisSpec(
        name="fj-mcfa", display="FJ-m-CFA", language="fj",
        env_rep="flat", engine="single-store",
        context="top-m stack frames; this re-bound by field copying",
        complexity="PTIME", factory=fj_mcfa,
        concrete="fj", paper="§5 transplanted to §4",
        # Receiver-sensitive flat FJ: per-receiver times mean the
        # per-statement addresses are not compile-time constants —
        # the emitter declines (as for fj-hybrid and fj-obj below).
        codegen=False))
    table.register(AnalysisSpec(
        name="fj-hybrid", display="FJ-hybrid", language="fj",
        env_rep="flat", engine="single-store",
        context="receiver alloc site + last call sites (ladder)",
        complexity="PTIME", factory=fj_hybrid,
        concrete="fj", paper="§8 (object sensitivity)",
        codegen=False, takes_obj_depth=True))
    table.register(AnalysisSpec(
        name="fj-obj", display="FJ-obj", language="fj",
        env_rep="flat", engine="single-store",
        context="receiver allocation chain, depth n (obj^n)",
        complexity="PTIME", factory=fj_obj,
        concrete="fj", paper="§8 (object sensitivity)",
        codegen=False))
