"""Source-level codegen: emitted step loops + bit-parallel transfer.

One rung past :mod:`repro.analysis.specialize`.  The specializer
builds a closure per call node at its first step; this module walks
the whole compiled program **ahead of time** and emits actual Python
source — one step function per labeled node, with addresses, labels,
primitive kinds, constructor wiring and successor plans inlined as
literals — which is ``exec``'d into a module and driven unchanged by
the inlined single-store loop in :mod:`repro.analysis.engine`.
Generated modules are content-addressed and cached on disk
(:class:`~repro.cache.CodegenCache`), so the emission walk is paid
once per ``(schema, kind, program)`` and the fleet's session/edit
traffic reuses it like compiled programs.

Covered kinds
-------------

* ``zero-flat`` — flat environments under a context-free allocator
  (0CFA; m-CFA and poly-k-CFA at depth 0).
* ``flat`` — flat environments at depth ≥ 1: straight-line bodies
  with the allocator and the §5.2 copy loop inlined.  Addresses
  depend on the run-time environment, so there is no constant-address
  folding — instead each apply node memoizes a per-(environment,
  operator) *plan* (allocation, record hooks, copy-loop sources and
  targets resolved once) and runs the same packed-shadow bit-parallel
  transfer over the plan's targets as the context-free kinds.
* ``zero-fj-flat`` — the flat FJ machine under a receiver-insensitive
  context-free policy (``fj-poly`` at k = 0).

Declined, deliberately (their specs register ``codegen=False``):

* shared environments (the k-CFA family) — addresses are
  ``(name, context)`` with run-time contexts and the binding
  environments are per-configuration, so there are no constants to
  inline beyond what :class:`CompiledSharedKernel` already pre-binds;
* the pushdown-summary rep — declined for the same reasons the
  specializer documents (entry environments depend on run-time
  argument signatures);
* the naive §3.6 driver (``kcfa-naive``, ``kcfa-gc``, ``fj-kcfa-gc``)
  — per-state frozen stores, shared envs, and the driver itself is
  the object of study;
* the map-based ``fj-kcfa`` machine and the receiver-sensitive flat
  FJ policies (``fj-mcfa``, ``fj-hybrid``, ``fj-obj``) — per-receiver
  times mean per-statement addresses are not compile-time constants.

Bit-parallel transfer
---------------------

For the mask-native context-free kinds every join target is a
compile-time constant, so a successor's parameter block is a
*contiguous address range* known at emission time.  Each generated
apply/invoke entry keeps a **packed shadow**: the parameter masks
side by side in one big int, one lane per address.  A step batches
its per-address ``|=`` joins into a single multi-word operation::

    packed = m0 | (m1 << width) | (m2 << (2 * width))
    merged = shadow | packed

Growth detection is **one compare per range** (``merged == shadow``:
nothing can grow, emit no joins at all — the saturated steady state
of a fixpoint run); otherwise an XOR picks out exactly the grown
lanes and only those joins are emitted.  The shadow is a monotone
under-approximation of the store (it only accumulates masks the
engine is about to join, and the engine applies every completed
step's joins), so an omitted join is provably growthless: the engine
would have called ``join_mask`` and discarded it.  Once a plan has
yielded its successor at least once, a fully saturated step may even
omit the ``(succ, ())`` tuple itself — the successor is already in
the engine's seen set, so an empty join list is a no-op.  Omitting
either skips per-address dict work without touching ``changed`` order
— which is why trajectories (and ``steps`` counters) stay identical
to the generic machine.  The one observer that could tell the
difference is ``EngineOptions.track``'s writers map; tracked runs
(incremental sessions) always drive generic machines.

**The contract is byte-identity, trajectory included** — the same
contract :mod:`repro.analysis.specialize` documents.  Generated
binders run lazily at a node's first step and intern constant bits in
exactly the order the generic kernel would; ``tests/test_specialize.py``
holds every covered analysis to it across both value domains.

Cache key
---------

``sha256({schema, kind, program fingerprint})``.  The *kind string is
the whole policy spec*: emitted source for ``zero-flat`` folds every
context to ``()`` regardless of which context-free allocator produced
it, and ``flat`` source calls the allocator at run time — so depth
and shape provably do not appear in the text.  The program
fingerprint hashes the labeled AST's repr (dataclass reprs are
content-complete, labels included).
"""

from __future__ import annotations

import hashlib
import json

from repro.analysis.domains import FClo, abstract_literal
from repro.analysis.kernel import FConfig, FlatEnv, Kernel
from repro.cache import (
    CODEGEN_SCHEMA_VERSION, CodegenCache, default_codegen_dir,
)
from repro.cps.syntax import (
    AppCall, FixCall, HaltCall, IfCall, Lam, PrimCall, Ref,
    free_vars_of_lam,
)
from repro.fj.syntax import (
    Cast, FieldAccess, Invoke, New, Return, VarExp,
)
from repro.scheme.primitives import lookup_primitive

#: Sentinel shared with generated modules (``dict.get`` default that
#: can never be a real entry — mirrors the specializer's ``_MISSING``).
MISSING = object()

_EMPTY = ()

#: The kinds :func:`generate_source` knows how to emit.
CODEGEN_KINDS = ("zero-flat", "flat", "zero-fj-flat")


# -- keys and the process-default cache --------------------------------

def program_fingerprint(program) -> str:
    """Content hash of a compiled program's labeled AST.

    Works for both :class:`~repro.cps.program.Program` (hash the root
    call's repr — every node is a dataclass whose repr prints all
    fields, labels included) and :class:`~repro.fj.class_table.
    FJProgram` (class definitions plus the entry point).  Memoized on
    the program object, like the specializer's structural plans.
    """
    cached = getattr(program, "_codegen_fingerprint", None)
    if cached is None:
        if hasattr(program, "calls_by_label"):
            text = repr(program.root)
        else:
            text = repr((program.classes, program.entry_class,
                         program.entry_method))
        cached = hashlib.sha256(text.encode("utf-8")).hexdigest()
        try:
            program._codegen_fingerprint = cached
        except AttributeError:
            pass
    return cached


def codegen_key(program, kind: str) -> str:
    """The content-addressed key of one generated module:
    ``(codegen schema version, policy spec, program content key)``."""
    document = json.dumps({
        "schema": CODEGEN_SCHEMA_VERSION,
        "kind": kind,
        "program": program_fingerprint(program),
    }, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(document.encode("utf-8")).hexdigest()


_DEFAULT_CACHE: CodegenCache | None = None


def default_codegen_cache() -> CodegenCache:
    """The process-wide :class:`~repro.cache.CodegenCache`, created on
    first use next to the result cache.  Falls back to memory-only if
    the cache directory cannot be created — codegen must never make
    an analysis fail."""
    global _DEFAULT_CACHE
    if _DEFAULT_CACHE is None:
        try:
            _DEFAULT_CACHE = CodegenCache(default_codegen_dir())
        except OSError:
            _DEFAULT_CACHE = CodegenCache()
    return _DEFAULT_CACHE


def set_default_codegen_cache(cache: CodegenCache | None) -> None:
    """Replace the process default (CLI ``--cache-dir``, fleet
    workers, tests).  ``None`` resets to lazy re-creation."""
    global _DEFAULT_CACHE
    _DEFAULT_CACHE = cache


def _module_for(program, kind: str, cache: CodegenCache | None) -> dict:
    if cache is None:
        cache = default_codegen_cache()
    key = codegen_key(program, kind)
    return cache.module_for(
        key, lambda: generate_source(program, kind, key))


def generate_source(program, kind: str, key: str | None = None) -> str:
    """Emit the generated module's source text for *program* under
    *kind* (exposed for tests and offline inspection)."""
    if key is None:
        key = codegen_key(program, kind)
    if kind == "zero-flat":
        return _emit_scheme(program, key, zero=True)
    if kind == "flat":
        return _emit_scheme(program, key, zero=False)
    if kind == "zero-fj-flat":
        return _emit_fj(program, key)
    raise ValueError(f"unknown codegen kind {kind!r}")


# -- runtime helpers imported by generated modules ---------------------

def lit_bit(K, exp):
    """The generic kernel's literal memo (id-keyed, value-interned) —
    shared so generated binders intern literal bits in the same global
    order as the generic ``evaluate``."""
    bit = K._lit_bits.get(id(exp))
    if bit is None:
        bit = K.table.bit_for(abstract_literal(exp.datum))
        K._lit_bits[id(exp)] = bit
    return bit


def const_bit(K, exp):
    """A context-free constant atom's bit (closure or literal)."""
    if type(exp) is Lam:
        return K.table.bit_for(FClo(exp, _EMPTY))
    return lit_bit(K, exp)


def entry_maker(K, label, nargs):
    """The context-free per-operator apply plan, against the machine's
    shared per-lambda structure cache — mirrors
    ``ZeroFlatKernel._entry_maker`` exactly (including the
    record-on-first-sight point)."""
    lam_plans = K._lam_plans

    def entry_for(operator, recorder):
        if type(operator) is not FClo:
            return None
        lam = operator.lam
        if len(lam.params) != nargs:
            return None
        recorder.record_apply(label, lam, _EMPTY)
        entry = lam_plans.get(lam.label)
        if entry is None:
            entry = (FConfig(lam.body, _EMPTY),
                     tuple([(param, _EMPTY)
                            for param in lam.params]))
            lam_plans[lam.label] = entry
        return entry
    return entry_for


def enter_info(operator, nargs):
    """Depth ≥ 1 apply plan: ``(lam, params, free-vars)`` or ``None``
    — the *same* free-vars frozenset the generic rep iterates."""
    if type(operator) is not FClo:
        return None
    lam = operator.lam
    if len(lam.params) != nargs:
        return None
    return (lam, lam.params, free_vars_of_lam(lam))


def prim_enter_info(operator):
    """Unary continuation variant of :func:`enter_info`."""
    if type(operator) is not FClo:
        return None
    lam = operator.lam
    if len(lam.params) != 1:
        return None
    return (lam, lam.params[0], free_vars_of_lam(lam))


def new_shadow(store, addrs):
    """A packed shadow over a constant address range: the current
    store masks side by side, one lane per address, as
    ``[packed, lane_width, lane_count, yielded]``.  A pure peek — no
    reader registration (the generic machine never reads these
    addresses at this site, so the readers map must not change).

    ``yielded`` flips on the plan's first emission: after that, a
    no-growth step may omit its ``(succ, ())`` entry entirely — the
    successor is in the engine's seen set and an empty join list does
    nothing, so dropping the pair is invisible to the trajectory."""
    masks = [store.get_mask(addr) for addr in addrs]
    width = 64
    for mask in masks:
        while mask.bit_length() >= width:
            width *= 2
    packed = 0
    shift = 0
    for mask in masks:
        packed |= mask << shift
        shift += width
    return [packed, width, len(masks), False]


def widen_shadow(shadow, masks):
    """Grow a shadow's lane width until every mask in *masks* fits,
    repacking the existing lanes in place."""
    packed, width, count = shadow[0], shadow[1], shadow[2]
    need = width
    for mask in masks:
        while mask.bit_length() >= need:
            need *= 2
    lane = (1 << width) - 1
    repacked = 0
    for index in range(count):
        repacked |= ((packed >> (index * width)) & lane) \
            << (index * need)
    shadow[0] = repacked
    shadow[1] = need


def flat_transfer(shadow, masks, targets, succ, succs):
    """One plan's bit-parallel transfer with a *dynamic* lane count.

    The depth ≥ 1 apply plans carry a per-plan number of lanes
    (parameters plus the §5.2 free-variable copies), so the inline
    ``_emit_lane_diff`` blocks — whose lane count is baked into the
    emitted source — do not apply.  Same contract: pack *masks* onto
    the shadow's lanes, one compare for the whole range, and emit only
    the grown lanes (an empty join tuple in the saturated steady
    state)."""
    width = shadow[1]
    for mask in masks:
        if mask.bit_length() >= width:
            widen_shadow(shadow, masks)
            width = shadow[1]
            break
    packed = 0
    shift = 0
    for mask in masks:
        packed |= mask << shift
        shift += width
    merged = shadow[0] | packed
    if merged == shadow[0]:
        if not shadow[3]:
            shadow[3] = True
            succs.append((succ, ()))
        return
    diff = merged ^ shadow[0]
    shadow[0] = merged
    shadow[3] = True
    lane = (1 << width) - 1
    joins = []
    index = 0
    for mask in masks:
        if diff & lane:
            joins.append((targets[index], mask))
        index += 1
        diff >>= width
    succs.append((succ, joins))


# -- machines ----------------------------------------------------------

class CodegenFlatKernel(Kernel):
    """A kernel whose step dispatch is a dict of generated functions,
    one per call label, installed as self-replacing stubs at boot so
    each node's binder still runs lazily at its first step (interning
    order — see the specializer's laziness note)."""

    stage = "codegen"

    def __init__(self, program, rep, kind: str,
                 cache: CodegenCache | None = None):
        super().__init__(program, rep)
        self.specialization = kind  # "zero-flat" | "flat"
        self._cache = cache

    def boot(self, store):
        config = super().boot(store)
        if self.specialization == "zero-flat":
            plans = getattr(self.program, "_codegen_lam_plans", None)
            if plans is None:
                plans = {}
                self.program._codegen_lam_plans = plans
            self._lam_plans = plans
        steps: dict = {}
        module = _module_for(self.program, self.specialization,
                             self._cache)
        module["build"](self, steps)
        self._steps = steps
        return config

    def step(self, config, store, reads, recorder):
        return self._steps[config.call.label](
            config, store, reads, recorder)


class CodegenFJFlatMachine:
    """The generated-source mirror of ``ZeroFJFlatMachine``: delegates
    boot/seeding to the generic flat FJ machine, dispatches steps
    through the generated per-statement table."""

    stage = "codegen"
    specialization = "zero-fj-flat"

    def __init__(self, program, policy,
                 cache: CodegenCache | None = None):
        from repro.fj.poly import FJFlatMachine
        self.program = program
        self.policy = policy
        self._generic = FJFlatMachine(program, policy)
        self._cache = cache

    def boot(self, store):
        config = self._generic.boot(store)
        self.table = self._generic.table
        steps: dict = {}
        module = _module_for(self.program, "zero-fj-flat",
                             self._cache)
        module["build"](self, steps)
        self._steps = steps
        return config

    def step(self, config, store, reads, recorder):
        return self._steps[config.stmt.label](
            config, store, reads, recorder)


def codegen_machine(machine, cache: CodegenCache | None = None):
    """The codegen stage's dispatch: a generated-source machine for
    *machine*'s policy, or ``None`` when the policy is declined (see
    the module docstring's coverage list).

    Declines on the spot (memoizing the probe) when the program is
    too deeply nested to fingerprint — ``repr`` of a dataclass AST
    recurses, and a pathologically deep term would blow the stack at
    boot.  Codegen must never make an analysis fail; such programs
    fall back to the specialized tier."""
    from repro.fj.poly import FJFlatMachine
    if isinstance(machine, Kernel):
        rep = machine.rep
        if isinstance(rep, FlatEnv):
            try:
                program_fingerprint(machine.program)
            except RecursionError:
                return None
            kind = "zero-flat" \
                if getattr(rep.alloc, "context_free", False) else "flat"
            return CodegenFlatKernel(machine.program, rep, kind, cache)
        return None
    if isinstance(machine, FJFlatMachine):
        policy = machine.policy
        if getattr(policy, "context_free", False) \
                and not policy.receiver_sensitive:
            return CodegenFJFlatMachine(machine.program, policy, cache)
    return None


# -- emission infrastructure -------------------------------------------

class _Writer:
    __slots__ = ("lines",)

    def __init__(self):
        self.lines: list[str] = []

    def w(self, indent: int, *lines: str):
        pad = "    " * indent
        for line in lines:
            self.lines.append(pad + line if line else "")

    def text(self) -> str:
        return "\n".join(self.lines) + "\n"


def _zaddr(name) -> str:
    """The literal of a context-free address ``(name, ())``."""
    return repr((name, _EMPTY))


def _pack_expr(names) -> str:
    terms = [names[0]]
    for index, name in enumerate(names[1:], start=1):
        shift = "width" if index == 1 else f"({index} * width)"
        terms.append(f"({name} << {shift})")
    return " | ".join(terms)


def _widen_cond(names) -> str:
    return " or ".join(f"{name}.bit_length() >= width"
                       for name in names)


def _lane_guard(index: int) -> str:
    if index == 0:
        return "diff & lane"
    if index == 1:
        return "diff & (lane << width)"
    return f"diff & (lane << ({index} * width))"


def _emit_lane_diff(w: _Writer, ind: int, names, targets):
    """The bit-parallel transfer block: batch the joins onto lanes
    ``names`` (mask variable per lane) → addresses ``targets``
    (expression per lane), compare once against ``shadow``, emit only
    grown lanes.  Assumes ``succ``/``shadow``/``succs`` in scope and
    runs inside a loop (uses ``continue``)."""
    if len(names) == 1:
        w.w(ind, f"merged = shadow[0] | {names[0]}")
        w.w(ind, "if merged == shadow[0]:")
        w.w(ind + 1, "if not shadow[3]:")
        w.w(ind + 2, "shadow[3] = True")
        w.w(ind + 2, "succs.append((succ, ()))")
        w.w(ind + 1, "continue")
        w.w(ind, "shadow[0] = merged")
        w.w(ind, "shadow[3] = True")
        w.w(ind, f"succs.append((succ, (({targets[0]}, "
                 f"{names[0]}),)))")
        return
    w.w(ind, "width = shadow[1]")
    w.w(ind, f"if {_widen_cond(names)}:")
    w.w(ind + 1, f"widen_shadow(shadow, ({', '.join(names)}))")
    w.w(ind + 1, "width = shadow[1]")
    w.w(ind, f"packed = {_pack_expr(names)}")
    w.w(ind, "merged = shadow[0] | packed")
    w.w(ind, "if merged == shadow[0]:")
    w.w(ind + 1, "if not shadow[3]:")
    w.w(ind + 2, "shadow[3] = True")
    w.w(ind + 2, "succs.append((succ, ()))")
    w.w(ind + 1, "continue")
    w.w(ind, "diff = merged ^ shadow[0]")
    w.w(ind, "shadow[0] = merged")
    w.w(ind, "shadow[3] = True")
    w.w(ind, "lane = (1 << width) - 1")
    w.w(ind, "joins = []")
    for index, (name, target) in enumerate(zip(names, targets)):
        w.w(ind, f"if {_lane_guard(index)}:")
        w.w(ind + 1, f"joins.append(({target}, {name}))")
    w.w(ind, "succs.append((succ, joins))")


def _module_head(w: _Writer, key: str, kind: str, imports):
    w.w(0, f'"""Generated step loops — {kind}.')
    w.w(0, "")
    w.w(0, "Emitted by repro.analysis.codegen; content-addressed (the")
    w.w(0, "file name is the key), regenerated on any program or schema")
    w.w(0, 'change.  Do not edit."""')
    w.w(0, f"SCHEMA = {CODEGEN_SCHEMA_VERSION}")
    w.w(0, f"KEY = {key!r}")
    w.w(0, f"KIND = {kind!r}")
    w.w(0, "")
    for line in imports:
        w.w(0, line)
    w.w(0, "")
    w.w(0, "")


def _emit_build(w: _Writer, labels):
    w.w(0, "def build(K, steps):")
    w.w(1, "def stub(label, binder):")
    w.w(2, "def first(config, store, reads, recorder):")
    w.w(3, "fn = binder(K)")
    w.w(3, "steps[label] = fn")
    w.w(3, "return fn(config, store, reads, recorder)")
    w.w(2, "return first")
    w.w(1, "")
    for label in labels:
        w.w(1, f"steps[{label}] = stub({label}, _b{label})")


# -- Scheme emitters ---------------------------------------------------

_SCHEME_IMPORTS = (
    "from repro.analysis.codegen import (",
    "    MISSING, const_bit, enter_info, entry_maker, flat_transfer,",
    "    lit_bit, new_shadow, prim_enter_info, widen_shadow,",
    ")",
    "from repro.analysis.domains import APair, BASIC, FClo",
    "from repro.analysis.kernel import FConfig",
)


def _emit_scheme(program, key: str, zero: bool) -> str:
    w = _Writer()
    _module_head(w, key, "zero-flat" if zero else "flat",
                 _SCHEME_IMPORTS)
    labels = sorted(program.calls_by_label)
    _emit_build(w, labels)
    emitters = {
        AppCall: _z_app if zero else _f_app,
        IfCall: _z_if if zero else _f_if,
        PrimCall: _z_prim if zero else _f_prim,
        FixCall: _z_fix if zero else _f_fix,
        HaltCall: _z_halt if zero else _f_halt,
    }
    for label in labels:
        call = program.calls_by_label[label]
        emitter = emitters.get(type(call))
        if emitter is None:
            raise TypeError(f"cannot emit call {call!r}")
        w.w(0, "", "")
        w.w(0, f"def _b{label}(K):")
        w.w(1, f"call = K.program.calls_by_label[{label}]")
        w.w(1, "table = K.table")
        emitter(w, call)
    return w.text()


def _z_app(w: _Writer, call):
    label = call.label
    args = call.args
    nargs = len(args)
    atoms = (call.fn, *args)
    read_addrs = tuple([(exp.name, _EMPTY) for exp in atoms
                        if type(exp) is Ref])
    names = [f"m{i}" for i in range(nargs)]
    w.w(1, "basic = K._basic")
    w.w(1, "entries = {}")
    w.w(1, f"entry_for = entry_maker(K, {label}, {nargs})")
    if read_addrs:
        w.w(1, "recorded = []")
    # Constant bits intern in evaluation order: fn first, then args.
    if type(call.fn) is not Ref:
        w.w(1, "c_fn = const_bit(K, call.fn)")
    for i, arg in enumerate(args):
        if type(arg) is not Ref:
            w.w(1, f"c{i} = const_bit(K, call.args[{i}])")

    def body(ind: int, interned: bool):
        w.w(ind, "")
        w.w(ind, "def step(config, store, reads, recorder):")
        b = ind + 1
        if read_addrs:
            w.w(b, "if not recorded:")
            w.w(b + 1, "recorded.append(True)")
            w.w(b + 1, f"reads.update({read_addrs!r})")
        if read_addrs:
            w.w(b, "get_mask = store.get_mask")
        if type(call.fn) is Ref:
            w.w(b, f"operators = get_mask({_zaddr(call.fn.name)})")
        else:
            w.w(b, "operators = c_fn")
        w.w(b, "if operators & basic:")
        w.w(b + 1, f"recorder.unknown_operator.add({label})")
        for i, arg in enumerate(args):
            if type(arg) is Ref:
                w.w(b, f"m{i} = get_mask({_zaddr(arg.name)})")
            else:
                w.w(b, f"m{i} = c{i}")
        w.w(b, "succs = []")
        if interned:
            w.w(b, "mask = operators")
            w.w(b, "while mask:")
            l = b + 1
            w.w(l, "low = mask & -mask")
            w.w(l, "mask ^= low")
            w.w(l, "entry = entries.get(low, MISSING)")
            w.w(l, "if entry is MISSING:")
            w.w(l + 1, "plan = entry_for("
                       "values[low.bit_length() - 1], recorder)")
            w.w(l + 1, "if plan is None:")
            w.w(l + 2, "entry = None")
            w.w(l + 1, "else:")
            if nargs == 0:
                w.w(l + 2, "entry = plan")
            elif nargs == 1:
                w.w(l + 2, "entry = (plan[0], plan[1][0], "
                           "new_shadow(store, plan[1]))")
            else:
                w.w(l + 2, "entry = (plan[0], plan[1], "
                           "new_shadow(store, plan[1]))")
            w.w(l + 1, "entries[low] = entry")
            w.w(l, "if entry is None:")
            w.w(l + 1, "continue")
            if nargs == 0:
                w.w(l, "succs.append((entry[0], ()))")
            elif nargs == 1:
                w.w(l, "succ, param_addr, shadow = entry")
                _emit_lane_diff(w, l, names, ["param_addr"])
            else:
                w.w(l, "succ, param_addrs, shadow = entry")
                _emit_lane_diff(w, l, names,
                                [f"param_addrs[{i}]"
                                 for i in range(nargs)])
        else:
            w.w(b, "for operator in decode_iter(operators):")
            l = b + 1
            w.w(l, "key = id(operator)")
            w.w(l, "entry = entries.get(key, MISSING)")
            w.w(l, "if entry is MISSING:")
            w.w(l + 1, "entry = entry_for(operator, recorder)")
            w.w(l + 1, "entries[key] = entry")
            w.w(l, "if entry is None:")
            w.w(l + 1, "continue")
            if nargs:
                w.w(l, "succ, param_addrs = entry")
                joins = ", ".join(f"(param_addrs[{i}], m{i})"
                                  for i in range(nargs))
                w.w(l, f"succs.append((succ, [{joins}]))")
            else:
                w.w(l, "succs.append((entry[0], []))")
        w.w(b, "return succs")
        w.w(ind, "return step")

    w.w(1, "if table.interned:")
    w.w(2, "values = table._values")
    body(2, True)
    w.w(1, "decode_iter = table.decode_iter")
    body(1, False)


def _z_if(w: _Writer, call):
    w.w(1, "any_truthy = table.any_truthy")
    w.w(1, "any_falsy = table.any_falsy")
    w.w(1, "then_succ = (FConfig(call.then, ()), ())")
    w.w(1, "else_succ = (FConfig(call.orelse, ()), ())")
    if type(call.test) is Ref:
        addr = _zaddr(call.test.name)
        w.w(1, "recorded = []")
        w.w(1, "")
        w.w(1, "def step(config, store, reads, recorder):")
        w.w(2, "if not recorded:")
        w.w(3, "recorded.append(True)")
        w.w(3, f"reads.add({addr})")
        w.w(2, f"test = store.get_mask({addr})")
        w.w(2, "succs = []")
        w.w(2, "if any_truthy(test):")
        w.w(3, "succs.append(then_succ)")
        w.w(2, "if any_falsy(test):")
        w.w(3, "succs.append(else_succ)")
        w.w(2, "return succs")
        w.w(1, "return step")
        return
    # Constant test: the branch decision is itself a constant.
    w.w(1, "c_test = const_bit(K, call.test)")
    w.w(1, "result = []")
    w.w(1, "if any_truthy(c_test):")
    w.w(2, "result.append(then_succ)")
    w.w(1, "if any_falsy(c_test):")
    w.w(2, "result.append(else_succ)")
    w.w(1, "")
    w.w(1, "def step(config, store, reads, recorder):")
    w.w(2, "return result")
    w.w(1, "return step")


def _z_fix(w: _Writer, call):
    w.w(1, "bit_for = table.bit_for")
    w.w(1, "joins = tuple([((name, ()), bit_for(FClo(lam, ())))"
           " for name, lam in call.bindings])")
    w.w(1, "result = [(FConfig(call.body, ()), joins)]")
    w.w(1, "")
    w.w(1, "def step(config, store, reads, recorder):")
    w.w(2, "return result")
    w.w(1, "return step")


def _z_halt(w: _Writer, call):
    w.w(1, "decode = table.decode")
    if type(call.arg) is Ref:
        addr = _zaddr(call.arg.name)
        w.w(1, "recorded = []")
        w.w(1, "")
        w.w(1, "def step(config, store, reads, recorder):")
        w.w(2, "if not recorded:")
        w.w(3, "recorded.append(True)")
        w.w(3, f"reads.add({addr})")
        w.w(2, f"recorder.halt_values |= decode(store.get_mask({addr}))")
        w.w(2, "return []")
        w.w(1, "return step")
        return
    w.w(1, "c_arg = const_bit(K, call.arg)")
    w.w(1, "")
    w.w(1, "def step(config, store, reads, recorder):")
    w.w(2, "recorder.halt_values |= decode(c_arg)")
    w.w(2, "return []")
    w.w(1, "return step")


def _z_prim(w: _Writer, call):
    label = call.label
    kind = lookup_primitive(call.op).kind
    args = call.args
    cont = call.cont
    read_addrs = tuple([(arg.name, _EMPTY) for arg in args
                        if type(arg) is Ref])
    car_addr = (f"car@{label}", _EMPTY)
    cdr_addr = (f"cdr@{label}", _EMPTY)
    w.w(1, "basic = K._basic")
    w.w(1, "entries = {}")
    w.w(1, f"entry_for = entry_maker(K, {label}, 1)")
    # Constant argument bits intern at bind, in evaluation order —
    # even for error-kind primitives (mirrors _bind_atoms).
    for i, arg in enumerate(args):
        if type(arg) is not Ref:
            w.w(1, f"c{i} = const_bit(K, call.args[{i}])")
    if read_addrs:
        w.w(1, "args_recorded = []")
    if type(cont) is Ref:
        w.w(1, "cont_recorded = []")
    else:
        w.w(1, "cont_cell = []")
    if kind == "cons":
        w.w(1, "pair_cell = []")
        w.w(1, "self_succ = FConfig(call, ())")
    w.w(1, "decode_iter = table.decode_iter")
    if kind in ("car", "cdr"):
        w.w(1, "empty = table.empty")

    def body(ind: int, interned: bool):
        w.w(ind, "")
        w.w(ind, "def step(config, store, reads, recorder):")
        b = ind + 1
        if read_addrs:
            w.w(b, "if not args_recorded:")
            w.w(b + 1, "args_recorded.append(True)")
            w.w(b + 1, f"reads.update({read_addrs!r})")
        if kind == "error":
            w.w(b, "return []")
            w.w(ind, "return step")
            return
        if read_addrs or type(cont) is Ref or kind in ("car", "cdr"):
            w.w(b, "get_mask = store.get_mask")
        for i, arg in enumerate(args):
            if type(arg) is Ref:
                w.w(b, f"m{i} = get_mask({_zaddr(arg.name)})")
            else:
                w.w(b, f"m{i} = c{i}")
        for i in range(len(args)):
            w.w(b, f"if not m{i}:")
            w.w(b + 1, "return []")
        if kind == "basic":
            w.w(b, "result = basic")
        elif kind == "cons":
            w.w(b, "if not pair_cell:")
            w.w(b + 1, f"pair_cell.append(table.bit_for("
                       f"APair({car_addr!r}, {cdr_addr!r})))")
            w.w(b, "result = pair_cell[0]")
        else:  # car / cdr — the one dynamic read set
            w.w(b, "gathered = empty")
            w.w(b, "for value in decode_iter(m0):")
            w.w(b + 1, "if type(value) is APair:")
            w.w(b + 2, f"addr = value.{kind}")
            w.w(b + 2, "reads.add(addr)")
            w.w(b + 2, "gathered |= get_mask(addr)")
            w.w(b + 1, "elif value is BASIC:")
            w.w(b + 2, "gathered |= basic")
            w.w(b, "if not gathered:")
            w.w(b + 1, "return []")
            w.w(b, "result = gathered")
        if type(cont) is Ref:
            caddr = _zaddr(cont.name)
            w.w(b, "if not cont_recorded:")
            w.w(b + 1, "cont_recorded.append(True)")
            w.w(b + 1, f"reads.add({caddr})")
            w.w(b, f"conts = get_mask({caddr})")
        else:
            w.w(b, "if not cont_cell:")
            w.w(b + 1, "cont_cell.append(const_bit(K, call.cont))")
            w.w(b, "conts = cont_cell[0]")
        w.w(b, "succs = []")
        if interned:
            if kind == "cons":
                lanes = ["result", "m0", "m1"]
                targets = ["param_addr", repr(car_addr),
                           repr(cdr_addr)]
                shadow_addrs = (f"(plan[1][0], {car_addr!r}, "
                                f"{cdr_addr!r})")
            else:
                lanes = ["result"]
                targets = ["param_addr"]
                shadow_addrs = "plan[1]"
            w.w(b, "mask = conts")
            w.w(b, "while mask:")
            l = b + 1
            w.w(l, "low = mask & -mask")
            w.w(l, "mask ^= low")
            w.w(l, "entry = entries.get(low, MISSING)")
            w.w(l, "if entry is MISSING:")
            w.w(l + 1, "plan = entry_for("
                       "values[low.bit_length() - 1], recorder)")
            w.w(l + 1, "if plan is None:")
            w.w(l + 2, "entry = None")
            w.w(l + 1, "else:")
            w.w(l + 2, f"entry = (plan[0], plan[1][0], "
                       f"new_shadow(store, {shadow_addrs}))")
            w.w(l + 1, "entries[low] = entry")
            w.w(l, "if entry is None:")
            w.w(l + 1, "continue")
            w.w(l, "succ, param_addr, shadow = entry")
            _emit_lane_diff(w, l, lanes, targets)
        else:
            w.w(b, "for operator in decode_iter(conts):")
            l = b + 1
            w.w(l, "key = id(operator)")
            w.w(l, "entry = entries.get(key, MISSING)")
            w.w(l, "if entry is MISSING:")
            w.w(l + 1, "entry = entry_for(operator, recorder)")
            w.w(l + 1, "if entry is not None:")
            w.w(l + 2, "entry = (entry[0], entry[1][0])")
            w.w(l + 1, "entries[key] = entry")
            w.w(l, "if entry is None:")
            w.w(l + 1, "continue")
            if kind == "cons":
                w.w(l, f"succs.append((entry[0], ((entry[1], result),"
                       f" ({car_addr!r}, m0), ({cdr_addr!r}, m1))))")
            else:
                w.w(l, "succs.append((entry[0], "
                       "((entry[1], result),)))")
        if kind == "cons":
            w.w(b, "if not succs:")
            w.w(b + 1, f"succs.append((self_succ, (({car_addr!r}, m0),"
                       f" ({cdr_addr!r}, m1))))")
        w.w(b, "return succs")
        w.w(ind, "return step")

    w.w(1, "if table.interned:")
    w.w(2, "values = table._values")
    body(2, True)
    body(1, False)


def _f_atom_binder(w: _Writer, exp, cname: str, access: str):
    """Binder-time lines for one depth≥1 atom: literal bits intern at
    bind (like ``_atom``), lambda nodes get a local alias."""
    if type(exp) is Ref:
        return
    if type(exp) is Lam:
        w.w(1, f"{cname}_lam = {access}")
    else:
        w.w(1, f"{cname} = lit_bit(K, {access})")


def _f_atom_step(w: _Writer, b: int, exp, mvar: str, cname: str,
                 avar: str, env: str):
    """Step-time lines binding *mvar* to one atom's mask."""
    if type(exp) is Ref:
        w.w(b, f"{avar} = ({exp.name!r}, {env})")
        w.w(b, f"reads.add({avar})")
        w.w(b, f"{mvar} = store.get_mask({avar})")
    elif type(exp) is Lam:
        w.w(b, f"{mvar} = close_bit(config, {cname}_lam)")
    else:
        w.w(b, f"{mvar} = {cname}")


def _f_copy_loop(w: _Writer, l: int):
    w.w(l, "if new_env != operator.env:")
    w.w(l + 1, "operator_env = operator.env")
    w.w(l + 1, "for name in free:")
    w.w(l + 2, "source = (name, operator_env)")
    w.w(l + 2, "reads.add(source)")
    w.w(l + 2, "copied = store.get_mask(source)")
    w.w(l + 2, "if copied:")
    w.w(l + 3, "joins.append(((name, new_env), copied))")


def _f_app(w: _Writer, call):
    label = call.label
    args = call.args
    nargs = len(args)
    atoms = (call.fn, *args)
    n_refs = sum(1 for exp in atoms if type(exp) is Ref)
    w.w(1, "basic = K._basic")
    w.w(1, "alloc = K.rep.alloc")
    if any(type(exp) is Lam for exp in atoms):
        w.w(1, "close_bit = K.rep.close_bit")
    # Literal bits intern at bind, in atom order (fn, then args).
    _f_atom_binder(w, call.fn, "c_fn", "call.fn")
    for i, arg in enumerate(args):
        _f_atom_binder(w, arg, f"c{i}", f"call.args[{i}]")

    # Interned: a per-environment record (the atom addresses, read
    # once, plus a per-operator plan dict).  A plan pre-builds the
    # successor, the copy sources, and a packed shadow over its whole
    # join range — parameters and §5.2 free-variable copies alike —
    # so the saturated steady state emits no joins at all.
    w.w(1, "if table.interned:")
    w.w(2, "values = table._values")
    w.w(2, "empty = table.empty")
    w.w(2, "envs = {}")
    w.w(2, "")
    w.w(2, "def step(config, store, reads, recorder):")
    b = 3
    w.w(b, "env = config.env")
    w.w(b, "rec = envs.get(env)")
    w.w(b, "if rec is None:")
    rec_items = [f"({exp.name!r}, env)" for exp in atoms
                 if type(exp) is Ref] + ["[0, []]"]
    w.w(b + 1, f"rec = ({', '.join(rec_items)},)")
    w.w(b + 1, "envs[env] = rec")
    for i in range(n_refs):
        w.w(b + 1, f"reads.add(rec[{i}])")
    # Reads go straight at the mask map — ``AbsStore.get_mask`` is
    # pure and this loop pays it per copy source per operator.
    w.w(b, "get_mask = store._map.get")
    ref_index = 0

    def mask_line(exp, mvar, cname):
        nonlocal ref_index
        if type(exp) is Ref:
            w.w(b, f"{mvar} = get_mask(rec[{ref_index}], empty)")
            ref_index += 1
        elif type(exp) is Lam:
            w.w(b, f"{mvar} = close_bit(config, {cname}_lam)")
        else:
            w.w(b, f"{mvar} = {cname}")

    mask_line(call.fn, "operators", "c_fn")
    w.w(b, "if operators & basic:")
    w.w(b + 1, f"recorder.unknown_operator.add({label})")
    for i, arg in enumerate(args):
        mask_line(arg, f"m{i}", f"c{i}")
    # The operator mask at a record's address only ever grows, so
    # each step decodes just the added bits, builds their plans once
    # — in exactly the order the per-step rebuild would have — and
    # merges them into the record's bit-ordered row list.  The hot
    # loop is then a plain list walk: no per-bit arithmetic, no plan
    # dict probe.
    w.w(b, f"state = rec[{n_refs}]")
    w.w(b, "if operators != state[0]:")
    w.w(b + 1, "added = operators & ~state[0]")
    w.w(b + 1, "state[0] = operators")
    w.w(b + 1, "fresh = []")
    w.w(b + 1, "while added:")
    c = b + 2
    w.w(c, "low = added & -added")
    w.w(c, "added ^= low")
    w.w(c, "operator = values[low.bit_length() - 1]")
    w.w(c, f"info = enter_info(operator, {nargs})")
    w.w(c, "if info is not None:")
    p = c + 1
    w.w(p, "lam, params, free = info")
    w.w(p, "operator_env = operator.env")
    w.w(p, f"new_env = alloc({label}, env, lam, operator_env)")
    w.w(p, f"recorder.record_apply({label}, lam, new_env)")
    w.w(p, "targets = tuple([(name, new_env) for name in params])")
    w.w(p, "sources = ()")
    w.w(p, "if free and new_env != operator_env:")
    w.w(p + 1, "sources = tuple([(name, operator_env)")
    w.w(p + 1, "                 for name in free])")
    w.w(p + 1, "for source in sources:")
    w.w(p + 2, "reads.add(source)")
    w.w(p + 1, "targets += tuple([(name, new_env)")
    w.w(p + 1, "                  for name in free])")
    w.w(p, "fresh.append((low, (FConfig(lam.body, new_env),")
    w.w(p, "                    sources, targets,")
    w.w(p, "                    new_shadow(store, targets))))")
    w.w(b + 1, "if fresh:")
    w.w(b + 2, "rows = state[1]")
    w.w(b + 2, "if rows and fresh[0][0] < rows[-1][0]:")
    w.w(b + 3, "rows.extend(fresh)")
    w.w(b + 3, "rows.sort(key=lambda row: row[0])")
    w.w(b + 2, "else:")
    w.w(b + 3, "rows.extend(fresh)")
    w.w(b, "succs = []")
    if nargs >= 3:
        # Wide nodes: the static lanes are the same for every
        # operator this step, so their packed form is shared across
        # the loop, keyed by lane width (plans converge on one width;
        # ``None`` records that this step's masks force a widen).
        w.w(b, "packs = {}")
    w.w(b, "for low, plan in state[1]:")
    l = b + 1
    w.w(l, "succ, sources, targets, shadow = plan")
    # Inline transfer: pack the static lanes with the baked shift
    # expression, fold the copy sources in, one compare for the whole
    # range, and when lanes did grow recover their masks from
    # ``packed`` itself — no mask list is ever built.  Only lane
    # widening (a handful of times per plan, ever) falls back to the
    # out-of-line helper.
    names = [f"m{i}" for i in range(nargs)]
    w.w(l, "width = shadow[1]")
    guard = " and ".join(f"{name}.bit_length() < width"
                         for name in names)
    if nargs >= 3:
        w.w(l, "packed = packs.get(width, MISSING)")
        w.w(l, "if packed is MISSING:")
        w.w(l + 1, f"if {guard}:")
        w.w(l + 2, f"packed = {_pack_expr(names)}")
        w.w(l + 1, "else:")
        w.w(l + 2, "packed = None")
        w.w(l + 1, "packs[width] = packed")
        w.w(l, "if packed is not None:")
        f = l + 1
        w.w(f, f"shift = {nargs} * width")
    else:
        if guard:
            w.w(l, f"if {guard}:")
        else:
            w.w(l, "if True:")
        f = l + 1
        if nargs:
            w.w(f, f"packed = {_pack_expr(names)}")
            w.w(f, "shift = width" if nargs == 1
                 else f"shift = {nargs} * width")
        else:
            w.w(f, "packed = 0")
            w.w(f, "shift = 0")
    w.w(f, "ok = True")
    w.w(f, "for source in sources:")
    w.w(f + 1, "m = get_mask(source, empty)")
    w.w(f + 1, "if m.bit_length() >= width:")
    w.w(f + 2, "ok = False")
    w.w(f + 2, "break")
    w.w(f + 1, "packed |= m << shift")
    w.w(f + 1, "shift += width")
    w.w(f, "if ok:")
    w.w(f + 1, "old = shadow[0]")
    w.w(f + 1, "merged = old | packed")
    w.w(f + 1, "if merged == old:")
    w.w(f + 2, "if not shadow[3]:")
    w.w(f + 3, "shadow[3] = True")
    w.w(f + 3, "succs.append((succ, ()))")
    w.w(f + 2, "continue")
    w.w(f + 1, "diff = merged ^ old")
    w.w(f + 1, "shadow[0] = merged")
    w.w(f + 1, "shadow[3] = True")
    w.w(f + 1, "lane = (1 << width) - 1")
    w.w(f + 1, "joins = []")
    w.w(f + 1, "index = 0")
    w.w(f + 1, "while diff:")
    w.w(f + 2, "if diff & lane:")
    w.w(f + 3, "joins.append((targets[index],")
    w.w(f + 3, "              (packed >> (index * width)) & lane))")
    w.w(f + 2, "diff >>= width")
    w.w(f + 2, "index += 1")
    w.w(f + 1, "succs.append((succ, joins))")
    w.w(f + 1, "continue")
    w.w(l, f"masks = [{', '.join(names)}]")
    w.w(l, "for source in sources:")
    w.w(l + 1, "masks.append(get_mask(source, empty))")
    w.w(l, "flat_transfer(shadow, masks, targets, succ, succs)")
    w.w(b, "return succs")
    w.w(2, "return step")

    # Plain-table fallback: the object domain decodes operators and
    # re-emits joins each step, like the compiled loop it mirrors.
    w.w(1, "decode_iter = table.decode_iter")
    w.w(1, "infos = {}")
    w.w(1, "")
    w.w(1, "def step(config, store, reads, recorder):")
    b = 2
    w.w(b, "env = config.env")
    _f_atom_step(w, b, call.fn, "operators", "c_fn", "addr", "env")
    w.w(b, "if operators & basic:")
    w.w(b + 1, f"recorder.unknown_operator.add({label})")
    for i, arg in enumerate(args):
        _f_atom_step(w, b, arg, f"m{i}", f"c{i}", f"a{i}", "env")
    w.w(b, "succs = []")
    w.w(b, "for operator in decode_iter(operators):")
    l = b + 1
    w.w(l, "key = id(operator)")
    w.w(l, "info = infos.get(key, MISSING)")
    w.w(l, "if info is MISSING:")
    w.w(l + 1, f"info = enter_info(operator, {nargs})")
    w.w(l + 1, "infos[key] = info")
    w.w(l, "if info is None:")
    w.w(l + 1, "continue")
    w.w(l, "lam, params, free = info")
    w.w(l, f"new_env = alloc({label}, env, lam, operator.env)")
    if nargs:
        joins = ", ".join(f"((params[{i}], new_env), m{i})"
                          for i in range(nargs))
        w.w(l, f"joins = [{joins}]")
    else:
        w.w(l, "joins = []")
    _f_copy_loop(w, l)
    w.w(l, f"recorder.record_apply({label}, lam, new_env)")
    w.w(l, "succs.append((FConfig(lam.body, new_env), joins))")
    w.w(b, "return succs")
    w.w(1, "return step")


def _f_if(w: _Writer, call):
    w.w(1, "any_truthy = table.any_truthy")
    w.w(1, "any_falsy = table.any_falsy")
    w.w(1, "then_call = call.then")
    w.w(1, "else_call = call.orelse")
    if type(call.test) is Lam:
        w.w(1, "close_bit = K.rep.close_bit")
    _f_atom_binder(w, call.test, "c_test", "call.test")
    w.w(1, "")
    w.w(1, "def step(config, store, reads, recorder):")
    _f_atom_step(w, 2, call.test, "test", "c_test", "addr",
                 "config.env")
    w.w(2, "env = config.env")
    w.w(2, "succs = []")
    w.w(2, "if any_truthy(test):")
    w.w(3, "succs.append((FConfig(then_call, env), ()))")
    w.w(2, "if any_falsy(test):")
    w.w(3, "succs.append((FConfig(else_call, env), ()))")
    w.w(2, "return succs")
    w.w(1, "return step")


def _f_fix(w: _Writer, call):
    w.w(1, "bindings = call.bindings")
    w.w(1, "body = call.body")
    w.w(1, "bit_for = table.bit_for")
    w.w(1, "memo = {}")
    w.w(1, "")
    w.w(1, "def step(config, store, reads, recorder):")
    w.w(2, "env = config.env")
    w.w(2, "result = memo.get(env)")
    w.w(2, "if result is None:")
    w.w(3, "joins = tuple(((name, env), bit_for(FClo(lam, env)))"
           " for name, lam in bindings)")
    w.w(3, "result = [(FConfig(body, env), joins)]")
    w.w(3, "memo[env] = result")
    w.w(2, "return result")
    w.w(1, "return step")


def _f_halt(w: _Writer, call):
    w.w(1, "decode = table.decode")
    if type(call.arg) is Lam:
        w.w(1, "close_bit = K.rep.close_bit")
    _f_atom_binder(w, call.arg, "c_arg", "call.arg")
    w.w(1, "")
    w.w(1, "def step(config, store, reads, recorder):")
    _f_atom_step(w, 2, call.arg, "mask", "c_arg", "addr",
                 "config.env")
    w.w(2, "recorder.halt_values |= decode(mask)")
    w.w(2, "return []")
    w.w(1, "return step")


def _f_prim(w: _Writer, call):
    label = call.label
    kind = lookup_primitive(call.op).kind
    args = call.args
    cont = call.cont
    car_name = f"car@{label}"
    cdr_name = f"cdr@{label}"
    w.w(1, "basic = K._basic")
    w.w(1, "decode_iter = table.decode_iter")
    w.w(1, "bit_for = table.bit_for")
    w.w(1, "alloc = K.rep.alloc")
    if any(type(exp) is Lam for exp in (*args, cont)):
        w.w(1, "close_bit = K.rep.close_bit")
    for i, arg in enumerate(args):
        _f_atom_binder(w, arg, f"c{i}", f"call.args[{i}]")
    if type(cont) is Lam:
        w.w(1, "cont_lam = call.cont")
    elif type(cont) is not Ref:
        # The continuation literal interns lazily, past the
        # empty-argument bail-out (mirrors the cont_cell).
        w.w(1, "cont_cell = []")
    if kind == "cons":
        w.w(1, "pair_memo = {}")
    if kind in ("car", "cdr"):
        w.w(1, "empty = table.empty")
    w.w(1, "infos = {}")
    w.w(1, "")
    w.w(1, "def step(config, store, reads, recorder):")
    b = 2
    w.w(b, "env = config.env")
    for i, arg in enumerate(args):
        _f_atom_step(w, b, arg, f"m{i}", f"c{i}", f"a{i}", "env")
    if kind == "error":
        w.w(b, "return []")
        w.w(1, "return step")
        return
    for i in range(len(args)):
        w.w(b, f"if not m{i}:")
        w.w(b + 1, "return []")
    extras = ""
    if kind == "basic":
        w.w(b, "result = basic")
    elif kind == "cons":
        w.w(b, "pair = pair_memo.get(env)")
        w.w(b, "if pair is None:")
        w.w(b + 1, f"car_addr = ({car_name!r}, env)")
        w.w(b + 1, f"cdr_addr = ({cdr_name!r}, env)")
        w.w(b + 1, "pair = (car_addr, cdr_addr, "
                   "bit_for(APair(car_addr, cdr_addr)))")
        w.w(b + 1, "pair_memo[env] = pair")
        w.w(b, "car_addr, cdr_addr, result = pair")
        extras = " + ((car_addr, m0), (cdr_addr, m1))"
    else:  # car / cdr
        w.w(b, "gathered = empty")
        w.w(b, "for value in decode_iter(m0):")
        w.w(b + 1, "if type(value) is APair:")
        w.w(b + 2, f"addr = value.{kind}")
        w.w(b + 2, "reads.add(addr)")
        w.w(b + 2, "gathered |= store.get_mask(addr)")
        w.w(b + 1, "elif value is BASIC:")
        w.w(b + 2, "gathered |= basic")
        w.w(b, "if not gathered:")
        w.w(b + 1, "return []")
        w.w(b, "result = gathered")
    if type(cont) is Ref:
        w.w(b, f"ca = ({cont.name!r}, env)")
        w.w(b, "reads.add(ca)")
        w.w(b, "conts = store.get_mask(ca)")
    elif type(cont) is Lam:
        w.w(b, "conts = close_bit(config, cont_lam)")
    else:
        w.w(b, "if not cont_cell:")
        w.w(b + 1, "cont_cell.append(lit_bit(K, call.cont))")
        w.w(b, "conts = cont_cell[0]")
    w.w(b, "succs = []")
    w.w(b, "for operator in decode_iter(conts):")
    l = b + 1
    w.w(l, "key = id(operator)")
    w.w(l, "info = infos.get(key, MISSING)")
    w.w(l, "if info is MISSING:")
    w.w(l + 1, "info = prim_enter_info(operator)")
    w.w(l + 1, "infos[key] = info")
    w.w(l, "if info is None:")
    w.w(l + 1, "continue")
    w.w(l, "lam, param, free = info")
    w.w(l, f"new_env = alloc({label}, env, lam, operator.env)")
    w.w(l, "joins = [((param, new_env), result)]")
    _f_copy_loop(w, l)
    w.w(l, f"recorder.record_apply({label}, lam, new_env)")
    w.w(l, f"succs.append((FConfig(lam.body, new_env), "
           f"tuple(joins){extras}))")
    if kind == "cons":
        w.w(b, "if not succs:")
        w.w(b + 1, "succs.append((FConfig(call, env), "
                   "((car_addr, m0), (cdr_addr, m1))))")
    w.w(b, "return succs")
    w.w(1, "return step")


# -- FJ emitters -------------------------------------------------------

_FJ_IMPORTS = (
    "from repro.analysis.codegen import MISSING, new_shadow, "
    "widen_shadow",
    "from repro.fj.kcfa import HALT_PTR",
    "from repro.fj.poly import PConfig, PKont, PObj",
)


def _emit_fj(program, key: str) -> str:
    w = _Writer()
    _module_head(w, key, "zero-fj-flat", _FJ_IMPORTS)
    labels = sorted(program.stmt_by_label)
    _emit_build(w, labels)
    for label in labels:
        stmt = program.stmt_by_label[label]
        w.w(0, "", "")
        w.w(0, f"def _b{label}(K):")
        w.w(1, "program = K.program")
        w.w(1, "table = K.table")
        w.w(1, f"following = program.succ({label})")
        if isinstance(stmt, Return):
            _fj_return(w, stmt)
            continue
        exp = stmt.exp
        if isinstance(exp, (VarExp, Cast)):
            _fj_move(w, program, stmt,
                     exp.target if isinstance(exp, Cast) else exp.name)
        elif isinstance(exp, FieldAccess):
            _fj_field(w, program, stmt, exp)
        elif isinstance(exp, Invoke):
            _fj_invoke(w, program, stmt, exp)
        elif isinstance(exp, New):
            _fj_new(w, program, stmt, exp)
        else:
            raise TypeError(f"cannot emit statement {stmt!r}")
    return w.text()


def _fj_succ_lines(w: _Writer, b: int):
    """The per-``kont_ptr`` successor memo shared by move, field
    access, and ``new`` (mirrors ``_succ_memo``)."""
    w.w(b, "kont_ptr = config.kont_ptr")
    w.w(b, "succ = succ_memo.get(kont_ptr)")
    w.w(b, "if succ is None:")
    w.w(b + 1, "succ = PConfig(following, (), kont_ptr, ())")
    w.w(b + 1, "succ_memo[kont_ptr] = succ")


def _fj_move(w: _Writer, program, stmt, source_name: str):
    src = repr((source_name, _EMPTY))
    tgt = repr((stmt.var, _EMPTY))
    if program.succ(stmt.label) is None:
        w.w(1, "")
        w.w(1, "def step(config, store, reads, recorder):")
        w.w(2, f"reads.add({src})")
        w.w(2, f"store.get_mask({src})")
        w.w(2, "return []")
        w.w(1, "return step")
        return
    # ``succ_memo`` rows are ``[succ, emitted]`` where ``emitted`` is
    # the union of every mask this config has already joined into the
    # target (``None`` until the first yield).  ``emitted`` is always
    # a subset of the store's value at the target, so a step whose
    # source mask adds nothing over ``emitted`` can return no
    # successors at all: the join would not grow the store, and the
    # successor is already in the engine's seen set.
    w.w(1, "succ_memo = {}")
    w.w(1, "")
    w.w(1, "def step(config, store, reads, recorder):")
    w.w(2, f"reads.add({src})")
    w.w(2, f"values = store.get_mask({src})")
    w.w(2, "kont_ptr = config.kont_ptr")
    w.w(2, "entry = succ_memo.get(kont_ptr)")
    w.w(2, "if entry is None:")
    w.w(3, "entry = [PConfig(following, (), kont_ptr, ()), None]")
    w.w(3, "succ_memo[kont_ptr] = entry")
    w.w(2, "emitted = entry[1]")
    w.w(2, "if emitted is None:")
    w.w(3, "entry[1] = values")
    w.w(3, f"return [(entry[0], [({tgt}, values)] if values else [])]")
    w.w(2, "if values | emitted == emitted:")
    w.w(3, "return []")
    w.w(2, "entry[1] = emitted | values")
    w.w(2, f"return [(entry[0], [({tgt}, values)])]")
    w.w(1, "return step")


def _fj_field(w: _Writer, program, stmt, exp):
    src = repr((exp.target, _EMPTY))
    tgt = repr((stmt.var, _EMPTY))
    field = exp.fieldname   # receiver-insensitive: field key is the name
    dead = program.succ(stmt.label) is None
    # The receiver address is a per-node constant, so its mask only
    # ever grows: interned tables decode just the added bits per step
    # and keep a bit-ordered ``(bit, field address)`` row list (full
    # decode order is bit order, so join order is unchanged).  Every
    # join targets the same variable, so one emitted-union per
    # ``kont_ptr`` detects the saturated steady state and skips the
    # successor entirely.  The per-address ``reads.add``/``get_mask``
    # stay in the step: dependency registration is per config.
    w.w(1, "all_fields = program.all_fields")
    w.w(1, "decode_iter = table.decode_iter")
    w.w(1, "addr_memo = {}")
    w.w(1, "if table.interned:")
    w.w(2, "values_tab = table._values")
    w.w(2, "state = [0, []]")
    if not dead:
        w.w(2, "succ_memo = {}")
    w.w(2, "")
    w.w(2, "def step(config, store, reads, recorder):")
    w.w(3, f"reads.add({src})")
    w.w(3, f"mask = store.get_mask({src})")
    w.w(3, "rows = state[1]")
    w.w(3, "if mask != state[0]:")
    w.w(4, "added = mask & ~state[0]")
    w.w(4, "state[0] = mask")
    w.w(4, "fresh = []")
    w.w(4, "while added:")
    w.w(5, "low = added & -added")
    w.w(5, "added ^= low")
    w.w(5, "addr = addr_memo.get(low, MISSING)")
    w.w(5, "if addr is MISSING:")
    w.w(6, "value = values_tab[low.bit_length() - 1]")
    w.w(6, f"addr = (({field!r}, value.time)")
    w.w(6, "        if isinstance(value, PObj)")
    w.w(6, f"        and {field!r} in all_fields(value.classname)")
    w.w(6, "        else None)")
    w.w(6, "addr_memo[low] = addr")
    w.w(5, "if addr is not None:")
    w.w(6, "fresh.append((low, addr))")
    w.w(4, "if fresh:")
    w.w(5, "if rows and fresh[0][0] < rows[-1][0]:")
    w.w(6, "rows.extend(fresh)")
    w.w(6, "rows.sort()")
    w.w(5, "else:")
    w.w(6, "rows.extend(fresh)")
    if dead:
        w.w(3, "for low, addr in rows:")
        w.w(4, "reads.add(addr)")
        w.w(4, "store.get_mask(addr)")
        w.w(3, "return []")
        w.w(2, "return step")
    else:
        w.w(3, "get_mask = store.get_mask")
        w.w(3, "joins = []")
        w.w(3, "total = 0")
        w.w(3, "for low, addr in rows:")
        w.w(4, "reads.add(addr)")
        w.w(4, "field_values = get_mask(addr)")
        w.w(4, "if field_values:")
        w.w(5, f"joins.append(({tgt}, field_values))")
        w.w(5, "total |= field_values")
        w.w(3, "kont_ptr = config.kont_ptr")
        w.w(3, "entry = succ_memo.get(kont_ptr)")
        w.w(3, "if entry is None:")
        w.w(4, "entry = [PConfig(following, (), kont_ptr, ()), None]")
        w.w(4, "succ_memo[kont_ptr] = entry")
        w.w(3, "emitted = entry[1]")
        w.w(3, "if emitted is None:")
        w.w(4, "entry[1] = total")
        w.w(4, "return [(entry[0], joins)]")
        w.w(3, "if total | emitted == emitted:")
        w.w(4, "return []")
        w.w(3, "entry[1] = emitted | total")
        w.w(3, "return [(entry[0], joins)]")
        w.w(2, "return step")
    if not dead:
        w.w(1, "succ_memo = {}")
    w.w(1, "")
    w.w(1, "def step(config, store, reads, recorder):")
    w.w(2, f"reads.add({src})")
    if not dead:
        w.w(2, "joins = []")
    w.w(2, f"for value in decode_iter(store.get_mask({src})):")
    w.w(3, "addr = addr_memo.get(value, MISSING)")
    w.w(3, "if addr is MISSING:")
    w.w(4, f"addr = (({field!r}, value.time)")
    w.w(4, "        if isinstance(value, PObj)")
    w.w(4, f"        and {field!r} in all_fields(value.classname)")
    w.w(4, "        else None)")
    w.w(4, "addr_memo[value] = addr")
    if dead:
        w.w(3, "if addr is not None:")
        w.w(4, "reads.add(addr)")
        w.w(4, "store.get_mask(addr)")
        w.w(2, "return []")
        w.w(1, "return step")
        return
    w.w(3, "if addr is None:")
    w.w(4, "continue")
    w.w(3, "reads.add(addr)")
    w.w(3, "field_values = store.get_mask(addr)")
    w.w(3, "if field_values:")
    w.w(4, f"joins.append(({tgt}, field_values))")
    _fj_succ_lines(w, 2)
    w.w(2, "return [(succ, joins)]")
    w.w(1, "return step")


def _fj_return(w: _Writer, stmt):
    src = repr((stmt.var, _EMPTY))
    # Interned tables get a *delta decode*: the kont mask at one
    # ``kont_ptr`` address only ever grows, so each step decodes just
    # the added bits (``kont_mask & ~prev``) and merges the new rows
    # into a bit-ordered row list — full-mask decode order is exactly
    # bit order, so the successor order is unchanged.  Each row also
    # carries the union of masks it has already joined into its
    # target (``None`` until its first yield), letting a saturated
    # row drop out of the successor list entirely.
    w.w(1, "decode = table.decode")
    w.w(1, "decode_iter = table.decode_iter")
    w.w(1, "kont_memo = {}")
    w.w(1, "if table.interned:")
    w.w(2, "values_tab = table._values")
    w.w(2, "states = {}")
    w.w(2, "")
    w.w(2, "def step(config, store, reads, recorder):")
    w.w(3, f"reads.add({src})")
    w.w(3, f"values = store.get_mask({src})")
    w.w(3, "kont_ptr = config.kont_ptr")
    w.w(3, "if kont_ptr is HALT_PTR:")
    w.w(4, "recorder.halt_values |= decode(values)")
    w.w(4, "return []")
    w.w(3, "reads.add(kont_ptr)")
    w.w(3, "kont_mask = store.get_mask(kont_ptr)")
    w.w(3, "state = states.get(kont_ptr)")
    w.w(3, "if state is None:")
    w.w(4, "state = [0, []]")
    w.w(4, "states[kont_ptr] = state")
    w.w(3, "rows = state[1]")
    w.w(3, "if kont_mask != state[0]:")
    w.w(4, "added = kont_mask & ~state[0]")
    w.w(4, "state[0] = kont_mask")
    w.w(4, "fresh = []")
    w.w(4, "while added:")
    w.w(5, "low = added & -added")
    w.w(5, "added ^= low")
    w.w(5, "pair = kont_memo.get(low, MISSING)")
    w.w(5, "if pair is MISSING:")
    w.w(6, "kont = values_tab[low.bit_length() - 1]")
    w.w(6, "pair = None")
    w.w(6, "if isinstance(kont, PKont):")
    w.w(7, "pair = ((kont.var, kont.caller_entry),")
    w.w(7, "        PConfig(kont.stmt, kont.caller_entry,")
    w.w(7, "                kont.kont_ptr, ()))")
    w.w(6, "kont_memo[low] = pair")
    w.w(5, "if pair is not None:")
    w.w(6, "fresh.append([low, pair[0], pair[1], None])")
    w.w(4, "if fresh:")
    w.w(5, "if rows and fresh[0][0] < rows[-1][0]:")
    w.w(6, "rows.extend(fresh)")
    w.w(6, "rows.sort(key=lambda row: row[0])")
    w.w(5, "else:")
    w.w(6, "rows.extend(fresh)")
    w.w(3, "succs = []")
    w.w(3, "for row in rows:")
    w.w(4, "emitted = row[3]")
    w.w(4, "if emitted is None:")
    w.w(5, "row[3] = values")
    w.w(5, "succs.append((row[2],")
    w.w(5, "              [(row[1], values)] if values else []))")
    w.w(4, "elif values | emitted != emitted:")
    w.w(5, "row[3] = emitted | values")
    w.w(5, "succs.append((row[2], [(row[1], values)]))")
    w.w(3, "return succs")
    w.w(2, "return step")
    w.w(1, "")
    w.w(1, "def step(config, store, reads, recorder):")
    w.w(2, f"reads.add({src})")
    w.w(2, f"values = store.get_mask({src})")
    w.w(2, "kont_ptr = config.kont_ptr")
    w.w(2, "if kont_ptr is HALT_PTR:")
    w.w(3, "recorder.halt_values |= decode(values)")
    w.w(3, "return []")
    w.w(2, "reads.add(kont_ptr)")
    w.w(2, "succs = []")
    w.w(2, "for kont in decode_iter(store.get_mask(kont_ptr)):")
    w.w(3, "entry = kont_memo.get(kont, MISSING)")
    w.w(3, "if entry is MISSING:")
    w.w(4, "entry = None")
    w.w(4, "if isinstance(kont, PKont):")
    w.w(5, "entry = ((kont.var, kont.caller_entry),")
    w.w(5, "         PConfig(kont.stmt, kont.caller_entry,")
    w.w(5, "                 kont.kont_ptr, ()))")
    w.w(4, "kont_memo[kont] = entry")
    w.w(3, "if entry is None:")
    w.w(4, "continue")
    w.w(3, "target, succ = entry")
    w.w(3, "joins = [(target, values)] if values else []")
    w.w(3, "succs.append((succ, joins))")
    w.w(2, "return succs")
    w.w(1, "return step")


def _fj_invoke(w: _Writer, program, stmt, exp):
    label = stmt.label
    recv = repr((exp.target, _EMPTY))
    arg_addrs = tuple((arg, _EMPTY) for arg in exp.args)
    nargs = len(arg_addrs)
    if program.succ(label) is None:
        w.w(1, "")
        w.w(1, "def step(config, store, reads, recorder):")
        w.w(2, f"reads.add({recv})")
        w.w(2, f"store.get_mask({recv})")
        w.w(2, "return []")
        w.w(1, "return step")
        return
    w.w(1, "lookup_method = program.lookup_method")
    w.w(1, "decode_iter = table.decode_iter")
    w.w(1, "bit_for = table.bit_for")
    w.w(1, "dispatch_memo = {}")
    w.w(1, "plan_memo = {}")
    w.w(1, "kont_bits = {}")
    w.w(1, "recorded = set()")

    def body(ind: int, interned: bool):
        if interned:
            # The receiver address is a per-node constant, so its
            # mask only grows: decode just the added bits per step
            # and accumulate the dispatch set.  ``sorted`` re-imposes
            # the qualified-name order the per-step rebuild produced,
            # so it only reruns when a new method actually appears.
            w.w(ind, "values_tab = table._values")
            w.w(ind, "dispatch_state = [0, {}, ()]")
        w.w(ind, "")
        w.w(ind, "def step(config, store, reads, recorder):")
        b = ind + 1
        w.w(b, f"reads.add({recv})")
        w.w(b, f"receivers = store.get_mask({recv})")
        for i, addr in enumerate(arg_addrs):
            w.w(b, f"reads.add({addr!r})")
            w.w(b, f"m{i} = store.get_mask({addr!r})")
        if interned:
            w.w(b, "if receivers != dispatch_state[0]:")
            w.w(b + 1, "added = receivers & ~dispatch_state[0]")
            w.w(b + 1, "dispatch_state[0] = receivers")
            w.w(b + 1, "methods = dispatch_state[1]")
            w.w(b + 1, "grew = False")
            w.w(b + 1, "while added:")
            w.w(b + 2, "low = added & -added")
            w.w(b + 2, "added ^= low")
            w.w(b + 2, "method = dispatch_memo.get(low, MISSING)")
            w.w(b + 2, "if method is MISSING:")
            w.w(b + 3, "value = values_tab[low.bit_length() - 1]")
            w.w(b + 3, "method = None")
            w.w(b + 3, "if isinstance(value, PObj):")
            w.w(b + 4, f"found = lookup_method(value.classname, "
                       f"{exp.method!r})")
            w.w(b + 4, "if found is not None "
                       f"and len(found.params) == {nargs}:")
            w.w(b + 5, "method = found")
            w.w(b + 3, "dispatch_memo[low] = method")
            w.w(b + 2, "if method is not None:")
            w.w(b + 3, "name = method.qualified_name")
            w.w(b + 3, "if name not in methods:")
            w.w(b + 4, "methods[name] = method")
            w.w(b + 4, "grew = True")
            w.w(b + 1, "if grew:")
            w.w(b + 2, "dispatch_state[2] = sorted(methods.items())")
            w.w(b, "dispatch = dispatch_state[2]")
        else:
            w.w(b, "methods = {}")
            w.w(b, "for value in decode_iter(receivers):")
            w.w(b + 1, "method = dispatch_memo.get(value, MISSING)")
            w.w(b + 1, "if method is MISSING:")
            w.w(b + 2, "method = None")
            w.w(b + 2, "if isinstance(value, PObj):")
            w.w(b + 3, f"found = lookup_method(value.classname, "
                       f"{exp.method!r})")
            w.w(b + 3, "if found is not None "
                       f"and len(found.params) == {nargs}:")
            w.w(b + 4, "method = found")
            w.w(b + 2, "dispatch_memo[value] = method")
            w.w(b + 1, "if method is not None:")
            w.w(b + 2, "methods[method.qualified_name] = method")
            w.w(b, "dispatch = sorted(methods.items())")
        w.w(b, "kont_ptr = config.kont_ptr")
        w.w(b, "succs = []")
        w.w(b, "for qualified_name, method in dispatch:")
        l = b + 1
        w.w(l, "kont_bit = kont_bits.get(kont_ptr)")
        w.w(l, "if kont_bit is None:")
        w.w(l + 1, f"kont_bit = bit_for(PKont({stmt.var!r}, "
                   f"following, (), (), kont_ptr))")
        w.w(l + 1, "kont_bits[kont_ptr] = kont_bit")
        w.w(l, "plan = plan_memo.get(qualified_name)")
        w.w(l, "if plan is None:")
        w.w(l + 1, "kont_addr = (qualified_name, ())")
        w.w(l + 1, "param_addrs = tuple((name, ())"
                   " for name in method.param_names())")
        if interned:
            w.w(l + 1, "plan = (kont_addr, param_addrs,")
            w.w(l + 1, "        PConfig(method.body[0], (), "
                       "kont_addr, ()),")
            w.w(l + 1, "        new_shadow(store, (kont_addr, "
                       "('this', ())) + param_addrs))")
        else:
            w.w(l + 1, "plan = (kont_addr, param_addrs,")
            w.w(l + 1, "        PConfig(method.body[0], (), "
                       "kont_addr, ()))")
        w.w(l + 1, "plan_memo[qualified_name] = plan")
        if interned:
            w.w(l, "kont_addr, param_addrs, succ, shadow = plan")
        else:
            w.w(l, "kont_addr, param_addrs, succ = plan")
        w.w(l, "if qualified_name not in recorded:")
        w.w(l + 1, "recorded.add(qualified_name)")
        w.w(l + 1, "recorder.invoke_targets.setdefault(")
        w.w(l + 1, f"    {label}, set()).add(qualified_name)")
        w.w(l + 1, "recorder.method_contexts.setdefault(")
        w.w(l + 1, "    qualified_name, set()).add(())")
        if interned:
            names = ["kont_bit", "receivers"] + \
                [f"m{i}" for i in range(nargs)]
            targets = ["kont_addr", "('this', ())"] + \
                [f"param_addrs[{i}]" for i in range(nargs)]
            _emit_lane_diff(w, l, names, targets)
        else:
            w.w(l, "joins = [(kont_addr, kont_bit)]")
            w.w(l, "if receivers:")
            w.w(l + 1, "joins.append(((\"this\", ()), receivers))")
            for i in range(nargs):
                w.w(l, f"if m{i}:")
                w.w(l + 1, f"joins.append((param_addrs[{i}], m{i}))")
            w.w(l, "succs.append((succ, joins))")
        w.w(b, "return succs")
        w.w(ind, "return step")

    w.w(1, "if table.interned:")
    body(2, True)
    body(1, False)


def _fj_new(w: _Writer, program, stmt, exp):
    arg_addrs = tuple((arg, _EMPTY) for arg in exp.args)
    tgt = repr((stmt.var, _EMPTY))
    wiring = program.ctor_wiring[exp.classname]
    dead = program.succ(stmt.label) is None
    w.w(1, "bit_for = table.bit_for")
    w.w(1, f"obj = PObj({exp.classname!r}, {stmt.label}, ())")
    w.w(1, "obj_cell = []")
    if dead:
        w.w(1, "")
        w.w(1, "def step(config, store, reads, recorder):")
        for i, addr in enumerate(arg_addrs):
            w.w(2, f"reads.add({addr!r})")
            w.w(2, f"m{i} = store.get_mask({addr!r})")
        w.w(2, "recorder.objects.add(obj)")
        w.w(2, "if not obj_cell:")
        w.w(3, "obj_cell.append(bit_for(obj))")
        w.w(2, "return []")
        w.w(1, "return step")
        return
    # ``emitted`` holds per-wiring-slot unions of the masks already
    # joined (``None`` until a slot's first join; the last slot flags
    # the constant object-bit join), and ``succ_memo`` rows are
    # ``[succ, yielded]``.  A step where no slot grows and this
    # config has already yielded returns no successors at all —
    # every join would be growthless and the successor is seen.
    w.w(1, "succ_memo = {}")
    w.w(1, f"emitted = [None] * {len(wiring) + 1}")
    w.w(1, "")
    w.w(1, "def step(config, store, reads, recorder):")
    for i, addr in enumerate(arg_addrs):
        w.w(2, f"reads.add({addr!r})")
        w.w(2, f"m{i} = store.get_mask({addr!r})")
    w.w(2, "recorder.objects.add(obj)")
    w.w(2, "if not obj_cell:")
    w.w(3, "obj_cell.append(bit_for(obj))")
    w.w(2, f"fresh = emitted[{len(wiring)}] is None")
    for slot, (fieldname, param_index) in enumerate(wiring):
        w.w(2, f"if m{param_index} and not fresh:")
        w.w(3, f"e = emitted[{slot}]")
        w.w(3, f"if e is None or m{param_index} | e != e:")
        w.w(4, "fresh = True")
    w.w(2, "kont_ptr = config.kont_ptr")
    w.w(2, "entry = succ_memo.get(kont_ptr)")
    w.w(2, "if entry is None:")
    w.w(3, "entry = [PConfig(following, (), kont_ptr, ()), False]")
    w.w(3, "succ_memo[kont_ptr] = entry")
    w.w(2, "if not fresh and entry[1]:")
    w.w(3, "return []")
    w.w(2, "joins = []")
    for slot, (fieldname, param_index) in enumerate(wiring):
        # Receiver-insensitive: the field key is the bare field name.
        w.w(2, f"if m{param_index}:")
        w.w(3, f"joins.append((({fieldname!r}, ()), m{param_index}))")
        w.w(3, f"e = emitted[{slot}]")
        w.w(3, f"emitted[{slot}] = "
               f"m{param_index} if e is None else e | m{param_index}")
    w.w(2, f"joins.append(({tgt}, obj_cell[0]))")
    w.w(2, f"emitted[{len(wiring)}] = True")
    w.w(2, "entry[1] = True")
    w.w(2, "return [(entry[0], joins)]")
    w.w(1, "return step")
