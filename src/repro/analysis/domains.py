"""Abstract domains shared by the functional analyses.

Values (paper §3.4, extended with pairs and a basic top):

* :class:`KClo` — a shared-environment abstract closure ``(lam, β̂)``,
  where β̂ maps each variable to its binding *time* (the paper's
  footnote 3: since ``alloc(v, t) = (v, t)``, an environment is fully
  determined by the times alone).
* :class:`FClo` — a flat-environment abstract closure ``(lam, ρ̂)``,
  where ρ̂ is a bounded tuple of call-site labels (§5.2).
* :class:`SClo` / :class:`SCont` — the pushdown-summary closures: an
  environment-less user closure and a frame-restoring continuation
  closure (see :class:`repro.analysis.kernel.SummaryEnv`).
* :data:`BASIC` — the single abstraction of every non-closure,
  non-pair value (numbers, booleans, strings, symbols, nil, void).
* :class:`APair` — a field-sensitive abstract cons cell holding the
  *addresses* of its components.

The :class:`AbsStore` is the single-threaded store of §3.7: a monotone
map from addresses to value sets whose :meth:`~AbsStore.join` reports
whether the store grew (driving dependency re-enqueueing).  The
immutable :class:`FrozenStore` backs the naive §3.6 engine, where every
abstract state carries its own store.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Iterable, Iterator

from repro.cps.syntax import Lam

#: An abstract time: the last ≤ k call-site labels (§3.5.1).
Time = tuple[int, ...]

#: An abstract flat environment: the top ≤ m frames (§5.3).
FlatEnvAbs = tuple[int, ...]

#: Abstract addresses are (name, context) pairs; ``name`` is a variable
#: or a synthetic pair-field token like ``"car@17"``.
Addr = tuple[str, Hashable]


def first_k(k: int, labels: tuple[int, ...]) -> tuple[int, ...]:
    """``firstk`` from the paper: keep the most recent *k* entries."""
    return labels[:k]


class BasicValue:
    """The abstraction of every non-closure, non-pair runtime value."""

    _instance = None

    def __new__(cls):
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "⊤basic"

    def __reduce__(self):
        return (BasicValue, ())


BASIC = BasicValue()


@dataclass(frozen=True, slots=True, eq=False)
class AConst:
    """An exactly-known atomic constant (a program literal).

    Program literals are finitely many, so tracking them exactly keeps
    the domain finite while letting the analyses distinguish, e.g.,
    ``(id 3)`` from ``(id 4)`` — the observable in the paper's §6
    identity example.  Primitive *results* still abstract to
    :data:`BASIC`; quoted list structure also stays :data:`BASIC`.

    Equality is *datum-type-sensitive*: ``AConst(True) != AConst(1)``
    and ``AConst(False) != AConst(0)``, even though Python's ``bool``
    compares equal to ``int``.  Booleans and numbers are distinct
    Scheme data with different truthiness, and the hash-consing table
    must never hand ``#f`` the bit of ``0`` (whose truthiness differs).
    """

    datum: object

    def __eq__(self, other) -> bool:
        return isinstance(other, AConst) and \
            type(other.datum) is type(self.datum) and \
            other.datum == self.datum

    def __hash__(self) -> int:
        return hash((type(self.datum).__name__, self.datum))

    def __repr__(self) -> str:
        if self.datum is True:
            return "#t"
        if self.datum is False:
            return "#f"
        return repr(str(self.datum)) if isinstance(self.datum, str) \
            else repr(self.datum)


def abstract_literal(datum: object) -> "AConst | BasicValue":
    """The abstraction of a ``Lit`` node's datum."""
    if isinstance(datum, (bool, int)):
        return AConst(datum)
    if isinstance(datum, str):  # strings and symbols
        return AConst(str(datum))
    return BASIC  # quoted structure (lists) collapses to basic


def maybe_truthy(value: "AbsVal") -> bool:
    """Could this abstract value be a concrete non-#f value?"""
    if isinstance(value, AConst):
        return value.datum is not False
    return True


def maybe_falsy(value: "AbsVal") -> bool:
    """Could this abstract value be the concrete value #f?"""
    if isinstance(value, AConst):
        return value.datum is False
    return value is BASIC


class BEnv:
    """An immutable abstract binding environment: variable → time.

    Hash/equality are over the sorted item tuple; lookups go through a
    dict built once at construction (environments are read far more
    often than they are created).
    """

    __slots__ = ("_items", "_dict", "_hash")

    def __init__(self, items: Iterable[tuple[str, Time]] = ()):
        pairs = tuple(sorted(items))
        self._items = pairs
        self._dict = dict(pairs)
        self._hash = hash(pairs)

    def __getitem__(self, name: str) -> Time:
        return self._dict[name]

    def get(self, name: str, default=None):
        return self._dict.get(name, default)

    def __contains__(self, name: str) -> bool:
        return name in self._dict

    def __iter__(self) -> Iterator[str]:
        return iter(self._dict)

    def items(self) -> tuple[tuple[str, Time], ...]:
        return self._items

    def extend(self, names: Iterable[str], time: Time) -> "BEnv":
        """Bind every name in *names* at *time*."""
        updated = dict(self._dict)
        for name in names:
            updated[name] = time
        return BEnv(updated.items())

    def restrict(self, names: frozenset[str]) -> "BEnv":
        """Keep only *names* (free-variable restriction at closure
        creation)."""
        return BEnv((name, time) for name, time in self._items
                    if name in names)

    def __eq__(self, other) -> bool:
        return isinstance(other, BEnv) and self._items == other._items

    def __hash__(self) -> int:
        return self._hash

    def __len__(self) -> int:
        return len(self._items)

    def __repr__(self) -> str:
        inner = ", ".join(f"{name}→{time}" for name, time in self._items)
        return "{" + inner + "}"


EMPTY_BENV = BEnv()


@dataclass(frozen=True, slots=True)
class KClo:
    """Shared-environment abstract closure (k-CFA)."""

    lam: Lam
    benv: BEnv

    def __repr__(self) -> str:
        return f"clo[{self.lam.label}]{self.benv!r}"


@dataclass(frozen=True, slots=True)
class FClo:
    """Flat-environment abstract closure (m-CFA / poly k-CFA)."""

    lam: Lam
    env: FlatEnvAbs

    def __repr__(self) -> str:
        return f"fclo[{self.lam.label}]{list(self.env)}"


@dataclass(frozen=True, slots=True)
class SClo:
    """Summary-rep abstract *user* closure: the lambda alone.

    The pushdown summarization rep (CFA2 / the pushdown line cited in
    PAPERS.md) keeps no environment inside a user closure — captured
    variables live at name-keyed heap addresses instead, so the same
    lambda reaching a call site from two different creation contexts
    is *one* abstract operator.  That collapse is what keeps the
    entry-summary table polynomial on the Van Horn–Mairson ladder.
    """

    lam: Lam

    def __repr__(self) -> str:
        return f"sclo[{self.lam.label}]"


@dataclass(frozen=True, slots=True)
class SCont:
    """Summary-rep abstract *continuation* closure ``(lam, entry)``.

    Unlike :class:`SClo`, a continuation records the frame (function
    entry) it was created in; entering it **restores** that frame —
    the return edge of the summary machine.  Because every function
    entry binds its own continuation parameter, return flow is matched
    per entry: this is what separates the two call sites of the
    paper's §6 identity example.
    """

    lam: Lam
    env: tuple

    def __repr__(self) -> str:
        return f"scont[{self.lam.label}]@{list(self.env)}"


@dataclass(frozen=True, slots=True)
class APair:
    """Field-sensitive abstract cons cell (addresses of car/cdr)."""

    car: Addr
    cdr: Addr

    def __repr__(self) -> str:
        return f"pair[{self.car}, {self.cdr}]"


#: An abstract value.
AbsVal = object  # KClo | FClo | SClo | SCont | APair | BasicValue

EMPTY: frozenset = frozenset()


class AbsStore:
    """The single-threaded monotone store (§3.7).

    ``join`` returns True when the store actually grew at the address,
    which the engines use to re-enqueue reader configurations.

    Flow sets are stored as *masks* of a per-store value table
    (:mod:`repro.analysis.interning`): each distinct abstract value is
    interned to one bit of a Python int on first sight, so joining is
    ``old | new`` and growth detection a single int comparison.  The
    mask-level API (:meth:`get_mask`, :meth:`join_mask`,
    :meth:`mask_items`) is the hot path the engines and machines use;
    :meth:`get`/:meth:`items` decode back to frozensets of values so
    every external consumer — results, reports, soundness checks —
    sees exactly the pre-interning representation.

    The store keeps *per-address version counters* for the shared
    delta-propagating engine: every growing join bumps the address's
    version and the store-wide :attr:`clock`, so a driver can compare a
    configuration's read-set snapshot against the current versions and
    tell exactly which addresses changed — without rescanning value
    sets.
    """

    __slots__ = ("table", "_empty", "_map", "_versions", "join_count",
                 "clock")

    def __init__(self, table=None):
        if table is None:
            from repro.analysis.interning import ValueTable
            table = ValueTable()
        #: The value table interning this store's flow sets.
        self.table = table
        self._empty = table.empty
        self._map: dict[Addr, object] = {}  # addr -> mask
        self._versions: dict[Addr, int] = {}
        self.join_count = 0
        #: Total number of growing joins — a store-wide logical clock.
        self.clock = 0

    def get(self, addr: Addr) -> frozenset:
        """The decoded flow set at *addr* (empty set if unbound)."""
        return self.table.decode(self._map.get(addr, self._empty))

    def get_mask(self, addr: Addr):
        """The raw mask at *addr* — the machines' read primitive."""
        return self._map.get(addr, self._empty)

    def version(self, addr: Addr) -> int:
        """How many times the store has grown at *addr* (0 = never)."""
        return self._versions.get(addr, 0)

    def join(self, addr: Addr, values: Iterable[AbsVal]) -> bool:
        """Join a collection of abstract values (interning them)."""
        return self.join_mask(addr, self.table.encode(values))

    def join_mask(self, addr: Addr, mask) -> bool:
        """Join a pre-encoded mask; True when the store grew."""
        if not mask:
            return False
        self.join_count += 1
        current = self._map.get(addr)
        if current is None:
            self._map[addr] = mask
            self._grew(addr)
            return True
        merged = current | mask
        if type(merged) is int:
            if merged == current:
                return False
        elif len(merged) == len(current):  # frozenset (PlainTable)
            return False
        self._map[addr] = merged
        self._grew(addr)
        return True

    def _grew(self, addr: Addr) -> None:
        self._versions[addr] = self._versions.get(addr, 0) + 1
        self.clock += 1

    def clear_addresses(self, addrs: Iterable[Addr]) -> int:
        """Drop the flow sets at *addrs* (incremental re-analysis).

        The only non-monotone operation the store admits, and it is
        reserved for :mod:`repro.analysis.incremental`: a cleared
        address is one whose surviving writers are about to be
        re-enqueued, so the removal is repaired by the next fixpoint
        run.  Version counters are bumped, not reset — an address's
        version history spans edits.
        """
        removed = 0
        for addr in addrs:
            if self._map.pop(addr, None) is not None:
                removed += 1
                self._grew(addr)
        return removed

    def addresses(self) -> Iterable[Addr]:
        return self._map.keys()

    def items(self) -> Iterable[tuple[Addr, frozenset]]:
        decode = self.table.decode
        return [(addr, decode(mask)) for addr, mask in self._map.items()]

    def mask_items(self) -> Iterable[tuple[Addr, object]]:
        return self._map.items()

    def __len__(self) -> int:
        return len(self._map)

    def total_values(self) -> int:
        """Σ |store(a)| — the lattice-position measure for ablations."""
        mask_len = self.table.mask_len
        return sum(mask_len(mask) for mask in self._map.values())

    def as_dict(self) -> dict[Addr, frozenset]:
        return dict(self.items())


class FrozenStore:
    """An immutable store for the naive §3.6 state-space engine.

    Abstract states hash their store, so the representation is a sorted
    tuple of (address, value-set) pairs with a cached hash.  Joining
    returns a fresh store; this is deliberately the expensive
    representation the paper's complexity bound talks about.
    """

    __slots__ = ("_items", "_dict", "_hash")

    def __init__(self, items: Iterable[tuple[Addr, frozenset]] = ()):
        kept = tuple(sorted(
            ((addr, values) for addr, values in items if values),
            key=lambda pair: repr(pair[0])))
        self._items = kept
        self._dict = dict(kept)
        self._hash = hash(kept)

    def get(self, addr: Addr) -> frozenset:
        return self._dict.get(addr, EMPTY)

    def join(self, addr: Addr, values: Iterable[AbsVal]) -> "FrozenStore":
        values = frozenset(values)
        current = self._dict.get(addr, EMPTY)
        merged = current | values
        if merged == current:
            return self
        updated = dict(self._dict)
        updated[addr] = merged
        return FrozenStore(updated.items())

    def join_many(self,
                  joins: Iterable[tuple[Addr, Iterable[AbsVal]]]
                  ) -> "FrozenStore":
        store = self
        for addr, values in joins:
            store = store.join(addr, values)
        return store

    def items(self) -> tuple[tuple[Addr, frozenset], ...]:
        return self._items

    def __eq__(self, other) -> bool:
        return isinstance(other, FrozenStore) and \
            self._items == other._items

    def __hash__(self) -> int:
        return self._hash

    def __len__(self) -> int:
        return len(self._items)

    def widen(self, other: "FrozenStore") -> "FrozenStore":
        """Least upper bound of two stores."""
        updated = dict(self._dict)
        for addr, values in other.items():
            updated[addr] = updated.get(addr, EMPTY) | values
        return FrozenStore(updated.items())
