"""The shared fixpoint engine behind every analyzer in the repo.

The paper's complexity argument lives in *how the fixpoint is driven*,
not in any one transition relation: the single-threaded store worklist
(§3.7) is what turns the EXPTIME-hard functional analysis into the
PTIME m-CFA family, while the naive reachable-*states* engine (§3.6)
is what the exponential lower bound actually talks about.  Before this
module existed each analyzer (k-CFA, m-CFA, poly k-CFA, 0CFA, ΓCFA and
the Featherweight Java machines) hand-rolled its own copy of those two
loops; the machines themselves later collapsed the same way into the
policy-parameterized :mod:`repro.analysis.kernel`.  There is exactly
one of each driver:

* :func:`run_single_store` — the delta-propagating §3.7 driver.  One
  global monotone :class:`~repro.analysis.domains.AbsStore` with
  per-address version counters; a
  :class:`~repro.util.fixpoint.DependencyWorklist` that re-enqueues a
  configuration only when an address it *read* grows, handing back the
  exact set of changed addresses (the delta) rather than forcing a
  full re-scan.

* :func:`run_naive` — the §3.6 driver.  Every abstract state carries
  its own immutable :class:`~repro.analysis.domains.FrozenStore`; an
  optional GC policy (abstract garbage collection, ΓCFA) restricts
  each successor store to its reachable addresses before dedup.

A *machine* is anything satisfying the :class:`Machine` protocol: it
boots an initial configuration against a store and exposes one
``step`` transfer function returning ``(successor, joins)`` pairs.
Engine-level improvements — worklist order, budgets, delta statistics,
future parallel or incremental drivers — land here once and every
analysis benefits at once.

The pushdown-summary rep (:class:`~repro.analysis.kernel.SummaryEnv`)
needs **no extra propagation pass** on top of :func:`run_single_store`:
an exit summary is just a join into the caller's continuation-parameter
address, so when an entry's return value grows, the delta worklist
re-enqueues exactly the configurations that read it — summary
propagation *is* delta propagation.
"""

from __future__ import annotations

import time as _time
from dataclasses import dataclass, field
from typing import (
    Callable, Generic, Hashable, Protocol, TypeVar, runtime_checkable,
)

from repro.analysis.domains import AbsStore, FrozenStore
from repro.util.budget import Budget
from repro.util.fixpoint import DependencyWorklist, Worklist

C = TypeVar("C", bound=Hashable)  # configuration type


@runtime_checkable
class Machine(Protocol):
    """What the engine needs from an abstract transition relation.

    Implementations in this repo: the policy-parameterized
    :class:`~repro.analysis.kernel.Kernel` (behind every CPS
    analysis), :class:`~repro.fj.kcfa.FJKCFAMachine` and
    :class:`~repro.fj.poly.FJFlatMachine`.
    """

    def boot(self, store: AbsStore):
        """Seed *store* if needed; return the initial configuration."""
        ...

    def step(self, config, store, reads: set, recorder
             ) -> "list[tuple[object, tuple]]":
        """Apply the transfer function to one configuration.

        Must add every address it reads to *reads* and record monotone
        facts on *recorder*; returns ``(successor-config, joins)``
        pairs without mutating the store — the engine owns all joins.
        """
        ...


def specialize(machine: "Machine", enabled: bool = True) -> "Machine":
    """The per-policy specialization stage.

    Given a generic machine, return the staged step loop its policy's
    declared axes admit (:mod:`repro.analysis.specialize`): context-free
    flat policies get a fully folded kernel with no context tuples or
    free-variable copy reads, shared-env policies get pre-bound address
    constructors and a monomorphic eval/apply dispatch.  Falls back to
    *machine* itself when nothing applies (or ``enabled`` is False —
    the ``--no-specialize`` escape hatch).  Specialized machines are
    trajectory-identical to their generic originals; the golden suite
    and ``tests/test_specialize.py`` gate that byte-for-byte.
    """
    if not enabled:
        return machine
    from repro.analysis.specialize import specialize_machine
    return specialize_machine(machine) or machine


def codegen_stage(machine: "Machine", enabled: bool = True,
                  cache=None) -> "Machine | None":
    """The source-level codegen stage, one rung past specialization.

    Given a generic machine whose policy admits it
    (:mod:`repro.analysis.codegen`: flat-env kernels, and the flat FJ
    machine under a receiver-insensitive context-free policy), return
    a machine that ``exec``-s *generated Python source* — one
    straight-line step function per program node with addresses,
    successor configurations and dispatch plans inlined as literals,
    and (for the context-free kinds) bit-parallel transfer blocks that
    collapse a successor's per-address joins into one packed-int
    compare.  Returns ``None`` when the policy is not covered or
    ``enabled`` is False — callers then fall back to
    :func:`specialize`.  Codegen machines honor the same byte- and
    trajectory-identity contract as specialized ones; *cache* is the
    :class:`~repro.cache.CodegenCache` to draw generated modules from
    (``None`` = the process default, on disk next to the result
    cache).

    Note: codegen steps may *omit* joins they prove cannot grow the
    store, which the single-store driver cannot observe — except
    through ``options.track``'s writers map.  Tracked runs (the
    incremental sessions) always drive generic machines, so the
    stages never meet; keep it that way.
    """
    if not enabled:
        return None
    from repro.analysis.codegen import codegen_machine
    return codegen_machine(machine, cache)


def machine_path(machine: "Machine") -> str:
    """``codegen:<name>``, ``specialized:<name>`` or ``generic`` —
    which step loop ran.  The bench runner records this per row."""
    name = getattr(machine, "specialization", None)
    if not name:
        return "generic"
    stage = getattr(machine, "stage", "specialized")
    return f"{stage}:{name}"


@dataclass(frozen=True, slots=True)
class EngineOptions:
    """Knobs shared by every driver.

    * ``budget`` — step/wall-clock limits
      (:class:`~repro.util.budget.Budget`); ``None`` means unlimited.
    * ``lifo`` — depth-first exploration for the naive driver (the
      single-store driver is inherently order-insensitive: any order
      reaches the same least fixpoint).
    * ``collect`` — the GC policy for the naive driver: a callable
      ``(config, frozen_store) -> frozen_store`` applied to every
      successor state before dedup (abstract garbage collection);
      ``None`` disables collection.
    * ``table_factory`` — constructs the per-run value table
      (:mod:`repro.analysis.interning`).  ``None`` means the interned
      bitset representation (:class:`~repro.analysis.interning.
      ValueTable`); pass :class:`~repro.analysis.interning.PlainTable`
      to run the same machine in the pre-interning object domain.
    * ``track`` — maintain the write/discovery maps incremental
      re-analysis needs (:class:`FixpointState` on the run).  Off by
      default: the extra bookkeeping never perturbs the trajectory,
      but it costs a dict insert per join and per successor edge.
    """

    budget: Budget | None = None
    lifo: bool = False
    collect: Callable[[object, FrozenStore], FrozenStore] | None = None
    table_factory: Callable[[], object] | None = None
    track: bool = False


@dataclass(slots=True)
class FixpointState:
    """The dependency graph a tracked single-store run leaves behind.

    :mod:`repro.analysis.incremental` replays this after an edit:
    ``readers`` says which configurations to re-enqueue when an
    address is cleared, ``writers`` says which kept configurations
    must re-derive their contributions to a cleared address, and
    ``discovered`` (successor → its producers) says which retired
    configurations may be re-produced by a kept one.  All maps hold
    the same configuration objects as ``seen``.
    """

    seen: set = field(default_factory=set)
    readers: dict = field(default_factory=dict)    # addr → {configs}
    writers: dict = field(default_factory=dict)    # addr → {configs}
    discovered: dict = field(default_factory=dict)  # succ → {preds}


@dataclass
class EngineRun(Generic[C]):
    """What a driver hands back to the analyzer wrapper.

    The wrapper turns this into its public result type
    (:class:`~repro.analysis.results.AnalysisResult` or
    :class:`~repro.fj.kcfa.FJResult`); the engine itself is agnostic
    about what was analyzed.
    """

    store: AbsStore                  # global store (naive: merged)
    configs: frozenset               # reachable configurations
    steps: int                       # transfer-function applications
    elapsed: float                   # driver wall-clock seconds
    state_count: int = 0             # naive driver only: |states|
    requeues: int = 0                # dirty-triggered re-enqueues
    delta_addresses: int = 0         # Σ |delta| over re-visited configs
    recorder: object = None
    states: frozenset = field(default_factory=frozenset)
    fixpoint: FixpointState | None = None  # only with options.track


def run_single_store(machine: Machine, recorder,
                     options: EngineOptions | None = None,
                     resume_store: AbsStore | None = None,
                     resume_state: FixpointState | None = None,
                     seeds: "list | None" = None) -> EngineRun:
    """Drive *machine* to fixpoint over one global store (§3.7).

    The delta-propagating loop:

    1. pop a configuration together with the exact set of addresses
       whose growth re-enqueued it (``None`` on a first visit) — no
       re-scan of the queue or the store is ever needed to work out
       *why* a configuration is being re-visited;
    2. apply the transfer function, record its read set, join its
       store writes (each growing join bumps the address's version
       counter), and dirty exactly the addresses that grew.

    Raises :class:`~repro.errors.AnalysisTimeout` when the budget is
    exceeded, like every analyzer built on it.

    With ``resume_store``/``resume_state``/``seeds`` the driver
    restarts *mid-fixpoint* instead of from ⊥: the store and the
    dependency maps are adopted as-is (the machine is still booted
    against the store so it re-binds its table-derived constants, but
    the boot configuration it returns is ignored — the caller chose
    the seeds), and only the seed configurations are enqueued.  This
    is the warm path of :mod:`repro.analysis.incremental`; monotone
    chaotic iteration from a sound intermediate point converges to the
    same least fixpoint as a cold run.
    """
    options = options or EngineOptions()
    budget = options.budget or Budget()
    budget.ensure_started()
    worklist: DependencyWorklist = DependencyWorklist()
    if resume_store is not None:
        store = resume_store
        machine.boot(store)  # re-bind table constants; config unused
        state = resume_state or FixpointState()
        worklist._seen = state.seen
        worklist._readers = state.readers
        for seed in seeds or ():
            if seed not in worklist._pending:
                worklist._seen.add(seed)
                worklist._pending.add(seed)
                worklist._queue.append(seed)
    else:
        factory = options.table_factory
        store = AbsStore(factory() if factory is not None else None)
        state = FixpointState() if options.track else None
        worklist.add(machine.boot(store))
        if state is not None:
            # The worklist's own seen/readers maps *are* the tracked
            # state — share them instead of mirroring every insert.
            state.seen = worklist._seen
            state.readers = worklist._readers
    tracking = state is not None
    if tracking:
        writers = state.writers
        discovered = state.discovered
    # The loop below inlines the worklist's pop/record/add/dirty
    # operations against its internals — the driver and the worklist
    # are one subsystem, and at ~5 bookkeeping operations per transfer
    # step the call overhead is measurable on every analysis.  The
    # public :class:`~repro.util.fixpoint.DependencyWorklist` methods
    # remain the reference semantics (and are property-tested); this
    # loop must mirror them exactly, or trajectories (and therefore
    # ``steps`` counts diffed across engine paths) drift.
    join_mask = store.join_mask
    machine_step = machine.step
    queue = worklist._queue
    pending = worklist._pending
    seen = worklist._seen
    readers = worklist._readers
    delta_map = worklist._delta
    # The budget check is likewise inlined (one method call per step
    # otherwise); ``charge`` stays the reference semantics, and the
    # unlimited case pays a single truth test per step.
    charge = budget.charge
    limited = budget.max_steps is not None \
        or budget.max_seconds is not None
    requeued = 0
    steps = 0
    delta_addresses = 0
    started = _time.perf_counter()
    while queue:
        if limited:
            charge()
        config = queue.popleft()
        pending.discard(config)
        delta = delta_map.pop(config, None)
        if delta is not None:
            delta_addresses += len(delta)
        steps += 1
        reads: set = set()
        succs = machine_step(config, store, reads, recorder)
        if reads:
            for addr in reads:
                addr_readers = readers.get(addr)
                if addr_readers is None:
                    readers[addr] = {config}
                else:
                    addr_readers.add(config)
        changed = []
        for succ, joins in succs:
            if joins:
                for addr, mask in joins:
                    if mask:
                        if tracking:
                            addr_writers = writers.get(addr)
                            if addr_writers is None:
                                writers[addr] = {config}
                            else:
                                addr_writers.add(config)
                        if join_mask(addr, mask):
                            changed.append(addr)
            if succ not in seen:
                seen.add(succ)
                pending.add(succ)
                queue.append(succ)
            if tracking:
                preds = discovered.get(succ)
                if preds is None:
                    discovered[succ] = {config}
                else:
                    preds.add(config)
        for addr in changed:
            for reader in readers.get(addr, ()):
                if reader not in pending:
                    pending.add(reader)
                    queue.append(reader)
                    requeued += 1
                reader_delta = delta_map.get(reader)
                if reader_delta is None:
                    delta_map[reader] = {addr}
                else:
                    reader_delta.add(addr)
    worklist.requeue_count = requeued
    elapsed = _time.perf_counter() - started
    return EngineRun(
        store=store, configs=worklist.seen, steps=steps,
        elapsed=elapsed, requeues=worklist.requeue_count,
        delta_addresses=delta_addresses, recorder=recorder,
        fixpoint=state)


@dataclass(frozen=True, slots=True)
class NaiveState(Generic[C]):
    """A full §3.6 abstract state: configuration *plus* store."""

    config: C
    store: FrozenStore


class _FrozenMaskView:
    """Adapts an immutable :class:`FrozenStore` to the machines' mask
    reads.

    The machines are mask-native (they read flow sets through
    ``get_mask``); the naive engine's states deliberately keep the
    expensive object representation the §3.6 complexity bound talks
    about.  This view encodes on read — memoized by the table, since
    naive states alias the same frozensets heavily — so one machine
    implementation serves both drivers.
    """

    __slots__ = ("table", "frozen")

    def __init__(self, table):
        self.table = table
        self.frozen: FrozenStore | None = None

    def get(self, addr) -> frozenset:
        return self.frozen.get(addr)

    def get_mask(self, addr):
        return self.table.encode(self.frozen.get(addr))


def run_naive(machine: Machine, recorder,
              options: EngineOptions | None = None) -> EngineRun:
    """Drive *machine* over the reachable-states space (§3.6).

    Deliberately the expensive engine — states carry whole stores, so
    the system space is P(Σ̂) and can explode even for k = 0, which is
    the paper's point.  Use on small terms, with a budget.

    With ``options.collect`` set this is ΓCFA: every successor store is
    restricted to the addresses reachable from its configuration before
    the state is deduplicated, trading the single-threaded store for
    per-state stores and buying precision.
    """
    options = options or EngineOptions()
    budget = options.budget or Budget()
    budget.ensure_started()
    collect = options.collect
    factory = options.table_factory
    seed = AbsStore(factory() if factory is not None else None)
    table = seed.table
    decode = table.decode
    initial = machine.boot(seed)
    frozen_seed = FrozenStore(seed.items())
    if collect is not None:
        frozen_seed = collect(initial, frozen_seed)
    view = _FrozenMaskView(table)
    worklist: Worklist[NaiveState] = Worklist(lifo=options.lifo)
    worklist.add(NaiveState(initial, frozen_seed))
    steps = 0
    started = _time.perf_counter()
    while worklist:
        budget.charge()
        state = worklist.pop()
        steps += 1
        reads: set = set()
        view.frozen = state.store
        succs = machine.step(state.config, view, reads, recorder)
        for succ, joins in succs:
            next_store = state.store.join_many(
                (addr, decode(mask)) for addr, mask in joins)
            if collect is not None:
                next_store = collect(succ, next_store)
            worklist.add(NaiveState(succ, next_store))
    elapsed = _time.perf_counter() - started
    states = worklist.seen
    merged = AbsStore()
    configs = set()
    for state in states:
        configs.add(state.config)
        for addr, values in state.store.items():
            merged.join(addr, values)
    return EngineRun(
        store=merged, configs=frozenset(configs), steps=steps,
        elapsed=elapsed, state_count=len(states), recorder=recorder,
        states=states)
