"""The AAM kernel: one CPS transfer function behind every analysis.

The paper's central observation is that 0CFA, k-CFA, m-CFA and
"naive polynomial k-CFA" are *one* abstract machine that varies only
along the context axis — how times are ticked, how addresses are
allocated, and whether environments are shared per-variable maps
(§3.4) or flat base contexts with free-variable copying (§5.2).  This
module makes that observation executable: :class:`Kernel` implements
the eval/apply transfer function exactly once, and everything
analysis-specific lives in an *environment representation* —
:class:`SharedEnv`, :class:`FlatEnv` or :class:`SummaryEnv` — carrying
a context policy (:mod:`repro.analysis.policies`).

Before this module, ``kcfa.py`` and ``flat_machine.py`` each hand-
rolled the whole transition relation; every engine or interning change
had to be ported machine-by-machine.  Now a new analysis is a policy
value handed to an env rep — a data point, not a module — and the
golden differential suite (``tests/test_golden_reports.py``) pins the
kernel to byte-identical reports against the pre-kernel seed.

The Featherweight Java machines (:mod:`repro.fj.kcfa`,
:mod:`repro.fj.poly`) keep their own syntax-directed step rules — FJ
is not CPS — but draw their tick/alloc behaviour from the same policy
objects and run on the same store/engine machinery.

Configurations keep their historical shapes (:class:`KConfig` for
shared environments, :class:`FConfig` for flat ones) so abstraction
maps, GC root computation and soundness checks are unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cps.program import Program
from repro.cps.syntax import (
    AppCall, Call, CExp, FixCall, HaltCall, IfCall, Lam, Lit, PrimCall,
    Ref, free_vars_of_lam,
)
from repro.analysis.domains import (
    AConst, APair, AbsStore, Addr, BASIC, BEnv, EMPTY_BENV, FClo,
    FlatEnvAbs, KClo, SClo, SCont, Time, abstract_literal,
)
from repro.analysis.policies import SUMMARY_HEAP, summary_layout
from repro.analysis.results import AnalysisResult
from repro.scheme.primitives import lookup_primitive


class KConfig:
    """A store-less shared-env configuration ``(call, β̂, t̂)``.

    Hand-rolled rather than a dataclass: the engine hashes
    configurations on every worklist, dependency and dedup operation,
    so the hash is computed once at construction (call nodes hash by
    identity, so this is cheap) instead of per set operation.
    """

    __slots__ = ("call", "benv", "time", "_hash")

    def __init__(self, call: Call, benv: BEnv, time: Time):
        self.call = call
        self.benv = benv
        self.time = time
        self._hash = hash((call, benv, time))

    def __hash__(self) -> int:
        return self._hash

    def __eq__(self, other) -> bool:
        return self is other or (
            type(other) is KConfig and self.call == other.call
            and self.benv == other.benv and self.time == other.time)

    def __repr__(self) -> str:
        return (f"KConfig(call={self.call!r}, benv={self.benv!r}, "
                f"time={self.time!r})")


class FConfig:
    """A flat abstract configuration ``(call, ρ̂)`` (hash cached at
    construction, like :class:`KConfig`)."""

    __slots__ = ("call", "env", "_hash")

    def __init__(self, call: Call, env: FlatEnvAbs):
        self.call = call
        self.env = env
        self._hash = hash((call, env))

    def __hash__(self) -> int:
        return self._hash

    def __eq__(self, other) -> bool:
        return self is other or (
            type(other) is FConfig and self.call == other.call
            and self.env == other.env)

    def __repr__(self) -> str:
        return f"FConfig(call={self.call!r}, env={self.env!r})"


@dataclass
class Recorder:
    """Monotone facts accumulated across engine runs."""

    callees: dict[int, set[Lam]] = field(default_factory=dict)
    unknown_operator: set[int] = field(default_factory=set)
    entries: dict[int, set] = field(default_factory=dict)
    halt_values: set = field(default_factory=set)

    def record_apply(self, call_label: int, lam: Lam, entry_env) -> None:
        self.callees.setdefault(call_label, set()).add(lam)
        self.entries.setdefault(lam.label, set()).add(entry_env)

    def frozen_callees(self) -> dict[int, frozenset[Lam]]:
        return {label: frozenset(lams)
                for label, lams in self.callees.items()}

    def frozen_entries(self) -> dict[int, frozenset]:
        return {label: frozenset(envs)
                for label, envs in self.entries.items()}


class SharedEnv:
    """Shared-store binding environments (the k-CFA family, §3.4).

    Closures capture the binding environment *shared*: each free
    variable keeps the context it was bound in, which is precisely
    what makes k-CFA exponential for functional programs (§2.2).  The
    context policy is a ``tick(call_label, time) -> time`` callable;
    addresses are ``(variable, time)`` pairs (footnote 3).
    """

    kind = "shared"
    clo_type = KClo

    __slots__ = ("tick", "table", "_clo_bits", "_extend_memo",
                 "_fix_memo")

    def __init__(self, tick):
        self.tick = tick

    def boot(self, table) -> None:
        self.table = table
        self._clo_bits: dict[tuple, object] = {}
        self._extend_memo: dict[tuple, BEnv] = {}
        self._fix_memo: dict[tuple, tuple] = {}

    def initial_config(self, program: Program) -> KConfig:
        return KConfig(program.root, EMPTY_BENV, ())

    def ref_addr(self, config: KConfig, name: str) -> Addr:
        return (name, config.benv[name])

    def close_bit(self, config: KConfig, lam: Lam):
        key = (lam.label, config.benv)
        bit = self._clo_bits.get(key)
        if bit is None:
            bit = self.table.bit_for(
                KClo(lam, config.benv.restrict(free_vars_of_lam(lam))))
            self._clo_bits[key] = bit
        return bit

    def call_ctx(self, config: KConfig, call_label: int) -> Time:
        """The ticked time for this call — also the pair-field
        allocation context (§3.5.1)."""
        return self.tick(call_label, config.time)

    def with_call(self, config: KConfig, call: Call) -> KConfig:
        return KConfig(call, config.benv, config.time)

    def enter(self, call_label: int, lam: Lam, operator: KClo,
              arg_masks: list, config: KConfig, ctx: Time, store,
              reads: set, recorder: Recorder):
        """Bind parameters at the new time (the §3.4 apply rule)."""
        key = (operator.benv, lam.label, ctx)
        body_benv = self._extend_memo.get(key)
        if body_benv is None:
            body_benv = operator.benv.extend(lam.params, ctx)
            self._extend_memo[key] = body_benv
        joins = tuple(((param, ctx), mask)
                      for param, mask in zip(lam.params, arg_masks))
        recorder.record_apply(call_label, lam, body_benv)
        return KConfig(lam.body, body_benv, ctx), joins

    def fix(self, config: KConfig, call: FixCall):
        """letrec: bind every name at the *current* time."""
        now = config.time
        key = (config.benv, call.label, now)
        memo = self._fix_memo.get(key)
        if memo is None:
            extended = config.benv.extend(
                (name for name, _ in call.bindings), now)
            joins = []
            for name, lam in call.bindings:
                closure = KClo(
                    lam, extended.restrict(free_vars_of_lam(lam)))
                joins.append(((name, now), self.table.bit_for(closure)))
            memo = (extended, tuple(joins))
            self._fix_memo[key] = memo
        extended, joins = memo
        return KConfig(call.body, extended, now), joins


class FlatEnv:
    """Flat environments with free-variable copying (§5.2).

    A configuration's environment is a single bounded tuple of call
    labels; entering a lambda allocates a fresh environment via the
    context policy ``alloc(call_label, caller_env, lam, callee_env)``
    and *copies* the callee's free variables into it — the abstract
    image of flat-closure creation, which is what makes the state
    space polynomial (§4.4 projected back onto closures).
    """

    kind = "flat"
    clo_type = FClo

    __slots__ = ("alloc", "table", "_clo_bits")

    def __init__(self, alloc):
        self.alloc = alloc

    def boot(self, table) -> None:
        self.table = table
        self._clo_bits: dict[tuple, object] = {}

    def initial_config(self, program: Program) -> FConfig:
        return FConfig(program.root, ())

    def ref_addr(self, config: FConfig, name: str) -> Addr:
        return (name, config.env)

    def close_bit(self, config: FConfig, lam: Lam):
        key = (lam.label, config.env)
        bit = self._clo_bits.get(key)
        if bit is None:
            bit = self.table.bit_for(FClo(lam, config.env))
            self._clo_bits[key] = bit
        return bit

    def call_ctx(self, config: FConfig, call_label: int) -> FlatEnvAbs:
        """Pair fields allocate in the *current* environment — the
        callee environment is per-operator (see :meth:`enter`)."""
        return config.env

    def with_call(self, config: FConfig, call: Call) -> FConfig:
        return FConfig(call, config.env)

    def enter(self, call_label: int, lam: Lam, operator: FClo,
              arg_masks: list, config: FConfig, ctx, store,
              reads: set, recorder: Recorder):
        """Allocate ρ̂'', bind parameters, copy free variables (§5.2)."""
        new_env = self.alloc(call_label, config.env, lam, operator.env)
        joins: list[tuple[Addr, object]] = [
            ((param, new_env), mask)
            for param, mask in zip(lam.params, arg_masks)]
        if new_env != operator.env:
            for free in free_vars_of_lam(lam):
                source = (free, operator.env)
                reads.add(source)
                copied = store.get_mask(source)
                if copied:
                    joins.append(((free, new_env), copied))
        recorder.record_apply(call_label, lam, new_env)
        return FConfig(lam.body, new_env), joins

    def fix(self, config: FConfig, call: FixCall):
        """letrec: flat closures simply capture the current env."""
        env = config.env
        joins = tuple(
            ((name, env), self.table.bit_for(FClo(lam, env)))
            for name, lam in call.bindings)
        return FConfig(call.body, env), joins


def _entry_token(value) -> str:
    """A canonical string token for one abstract value in an entry key.

    Entry environments must be *structural* — derived from the key's
    value content, never from arrival order — because the engine's
    trajectory varies across value domains and hash seeds while the
    fixpoint (and the golden report bytes) must not.  Every value that
    can appear in a stripped argument mask renders to a stable string:
    summary closures carry only their label, pair addresses only their
    field tokens (their context is the constant heap), and constants
    their type-tagged datum.
    """
    if isinstance(value, SClo):
        return f"clo:{value.lam.label}"
    if isinstance(value, AConst):
        return f"const:{type(value.datum).__name__}:{value.datum!r}"
    if value is BASIC:
        return "basic"
    if isinstance(value, APair):
        return f"pair:{value.car[0]}:{value.cdr[0]}"
    return f"val:{value!r}"


class SummaryEnv:
    """Pushdown summarization (CFA2-style): the third env rep.

    Instead of a context *tuple*, a configuration's environment is a
    **function-entry summary key**: entering a user lambda interns the
    entry ``(lam label, call site, abstract argument signature)`` —
    one entry per call *edge* per argument signature — and analyzes
    the body once per distinct entry.  Continuation closures record the
    entry frame they were created in and *restore* it when entered —
    the return edge — so every entry's returns flow only to that
    entry's continuation parameter: perfect call/return matching
    without finite-k context tuples.  On the paper's §6 identity
    example the two call sites induce two entries (``x ↦ {3}`` vs
    ``x ↦ {4}``) whose returns never merge, which no finite-k rung of
    the poly-k-CFA ladder achieves.

    The cost stays in the flat envelope because user closures are
    environment-less (:class:`~repro.analysis.domains.SClo`): the same
    lambda flowing from two creation contexts is one operator, so the
    Van Horn–Mairson ladder's doubling is cut at every level and the
    entry table stays polynomial (argument masks grow monotonically
    per call site, so each site contributes a finite chain of keys).
    Captured variables pay for that: any reference outside its
    binder's user frame resolves to a name-keyed heap address
    (:data:`~repro.analysis.policies.SUMMARY_HEAP`) per the
    precomputed :func:`~repro.analysis.policies.summary_layout`, and
    escaping bindings are mirrored there (0CFA precision for captures,
    exact stack precision for everything else).

    Entry→callers edges and entry→exit-value summaries are recorded in
    :attr:`call_edges` / :attr:`summaries` as the analysis runs; the
    engine needs no extra propagation pass for them because return
    values travel through ordinary store joins at the caller's frame,
    which the delta worklist already re-propagates.
    """

    kind = "summary"
    clo_type = (SClo, SCont)

    __slots__ = ("layout", "table", "_clo_bits", "_entry_memo",
                 "call_edges", "summaries")

    def __init__(self, program: Program):
        self.layout = summary_layout(program)

    def boot(self, table) -> None:
        self.table = table
        self._clo_bits: dict[object, object] = {}
        #: (lam label, raw argument-mask tuple) → interned entry env.
        self._entry_memo: dict[tuple, tuple] = {}
        #: entry env → {(call label, caller env)} — the call-edge table.
        self.call_edges: dict[tuple, set] = {}
        #: exited frame env → joined exit-value mask (entry/exit
        #: summaries, observable by tests and tooling).
        self.summaries: dict[tuple, object] = {}

    def initial_config(self, program: Program) -> FConfig:
        return FConfig(program.root, ())

    def ref_addr(self, config: FConfig, name: str) -> Addr:
        layout = self.layout
        if layout.frame_of_binder[name] == \
                layout.owner_of_call[config.call.label]:
            return (name, config.env)
        return (name, SUMMARY_HEAP)

    def close_bit(self, config: FConfig, lam: Lam):
        if lam.is_user:
            bit = self._clo_bits.get(lam.label)
            if bit is None:
                bit = self.table.bit_for(SClo(lam))
                self._clo_bits[lam.label] = bit
            return bit
        key = (lam.label, config.env)
        bit = self._clo_bits.get(key)
        if bit is None:
            bit = self.table.bit_for(SCont(lam, config.env))
            self._clo_bits[key] = bit
        return bit

    def call_ctx(self, config: FConfig, call_label: int):
        """Pair fields allocate in the shared heap context — entry
        keys contain pair values, so an entry-keyed pair context would
        let keys grow through themselves (unbounded); the constant
        context keeps the value domain, and with it the key space,
        finite."""
        return SUMMARY_HEAP

    def with_call(self, config: FConfig, call: Call) -> FConfig:
        return FConfig(call, config.env)

    def _entry_env(self, lam: Lam, call_label: int,
                   arg_masks: list) -> tuple:
        key = (lam.label, call_label, tuple(arg_masks))
        env = self._entry_memo.get(key)
        if env is None:
            decode = self.table.decode_iter
            signature = tuple(
                tuple(sorted(_entry_token(value)
                             for value in decode(mask)
                             if not isinstance(value, SCont)))
                for mask in arg_masks)
            env = (lam.label, call_label, signature)
            self._entry_memo[key] = env
        return env

    def _bind(self, names, masks, env) -> list:
        joins = [((name, env), mask)
                 for name, mask in zip(names, masks)]
        heap_names = self.layout.heap_names
        for name, mask in zip(names, masks):
            if name in heap_names:
                joins.append(((name, SUMMARY_HEAP), mask))
        return joins

    def enter(self, call_label: int, lam: Lam, operator,
              arg_masks: list, config: FConfig, ctx, store,
              reads: set, recorder: Recorder):
        if type(operator) is SCont:
            # A continuation restores the frame it was created in;
            # crossing frames is a return — record the exit summary
            # for the frame being left.
            env = operator.env
            if env != config.env:
                exited = self.summaries.get(config.env,
                                            self.table.empty)
                for mask in arg_masks:
                    exited |= mask
                self.summaries[config.env] = exited
            recorder.record_apply(call_label, lam, env)
            return (FConfig(lam.body, env),
                    tuple(self._bind(lam.params, arg_masks, env)))
        # A user closure: intern the function entry, record the call
        # edge, and bind parameters in the entry frame.  The key is
        # the whole call edge — call site *and* argument signature —
        # so two sites passing equal arguments still get separate
        # entries whose continuations never cross-flow.  Continuation
        # bits are stripped from the *key* (a continuation embeds its
        # creation frame, so keeping them would let entries grow
        # through entries) but kept in the parameter *bindings*, which
        # is exactly what matches each entry's returns to its callers.
        env = self._entry_env(lam, call_label, arg_masks)
        self.call_edges.setdefault(env, set()).add(
            (call_label, config.env))
        recorder.record_apply(call_label, lam, env)
        return (FConfig(lam.body, env),
                tuple(self._bind(lam.params, arg_masks, env)))

    def fix(self, config: FConfig, call: FixCall):
        """letrec: bind environment-less user closures in the current
        frame (recursive references resolve through the heap — the
        layout classifies them as escaping, which keeps the entry
        table finite under recursion)."""
        env = config.env
        joins = []
        heap_names = self.layout.heap_names
        for name, lam in call.bindings:
            bit = self.close_bit(config, lam)
            joins.append(((name, env), bit))
            if name in heap_names:
                joins.append(((name, SUMMARY_HEAP), bit))
        return FConfig(call.body, env), tuple(joins)


class Kernel:
    """The single eval/apply transfer function, in engine form.

    Mask-native like its two hand-written predecessors: flow sets are
    the value-table masks of :mod:`repro.analysis.interning`, closures
    are hash-consed per ``(lambda, environment)``, and every store
    read is recorded in the engine's dependency set.  All per-analysis
    behaviour is delegated to the environment representation ``rep``.
    """

    def __init__(self, program: Program, rep):
        self.program = program
        self.rep = rep

    def initial(self):
        """The initial configuration (store-independent)."""
        return self.rep.initial_config(self.program)

    # -- the engine's Machine protocol ---------------------------------

    def boot(self, store: AbsStore):
        """Adopt the store's value table; CPS analyses seed nothing."""
        table = store.table
        self.table = table
        self._basic = table.bit_for(BASIC)
        self._lit_bits: dict[int, object] = {}
        self.rep.boot(table)
        return self.rep.initial_config(self.program)

    def step(self, config, store, reads: set[Addr],
             recorder: Recorder) -> list[tuple[object, tuple]]:
        """One transfer-function application: ``(successor, joins)``
        pairs, joins as value-table masks."""
        rep = self.rep
        call = config.call
        if isinstance(call, AppCall):
            return self._app(call, config, store, reads, recorder)
        if isinstance(call, IfCall):
            test = self.evaluate(call.test, config, store, reads)
            succs = []
            if self.table.any_truthy(test):
                succs.append((rep.with_call(config, call.then), ()))
            if self.table.any_falsy(test):
                succs.append((rep.with_call(config, call.orelse), ()))
            return succs
        if isinstance(call, PrimCall):
            return self._prim(call, config, store, reads, recorder)
        if isinstance(call, FixCall):
            return [rep.fix(config, call)]
        if isinstance(call, HaltCall):
            recorder.halt_values |= self.table.decode(
                self.evaluate(call.arg, config, store, reads))
            return []
        raise TypeError(f"cannot step call {call!r}")

    # -- Ê ------------------------------------------------------------

    def evaluate(self, exp: CExp, config, store, reads: set[Addr]):
        """The mask of values *exp* may evaluate to."""
        if isinstance(exp, Ref):
            addr = self.rep.ref_addr(config, exp.name)
            reads.add(addr)
            return store.get_mask(addr)
        if isinstance(exp, Lam):
            return self.rep.close_bit(config, exp)
        if isinstance(exp, Lit):
            bit = self._lit_bits.get(id(exp))
            if bit is None:
                bit = self.table.bit_for(abstract_literal(exp.datum))
                self._lit_bits[id(exp)] = bit
            return bit
        raise TypeError(f"not an atomic expression: {exp!r}")

    # -- apply ---------------------------------------------------------

    def _app(self, call: AppCall, config, store, reads: set[Addr],
             recorder: Recorder) -> list:
        rep = self.rep
        operators = self.evaluate(call.fn, config, store, reads)
        if operators & self._basic:
            recorder.unknown_operator.add(call.label)
        arg_masks = [self.evaluate(arg, config, store, reads)
                     for arg in call.args]
        ctx = rep.call_ctx(config, call.label)
        clo_type = rep.clo_type
        succs = []
        for operator in self.table.decode_iter(operators):
            if not isinstance(operator, clo_type):
                continue
            lam = operator.lam
            if len(lam.params) != len(call.args):
                continue
            succs.append(rep.enter(call.label, lam, operator,
                                   arg_masks, config, ctx, store,
                                   reads, recorder))
        return succs

    # -- primitives ----------------------------------------------------

    def _prim(self, call: PrimCall, config, store, reads: set[Addr],
              recorder: Recorder) -> list:
        rep = self.rep
        prim = lookup_primitive(call.op)
        arg_masks = [self.evaluate(arg, config, store, reads)
                     for arg in call.args]
        if any(not mask for mask in arg_masks):
            return []  # an argument is unreachable, so is the call
        if prim.kind == "error":
            return []
        ctx = rep.call_ctx(config, call.label)
        extra_joins: list[tuple[Addr, object]] = []
        if prim.kind == "basic":
            result = self._basic
        elif prim.kind == "cons":
            car_addr = (f"car@{call.label}", ctx)
            cdr_addr = (f"cdr@{call.label}", ctx)
            extra_joins.append((car_addr, arg_masks[0]))
            extra_joins.append((cdr_addr, arg_masks[1]))
            result = self.table.bit_for(APair(car_addr, cdr_addr))
        elif prim.kind in ("car", "cdr"):
            gathered = self.table.empty
            for value in self.table.decode_iter(arg_masks[0]):
                if isinstance(value, APair):
                    addr = value.car if prim.kind == "car" else value.cdr
                    reads.add(addr)
                    gathered |= store.get_mask(addr)
                elif value is BASIC:
                    # Quoted list structure abstracts to BASIC and can
                    # only contain basic data, so projecting stays BASIC.
                    gathered |= self._basic
            if not gathered:
                return []
            result = gathered
        else:
            raise ValueError(f"unknown primitive kind {prim.kind!r}")
        succs = []
        conts = self.evaluate(call.cont, config, store, reads)
        clo_type = rep.clo_type
        for operator in self.table.decode_iter(conts):
            if not isinstance(operator, clo_type):
                continue
            if len(operator.lam.params) != 1:
                continue
            succ, joins = rep.enter(call.label, operator.lam, operator,
                                    [result], config, ctx, store,
                                    reads, recorder)
            succs.append((succ, tuple(joins) + tuple(extra_joins)))
        if not succs and extra_joins:
            # Keep the pair fields even if no continuation flowed yet.
            succs.append((rep.with_call(config, call),
                          tuple(extra_joins)))
        return succs


def result_from_run(run, program: Program, analysis: str,
                    parameter: int) -> AnalysisResult:
    """Package an engine run + :class:`Recorder` as a public result."""
    recorder: Recorder = run.recorder
    return AnalysisResult(
        program=program, analysis=analysis, parameter=parameter,
        store=run.store, config_count=len(run.configs),
        callees=recorder.frozen_callees(),
        unknown_operator=frozenset(recorder.unknown_operator),
        entries=recorder.frozen_entries(),
        halt_values=frozenset(recorder.halt_values),
        steps=run.steps, elapsed=run.elapsed,
        state_count=run.state_count, configs=run.configs)
