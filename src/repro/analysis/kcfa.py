"""k-CFA: Shivers's analysis as a small-step abstract interpreter.

This is the paper's §3.4–3.7 made executable:

* abstract times are the last *k* call-site labels; ``tick`` prepends
  the current call and truncates (§3.5.1);
* abstract addresses are ``(variable, time)`` pairs; binding
  environments map variables to times (footnote 3);
* closures capture the binding environment **shared** — each free
  variable keeps the context it was bound in.  This is precisely what
  makes k-CFA exponential for functional programs: one lambda can be
  closed by combinatorially many environments (§2.2).

Both of the paper's engines drive the same transition relation through
the shared drivers in :mod:`repro.analysis.engine`:

* :func:`analyze_kcfa` — the single-threaded-store worklist (§3.7,
  :func:`~repro.analysis.engine.run_single_store`) with
  read-dependency re-enqueueing; and
* :func:`analyze_kcfa_naive` — the reachable-*states* engine (§3.6,
  :func:`~repro.analysis.engine.run_naive`) where every state carries
  an immutable store.  Deeply exponential even for k = 0; exists to
  reproduce the paper's complexity observations, so only run it on
  small terms.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cps.program import Program
from repro.cps.syntax import (
    AppCall, Call, CExp, FixCall, HaltCall, IfCall, Lam, Lit, PrimCall,
    Ref, free_vars_of_lam,
)
from repro.analysis.domains import (
    APair, AbsStore, Addr, BASIC, BEnv, EMPTY_BENV,
    KClo, Time, abstract_literal, first_k,
)
from repro.analysis.engine import (
    EngineOptions, EngineRun, run_naive, run_single_store,
)
from repro.analysis.interning import PlainTable
from repro.analysis.results import AnalysisResult
from repro.scheme.primitives import lookup_primitive
from repro.util.budget import Budget


@dataclass(frozen=True, slots=True)
class KConfig:
    """A store-less abstract configuration ``(call, β̂, t̂)``."""

    call: Call
    benv: BEnv
    time: Time


@dataclass(frozen=True, slots=True)
class Transition:
    """One abstract transition: a successor plus its store joins.

    Join values are value-table *masks*
    (:mod:`repro.analysis.interning`), not decoded frozensets.
    """

    call: Call
    benv: BEnv
    time: Time
    joins: tuple[tuple[Addr, object], ...]


@dataclass
class Recorder:
    """Monotone facts accumulated across engine runs."""

    callees: dict[int, set[Lam]] = field(default_factory=dict)
    unknown_operator: set[int] = field(default_factory=set)
    entries: dict[int, set] = field(default_factory=dict)
    halt_values: set = field(default_factory=set)

    def record_apply(self, call_label: int, lam: Lam, entry_env) -> None:
        self.callees.setdefault(call_label, set()).add(lam)
        self.entries.setdefault(lam.label, set()).add(entry_env)

    def frozen_callees(self) -> dict[int, frozenset[Lam]]:
        return {label: frozenset(lams)
                for label, lams in self.callees.items()}

    def frozen_entries(self) -> dict[int, frozenset]:
        return {label: frozenset(envs)
                for label, envs in self.entries.items()}


class KCFAMachine:
    """The k-CFA abstract transition relation.

    The machine is *mask-native*: flow sets are the value-table masks
    of :mod:`repro.analysis.interning` (ints by default, frozensets
    under :class:`~repro.analysis.interning.PlainTable`), read through
    the store's ``get_mask`` and handed back to the engine as
    ``(addr, mask)`` joins.  Closures are hash-consed per
    ``(lambda, environment)`` and environment extension is memoized
    per ``(environment, lambda, time)`` — the two allocations the
    worst-case terms hammer.
    """

    def __init__(self, program: Program, k: int):
        if k < 0:
            raise ValueError(f"k must be non-negative, got {k}")
        self.program = program
        self.k = k

    def initial(self) -> KConfig:
        return KConfig(self.program.root, EMPTY_BENV, ())

    # -- the engine's Machine protocol ---------------------------------

    def boot(self, store: AbsStore) -> KConfig:
        """Adopt the store's value table; k-CFA seeds no addresses."""
        table = store.table
        self.table = table
        self._basic = table.bit_for(BASIC)
        self._lit_bits: dict[object, object] = {}
        self._clo_bits: dict[tuple, object] = {}
        self._extend_memo: dict[tuple, BEnv] = {}
        self._fix_memo: dict[tuple, tuple] = {}
        return self.initial()

    def step(self, config: KConfig, store, reads: set[Addr],
             recorder: Recorder) -> list[tuple[KConfig, tuple]]:
        """One transfer-function application, in engine form."""
        return [(KConfig(succ.call, succ.benv, succ.time), succ.joins)
                for succ in self.transitions(config, store, reads,
                                             recorder)]

    def tick(self, call: Call, time: Time) -> Time:
        return first_k(self.k, (call.label, *time))

    # -- Ê ------------------------------------------------------------

    def evaluate(self, exp: CExp, benv: BEnv, store,
                 reads: set[Addr]):
        """The mask of values *exp* may evaluate to."""
        if isinstance(exp, Ref):
            addr = (exp.name, benv[exp.name])
            reads.add(addr)
            return store.get_mask(addr)
        if isinstance(exp, Lam):
            key = (exp.label, benv)
            bit = self._clo_bits.get(key)
            if bit is None:
                bit = self.table.bit_for(
                    KClo(exp, benv.restrict(free_vars_of_lam(exp))))
                self._clo_bits[key] = bit
            return bit
        if isinstance(exp, Lit):
            bit = self._lit_bits.get(id(exp))
            if bit is None:
                bit = self.table.bit_for(abstract_literal(exp.datum))
                self._lit_bits[id(exp)] = bit
            return bit
        raise TypeError(f"not an atomic expression: {exp!r}")

    # -- the transition relation ----------------------------------------

    def transitions(self, config: KConfig, store, reads: set[Addr],
                    recorder: Recorder) -> list[Transition]:
        call, benv, now = config.call, config.benv, config.time
        if isinstance(call, AppCall):
            return self._app_transitions(call, benv, now, store, reads,
                                         recorder)
        if isinstance(call, IfCall):
            test = self.evaluate(call.test, benv, store, reads)
            succs = []
            if self.table.any_truthy(test):
                succs.append(Transition(call.then, benv, now, ()))
            if self.table.any_falsy(test):
                succs.append(Transition(call.orelse, benv, now, ()))
            return succs
        if isinstance(call, PrimCall):
            return self._prim_transitions(call, benv, now, store, reads,
                                          recorder)
        if isinstance(call, FixCall):
            key = (benv, call.label, now)
            memo = self._fix_memo.get(key)
            if memo is None:
                extended = benv.extend(
                    (name for name, _ in call.bindings), now)
                joins = []
                for name, lam in call.bindings:
                    closure = KClo(
                        lam, extended.restrict(free_vars_of_lam(lam)))
                    joins.append(((name, now),
                                  self.table.bit_for(closure)))
                memo = (extended, tuple(joins))
                self._fix_memo[key] = memo
            extended, joins = memo
            return [Transition(call.body, extended, now, joins)]
        if isinstance(call, HaltCall):
            recorder.halt_values |= self.table.decode(
                self.evaluate(call.arg, benv, store, reads))
            return []
        raise TypeError(f"cannot step call {call!r}")

    def _app_transitions(self, call: AppCall, benv: BEnv, now: Time,
                         store, reads: set[Addr],
                         recorder: Recorder) -> list[Transition]:
        operators = self.evaluate(call.fn, benv, store, reads)
        if operators & self._basic:
            recorder.unknown_operator.add(call.label)
        arg_values = [self.evaluate(arg, benv, store, reads)
                      for arg in call.args]
        new_time = self.tick(call, now)
        succs = []
        for operator in self.table.decode_iter(operators):
            if not isinstance(operator, KClo):
                continue
            lam = operator.lam
            if len(lam.params) != len(call.args):
                continue
            succs.append(self._enter(call.label, lam, operator.benv,
                                     arg_values, new_time, recorder))
        return succs

    def _enter(self, call_label: int, lam: Lam, closure_benv: BEnv,
               arg_values: list, new_time: Time,
               recorder: Recorder) -> Transition:
        """Bind parameters at the new time (the §3.4 rule)."""
        key = (closure_benv, lam.label, new_time)
        body_benv = self._extend_memo.get(key)
        if body_benv is None:
            body_benv = closure_benv.extend(lam.params, new_time)
            self._extend_memo[key] = body_benv
        joins = tuple(((param, new_time), mask)
                      for param, mask in zip(lam.params, arg_values))
        recorder.record_apply(call_label, lam, body_benv)
        return Transition(lam.body, body_benv, new_time, joins)

    def _prim_transitions(self, call: PrimCall, benv: BEnv, now: Time,
                          store, reads: set[Addr],
                          recorder: Recorder) -> list[Transition]:
        prim = lookup_primitive(call.op)
        arg_values = [self.evaluate(arg, benv, store, reads)
                      for arg in call.args]
        if any(not mask for mask in arg_values):
            return []  # an argument is unreachable, so is the call
        new_time = self.tick(call, now)
        extra_joins: list[tuple[Addr, object]] = []
        if prim.kind == "error":
            return []
        if prim.kind == "basic":
            result = self._basic
        elif prim.kind == "cons":
            car_addr = (f"car@{call.label}", new_time)
            cdr_addr = (f"cdr@{call.label}", new_time)
            extra_joins.append((car_addr, arg_values[0]))
            extra_joins.append((cdr_addr, arg_values[1]))
            result = self.table.bit_for(APair(car_addr, cdr_addr))
        elif prim.kind in ("car", "cdr"):
            gathered = self.table.empty
            for value in self.table.decode_iter(arg_values[0]):
                if isinstance(value, APair):
                    addr = value.car if prim.kind == "car" else value.cdr
                    reads.add(addr)
                    gathered |= store.get_mask(addr)
                elif value is BASIC:
                    # Quoted list structure abstracts to BASIC and can
                    # only contain basic data, so projecting stays BASIC.
                    gathered |= self._basic
            if not gathered:
                return []
            result = gathered
        else:
            raise ValueError(f"unknown primitive kind {prim.kind!r}")
        succs = []
        conts = self.evaluate(call.cont, benv, store, reads)
        for operator in self.table.decode_iter(conts):
            if not isinstance(operator, KClo):
                continue
            lam = operator.lam
            if len(lam.params) != 1:
                continue
            transition = self._enter(call.label, lam, operator.benv,
                                     [result], new_time, recorder)
            succs.append(Transition(
                transition.call, transition.benv, transition.time,
                transition.joins + tuple(extra_joins)))
        if not succs and extra_joins:
            # Keep the pair fields even if no continuation flowed yet.
            succs.append(Transition(call, benv, now, tuple(extra_joins)))
        return succs


def result_from_run(run: EngineRun, program: Program, analysis: str,
                    parameter: int) -> AnalysisResult:
    """Package an engine run + :class:`Recorder` as a public result."""
    recorder: Recorder = run.recorder
    return AnalysisResult(
        program=program, analysis=analysis, parameter=parameter,
        store=run.store, config_count=len(run.configs),
        callees=recorder.frozen_callees(),
        unknown_operator=frozenset(recorder.unknown_operator),
        entries=recorder.frozen_entries(),
        halt_values=frozenset(recorder.halt_values),
        steps=run.steps, elapsed=run.elapsed,
        state_count=run.state_count, configs=run.configs)


def analyze_kcfa(program: Program, k: int = 1,
                 budget: Budget | None = None,
                 plain: bool = False) -> AnalysisResult:
    """Run k-CFA with the single-threaded store (§3.7).

    Raises :class:`~repro.errors.AnalysisTimeout` when the budget is
    exceeded — callers reproducing the worst-case table catch it and
    report ∞.  ``plain=True`` runs the pre-interning object domain
    (for equivalence tests and before/after benchmarking).
    """
    run = run_single_store(
        KCFAMachine(program, k), Recorder(),
        EngineOptions(budget=budget,
                      table_factory=PlainTable if plain else None))
    return result_from_run(run, program, "k-CFA", k)


def analyze_kcfa_naive(program: Program, k: int = 1,
                       budget: Budget | None = None,
                       plain: bool = False) -> AnalysisResult:
    """Run k-CFA by naive reachable-states exploration (§3.6).

    The system-space is P(Σ̂): states carry whole stores, so state
    counts explode even for k = 0 — which is the paper's point.  Use
    only on small programs, with a budget.
    """
    run = run_naive(
        KCFAMachine(program, k), Recorder(),
        EngineOptions(budget=budget,
                      table_factory=PlainTable if plain else None))
    return result_from_run(run, program, "k-CFA-naive", k)
