"""k-CFA: Shivers's analysis as a policy of the AAM kernel.

This is the paper's §3.4–3.7 made executable:

* abstract times are the last *k* call-site labels; ``tick`` prepends
  the current call and truncates (§3.5.1) — the
  :func:`~repro.analysis.policies.call_site_tick` policy;
* abstract addresses are ``(variable, time)`` pairs; binding
  environments map variables to times (footnote 3);
* closures capture the binding environment **shared** — each free
  variable keeps the context it was bound in
  (:class:`~repro.analysis.kernel.SharedEnv`).  This is precisely
  what makes k-CFA exponential for functional programs: one lambda
  can be closed by combinatorially many environments (§2.2).

The transfer function itself lives in
:class:`~repro.analysis.kernel.Kernel` — shared verbatim with the
flat-environment analyses.  Both of the paper's engines drive it:

* :func:`analyze_kcfa` — the single-threaded-store worklist (§3.7,
  :func:`~repro.analysis.engine.run_single_store`) with
  read-dependency re-enqueueing; and
* :func:`analyze_kcfa_naive` — the reachable-*states* engine (§3.6,
  :func:`~repro.analysis.engine.run_naive`) where every state carries
  an immutable store.  Deeply exponential even for k = 0; exists to
  reproduce the paper's complexity observations, so only run it on
  small terms.
"""

from __future__ import annotations

from repro.cps.program import Program
from repro.analysis.engine import EngineOptions, machine_path, \
    run_naive, run_single_store, specialize
from repro.analysis.interning import PlainTable
from repro.analysis.kernel import (
    KConfig, Kernel, Recorder, SharedEnv, result_from_run,
)
from repro.analysis.policies import call_site_tick
from repro.analysis.results import AnalysisResult
from repro.errors import UsageError
from repro.util.budget import Budget

__all__ = [
    "KCFAMachine", "KConfig", "Recorder", "analyze_kcfa",
    "analyze_kcfa_naive", "result_from_run",
]


class KCFAMachine(Kernel):
    """The k-CFA abstract transition relation: the kernel with shared
    environments and the last-k-call-sites tick."""

    def __init__(self, program: Program, k: int):
        if k < 0:
            raise UsageError(f"k must be non-negative, got {k}")
        super().__init__(program, SharedEnv(call_site_tick(k)))
        self.k = k


def analyze_kcfa(program: Program, k: int = 1,
                 budget: Budget | None = None,
                 plain: bool = False,
                 specialized: bool = True) -> AnalysisResult:
    """Run k-CFA with the single-threaded store (§3.7).

    Raises :class:`~repro.errors.AnalysisTimeout` when the budget is
    exceeded — callers reproducing the worst-case table catch it and
    report ∞.  ``plain=True`` runs the pre-interning object domain
    (for equivalence tests and before/after benchmarking);
    ``specialized`` selects the pre-bound shared-env step loop.
    """
    machine = specialize(KCFAMachine(program, k), specialized)
    run = run_single_store(
        machine, Recorder(),
        EngineOptions(budget=budget,
                      table_factory=PlainTable if plain else None))
    result = result_from_run(run, program, "k-CFA", k)
    result.engine_path = machine_path(machine)
    return result


def analyze_kcfa_naive(program: Program, k: int = 1,
                       budget: Budget | None = None,
                       plain: bool = False) -> AnalysisResult:
    """Run k-CFA by naive reachable-states exploration (§3.6).

    The system-space is P(Σ̂): states carry whole stores, so state
    counts explode even for k = 0 — which is the paper's point.  Use
    only on small programs, with a budget.
    """
    run = run_naive(
        KCFAMachine(program, k), Recorder(),
        EngineOptions(budget=budget,
                      table_factory=PlainTable if plain else None))
    return result_from_run(run, program, "k-CFA-naive", k)
