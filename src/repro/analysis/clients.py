"""Client-analysis passes over any analysis result.

The paper's argument is that context-sensitivity choices matter to a
*compiler client* — which call sites are monomorphic, which closures
escape, what can be devirtualized or inlined — not to the store-size
bean counter.  This module is that client: a pass framework consuming
any :class:`~repro.analysis.results.AnalysisResult` (every Scheme
policy × both value domains × all three environment representations)
or :class:`~repro.fj.kcfa.FJResult` (the whole FJ family) and deriving
compiler facts from it:

* ``call-graph`` — per-call-site target sets with a ``Known`` /
  ``Unknown`` lattice à la Manticore's CFACFG, exportable as DOT and
  JSON;
* ``escaping`` — closures reaching the heap, the halt continuation
  (a return), or an argument of an unknown call;
* ``mono`` — monomorphic call sites (exactly one known target);
* ``devirt`` — FJ devirtualization candidates (receiver class sets of
  size one);
* ``inlining`` — the §6.2 inlining advisor (single known *user*
  callee), promoted from ``examples/inlining_advisor.py``.

Passes are pure functions of the result object, so they are
registry-driven for free: anything :func:`~repro.analysis.registry.
run_analysis` returns can be queried.  Answers are JSON-safe by
construction — string-keyed dicts and sorted lists only, never sets
and never int-keyed dicts (``json.dumps(sort_keys=True)`` orders int
keys numerically in-process but lexicographically after a wire round
trip, which would break the batch ≡ service byte-identity guarantee).

The three PR-8 *point* queries (``value-of``, ``call-sites-of``,
``escaping <label>``) also live here, verbatim, so warm
:class:`~repro.analysis.incremental.AnalysisSession` objects and the
batch path answer from one implementation.
"""

from __future__ import annotations

from repro.cps.syntax import AppCall, HaltCall, Lam, Ref
from repro.errors import UsageError

__all__ = [
    "BATCH_KINDS", "PASS_KINDS", "SESSION_KINDS",
    "call_sites_of", "escaping_point", "parse_label",
    "run_result_query", "validate_query", "value_of",
]

#: Whole-result passes (no warm session required).
PASS_KINDS = ("call-graph", "escaping", "mono", "devirt", "inlining")

#: Kinds `python -m repro query --kind ...` (and the sessionless
#: service op) accept: every pass plus the store-only point query.
BATCH_KINDS = ("call-graph", "escaping", "mono", "devirt", "inlining",
               "value-of")

#: Kinds a warm session accepts: the PR-8 point queries plus every
#: pass a Scheme result supports.
SESSION_KINDS = ("value-of", "call-sites-of", "escaping", "call-graph",
                 "mono", "inlining")

#: Point queries that demand a target.
TARGET_REQUIRED = ("value-of", "call-sites-of")

#: Whole-result passes that take none.
TARGET_FORBIDDEN = ("call-graph", "mono", "devirt", "inlining")

#: kind → languages it applies to.
_KIND_LANGUAGES = {
    "call-graph": ("scheme", "fj"),
    "mono": ("scheme", "fj"),
    "value-of": ("scheme", "fj"),
    "devirt": ("fj",),
    "escaping": ("scheme",),
    "inlining": ("scheme",),
    "call-sites-of": ("scheme",),
}


def validate_query(kind: str, target: str | None = None, *,
                   session: bool = False,
                   language: str | None = None) -> None:
    """One gate for every query entry point (CLI, service, session).

    Raises :class:`~repro.errors.UsageError` — one line, exit 2 — on
    an unknown kind, a kind/language mismatch, a missing target, or a
    spurious one.
    """
    valid = SESSION_KINDS if session else BATCH_KINDS
    if kind not in valid:
        raise UsageError(f"unknown query {kind!r}; choose from "
                         f"{', '.join(valid)}")
    if language is not None and language not in _KIND_LANGUAGES[kind]:
        raise UsageError(
            f"query {kind!r} is not available for {language} programs")
    if kind in TARGET_REQUIRED and not target:
        raise UsageError(f"query {kind!r} requires a target")
    if kind in TARGET_FORBIDDEN and target:
        raise UsageError(f"query {kind!r} takes no target")
    if kind == "escaping" and target and not session:
        raise UsageError(
            "query 'escaping' takes no target in batch mode; "
            "the pass reports every escaping lambda")


def parse_label(target: str) -> int:
    """A lambda-label target, or a one-line :class:`UsageError`."""
    try:
        return int(target)
    except (TypeError, ValueError):
        raise UsageError(
            f"query target {target!r} is not a lambda label") \
            from None


# ---------------------------------------------------------------------------
# Point queries (the PR-8 session ops, verbatim)
# ---------------------------------------------------------------------------

def value_of(store, name: str) -> dict:
    """Values flowing to *name*, joined over contexts."""
    from repro.reporting import render_value
    values: set = set()
    variables: set = set()
    contexts = 0
    for (addr_name, _context), flow in store.items():
        # The compiler uniquifies user binders (`x` → `x%2`), so
        # match the base name too: a user asks about the variable
        # they wrote, not the alpha-renamed one.  An exact match
        # still works for internal names (`rv%6`, `car@6`).
        if addr_name != name \
                and addr_name.split("%", 1)[0] != name:
            continue
        variables.add(addr_name)
        contexts += 1
        values |= flow
    return {"query": "value-of", "target": name,
            "variables": sorted(variables),
            "contexts": contexts,
            "values": sorted(render_value(v) for v in values)}


def _lam_labels(store, mask) -> set:
    labels = set()
    for value in store.table.decode_iter(mask):
        lam = getattr(value, "lam", None)
        if lam is not None:
            labels.add(lam.label)
    return labels


def call_sites_of(machine, store, configs, label: int) -> dict:
    """Call sites whose operator may be the lambda at *label*."""
    sites = set()
    probed = 0
    for config in configs:
        call = config.call
        if not isinstance(call, AppCall):
            continue
        probed += 1
        mask = machine.evaluate(call.fn, config, store, set())
        if label in _lam_labels(store, mask):
            sites.add(call.label)
    return {"query": "call-sites-of", "target": label,
            "sites": sorted(sites), "probed": probed}


def escaping_point(machine, store, configs, label: int) -> dict:
    """May the lambda at *label* reach halt or a heap cell?"""
    to_halt = set()
    for config in configs:
        call = config.call
        if isinstance(call, HaltCall):
            mask = machine.evaluate(call.arg, config, store, set())
            to_halt |= _lam_labels(store, mask)
    to_heap = set()
    for (name, _context), flow in store.items():
        if "@" not in name:
            continue
        for value in flow:
            lam = getattr(value, "lam", None)
            if lam is not None:
                to_heap.add(lam.label)
    return {"query": "escaping", "target": label,
            "escaping": label in to_halt or label in to_heap,
            "to_halt": label in to_halt, "to_heap": label in to_heap}


# ---------------------------------------------------------------------------
# The call-graph pass (Known/Unknown lattice, DOT + JSON)
# ---------------------------------------------------------------------------

TOPLEVEL = "<toplevel>"   # the program body outside every lambda
UNKNOWN = "<unknown>"     # the target of a site where ⊤ flowed


def _owner_node(owner) -> str:
    return TOPLEVEL if owner is None else f"lam@{owner}"


def _dot_graph(nodes: list[str], edges: list[dict],
               boxes: frozenset[str]) -> str:
    """Render a deterministic DOT digraph (nodes/edges pre-sorted)."""
    lines = ["digraph callgraph {"]
    for node in nodes:
        shape = " [shape=box]" if node in boxes else ""
        lines.append(f'  "{node}"{shape};')
    for edge in edges:
        lines.append(f'  "{edge["source"]}" -> "{edge["target"]}" '
                     f'[label="{edge["call"]}"];')
    lines.append("}")
    return "\n".join(lines) + "\n"


def _call_graph_scheme(result) -> dict:
    owner = result.call_owner_map()
    unknown = result.unknown_operator
    labels = sorted(set(result.callees) | set(unknown))
    sites = []
    edges = []
    nodes: set = set()
    for label in labels:
        source = _owner_node(owner.get(label))
        nodes.add(source)
        targets = sorted(lam.label
                         for lam in result.callees.get(label, ()))
        for target in targets:
            node = f"lam@{target}"
            nodes.add(node)
            edges.append({"source": source, "target": node,
                          "call": label})
        if label in unknown:
            nodes.add(UNKNOWN)
            edges.append({"source": source, "target": UNKNOWN,
                          "call": label})
        sites.append({
            "site": label, "owner": source,
            "lattice": "Unknown" if label in unknown else "Known",
            "targets": targets})
    edges.sort(key=lambda e: (e["source"], e["target"], e["call"]))
    node_list = sorted(nodes)
    return {
        "query": "call-graph",
        "analysis": result.analysis, "parameter": result.parameter,
        "language": "scheme",
        "nodes": node_list, "sites": sites, "edges": edges,
        "known_sites": sum(1 for s in sites
                           if s["lattice"] == "Known"),
        "unknown_sites": sum(1 for s in sites
                             if s["lattice"] == "Unknown"),
        "dot": _dot_graph(node_list, edges,
                          frozenset((TOPLEVEL, UNKNOWN))),
    }


def _call_graph_fj(result) -> dict:
    program = result.program
    sites = []
    edges = []
    nodes: set = set()
    for label in sorted(result.invoke_targets):
        source = program.method_of_label[label].qualified_name
        nodes.add(source)
        targets = sorted(result.invoke_targets[label])
        for target in targets:
            nodes.add(target)
            edges.append({"source": source, "target": target,
                          "call": label})
        sites.append({"site": label, "owner": source,
                      "lattice": "Known", "targets": targets})
    edges.sort(key=lambda e: (e["source"], e["target"], e["call"]))
    node_list = sorted(nodes)
    return {
        "query": "call-graph",
        "analysis": result.analysis, "parameter": result.parameter,
        "language": "fj",
        "nodes": node_list, "sites": sites, "edges": edges,
        "known_sites": len(sites), "unknown_sites": 0,
        "dot": _dot_graph(node_list, edges, frozenset()),
    }


# ---------------------------------------------------------------------------
# The escape-analysis pass (Scheme)
# ---------------------------------------------------------------------------

def _closure_labels(values) -> set:
    labels = set()
    for value in values:
        lam = getattr(value, "lam", None)
        if lam is not None:
            labels.add(lam.label)
    return labels


def _escaping_pass(result) -> dict:
    """Closures reaching halt, a heap cell, or an unknown call.

    * **halt** — the closure is (part of) the program's answer; a
      caller the analysis cannot see may apply it.
    * **heap** — the closure was stored into a pair cell (the
      synthetic ``car@l``/``cdr@l`` addresses), so any consumer of
      the heap may retrieve and apply it.
    * **unknown-call** — the closure is an argument at a call site
      whose operator abstracted to ⊤: the callee is unknown, so the
      argument must be assumed to escape.
    """
    to_halt = _closure_labels(result.halt_values)
    to_heap: set = set()
    for (name, _context), flow in result.store.items():
        if "@" in name:
            to_heap |= _closure_labels(flow)
    to_unknown: set = set()
    calls = result.program.calls_by_label
    for label in result.unknown_operator:
        call = calls.get(label)
        if not isinstance(call, AppCall):
            continue
        for arg in call.args:
            if isinstance(arg, Lam):
                to_unknown.add(arg.label)
            elif isinstance(arg, Ref):
                to_unknown |= _closure_labels(result.flow_of(arg.name))
    escaping = sorted(to_halt | to_heap | to_unknown)
    channels = {label: sorted(
        (["halt"] if label in to_halt else [])
        + (["heap"] if label in to_heap else [])
        + (["unknown-call"] if label in to_unknown else []))
        for label in escaping}
    return {
        "query": "escaping",
        "analysis": result.analysis, "parameter": result.parameter,
        "language": "scheme",
        "escaping": escaping,
        "lambdas": [{"lam": label, "channels": channels[label]}
                    for label in escaping],
        "to_halt": sorted(to_halt), "to_heap": sorted(to_heap),
        "to_unknown": sorted(to_unknown),
        "total_lambdas": len(result.program.lams),
    }


# ---------------------------------------------------------------------------
# Monomorphic sites, devirtualization, inlining
# ---------------------------------------------------------------------------

def _mono_scheme(result) -> dict:
    sites = []
    for label in result.monomorphic_call_sites():
        (lam,) = result.callees[label]
        sites.append({"site": label, "target": lam.label,
                      "kind": "user" if lam.is_user else "cont"})
    return {
        "query": "mono",
        "analysis": result.analysis, "parameter": result.parameter,
        "language": "scheme",
        "sites": sites, "count": len(sites),
        "total_sites": len(set(result.callees)
                           | set(result.unknown_operator)),
    }


def _mono_fj(result) -> dict:
    sites = []
    for label in result.monomorphic_call_sites():
        (target,) = result.invoke_targets[label]
        sites.append({"site": label, "target": target})
    return {
        "query": "mono",
        "analysis": result.analysis, "parameter": result.parameter,
        "language": "fj",
        "sites": sites, "count": len(sites),
        "total_sites": len(result.invoke_targets),
    }


def _devirt_fj(result) -> dict:
    """Invocation sites whose receiver class set has size one.

    A monomorphic *receiver* is the devirtualization criterion: the
    dynamic dispatch can be replaced by a direct call to the method
    the single class resolves, even when several *method* targets
    were merged at the site by context merging.
    """
    program = result.program
    candidates = []
    for label in sorted(result.invoke_targets):
        exp = program.stmt_by_label[label].exp
        receivers = sorted({value.classname
                            for value in result.points_to(exp.target)})
        if len(receivers) != 1:
            continue
        candidates.append({
            "site": label, "receiver": receivers[0],
            "method": exp.method,
            "targets": sorted(result.invoke_targets[label])})
    return {
        "query": "devirt",
        "analysis": result.analysis, "parameter": result.parameter,
        "language": "fj",
        "candidates": candidates, "count": len(candidates),
        "total_sites": len(result.invoke_targets),
    }


def _inlining_scheme(result) -> dict:
    """The §6.2 advisor: single known *user* callee per site."""
    sites = []
    calls = result.program.calls_by_label
    for label in result.inlinable_call_sites():
        (lam,) = result.callees[label]
        sites.append({"site": label, "callee": lam.label,
                      "operator": str(calls[label].fn)})
    return {
        "query": "inlining",
        "analysis": result.analysis, "parameter": result.parameter,
        "language": "scheme",
        "sites": sites, "count": len(sites),
    }


# ---------------------------------------------------------------------------
# The dispatcher
# ---------------------------------------------------------------------------

def run_result_query(result, kind: str, target: str | None = None
                     ) -> dict:
    """Answer a batch query against a finished analysis result.

    *result* is an :class:`~repro.analysis.results.AnalysisResult` or
    an :class:`~repro.fj.kcfa.FJResult`; the language is detected from
    the result itself, so registry consumers need no dispatch of
    their own.
    """
    fj = hasattr(result, "invoke_targets")
    language = "fj" if fj else "scheme"
    validate_query(kind, target, session=False, language=language)
    if kind == "value-of":
        return value_of(result.store, target)
    if kind == "call-graph":
        return _call_graph_fj(result) if fj \
            else _call_graph_scheme(result)
    if kind == "mono":
        return _mono_fj(result) if fj else _mono_scheme(result)
    if kind == "devirt":
        return _devirt_fj(result)
    if kind == "escaping":
        return _escaping_pass(result)
    return _inlining_scheme(result)
