"""Abstraction maps α and machine-checked soundness (paper §3.5).

The soundness theorem says the abstract semantics simulates the
concrete one: if ς ⇒ ς′ and α(ς) ⊑ ς̂, some abstract successor covers
α(ς′).  We check the global consequence directly:

* run a concrete machine (with history-structured times/environments so
  α is computable), recording every state;
* abstract each state and assert it appears among the analysis's
  reachable configurations;
* abstract every concrete store binding and assert the abstract store
  covers it;
* assert the concrete result value is covered by the halt flow set.

Property-based tests drive this over randomly generated programs for
every analysis — the strongest correctness evidence the library has.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.domains import (
    AConst, APair, BASIC, BEnv, FClo, KClo, SClo, SCont, first_k,
)
from repro.analysis.kcfa import KConfig
from repro.analysis.flat_machine import FConfig
from repro.analysis.results import AnalysisResult
from repro.concrete.flat_env import FlatEnvResult
from repro.concrete.shared_env import SharedEnvResult
from repro.concrete.values import FlatClosure, SharedClosure
from repro.scheme.sexp import Symbol
from repro.scheme.values import (
    NilType, PairVal, ProcedureValue, VoidType,
)


@dataclass
class SoundnessReport:
    """Outcome of a soundness check; falsy iff violations were found."""

    analysis: str
    states_checked: int = 0
    bindings_checked: int = 0
    violations: list[str] = field(default_factory=list)

    def __bool__(self) -> bool:
        return not self.violations

    def summary(self) -> str:
        status = "SOUND" if self else f"{len(self.violations)} VIOLATIONS"
        return (f"{self.analysis}: {status} "
                f"({self.states_checked} states, "
                f"{self.bindings_checked} bindings)")


# -- value abstraction / coverage ----------------------------------------


def _const_covers(value, abs_values) -> bool:
    if BASIC in abs_values:
        return True
    if isinstance(value, Symbol):
        return AConst(str(value)) in abs_values
    if isinstance(value, (bool, int, str)):
        return AConst(value) in abs_values
    return False


def _pair_is_basic(value: PairVal) -> bool:
    """True when the pair transitively contains no procedures
    (such pairs may be covered by BASIC — quoted structure)."""
    stack = [value]
    while stack:
        node = stack.pop()
        if isinstance(node, ProcedureValue):
            return False
        if isinstance(node, PairVal):
            stack.extend((node.car, node.cdr))
    return True


def value_covered(value, abs_values, store, abstract_closure) -> bool:
    """Is the concrete *value* covered by the abstract value set?

    ``abstract_closure`` maps a concrete closure to its abstraction
    (machine-specific); pairs recurse through the abstract store.
    """
    if isinstance(value, (NilType, VoidType)):
        return BASIC in abs_values
    if isinstance(value, PairVal):
        if BASIC in abs_values and _pair_is_basic(value):
            return True
        for abs_value in abs_values:
            if isinstance(abs_value, APair):
                if (value_covered(value.car, store.get(abs_value.car),
                                  store, abstract_closure)
                        and value_covered(value.cdr,
                                          store.get(abs_value.cdr),
                                          store, abstract_closure)):
                    return True
        return False
    if isinstance(value, ProcedureValue):
        return abstract_closure(value) in abs_values
    return _const_covers(value, abs_values)


# -- k-CFA soundness ------------------------------------------------------


def check_kcfa_soundness(result: AnalysisResult,
                         concrete: SharedEnvResult) -> SoundnessReport:
    """Check a k-CFA result against a history-mode shared-env run."""
    k = result.parameter
    report = SoundnessReport(analysis=f"k-CFA(k={k})")

    def abs_time(time) -> tuple:
        if not isinstance(time, tuple):
            raise TypeError(
                "soundness checking needs time_mode='history' "
                "(run_shared(..., time_mode='history'))")
        return first_k(k, time)

    def abs_closure(closure: SharedClosure) -> KClo:
        benv = BEnv((name, abs_time(birth))
                    for name, birth in closure.benv)
        return KClo(closure.lam, benv)

    for entry in concrete.trace:
        report.states_checked += 1
        benv = BEnv((name, abs_time(addr[1]))
                    for name, addr in entry.benv)
        config = KConfig(entry.call, benv, abs_time(entry.time))
        if config not in result.configs:
            report.violations.append(
                f"unreached config: call {entry.call.label} "
                f"benv {benv!r} time {config.time}")
    for (name, time), value in concrete.store.items():
        report.bindings_checked += 1
        abs_addr = (name, abs_time(time))
        if not value_covered(value, result.store.get(abs_addr),
                             result.store, abs_closure):
            report.violations.append(
                f"store gap at {abs_addr}: {value!r} not covered")
    if not value_covered(concrete.value, result.halt_values,
                         result.store, abs_closure):
        report.violations.append(
            f"halt value {concrete.value!r} not covered")
    return report


# -- flat-machine soundness (m-CFA and poly k-CFA) -----------------------


def check_flat_soundness(result: AnalysisResult,
                         concrete: FlatEnvResult) -> SoundnessReport:
    """Check an m-CFA / poly-k-CFA result against a flat-env run.

    The concrete run must use the matching environment policy:
    ``stack`` for m-CFA, ``history`` for poly k-CFA.
    """
    bound = result.parameter
    report = SoundnessReport(
        analysis=f"{result.analysis}({bound})")

    def abs_env(env) -> tuple:
        _serial, frames = env
        return first_k(bound, frames)

    def abs_closure(closure: FlatClosure) -> FClo:
        return FClo(closure.lam, abs_env(closure.env))

    for entry in concrete.trace:
        report.states_checked += 1
        config = FConfig(entry.call, abs_env(entry.env))
        if config not in result.configs:
            report.violations.append(
                f"unreached config: call {entry.call.label} "
                f"env {config.env}")
    for (name, env), value in concrete.store.items():
        report.bindings_checked += 1
        abs_addr = (name, abs_env(env))
        if not value_covered(value, result.store.get(abs_addr),
                             result.store, abs_closure):
            report.violations.append(
                f"store gap at {abs_addr}: {value!r} not covered")
    if not value_covered(concrete.value, result.halt_values,
                         result.store, abs_closure):
        report.violations.append(
            f"halt value {concrete.value!r} not covered")
    return report


# -- summary-rep soundness (pushdown) -------------------------------------


def _summary_covered(value, abs_values, store) -> bool:
    """Coverage under the summary rep's α.

    Summary entry environments are not a syntactic function of a
    concrete state (they are keyed on *abstract* argument signatures),
    so closures are matched by lambda identity — ``SClo``/``SCont``
    abstract every concrete closure over the same lambda.  Pairs
    recurse through the abstract store as usual.
    """
    if abs_values is None:
        return False
    if isinstance(value, (NilType, VoidType)):
        return BASIC in abs_values
    if isinstance(value, PairVal):
        if BASIC in abs_values and _pair_is_basic(value):
            return True
        for abs_value in abs_values:
            if isinstance(abs_value, APair):
                if (_summary_covered(value.car,
                                     store.get(abs_value.car), store)
                        and _summary_covered(
                            value.cdr, store.get(abs_value.cdr),
                            store)):
                    return True
        return False
    if isinstance(value, ProcedureValue):
        return any(isinstance(abs_value, (SClo, SCont))
                   and abs_value.lam is value.lam
                   for abs_value in abs_values)
    return _const_covers(value, abs_values)


def check_summary_soundness(result: AnalysisResult,
                            concrete: FlatEnvResult) -> SoundnessReport:
    """Check a pushdown-summary result against a stack-mode flat run.

    The summary rep's entry environments are keyed on abstract
    argument signatures, so — unlike the k-CFA and m-CFA checks —
    there is no per-state α to compute from a concrete trace.  We
    check the theorem's *existential* consequences instead, which is
    what soundness means for clients of the analysis:

    * every call site the concrete execution reaches is reached by
      some abstract configuration;
    * every concrete binding of a name is covered by the *union* of
      the name's flow over all summary contexts (binder names are
      globally unique, so the union is per-binder, not per-string
      accident);
    * the concrete result value is covered by the halt flow set.
    """
    report = SoundnessReport(analysis="pushdown")
    reached = {config.call.label for config in result.configs}
    for entry in concrete.trace:
        report.states_checked += 1
        if entry.call.label not in reached:
            report.violations.append(
                f"unreached call site {entry.call.label}")
    flows: dict = {}
    for (name, _context), values in result.store.items():
        flows[name] = flows.get(name, frozenset()) | values
    for (name, _env), value in concrete.store.items():
        report.bindings_checked += 1
        if not _summary_covered(value, flows.get(name),
                                result.store):
            report.violations.append(
                f"flow gap at {name!r}: {value!r} not covered")
    if not _summary_covered(concrete.value, result.halt_values,
                            result.store):
        report.violations.append(
            f"halt value {concrete.value!r} not covered")
    return report
