"""Flat-environment analyses — m-CFA (§5.2) and "naive polynomial
k-CFA" (§6) as allocator policies of the AAM kernel.

A configuration is ``(call, ρ̂)`` where ρ̂ is a bounded tuple of call
labels; an address is ``(variable, ρ̂)``.  Entering a lambda allocates
a new abstract environment and **copies** the callee's free variables
into it — the abstract image of flat-closure creation.  Because an
environment is a single base context rather than a per-variable map,
the state space is polynomial: this is the paper's §4.4 observation
about objects, projected back onto closures.

All of that now lives in :class:`~repro.analysis.kernel.FlatEnv`
driven by the shared :class:`~repro.analysis.kernel.Kernel` transfer
function; this module keeps the machine's public face.  The
environment allocator ``alloc(call-label, caller-env, callee-lam,
callee-env)`` is the whole analysis:

* :func:`~repro.analysis.policies.mcfa_allocator` (§5.3): a
  *procedure* call pushes the call site and keeps the top m frames; a
  *continuation* call **restores** the environment the continuation
  closed over (a return).
* :func:`~repro.analysis.policies.poly_kcfa_allocator`: every call
  allocates the last k call sites.  Section 6 shows why this
  degenerates: any intervening call rotates the context window,
  merging bindings that m-CFA keeps apart.
"""

from __future__ import annotations

from typing import Callable

from repro.cps.program import Program
from repro.cps.syntax import Lam
from repro.analysis.domains import FlatEnvAbs
from repro.analysis.engine import EngineOptions, codegen_stage, \
    machine_path, run_single_store, specialize
from repro.analysis.interning import PlainTable
from repro.analysis.kernel import (
    FConfig, FlatEnv, Kernel, Recorder, result_from_run,
)
from repro.analysis.policies import mcfa_allocator, poly_kcfa_allocator
from repro.analysis.results import AnalysisResult
from repro.util.budget import Budget

__all__ = [
    "EnvAllocator", "FConfig", "FlatMachine", "analyze_flat",
    "mcfa_allocator", "poly_kcfa_allocator",
]

#: alloc(call_label, caller_env, callee_lam, callee_env) -> new_env
EnvAllocator = Callable[[int, FlatEnvAbs, Lam, FlatEnvAbs], FlatEnvAbs]


class FlatMachine(Kernel):
    """The flat-environment abstract transition relation: the kernel
    with flat environments and a pluggable allocator policy."""

    def __init__(self, program: Program, allocator: EnvAllocator):
        super().__init__(program, FlatEnv(allocator))


def analyze_flat(program: Program, allocator: EnvAllocator,
                 analysis: str, parameter: int,
                 budget: Budget | None = None,
                 plain: bool = False,
                 specialized: bool = True,
                 codegen: bool = True) -> AnalysisResult:
    """Run the flat machine to fixpoint with a single-threaded store.

    ``specialized`` selects the staged step loop
    (:func:`~repro.analysis.engine.specialize`); ``codegen`` lifts it
    one rung further to generated source
    (:func:`~repro.analysis.engine.codegen_stage`) and only engages on
    top of specialization.  Results are byte-identical every way —
    False is the escape hatch.
    """
    machine = FlatMachine(program, allocator)
    staged = codegen_stage(machine, specialized and codegen)
    machine = staged if staged is not None \
        else specialize(machine, specialized)
    run = run_single_store(
        machine, Recorder(),
        EngineOptions(budget=budget,
                      table_factory=PlainTable if plain else None))
    result = result_from_run(run, program, analysis, parameter)
    result.engine_path = machine_path(machine)
    return result
