"""Flat-environment abstract machine — the engine behind m-CFA (§5.2)
and "naive polynomial k-CFA" (§6).

A configuration is ``(call, ρ̂)`` where ρ̂ is a bounded tuple of call
labels; an address is ``(variable, ρ̂)``.  Entering a lambda allocates
a new abstract environment and **copies** the callee's free variables
into it — the abstract image of flat-closure creation.  Because an
environment is a single base context rather than a per-variable map,
the state space is polynomial: this is the paper's §4.4 observation
about objects, projected back onto closures.

The machine is parameterized by the environment allocator
``new(call-label, caller-env, callee-lam, callee-env)``:

* **m-CFA** (§5.3): a *procedure* call pushes the call site and keeps
  the top m frames; a *continuation* call **restores** the environment
  the continuation closed over (the caller's frames — a return).
* **naive polynomial k-CFA**: every call (procedure or continuation)
  allocates the last k call sites.  Section 6 shows why this
  degenerates: any intervening call rotates the context window, merging
  bindings that m-CFA keeps apart.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.cps.program import Program
from repro.cps.syntax import (
    AppCall, Call, CExp, FixCall, HaltCall, IfCall, Lam, Lit, PrimCall,
    Ref, free_vars_of_lam,
)
from repro.analysis.domains import (
    APair, AbsStore, Addr, BASIC, FClo, FlatEnvAbs,
    abstract_literal, first_k,
)
from repro.analysis.engine import EngineOptions, run_single_store
from repro.analysis.interning import PlainTable
from repro.analysis.kcfa import Recorder, result_from_run
from repro.analysis.results import AnalysisResult
from repro.scheme.primitives import lookup_primitive
from repro.util.budget import Budget

#: new(call_label, caller_env, callee_lam, callee_env) -> new_env
EnvAllocator = Callable[[int, FlatEnvAbs, Lam, FlatEnvAbs], FlatEnvAbs]


def mcfa_allocator(m: int) -> EnvAllocator:
    """The §5.3 allocator: top-m-frames with continuation restore."""
    def new(call_label: int, caller_env: FlatEnvAbs, lam: Lam,
            callee_env: FlatEnvAbs) -> FlatEnvAbs:
        if lam.is_user:
            return first_k(m, (call_label, *caller_env))
        return callee_env
    return new


def poly_kcfa_allocator(k: int) -> EnvAllocator:
    """Last-k-call-sites for *every* call — the naive JW instantiation
    the paper's §6 evaluates against."""
    def new(call_label: int, caller_env: FlatEnvAbs, lam: Lam,
            callee_env: FlatEnvAbs) -> FlatEnvAbs:
        return first_k(k, (call_label, *caller_env))
    return new


@dataclass(frozen=True, slots=True)
class FConfig:
    """A flat abstract configuration ``(call, ρ̂)``."""

    call: Call
    env: FlatEnvAbs


@dataclass(frozen=True, slots=True)
class FTransition:
    call: Call
    env: FlatEnvAbs
    joins: tuple[tuple[Addr, object], ...]  # values are table masks


class FlatMachine:
    """The flat-environment abstract transition relation.

    Mask-native like :class:`~repro.analysis.kcfa.KCFAMachine`: flow
    sets are value-table masks and closures are hash-consed per
    ``(lambda, environment)``.
    """

    def __init__(self, program: Program, allocator: EnvAllocator):
        self.program = program
        self.new_env = allocator

    def initial(self) -> FConfig:
        return FConfig(self.program.root, ())

    # -- the engine's Machine protocol ---------------------------------

    def boot(self, store: AbsStore) -> FConfig:
        """Adopt the store's value table; nothing to seed."""
        table = store.table
        self.table = table
        self._basic = table.bit_for(BASIC)
        self._lit_bits: dict[object, object] = {}
        self._clo_bits: dict[tuple, object] = {}
        return self.initial()

    def step(self, config: FConfig, store, reads: set[Addr],
             recorder: Recorder) -> list[tuple[FConfig, tuple]]:
        """One transfer-function application, in engine form."""
        return [(FConfig(succ.call, succ.env), succ.joins)
                for succ in self.transitions(config, store, reads,
                                             recorder)]

    # -- Ê ---------------------------------------------------------------

    def evaluate(self, exp: CExp, env: FlatEnvAbs, store,
                 reads: set[Addr]):
        """The mask of values *exp* may evaluate to."""
        if isinstance(exp, Ref):
            addr = (exp.name, env)
            reads.add(addr)
            return store.get_mask(addr)
        if isinstance(exp, Lam):
            key = (exp.label, env)
            bit = self._clo_bits.get(key)
            if bit is None:
                bit = self.table.bit_for(FClo(exp, env))
                self._clo_bits[key] = bit
            return bit
        if isinstance(exp, Lit):
            bit = self._lit_bits.get(id(exp))
            if bit is None:
                bit = self.table.bit_for(abstract_literal(exp.datum))
                self._lit_bits[id(exp)] = bit
            return bit
        raise TypeError(f"not an atomic expression: {exp!r}")

    # -- transitions --------------------------------------------------------

    def transitions(self, config: FConfig, store, reads: set[Addr],
                    recorder: Recorder) -> list[FTransition]:
        call, env = config.call, config.env
        if isinstance(call, AppCall):
            return self._app_transitions(call, env, store, reads,
                                         recorder)
        if isinstance(call, IfCall):
            test = self.evaluate(call.test, env, store, reads)
            succs = []
            if self.table.any_truthy(test):
                succs.append(FTransition(call.then, env, ()))
            if self.table.any_falsy(test):
                succs.append(FTransition(call.orelse, env, ()))
            return succs
        if isinstance(call, PrimCall):
            return self._prim_transitions(call, env, store, reads,
                                          recorder)
        if isinstance(call, FixCall):
            joins = tuple(
                ((name, env), self.table.bit_for(FClo(lam, env)))
                for name, lam in call.bindings)
            return [FTransition(call.body, env, joins)]
        if isinstance(call, HaltCall):
            recorder.halt_values |= self.table.decode(
                self.evaluate(call.arg, env, store, reads))
            return []
        raise TypeError(f"cannot step call {call!r}")

    def _app_transitions(self, call: AppCall, env: FlatEnvAbs, store,
                         reads: set[Addr],
                         recorder: Recorder) -> list[FTransition]:
        operators = self.evaluate(call.fn, env, store, reads)
        if operators & self._basic:
            recorder.unknown_operator.add(call.label)
        arg_values = [self.evaluate(arg, env, store, reads)
                      for arg in call.args]
        succs = []
        for operator in self.table.decode_iter(operators):
            if not isinstance(operator, FClo):
                continue
            lam = operator.lam
            if len(lam.params) != len(call.args):
                continue
            succs.append(self._enter(call.label, env, operator,
                                     arg_values, store, reads, recorder))
        return succs

    def _enter(self, call_label: int, caller_env: FlatEnvAbs,
               operator: FClo, arg_values: list, store,
               reads: set[Addr], recorder: Recorder) -> FTransition:
        """Allocate ρ̂'', bind parameters, copy free variables (§5.2)."""
        lam = operator.lam
        new_env = self.new_env(call_label, caller_env, lam,
                               operator.env)
        joins: list[tuple[Addr, object]] = [
            ((param, new_env), mask)
            for param, mask in zip(lam.params, arg_values)]
        if new_env != operator.env:
            for free in free_vars_of_lam(lam):
                source = (free, operator.env)
                reads.add(source)
                copied = store.get_mask(source)
                if copied:
                    joins.append(((free, new_env), copied))
        recorder.record_apply(call_label, lam, new_env)
        return FTransition(lam.body, new_env, tuple(joins))

    def _prim_transitions(self, call: PrimCall, env: FlatEnvAbs, store,
                          reads: set[Addr],
                          recorder: Recorder) -> list[FTransition]:
        prim = lookup_primitive(call.op)
        arg_values = [self.evaluate(arg, env, store, reads)
                      for arg in call.args]
        if any(not mask for mask in arg_values):
            return []
        if prim.kind == "error":
            return []
        extra_joins: list[tuple[Addr, object]] = []
        if prim.kind == "basic":
            result = self._basic
        elif prim.kind == "cons":
            car_addr = (f"car@{call.label}", env)
            cdr_addr = (f"cdr@{call.label}", env)
            extra_joins.append((car_addr, arg_values[0]))
            extra_joins.append((cdr_addr, arg_values[1]))
            result = self.table.bit_for(APair(car_addr, cdr_addr))
        elif prim.kind in ("car", "cdr"):
            gathered = self.table.empty
            for value in self.table.decode_iter(arg_values[0]):
                if isinstance(value, APair):
                    addr = value.car if prim.kind == "car" else value.cdr
                    reads.add(addr)
                    gathered |= store.get_mask(addr)
                elif value is BASIC:
                    gathered |= self._basic
            if not gathered:
                return []
            result = gathered
        else:
            raise ValueError(f"unknown primitive kind {prim.kind!r}")
        succs = []
        conts = self.evaluate(call.cont, env, store, reads)
        for operator in self.table.decode_iter(conts):
            if not isinstance(operator, FClo):
                continue
            if len(operator.lam.params) != 1:
                continue
            transition = self._enter(call.label, env, operator,
                                     [result], store, reads, recorder)
            succs.append(FTransition(
                transition.call, transition.env,
                transition.joins + tuple(extra_joins)))
        if not succs and extra_joins:
            # Keep the pair fields even if no continuation flowed yet.
            succs.append(FTransition(call, env, tuple(extra_joins)))
        return succs


def analyze_flat(program: Program, allocator: EnvAllocator,
                 analysis: str, parameter: int,
                 budget: Budget | None = None,
                 plain: bool = False) -> AnalysisResult:
    """Run the flat machine to fixpoint with a single-threaded store."""
    run = run_single_store(
        FlatMachine(program, allocator), Recorder(),
        EngineOptions(budget=budget,
                      table_factory=PlainTable if plain else None))
    return result_from_run(run, program, analysis, parameter)
