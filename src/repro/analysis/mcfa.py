"""m-CFA: the paper's polynomial context-sensitive hierarchy (§5).

m-CFA is the flat-environment abstract machine with the
top-m-stack-frames allocator: entering a *procedure* pushes the call
site onto the (truncated) frame context; entering a *continuation*
restores the frames of the environment the continuation closed over —
the analysis-level image of a function return.

``[m = 0]CFA`` coincides with ``[k = 0]CFA`` (§5.3), which
:func:`repro.analysis.zerocfa.analyze_zerocfa` and the test suite rely
on.
"""

from __future__ import annotations

from repro.cps.program import Program
from repro.analysis.flat_machine import analyze_flat, mcfa_allocator
from repro.analysis.results import AnalysisResult
from repro.errors import UsageError
from repro.util.budget import Budget


def analyze_mcfa(program: Program, m: int = 1,
                 budget: Budget | None = None,
                 plain: bool = False,
                 specialized: bool = True,
                 codegen: bool = True) -> AnalysisResult:
    """Run m-CFA to fixpoint.

    Complexity is polynomial in program size for any fixed m
    (Theorem 5.1): the configuration space is |Call| × |Call|^m and
    the store lattice has height |Var| × |Call|^m × |Lam| × |Call|^m.
    """
    if m < 0:
        raise UsageError(f"m must be non-negative, got {m}")
    return analyze_flat(program, mcfa_allocator(m), "m-CFA", m, budget,
                        plain=plain, specialized=specialized,
                        codegen=codegen)
