"""Context policies: the tick/alloc axis of the AAM kernel, as data.

Van Horn & Mairson's EXPTIME result and the m-CFA construction pin
the whole functional-vs-OO complexity gap on three choices — how times
tick, how addresses allocate, and how environments are represented.
This module is that axis made into values:

* **Scheme/CPS policies** are small callables handed to the kernel's
  environment representations (:class:`~repro.analysis.kernel.
  SharedEnv` takes a ``tick``, :class:`~repro.analysis.kernel.FlatEnv`
  an ``alloc``); the third rep,
  :class:`~repro.analysis.kernel.SummaryEnv`, takes no callable at all
  — its whole policy is the static stack/heap split computed by
  :func:`summary_layout` below.
* **Featherweight Java policies** are :class:`FJContextPolicy` values
  consumed by the FJ machines (:mod:`repro.fj.kcfa`,
  :mod:`repro.fj.poly`), which keep their own syntax-directed step
  rules but draw every context decision from the policy.

Every analysis in the repository is one of these values registered in
:mod:`repro.analysis.registry`; adding an analysis means declaring a
policy here, not writing a machine.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.domains import first_k
from repro.cps.syntax import (
    FixCall, Lam, Ref, call_children, call_exps,
)

# -- Scheme/CPS context policies -----------------------------------------


def call_site_tick(k: int):
    """k-CFA's tick (§3.5.1): keep the last *k* call-site labels.

    The returned callable carries its **declared axes** — ``shape``,
    ``depth`` and ``context_free`` — which the specialization stage
    (:mod:`repro.analysis.specialize`) consults to pick a pre-resolved
    step loop without calling the policy.
    """
    def tick(call_label: int, time: tuple) -> tuple:
        return first_k(k, (call_label, *time))
    tick.shape = "call-site"
    tick.depth = k
    tick.context_free = k == 0
    return tick


def mcfa_allocator(m: int):
    """The §5.3 allocator: top-m-frames with continuation restore.

    A *procedure* call pushes the call site and keeps the top m
    frames; a *continuation* call **restores** the environment the
    continuation closed over (the caller's frames — a return).

    ``context_free`` declares the m = 0 invariant the specializer
    relies on: with no frames to keep, every environment the system
    can construct is the empty tuple (restores included, since every
    closure was itself created under the empty environment).
    """
    def alloc(call_label: int, caller_env: tuple, lam: Lam,
              callee_env: tuple) -> tuple:
        if lam.is_user:
            return first_k(m, (call_label, *caller_env))
        return callee_env
    alloc.shape = "mcfa"
    alloc.depth = m
    alloc.context_free = m == 0
    return alloc


def poly_kcfa_allocator(k: int):
    """Last-k-call-sites for *every* call — the naive JW instantiation
    the paper's §6 evaluates against.  Any intervening call rotates
    the context window, merging bindings m-CFA keeps apart."""
    def alloc(call_label: int, caller_env: tuple, lam: Lam,
              callee_env: tuple) -> tuple:
        return first_k(k, (call_label, *caller_env))
    alloc.shape = "poly"
    alloc.depth = k
    alloc.context_free = k == 0
    return alloc


# -- the pushdown summary layout (third env rep) -------------------------

#: The frame of top-level calls (no enclosing user lambda).  A string,
#: so it can never collide with a lambda label (labels are ints).
ROOT_FRAME = "root"

#: The single allocation context of heap-escaping bindings and pair
#: fields under the summary rep.  Binder names are globally unique
#: (validated by :class:`~repro.cps.program.Program`), so one shared
#: context keeps name-keyed heap addresses unambiguous — and keeps the
#: abstract-pair domain finite, which is what bounds the entry-summary
#: key space.
SUMMARY_HEAP = ("heap",)


@dataclass(frozen=True)
class SummaryLayout:
    """The static stack/heap split the summary rep executes against.

    CFA2's insight (PAPERS.md) is that a reference is *stack-resolvable*
    exactly when it occurs in the same user-procedure frame that bound
    it — continuations run in their creator's frame, so a CPS program's
    frames are delimited by its *user* lambdas alone.  Everything else
    (captures by nested lambdas, recursive fix references) escapes to
    the heap.  All three maps are syntax-directed and computed once per
    program:

    * ``owner_of_call`` — call label → the user frame its code runs in
      (:data:`ROOT_FRAME` at top level);
    * ``frame_of_binder`` — binder name → the user frame its binding
      lives in (a user lambda's own entry frame for its parameters; the
      *defining* frame for continuation parameters and fix bindings);
    * ``heap_names`` — binders with at least one cross-frame reference;
      their bindings are mirrored to ``(name, SUMMARY_HEAP)``.
    """

    owner_of_call: dict
    frame_of_binder: dict
    heap_names: frozenset


def summary_layout(program) -> SummaryLayout:
    """Compute the :class:`SummaryLayout` of *program* (iteratively —
    generated CPS nests deeply enough to overflow Python recursion)."""
    owner_of_call: dict = {}
    frame_of_binder: dict = {}
    stack = [(program.root, ROOT_FRAME)]
    while stack:
        call, frame = stack.pop()
        owner_of_call[call.label] = frame
        if isinstance(call, FixCall):
            for name, _lam in call.bindings:
                frame_of_binder[name] = frame
        for exp in call_exps(call):
            if isinstance(exp, Lam):
                # A user lambda opens a new frame; a continuation's
                # body runs in the frame that created it (entering a
                # continuation *restores* that frame).
                inner = exp.label if exp.is_user else frame
                for param in exp.params:
                    frame_of_binder[param] = inner
                stack.append((exp.body, inner))
        for child in call_children(call):
            stack.append((child, frame))
    heap_names = set()
    for call in program.calls:
        frame = owner_of_call[call.label]
        for exp in call_exps(call):
            if isinstance(exp, Ref) and \
                    frame_of_binder[exp.name] != frame:
                heap_names.add(exp.name)
    return SummaryLayout(owner_of_call=owner_of_call,
                         frame_of_binder=frame_of_binder,
                         heap_names=frozenset(heap_names))


# -- Featherweight Java context policies ---------------------------------

#: Context elements of receiver-sensitive FJ policies are tagged so an
#: allocation site can never collide with a call-site label.
CALL_ELEM = "C"
OBJ_ELEM = "O"


class FJContextPolicy:
    """What an FJ machine asks its context policy.

    * ``step(label, now)`` — time after a non-invocation statement
      (also the allocation time of a ``new`` at that statement);
    * ``invoke(label, now, entry, receiver)`` — the callee's entry
      time.  ``entry`` is the caller's method-entry context (flat
      machine only; ``None`` on the map-based machine) and
      ``receiver`` the receiver object when the policy is
      receiver-sensitive (``None`` otherwise);
    * ``ret(label, now, saved)`` — the caller's time after a return,
      given the continuation's saved time;
    * ``receiver_sensitive`` — whether ``invoke`` needs the receiver
      (forces the flat machine's per-receiver invoke path);
    * ``context_free`` — declares that every time the policy can
      produce is the empty tuple, so the specialization stage may run
      the machine with all context construction pre-folded away;
    * ``this_mode`` — how ``this`` is bound on entry: ``"join-all"``
      (the whole receiver flow set, the historical Figure 9
      behaviour), ``"alias"`` (only the dispatching receiver) or
      ``"rebind"`` (copy the receiver's fields into the entry
      context — flat-closure copying for objects);
    * ``display`` — the ticking label reports print.
    """

    receiver_sensitive = False
    this_mode = "join-all"
    display = "invocation"
    context_free = False

    def initial(self) -> tuple:
        return ()


@dataclass(frozen=True)
class FJCallSite(FJContextPolicy):
    """The paper's §4.3/§4.5 policies: last-k labels, ticked either at
    every statement or only at invocations (with return-restore)."""

    k: int
    tick: str = "invocation"  # or "statement"

    @property
    def display(self) -> str:
        return self.tick

    @property
    def context_free(self) -> bool:
        """With k = 0 every window truncates to the empty tuple under
        both ticking modes, so all times the machine can see are ()."""
        return self.k == 0

    def step(self, label: int, now: tuple) -> tuple:
        if self.tick == "statement":
            return first_k(self.k, (label, *now))
        return now

    def invoke(self, label: int, now: tuple, entry, receiver) -> tuple:
        return first_k(self.k, (label, *now))

    def ret(self, label: int, now: tuple, saved: tuple) -> tuple:
        if self.tick == "invocation":
            return saved
        return first_k(self.k, (label, *now))


@dataclass(frozen=True)
class FJStack(FJContextPolicy):
    """m-CFA for Featherweight Java: top-m stack frames with flat
    method environments.

    Entering a method pushes the call site onto the *caller's entry*
    frames; returning restores them; and ``this`` is re-bound by
    **copying the receiver's fields into the entry context** — the
    §5.2 free-variable-copying move with an object's fields playing
    the free variables.  Every address a method body touches then
    shares one base context, the §4.4 invariant that makes the state
    space polynomial.  Sound because FJ fields are write-once
    (constructor-only); the copy re-runs when its source grows, via
    the engine's dependency tracking.
    """

    m: int

    receiver_sensitive = True
    this_mode = "rebind"
    display = "stack"

    def step(self, label: int, now: tuple) -> tuple:
        return now

    def invoke(self, label: int, now: tuple, entry: tuple,
               receiver) -> tuple:
        return first_k(self.m, (label, *entry))

    def ret(self, label: int, now: tuple, saved: tuple) -> tuple:
        return saved


@dataclass(frozen=True)
class FJHybrid(FJContextPolicy):
    """The hybrid call-site/object-sensitivity ladder.

    A callee context is the concatenation of the two axes, each drawn
    from its own history so neither can crowd out the other:

    * the receiver's **allocation chain** — its own site plus the
      ``O`` elements of its allocation context — truncated to
      ``obj_depth`` (object sensitivity);
    * the **call-site stack** — this call's label plus the ``C``
      elements of the caller's entry context — truncated to
      ``call_depth``.

    ``call_depth = 0`` is pure object sensitivity (Milanova-style
    obj^n: shallow allocation chains simply yield short contexts —
    there is no call-site padding, which is exactly why obj^n cannot
    separate two calls on the same receiver at any depth);
    ``obj_depth = 0`` is pure entry-stack call-site windows; anything
    between is a rung of the ladder.
    """

    call_depth: int
    obj_depth: int = 1

    receiver_sensitive = True
    this_mode = "alias"

    @property
    def display(self) -> str:
        return f"hybrid[obj={self.obj_depth},call={self.call_depth}]"

    def step(self, label: int, now: tuple) -> tuple:
        return now

    def invoke(self, label: int, now: tuple, entry: tuple,
               receiver) -> tuple:
        chain = ((OBJ_ELEM, receiver.site),) + tuple(
            elem for elem in receiver.time if elem[0] == OBJ_ELEM)
        calls = ((CALL_ELEM, label),) + tuple(
            elem for elem in entry if elem[0] == CALL_ELEM)
        return (first_k(self.obj_depth, chain)
                + first_k(self.call_depth, calls))

    def ret(self, label: int, now: tuple, saved: tuple) -> tuple:
        return saved
