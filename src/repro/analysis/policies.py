"""Context policies: the tick/alloc axis of the AAM kernel, as data.

Van Horn & Mairson's EXPTIME result and the m-CFA construction pin
the whole functional-vs-OO complexity gap on three choices — how times
tick, how addresses allocate, and how environments are represented.
This module is that axis made into values:

* **Scheme/CPS policies** are small callables handed to the kernel's
  environment representations (:class:`~repro.analysis.kernel.
  SharedEnv` takes a ``tick``, :class:`~repro.analysis.kernel.FlatEnv`
  an ``alloc``).
* **Featherweight Java policies** are :class:`FJContextPolicy` values
  consumed by the FJ machines (:mod:`repro.fj.kcfa`,
  :mod:`repro.fj.poly`), which keep their own syntax-directed step
  rules but draw every context decision from the policy.

Every analysis in the repository is one of these values registered in
:mod:`repro.analysis.registry`; adding an analysis means declaring a
policy here, not writing a machine.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.domains import first_k
from repro.cps.syntax import Lam

# -- Scheme/CPS context policies -----------------------------------------


def call_site_tick(k: int):
    """k-CFA's tick (§3.5.1): keep the last *k* call-site labels.

    The returned callable carries its **declared axes** — ``shape``,
    ``depth`` and ``context_free`` — which the specialization stage
    (:mod:`repro.analysis.specialize`) consults to pick a pre-resolved
    step loop without calling the policy.
    """
    def tick(call_label: int, time: tuple) -> tuple:
        return first_k(k, (call_label, *time))
    tick.shape = "call-site"
    tick.depth = k
    tick.context_free = k == 0
    return tick


def mcfa_allocator(m: int):
    """The §5.3 allocator: top-m-frames with continuation restore.

    A *procedure* call pushes the call site and keeps the top m
    frames; a *continuation* call **restores** the environment the
    continuation closed over (the caller's frames — a return).

    ``context_free`` declares the m = 0 invariant the specializer
    relies on: with no frames to keep, every environment the system
    can construct is the empty tuple (restores included, since every
    closure was itself created under the empty environment).
    """
    def alloc(call_label: int, caller_env: tuple, lam: Lam,
              callee_env: tuple) -> tuple:
        if lam.is_user:
            return first_k(m, (call_label, *caller_env))
        return callee_env
    alloc.shape = "mcfa"
    alloc.depth = m
    alloc.context_free = m == 0
    return alloc


def poly_kcfa_allocator(k: int):
    """Last-k-call-sites for *every* call — the naive JW instantiation
    the paper's §6 evaluates against.  Any intervening call rotates
    the context window, merging bindings m-CFA keeps apart."""
    def alloc(call_label: int, caller_env: tuple, lam: Lam,
              callee_env: tuple) -> tuple:
        return first_k(k, (call_label, *caller_env))
    alloc.shape = "poly"
    alloc.depth = k
    alloc.context_free = k == 0
    return alloc


# -- Featherweight Java context policies ---------------------------------

#: Context elements of receiver-sensitive FJ policies are tagged so an
#: allocation site can never collide with a call-site label.
CALL_ELEM = "C"
OBJ_ELEM = "O"


class FJContextPolicy:
    """What an FJ machine asks its context policy.

    * ``step(label, now)`` — time after a non-invocation statement
      (also the allocation time of a ``new`` at that statement);
    * ``invoke(label, now, entry, receiver)`` — the callee's entry
      time.  ``entry`` is the caller's method-entry context (flat
      machine only; ``None`` on the map-based machine) and
      ``receiver`` the receiver object when the policy is
      receiver-sensitive (``None`` otherwise);
    * ``ret(label, now, saved)`` — the caller's time after a return,
      given the continuation's saved time;
    * ``receiver_sensitive`` — whether ``invoke`` needs the receiver
      (forces the flat machine's per-receiver invoke path);
    * ``context_free`` — declares that every time the policy can
      produce is the empty tuple, so the specialization stage may run
      the machine with all context construction pre-folded away;
    * ``this_mode`` — how ``this`` is bound on entry: ``"join-all"``
      (the whole receiver flow set, the historical Figure 9
      behaviour), ``"alias"`` (only the dispatching receiver) or
      ``"rebind"`` (copy the receiver's fields into the entry
      context — flat-closure copying for objects);
    * ``display`` — the ticking label reports print.
    """

    receiver_sensitive = False
    this_mode = "join-all"
    display = "invocation"
    context_free = False

    def initial(self) -> tuple:
        return ()


@dataclass(frozen=True)
class FJCallSite(FJContextPolicy):
    """The paper's §4.3/§4.5 policies: last-k labels, ticked either at
    every statement or only at invocations (with return-restore)."""

    k: int
    tick: str = "invocation"  # or "statement"

    @property
    def display(self) -> str:
        return self.tick

    @property
    def context_free(self) -> bool:
        """With k = 0 every window truncates to the empty tuple under
        both ticking modes, so all times the machine can see are ()."""
        return self.k == 0

    def step(self, label: int, now: tuple) -> tuple:
        if self.tick == "statement":
            return first_k(self.k, (label, *now))
        return now

    def invoke(self, label: int, now: tuple, entry, receiver) -> tuple:
        return first_k(self.k, (label, *now))

    def ret(self, label: int, now: tuple, saved: tuple) -> tuple:
        if self.tick == "invocation":
            return saved
        return first_k(self.k, (label, *now))


@dataclass(frozen=True)
class FJStack(FJContextPolicy):
    """m-CFA for Featherweight Java: top-m stack frames with flat
    method environments.

    Entering a method pushes the call site onto the *caller's entry*
    frames; returning restores them; and ``this`` is re-bound by
    **copying the receiver's fields into the entry context** — the
    §5.2 free-variable-copying move with an object's fields playing
    the free variables.  Every address a method body touches then
    shares one base context, the §4.4 invariant that makes the state
    space polynomial.  Sound because FJ fields are write-once
    (constructor-only); the copy re-runs when its source grows, via
    the engine's dependency tracking.
    """

    m: int

    receiver_sensitive = True
    this_mode = "rebind"
    display = "stack"

    def step(self, label: int, now: tuple) -> tuple:
        return now

    def invoke(self, label: int, now: tuple, entry: tuple,
               receiver) -> tuple:
        return first_k(self.m, (label, *entry))

    def ret(self, label: int, now: tuple, saved: tuple) -> tuple:
        return saved


@dataclass(frozen=True)
class FJHybrid(FJContextPolicy):
    """The hybrid call-site/object-sensitivity ladder.

    A callee context is the concatenation of the two axes, each drawn
    from its own history so neither can crowd out the other:

    * the receiver's **allocation chain** — its own site plus the
      ``O`` elements of its allocation context — truncated to
      ``obj_depth`` (object sensitivity);
    * the **call-site stack** — this call's label plus the ``C``
      elements of the caller's entry context — truncated to
      ``call_depth``.

    ``call_depth = 0`` is pure object sensitivity (Milanova-style
    obj^n: shallow allocation chains simply yield short contexts —
    there is no call-site padding, which is exactly why obj^n cannot
    separate two calls on the same receiver at any depth);
    ``obj_depth = 0`` is pure entry-stack call-site windows; anything
    between is a rung of the ladder.
    """

    call_depth: int
    obj_depth: int = 1

    receiver_sensitive = True
    this_mode = "alias"

    @property
    def display(self) -> str:
        return f"hybrid[obj={self.obj_depth},call={self.call_depth}]"

    def step(self, label: int, now: tuple) -> tuple:
        return now

    def invoke(self, label: int, now: tuple, entry: tuple,
               receiver) -> tuple:
        chain = ((OBJ_ELEM, receiver.site),) + tuple(
            elem for elem in receiver.time if elem[0] == OBJ_ELEM)
        calls = ((CALL_ELEM, label),) + tuple(
            elem for elem in entry if elem[0] == CALL_ELEM)
        return (first_k(self.obj_depth, chain)
                + first_k(self.call_depth, calls))

    def ret(self, label: int, now: tuple, saved: tuple) -> tuple:
        return saved
