"""Analysis results: flow sets, call graphs, environment counts.

Every functional analysis (k-CFA, m-CFA, polynomial k-CFA, 0CFA)
returns an :class:`AnalysisResult`.  The container exposes the
quantities the paper's evaluation talks about:

* ``callees_of`` / ``supported_inlinings`` — the §6.2 precision metric
  ("number of inlinings supported": call sites whose operator flows to
  exactly one lambda);
* ``environment_counts`` — how many distinct abstract environments each
  lambda body is analyzed in; the O(N+M) vs. O(N·M) quantity of
  Figures 1 and 2;
* ``flow_of`` — the abstract values a variable may take, joined over
  contexts (the classic CFA answer);
* ``reached_top`` style size accounting for the worst-case table.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping

import networkx

from repro.cps.program import Program
from repro.cps.syntax import Lam
from repro.analysis.domains import AbsStore, AbsVal, FClo, KClo, \
    SClo, SCont


@dataclass
class AnalysisResult:
    """Everything an abstract interpreter learned about a program."""

    program: Program
    analysis: str                     # e.g. "k-CFA", "m-CFA"
    parameter: int                    # the k or m
    store: AbsStore
    config_count: int                 # reachable configurations
    callees: dict[int, frozenset[Lam]]       # call label → applied lams
    unknown_operator: frozenset[int]  # call labels where ⊤basic flowed
    entries: dict[int, frozenset]     # lam label → entry environments
    halt_values: frozenset
    steps: int                        # transfer-function applications
    elapsed: float = 0.0
    timed_out: bool = False
    state_count: int = 0              # naive engine only: |states|
    configs: frozenset = frozenset()  # reachable configurations
    #: Which step loop produced this result — ``generic`` or
    #: ``specialized:<name>`` (see :mod:`repro.analysis.specialize`).
    #: Not part of :meth:`summary`: the two paths are byte-identical,
    #: so the path is provenance, not a result; the bench runner
    #: records it per row instead.
    engine_path: str = "generic"

    # -- flow queries ------------------------------------------------------

    def flow_of(self, name: str) -> frozenset[AbsVal]:
        """Values that may bind to *name*, joined over all contexts."""
        values: set[AbsVal] = set()
        for (addr_name, _context), addr_values in self.store.items():
            if addr_name == name:
                values |= addr_values
        return frozenset(values)

    def lambdas_of(self, name: str) -> frozenset[Lam]:
        """Lambdas that may bind to *name* (closures only)."""
        return frozenset(value.lam for value in self.flow_of(name)
                         if isinstance(value,
                                       (KClo, FClo, SClo, SCont)))

    def callees_of(self, label: int) -> frozenset[Lam]:
        """Lambdas applied at the call site with this label."""
        return self.callees.get(label, frozenset())

    # -- the §6.2 precision metric ------------------------------------------

    def supported_inlinings(self, include_cont: bool = False) -> int:
        """Call sites whose operator resolves to exactly one lambda.

        By default only *user-procedure* call sites count — inlining a
        continuation invocation is a return-point optimization, not the
        function inlining the paper's metric describes.
        """
        return len(self.inlinable_call_sites(include_cont))

    def inlinable_call_sites(self,
                             include_cont: bool = False) -> list[int]:
        sites = []
        for label in self.program.app_call_labels():
            if label in self.unknown_operator:
                continue
            callees = self.callees.get(label)
            if not callees or len(callees) != 1:
                continue
            (lam,) = callees
            if lam.is_user or include_cont:
                sites.append(label)
        return sorted(sites)

    def reachable_call_sites(self) -> frozenset[int]:
        return frozenset(self.callees)

    def monomorphic_call_sites(self) -> list[int]:
        """Known call sites with exactly one callee (continuations
        included — the client passes distinguish the kinds)."""
        return sorted(label for label, callees in self.callees.items()
                      if label not in self.unknown_operator
                      and len(callees) == 1)

    # -- the Figure 1/2 environment metric ------------------------------------

    def environment_count(self, lam: Lam) -> int:
        """Distinct abstract environments analyzing *lam*'s body."""
        return len(self.entries.get(lam.label, frozenset()))

    def environment_counts(self) -> dict[int, int]:
        """lam label → entry-environment count, for every lambda."""
        return {label: len(envs) for label, envs in self.entries.items()}

    def total_environments(self) -> int:
        """Σ over lambdas of entry-environment counts.

        This is the quantity that is polynomial for m-CFA but can grow
        exponentially for k-CFA (k ≥ 1) on the worst-case terms.
        """
        return sum(len(envs) for envs in self.entries.values())

    # -- call graph ------------------------------------------------------------

    def call_graph(self) -> "networkx.MultiDiGraph":
        """Lambda-level call graph: an edge lam₁ → lam₂ labeled with the
        call site means lam₁'s body contains a site applying lam₂."""
        graph = networkx.MultiDiGraph()
        owner = self._call_owner_map()
        for label, callees in self.callees.items():
            source = owner.get(label)
            for callee in callees:
                graph.add_edge(
                    source if source is not None else "<toplevel>",
                    callee.label, call=label)
        return graph

    def call_owner_map(self) -> dict[int, int]:
        """Call label → label of the lambda whose body contains it.

        Labels of the top-level body are absent — a client reads a
        missing entry as ``<toplevel>`` (see
        :mod:`repro.analysis.clients`).
        """
        return self._call_owner_map()

    def _call_owner_map(self) -> dict[int, int]:
        """Call label → label of the lambda whose body contains it."""
        from repro.cps.syntax import call_children
        owner: dict[int, int] = {}

        def assign(call, lam_label):
            stack = [call]
            while stack:
                node = stack.pop()
                owner[node.label] = lam_label
                stack.extend(call_children(node))

        for lam in self.program.lams:
            assign(lam.body, lam.label)
        return owner

    # -- size accounting ---------------------------------------------------------

    def summary(self) -> dict[str, object]:
        """A row for benchmark tables."""
        return {
            "analysis": self.analysis,
            "parameter": self.parameter,
            "terms": self.program.term_count(),
            "configs": self.config_count,
            "store_entries": len(self.store),
            "store_values": self.store.total_values(),
            "environments": self.total_environments(),
            "inlinings": self.supported_inlinings(),
            "mono_sites": len(self.monomorphic_call_sites()),
            "steps": self.steps,
            "elapsed": round(self.elapsed, 6),
            "timed_out": self.timed_out,
        }

    def __repr__(self) -> str:
        status = "TIMEOUT" if self.timed_out else "ok"
        return (f"<{self.analysis}({self.parameter}) {status} "
                f"configs={self.config_count} "
                f"store={len(self.store)} steps={self.steps}>")


def merge_callee_maps(maps: Iterable[Mapping[int, Iterable[Lam]]]
                      ) -> dict[int, frozenset[Lam]]:
    """Union per-label callee maps (used by the naive engine)."""
    merged: dict[int, set[Lam]] = {}
    for mapping in maps:
        for label, lams in mapping.items():
            merged.setdefault(label, set()).update(lams)
    return {label: frozenset(lams) for label, lams in merged.items()}
