"""Pushdown summarization — call/return matching as an env rep.

CFA2 and the pushdown line (Vardoulakis & Shivers; see PAPERS.md)
showed that *summarizing* function bodies per abstract entry, with
returns matched to callers through call-edge tables, beats any
finite-k context ladder on exactly the paper's §6 identity example:
``(id 3)`` and ``(id 4)`` get distinct entries whose returns never
merge, while 0CFA — and any poly-k-CFA rung once an intervening call
rotates the window — joins them.

All of the machinery lives in
:class:`~repro.analysis.kernel.SummaryEnv`, the kernel's third
environment representation; this module is only the machine's public
face, exactly parallel to :mod:`repro.analysis.flat_machine`.  The
analysis is context-free (there is no k to turn), so like 0CFA it
records parameter 0 whatever depth the caller passes.
"""

from __future__ import annotations

from repro.cps.program import Program
from repro.analysis.engine import EngineOptions, machine_path, \
    run_single_store, specialize
from repro.analysis.interning import PlainTable
from repro.analysis.kernel import (
    FConfig, Kernel, Recorder, SummaryEnv, result_from_run,
)
from repro.analysis.results import AnalysisResult
from repro.util.budget import Budget

__all__ = ["FConfig", "SummaryMachine", "analyze_pushdown"]


class SummaryMachine(Kernel):
    """The kernel under pushdown summarization: entry-keyed frames,
    frame-restoring continuations, name-keyed heap for escapes."""

    def __init__(self, program: Program):
        super().__init__(program, SummaryEnv(program))


def analyze_pushdown(program: Program,
                     budget: Budget | None = None,
                     plain: bool = False,
                     specialized: bool = True) -> AnalysisResult:
    """Run the pushdown-summary analysis to fixpoint.

    ``specialized`` is accepted for registry-knob symmetry but the
    specialization stage declines the summary rep (its step loop is
    not compiled yet — see :func:`repro.analysis.specialize.
    specialize_machine`), so every run reports the ``generic`` engine
    path; the spec registers ``specialized=False`` to advertise that
    honestly.
    """
    machine = specialize(SummaryMachine(program), specialized)
    run = run_single_store(
        machine, Recorder(),
        EngineOptions(budget=budget,
                      table_factory=PlainTable if plain else None))
    result = result_from_run(run, program, "pushdown", 0)
    result.engine_path = machine_path(machine)
    return result
