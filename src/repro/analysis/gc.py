"""Abstract garbage collection (ΓCFA) for the functional analyses.

The paper's §8 lists abstract GC — Might and Shivers's ΓCFA — as the
prime candidate to carry across the bridge it builds.  This module
implements it for the CPS analyses: before an abstract state
transitions, its store is restricted to the addresses *reachable* from
the state's roots.  Collecting an address that is later re-bound gives
the analysis a fresh, singleton flow set where the uncollected
analysis would have joined with stale values — abstract GC trades the
single-threaded store for per-state stores and buys precision.

Reachability:

* roots of a configuration ``(call, β̂, t̂)`` are the addresses of the
  variables free in ``call``;
* an abstract closure reaches the addresses of its free variables
  through its environment;
* an abstract pair reaches its field addresses.

``analyze_kcfa_gc`` is the §3.6 naive engine with collection at every
state; it reports the same :class:`~repro.analysis.results.
AnalysisResult` API.  ``collect`` and ``reachable_addresses`` are
exposed for tests and for the flat-environment variant.
"""

from __future__ import annotations

import time as _time
from typing import Iterable

from repro.analysis.domains import (
    APair, Addr, FClo, FrozenStore, KClo,
)
from repro.analysis.kcfa import (
    KCFAMachine, KConfig, Recorder, _NaiveState,
)
from repro.analysis.results import AnalysisResult
from repro.cps.program import Program
from repro.cps.syntax import free_vars_of_call, free_vars_of_lam
from repro.util.budget import Budget
from repro.util.fixpoint import Worklist


def config_roots(config: KConfig) -> set[Addr]:
    """Addresses directly referenced by a k-CFA configuration."""
    roots = set()
    for name in free_vars_of_call(config.call):
        time = config.benv.get(name)
        if time is not None:
            roots.add((name, time))
    return roots


def value_addresses(value) -> Iterable[Addr]:
    """Addresses an abstract value can reach in one step."""
    if isinstance(value, KClo):
        for name in free_vars_of_lam(value.lam):
            time = value.benv.get(name)
            if time is not None:
                yield (name, time)
    elif isinstance(value, FClo):
        for name in free_vars_of_lam(value.lam):
            yield (name, value.env)
    elif isinstance(value, APair):
        yield value.car
        yield value.cdr


def reachable_addresses(roots: set[Addr], store) -> set[Addr]:
    """Transitive closure of reachability through the store."""
    seen: set[Addr] = set()
    frontier = list(roots)
    while frontier:
        addr = frontier.pop()
        if addr in seen:
            continue
        seen.add(addr)
        for value in store.get(addr):
            for reached in value_addresses(value):
                if reached not in seen:
                    frontier.append(reached)
    return seen


def collect(config: KConfig, store: FrozenStore) -> FrozenStore:
    """Restrict *store* to what *config* can reach (one GC)."""
    live = reachable_addresses(config_roots(config), store)
    return FrozenStore((addr, values) for addr, values in store.items()
                       if addr in live)


def analyze_kcfa_gc(program: Program, k: int = 1,
                    budget: Budget | None = None) -> AnalysisResult:
    """k-CFA with abstract garbage collection at every transition.

    Runs the naive reachable-states engine (per-state stores are what
    make collection possible), collecting before each state expands.
    """
    machine = KCFAMachine(program, k)
    budget = budget or Budget()
    budget.start()
    recorder = Recorder()
    worklist: Worklist[_NaiveState] = Worklist()
    initial = machine.initial()
    worklist.add(_NaiveState(initial, FrozenStore()))
    steps = 0
    started = _time.perf_counter()
    while worklist:
        budget.charge()
        state = worklist.pop()
        steps += 1
        reads: set[Addr] = set()
        succs = machine.transitions(state.config, state.store, reads,
                                    recorder)
        for transition in succs:
            next_store = state.store.join_many(transition.joins)
            next_config = KConfig(transition.call, transition.benv,
                                  transition.time)
            worklist.add(_NaiveState(
                next_config, collect(next_config, next_store)))
        del reads
    elapsed = _time.perf_counter() - started
    states = worklist.seen
    from repro.analysis.domains import AbsStore
    merged = AbsStore()
    configs = set()
    for state in states:
        configs.add(state.config)
        for addr, values in state.store.items():
            merged.join(addr, values)
    return AnalysisResult(
        program=program, analysis="k-CFA+GC", parameter=k,
        store=merged, config_count=len(configs),
        callees=recorder.frozen_callees(),
        unknown_operator=frozenset(recorder.unknown_operator),
        entries=recorder.frozen_entries(),
        halt_values=frozenset(recorder.halt_values),
        steps=steps, elapsed=elapsed, state_count=len(states),
        configs=frozenset(configs))
