"""Abstract garbage collection (ΓCFA) for the functional analyses.

The paper's §8 lists abstract GC — Might and Shivers's ΓCFA — as the
prime candidate to carry across the bridge it builds.  This module
implements it for the CPS analyses: before an abstract state
transitions, its store is restricted to the addresses *reachable* from
the state's roots.  Collecting an address that is later re-bound gives
the analysis a fresh, singleton flow set where the uncollected
analysis would have joined with stale values — abstract GC trades the
single-threaded store for per-state stores and buys precision.

Reachability:

* roots of a configuration ``(call, β̂, t̂)`` are the addresses of the
  variables free in ``call``;
* an abstract closure reaches the addresses of its free variables
  through its environment;
* an abstract pair reaches its field addresses.

``analyze_kcfa_gc`` is the shared §3.6 naive driver
(:func:`~repro.analysis.engine.run_naive`) with ``collect`` installed
as the engine's GC policy; it reports the same
:class:`~repro.analysis.results.AnalysisResult` API.  ``collect`` and
``reachable_addresses`` are exposed for tests and for the
flat-environment variant.
"""

from __future__ import annotations

from typing import Iterable

from repro.analysis.domains import (
    APair, Addr, FClo, FrozenStore, KClo,
)
from repro.analysis.engine import EngineOptions, run_naive
from repro.analysis.kcfa import (
    KCFAMachine, KConfig, Recorder, result_from_run,
)
from repro.analysis.results import AnalysisResult
from repro.cps.program import Program
from repro.cps.syntax import free_vars_of_call, free_vars_of_lam
from repro.util.budget import Budget


def config_roots(config: KConfig) -> set[Addr]:
    """Addresses directly referenced by a k-CFA configuration."""
    roots = set()
    for name in free_vars_of_call(config.call):
        time = config.benv.get(name)
        if time is not None:
            roots.add((name, time))
    return roots


def value_addresses(value) -> Iterable[Addr]:
    """Addresses an abstract value can reach in one step."""
    if isinstance(value, KClo):
        for name in free_vars_of_lam(value.lam):
            time = value.benv.get(name)
            if time is not None:
                yield (name, time)
    elif isinstance(value, FClo):
        for name in free_vars_of_lam(value.lam):
            yield (name, value.env)
    elif isinstance(value, APair):
        yield value.car
        yield value.cdr


def reachable_addresses(roots: set[Addr], store) -> set[Addr]:
    """Transitive closure of reachability through the store."""
    seen: set[Addr] = set()
    frontier = list(roots)
    while frontier:
        addr = frontier.pop()
        if addr in seen:
            continue
        seen.add(addr)
        for value in store.get(addr):
            for reached in value_addresses(value):
                if reached not in seen:
                    frontier.append(reached)
    return seen


def collect(config: KConfig, store: FrozenStore) -> FrozenStore:
    """Restrict *store* to what *config* can reach (one GC)."""
    live = reachable_addresses(config_roots(config), store)
    return FrozenStore((addr, values) for addr, values in store.items()
                       if addr in live)


def analyze_kcfa_gc(program: Program, k: int = 1,
                    budget: Budget | None = None,
                    plain: bool = False) -> AnalysisResult:
    """k-CFA with abstract garbage collection at every transition.

    Runs the shared naive reachable-states driver (per-state stores
    are what make collection possible) with :func:`collect` as the
    engine's GC policy, so every state is collected before it expands.
    """
    from repro.analysis.interning import PlainTable
    run = run_naive(
        KCFAMachine(program, k), Recorder(),
        EngineOptions(budget=budget, collect=collect,
                      table_factory=PlainTable if plain else None))
    return result_from_run(run, program, "k-CFA+GC", k)
