"""Per-policy engine specialization: generated step loops.

The paper's complexity story says the flat/OO analyses are polynomial
*because* their environment structure is degenerate — yet the generic
:class:`~repro.analysis.kernel.Kernel` pays the fully general price
(context tuples built per reference, free-variable copy reads, a
polymorphic eval/apply dispatch) for every policy, including 0CFA
where the context is always ``()``.  This module is the partial
evaluator the registry's policy-as-data refactor unlocked: given a
machine whose policy declares its axes (env rep shared/flat, tick
arity, alloc shape — see :mod:`repro.analysis.policies`), it emits a
**pre-resolved step function per call node**, staged against the
policy:

* :class:`ZeroFlatKernel` — flat environments with a *context-free*
  allocator (0CFA; m-CFA and poly-k-CFA at depth 0).  Every
  environment the system can construct is the empty tuple, so
  addresses, successor configurations, closure bits and letrec joins
  are folded to constants at compile time; context tuple construction
  and free-variable copy reads are elided entirely (the copy guard
  ``ρ̂'' ≠ ρ̂`` is statically false).
* :class:`CompiledFlatKernel` — flat environments at depth ≥ 1:
  pre-compiled atom evaluators, a monomorphic per-call-node dispatch
  and the allocator/copy loop inlined with pre-bound locals.
* :class:`CompiledSharedKernel` — shared environments (the k-CFA
  family): pre-bound tick and address constructors, monomorphic
  eval/apply dispatch, the §3.4 apply rule inlined against the rep's
  extend memo.
* :class:`ZeroFJFlatMachine` — the flat FJ machine under a
  receiver-insensitive *context-free* policy (``fj-poly`` at k = 0):
  per-statement compiled steps with all times folded to ``()`` and
  per-method entry records (kont address, parameter addresses,
  successor configuration) computed once.

**The contract is byte-identity, trajectory included.**  A compiled
step must produce the same successors with the same joins *in the
same order* as the generic machine, and intern abstract values in the
same global order — the engine's worklist is FIFO, so matching
trajectories keep even the ``steps`` counter of a run identical,
which is what lets CI diff whole bench reports across the two paths
(and the golden suite pin reports down to the byte).  That is why
compilation is *lazy*, per call node, at its first step: the generic
kernel interns a node's literal/closure bits at exactly that moment.
Within a primitive step, the continuation atom and the pair bit are
compiled lazily past the empty-argument bail-out for the same reason.

``tests/test_specialize.py`` holds every registered analysis to that
contract across both value domains; the ``--no-specialize`` escape
hatch on ``analyze``/``bench``/``serve`` selects the generic loop.
"""

from __future__ import annotations

from repro.analysis.domains import APair, BASIC, FClo, KClo, \
    abstract_literal
from repro.analysis.kernel import (
    FConfig, FlatEnv, KConfig, Kernel, SharedEnv,
)
from repro.cps.syntax import (
    AppCall, FixCall, HaltCall, IfCall, Lam, PrimCall, Ref,
    free_vars_of_lam,
)
from repro.scheme.primitives import lookup_primitive

_MISSING = object()

#: The constant flat environment of every context-free flat policy.
_EMPTY = ()


def specialize_machine(machine):
    """The specialization stage: a staged machine for *machine*'s
    policy, or ``None`` when no specialization applies (naive-engine
    machines, receiver-sensitive FJ policies, the map-based FJ
    machine)."""
    from repro.fj.poly import FJFlatMachine
    if isinstance(machine, Kernel):
        rep = machine.rep
        if isinstance(rep, FlatEnv):
            if getattr(rep.alloc, "context_free", False):
                return ZeroFlatKernel(machine.program, rep)
            return CompiledFlatKernel(machine.program, rep)
        if isinstance(rep, SharedEnv):
            return CompiledSharedKernel(machine.program, rep)
        # SummaryEnv (the pushdown rep) is deliberately not covered:
        # its step cost is already flat (entry keys are memoized and
        # the stack/heap split is static), and its entry environments
        # depend on run-time argument signatures, so there is nothing
        # to fold at compile time.  Its spec registers
        # ``specialized=False``; tests/test_pushdown.py asserts the
        # knob stays honest.
        return None
    if isinstance(machine, FJFlatMachine):
        policy = machine.policy
        if getattr(policy, "context_free", False) \
                and not policy.receiver_sensitive:
            return ZeroFJFlatMachine(machine.program, policy)
        return None
    return None


class _CompiledKernel(Kernel):
    """A kernel whose step loop is compiled per call node, lazily.

    Subclasses provide ``_compile_app`` / ``_compile_if`` /
    ``_compile_prim`` / ``_compile_fix`` / ``_compile_halt``; the
    dispatch below replaces the generic kernel's isinstance chain
    with one dict probe on the call label (labels are unique per
    program).
    """

    specialization = "compiled"

    def boot(self, store):
        config = super().boot(store)
        self._compiled: dict[int, object] = {}
        return config

    def step(self, config, store, reads, recorder):
        call = config.call
        fn = self._compiled.get(call.label)
        if fn is None:
            fn = self._compile(call)
            self._compiled[call.label] = fn
        return fn(config, store, reads, recorder)

    def _compile(self, call):
        raise NotImplementedError

    def _lit_bit(self, exp):
        """The generic kernel's literal memo, shared so a fallback to
        the generic ``evaluate`` stays consistent."""
        bit = self._lit_bits.get(id(exp))
        if bit is None:
            bit = self.table.bit_for(abstract_literal(exp.datum))
            self._lit_bits[id(exp)] = bit
        return bit


def _zero_atom_spec(exp):
    """Structural atom spec: ``(addr, None)`` for a reference,
    ``(None, exp)`` for a closure or literal whose bit is interned at
    bind time (no table access here)."""
    if type(exp) is Ref:
        return ((exp.name, _EMPTY), None)
    return (None, exp)


def _zero_read_addrs(exps) -> tuple:
    return tuple([(exp.name, _EMPTY) for exp in exps
                  if type(exp) is Ref])


def _zero_flat_plans(program):
    """The table-independent compilation of a whole program for the
    context-free flat kernel: per-call structural plans (constant
    addresses, successor configurations, read sets) plus a shared
    per-lambda entry-plan cache.  Pure program structure — safe to
    cache on the :class:`~repro.cps.program.Program` across runs and
    value domains (bind-time interning is what stays per-run)."""
    call_plans = {}
    for label, call in program.calls_by_label.items():
        kind = type(call)
        if kind is AppCall:
            call_plans[label] = (
                "app", label, _zero_atom_spec(call.fn),
                tuple([_zero_atom_spec(arg) for arg in call.args]),
                _zero_read_addrs((call.fn, *call.args)))
        elif kind is IfCall:
            call_plans[label] = (
                "if", _zero_atom_spec(call.test),
                (FConfig(call.then, _EMPTY), ()),
                (FConfig(call.orelse, _EMPTY), ()))
        elif kind is PrimCall:
            call_plans[label] = (
                "prim", label, lookup_primitive(call.op).kind,
                tuple([_zero_atom_spec(arg) for arg in call.args]),
                _zero_read_addrs(call.args),
                (f"car@{label}", _EMPTY), (f"cdr@{label}", _EMPTY),
                FConfig(call, _EMPTY), _zero_atom_spec(call.cont))
        elif kind is FixCall:
            call_plans[label] = (
                "fix",
                tuple([((name, _EMPTY), lam)
                       for name, lam in call.bindings]),
                FConfig(call.body, _EMPTY))
        elif kind is HaltCall:
            call_plans[label] = ("halt", _zero_atom_spec(call.arg))
        else:
            raise TypeError(f"cannot step call {call!r}")
    return call_plans, {}


class ZeroFlatKernel(_CompiledKernel):
    """Flat environments with a context-free allocator, fully folded.

    Every environment is ``()``: addresses ``(name, ())``, closures
    ``FClo(lam, ())`` and successor configurations are compile-time
    constants, parameter addresses are pre-zipped per lambda, and the
    free-variable copy loop is gone — ``ρ̂'' = ρ̂`` always, so the §5.2
    copy guard can never fire.

    Compilation is two-phase.  The **structural plan** (addresses,
    successor configurations, read sets — :func:`_zero_flat_plans`)
    touches no value table, so it is built at boot and cached on the
    program across runs.  The **bind** phase runs lazily at a node's
    first step and does only the table work — interning closure and
    literal bits in exactly the order the generic kernel would, which
    is what keeps the two paths' interning orders (and therefore
    their whole trajectories) identical.

    A second consequence of the constant environment: there is exactly
    **one reachable configuration per call node**, and (primitive
    pair projections aside) its read set is a compile-time constant.
    Each bound step therefore populates the engine's read set only on
    its first execution — reader registration is idempotent, so
    dirtying and re-enqueueing are unchanged — and re-visits skip
    straight to the mask reads.
    """

    specialization = "zero-flat"

    def boot(self, store):
        config = super().boot(store)
        program = self.program
        plans = getattr(program, "_zero_flat_plans", None)
        if plans is None:
            plans = _zero_flat_plans(program)
            program._zero_flat_plans = plans
        self._call_plans, self._lam_plans = plans
        return config

    def _compile(self, call):
        plan = self._call_plans[call.label]
        tag = plan[0]
        if tag == "app":
            return self._bind_app(plan)
        if tag == "prim":
            return self._bind_prim(plan)
        if tag == "if":
            return self._bind_if(plan)
        if tag == "fix":
            return self._bind_fix(plan)
        return self._bind_halt(plan)

    # -- bind: the per-run table work ----------------------------------

    def _const_bit(self, exp):
        if type(exp) is Lam:
            return self.table.bit_for(FClo(exp, _EMPTY))
        return self._lit_bit(exp)

    def _bind_atoms(self, specs):
        """Per-run ``(addr, mask)`` plans, interning constant atoms in
        evaluation order."""
        return tuple([
            (addr, None if exp is None else self._const_bit(exp))
            for addr, exp in specs])

    def _entry_maker(self, label, nargs):
        """The per-operator apply plan, against the shared per-lambda
        structure cache."""
        lam_plans = self._lam_plans

        def entry_for(operator, recorder):
            if type(operator) is not FClo:
                return None
            lam = operator.lam
            if len(lam.params) != nargs:
                return None
            # First sight of this operator at this site — exactly when
            # the generic kernel would first record the apply.
            recorder.record_apply(label, lam, _EMPTY)
            entry = lam_plans.get(lam.label)
            if entry is None:
                entry = (FConfig(lam.body, _EMPTY),
                         tuple([(param, _EMPTY)
                                for param in lam.params]))
                lam_plans[lam.label] = entry
            return entry
        return entry_for

    def _bind_app(self, plan):
        _tag, label, fn_spec, arg_specs, read_addrs = plan
        basic = self._basic
        entries: dict = {}
        # Bits intern in evaluation order (fn first) so they appear
        # exactly when the generic kernel's first step would intern
        # them.
        fn_addr, fn_exp = fn_spec
        fn_bit = None if fn_exp is None else self._const_bit(fn_exp)
        arg_plans = self._bind_atoms(arg_specs)
        entry_for = self._entry_maker(label, len(arg_plans))
        recorded: list = []

        if self.table.interned:
            # Interned masks are ints: iterate set bits directly with
            # an int-keyed entry memo — no decode generator, and the
            # operator *objects* are only touched on a bit's first
            # sight (bit order is interning order, which matches the
            # generic kernel's decode order by construction).
            values = self.table._values

            def step(config, store, reads, recorder):
                if not recorded:
                    recorded.append(True)
                    reads.update(read_addrs)
                get_mask = store.get_mask
                operators = get_mask(fn_addr) if fn_addr is not None \
                    else fn_bit
                if operators & basic:
                    recorder.unknown_operator.add(label)
                arg_masks = [get_mask(addr) if addr is not None else bit
                             for addr, bit in arg_plans]
                succs = []
                entry_of = entries.get
                mask = operators
                while mask:
                    low = mask & -mask
                    mask ^= low
                    entry = entry_of(low, _MISSING)
                    if entry is _MISSING:
                        entry = entry_for(
                            values[low.bit_length() - 1], recorder)
                        entries[low] = entry
                    if entry is None:
                        continue
                    succ, param_addrs = entry
                    succs.append(
                        (succ, list(zip(param_addrs, arg_masks))))
                return succs
            return step

        decode_iter = self.table.decode_iter

        def step(config, store, reads, recorder):
            if not recorded:
                recorded.append(True)
                reads.update(read_addrs)
            get_mask = store.get_mask
            operators = get_mask(fn_addr) if fn_addr is not None \
                else fn_bit
            if operators & basic:
                recorder.unknown_operator.add(label)
            arg_masks = [get_mask(addr) if addr is not None else bit
                         for addr, bit in arg_plans]
            succs = []
            entry_of = entries.get
            for operator in decode_iter(operators):
                key = id(operator)
                entry = entry_of(key, _MISSING)
                if entry is _MISSING:
                    entry = entry_for(operator, recorder)
                    entries[key] = entry
                if entry is None:
                    continue
                succ, param_addrs = entry
                succs.append(
                    (succ, list(zip(param_addrs, arg_masks))))
            return succs
        return step

    def _bind_if(self, plan):
        _tag, (test_addr, test_exp), then_succ, else_succ = plan
        test_bit = None if test_exp is None else self._const_bit(test_exp)
        any_truthy = self.table.any_truthy
        any_falsy = self.table.any_falsy
        recorded: list = []

        def step(config, store, reads, recorder):
            if test_addr is not None:
                if not recorded:
                    recorded.append(True)
                    reads.add(test_addr)
                test = store.get_mask(test_addr)
            else:
                test = test_bit
            succs = []
            if any_truthy(test):
                succs.append(then_succ)
            if any_falsy(test):
                succs.append(else_succ)
            return succs
        return step

    def _bind_fix(self, plan):
        _tag, binding_specs, succ = plan
        bit_for = self.table.bit_for
        joins = tuple([(addr, bit_for(FClo(lam, _EMPTY)))
                       for addr, lam in binding_specs])
        result = [(succ, joins)]
        return lambda config, store, reads, recorder: result

    def _bind_halt(self, plan):
        _tag, (arg_addr, arg_exp) = plan
        arg_bit = None if arg_exp is None else self._const_bit(arg_exp)
        decode = self.table.decode
        recorded: list = []

        def step(config, store, reads, recorder):
            if arg_addr is not None:
                if not recorded:
                    recorded.append(True)
                    reads.add(arg_addr)
                mask = store.get_mask(arg_addr)
            else:
                mask = arg_bit
            recorder.halt_values |= decode(mask)
            return []
        return step

    def _bind_prim(self, plan):
        (_tag, label, kind, arg_specs, arg_read_addrs, car_addr,
         cdr_addr, self_succ, cont_spec) = plan
        basic = self._basic
        table = self.table
        decode_iter = table.decode_iter
        arg_plans = self._bind_atoms(arg_specs)
        entry_for = self._entry_maker(label, 1)
        # The continuation bit and the pair bit intern lazily, past
        # the empty-argument bail-out: the generic kernel only reaches
        # them on a step where every argument already flows.
        cont_addr, cont_exp = cont_spec
        cont_cell: list = []
        pair_cell: list = []
        entries: dict = {}
        args_recorded: list = []
        cont_recorded: list = []

        def step(config, store, reads, recorder):
            if not args_recorded:
                args_recorded.append(True)
                reads.update(arg_read_addrs)
            get_mask = store.get_mask
            arg_masks = [get_mask(addr) if addr is not None else bit
                         for addr, bit in arg_plans]
            if kind == "error":
                return []
            for mask in arg_masks:
                if not mask:
                    return []
            extra_joins = ()
            if kind == "basic":
                result = basic
            elif kind == "cons":
                extra_joins = ((car_addr, arg_masks[0]),
                               (cdr_addr, arg_masks[1]))
                if not pair_cell:
                    pair_cell.append(
                        table.bit_for(APair(car_addr, cdr_addr)))
                result = pair_cell[0]
            else:  # car / cdr — the one dynamic read set: pair-field
                # addresses appear as values flow, so they are re-read
                # (and re-recorded) on every visit.
                gathered = table.empty
                want_car = kind == "car"
                for value in decode_iter(arg_masks[0]):
                    if type(value) is APair:
                        addr = value.car if want_car else value.cdr
                        reads.add(addr)
                        gathered |= get_mask(addr)
                    elif value is BASIC:
                        gathered |= basic
                if not gathered:
                    return []
                result = gathered
            if cont_addr is not None:
                # Recorded on the first *non-bailing* visit — the
                # generic kernel never reads the continuation on a
                # step that bailed on an unreachable argument.
                if not cont_recorded:
                    cont_recorded.append(True)
                    reads.add(cont_addr)
                conts = get_mask(cont_addr)
            else:
                if not cont_cell:
                    cont_cell.append(self._const_bit(cont_exp))
                conts = cont_cell[0]
            succs = []
            entry_of = entries.get
            for operator in decode_iter(conts):
                key = id(operator)
                entry = entry_of(key, _MISSING)
                if entry is _MISSING:
                    entry = entry_for(operator, recorder)
                    if entry is not None:
                        # Continuations are unary: pre-project the one
                        # parameter address out of the shared plan.
                        entry = (entry[0], entry[1][0])
                    entries[key] = entry
                if entry is None:
                    continue
                succ, param_addr = entry
                succs.append(
                    (succ, ((param_addr, result),) + extra_joins))
            if not succs and extra_joins:
                # Keep the pair fields even with no continuation yet.
                succs.append((self_succ, extra_joins))
            return succs
        return step


class _CompiledEnvKernel(_CompiledKernel):
    """Shared helpers for the depth-sensitive compiled kernels, where
    atoms still take the configuration (the environment varies)."""

    def boot(self, store):
        config = super().boot(store)
        self._compilers = {
            AppCall: self._compile_app,
            IfCall: self._compile_if,
            PrimCall: self._compile_prim,
            FixCall: self._compile_fix,
            HaltCall: self._compile_halt,
        }
        return config

    def _compile(self, call):
        compiler = self._compilers.get(type(call))
        if compiler is None:
            raise TypeError(f"cannot step call {call!r}")
        return compiler(call)

    def _atom(self, exp):
        raise NotImplementedError

    def _compile_halt(self, call: HaltCall):
        arg_ev = self._atom(call.arg)
        decode = self.table.decode

        def step(config, store, reads, recorder):
            recorder.halt_values |= decode(arg_ev(config, store, reads))
            return []
        return step


class CompiledFlatKernel(_CompiledEnvKernel):
    """Flat environments at depth ≥ 1: monomorphic dispatch with the
    allocator and the §5.2 free-variable copy loop inlined."""

    specialization = "flat"

    def _atom(self, exp):
        """``ev(config, store, reads) -> mask`` with the reference
        name / closure constructor pre-bound."""
        if type(exp) is Ref:
            name = exp.name

            def ev(config, store, reads, _name=name):
                addr = (_name, config.env)
                reads.add(addr)
                return store.get_mask(addr)
            return ev
        if type(exp) is Lam:
            close_bit = self.rep.close_bit

            def ev(config, store, reads, _exp=exp):
                return close_bit(config, _exp)
            return ev
        bit = self._lit_bit(exp)
        return lambda config, store, reads, _bit=bit: _bit

    def _enter_info(self, operator, nargs):
        """Per-operator apply plan: ``(lam, params, free-vars)`` or
        ``None``.  The *same* free-vars frozenset object the generic
        rep iterates — iteration order is part of the trajectory."""
        if type(operator) is not FClo:
            return None
        lam = operator.lam
        if len(lam.params) != nargs:
            return None
        return (lam, lam.params, free_vars_of_lam(lam))

    def _compile_app(self, call: AppCall):
        label = call.label
        fn_ev = self._atom(call.fn)
        arg_evs = tuple(self._atom(arg) for arg in call.args)
        nargs = len(arg_evs)
        basic = self._basic
        decode_iter = self.table.decode_iter
        alloc = self.rep.alloc
        infos: dict = {}

        def step(config, store, reads, recorder):
            operators = fn_ev(config, store, reads)
            if operators & basic:
                recorder.unknown_operator.add(label)
            arg_masks = [ev(config, store, reads) for ev in arg_evs]
            env = config.env
            succs = []
            info_of = infos.get
            for operator in decode_iter(operators):
                key = id(operator)
                info = info_of(key, _MISSING)
                if info is _MISSING:
                    info = self._enter_info(operator, nargs)
                    infos[key] = info
                if info is None:
                    continue
                lam, params, free = info
                new_env = alloc(label, env, lam, operator.env)
                joins = [((param, new_env), mask)
                         for param, mask in zip(params, arg_masks)]
                if new_env != operator.env:
                    operator_env = operator.env
                    for name in free:
                        source = (name, operator_env)
                        reads.add(source)
                        copied = store.get_mask(source)
                        if copied:
                            joins.append(((name, new_env), copied))
                recorder.record_apply(label, lam, new_env)
                succs.append((FConfig(lam.body, new_env), joins))
            return succs
        return step

    def _compile_if(self, call: IfCall):
        test_ev = self._atom(call.test)
        then_call, else_call = call.then, call.orelse
        any_truthy = self.table.any_truthy
        any_falsy = self.table.any_falsy

        def step(config, store, reads, recorder):
            test = test_ev(config, store, reads)
            env = config.env
            succs = []
            if any_truthy(test):
                succs.append((FConfig(then_call, env), ()))
            if any_falsy(test):
                succs.append((FConfig(else_call, env), ()))
            return succs
        return step

    def _compile_fix(self, call: FixCall):
        bindings = call.bindings
        body = call.body
        bit_for = self.table.bit_for
        memo: dict = {}

        def step(config, store, reads, recorder):
            env = config.env
            result = memo.get(env)
            if result is None:
                joins = tuple(
                    ((name, env), bit_for(FClo(lam, env)))
                    for name, lam in bindings)
                result = [(FConfig(body, env), joins)]
                memo[env] = result
            return result
        return step

    def _compile_prim(self, call: PrimCall):
        label = call.label
        prim = lookup_primitive(call.op)
        kind = prim.kind
        arg_evs = tuple(self._atom(arg) for arg in call.args)
        basic = self._basic
        table = self.table
        decode_iter = table.decode_iter
        bit_for = table.bit_for
        alloc = self.rep.alloc
        car_name = f"car@{label}"
        cdr_name = f"cdr@{label}"
        cont_cell: list = []
        pair_memo: dict = {}
        infos: dict = {}

        def entry_for(operator):
            if type(operator) is not FClo:
                return None
            lam = operator.lam
            if len(lam.params) != 1:
                return None
            return (lam, lam.params[0], free_vars_of_lam(lam))

        def step(config, store, reads, recorder):
            arg_masks = [ev(config, store, reads) for ev in arg_evs]
            if kind == "error":
                return []
            for mask in arg_masks:
                if not mask:
                    return []
            ctx = config.env
            extra_joins = ()
            if kind == "basic":
                result = basic
            elif kind == "cons":
                pair = pair_memo.get(ctx)
                if pair is None:
                    car_addr = (car_name, ctx)
                    cdr_addr = (cdr_name, ctx)
                    pair = (car_addr, cdr_addr,
                            bit_for(APair(car_addr, cdr_addr)))
                    pair_memo[ctx] = pair
                car_addr, cdr_addr, result = pair
                extra_joins = ((car_addr, arg_masks[0]),
                               (cdr_addr, arg_masks[1]))
            else:  # car / cdr
                gathered = table.empty
                want_car = kind == "car"
                for value in decode_iter(arg_masks[0]):
                    if type(value) is APair:
                        addr = value.car if want_car else value.cdr
                        reads.add(addr)
                        gathered |= store.get_mask(addr)
                    elif value is BASIC:
                        gathered |= basic
                if not gathered:
                    return []
                result = gathered
            if not cont_cell:
                cont_cell.append(self._atom(call.cont))
            conts = cont_cell[0](config, store, reads)
            succs = []
            env = config.env
            info_of = infos.get
            for operator in decode_iter(conts):
                key = id(operator)
                info = info_of(key, _MISSING)
                if info is _MISSING:
                    info = entry_for(operator)
                    infos[key] = info
                if info is None:
                    continue
                lam, param, free = info
                new_env = alloc(label, env, lam, operator.env)
                joins = [((param, new_env), result)]
                if new_env != operator.env:
                    operator_env = operator.env
                    for name in free:
                        source = (name, operator_env)
                        reads.add(source)
                        copied = store.get_mask(source)
                        if copied:
                            joins.append(((name, new_env), copied))
                recorder.record_apply(label, lam, new_env)
                succs.append((FConfig(lam.body, new_env),
                              tuple(joins) + extra_joins))
            if not succs and extra_joins:
                succs.append((FConfig(call, env), extra_joins))
            return succs
        return step


class CompiledSharedKernel(_CompiledEnvKernel):
    """Shared environments (k-CFA): pre-bound tick and address
    constructors, the §3.4 apply rule inlined against the rep's
    extend memo."""

    specialization = "shared"

    def _atom(self, exp):
        if type(exp) is Ref:
            name = exp.name

            def ev(config, store, reads, _name=name):
                addr = (_name, config.benv[_name])
                reads.add(addr)
                return store.get_mask(addr)
            return ev
        if type(exp) is Lam:
            close_bit = self.rep.close_bit

            def ev(config, store, reads, _exp=exp):
                return close_bit(config, _exp)
            return ev
        bit = self._lit_bit(exp)
        return lambda config, store, reads, _bit=bit: _bit

    def _compile_app(self, call: AppCall):
        label = call.label
        fn_ev = self._atom(call.fn)
        arg_evs = tuple(self._atom(arg) for arg in call.args)
        nargs = len(arg_evs)
        basic = self._basic
        decode_iter = self.table.decode_iter
        tick = self.rep.tick
        extend_memo = self.rep._extend_memo
        arity: dict = {}

        def step(config, store, reads, recorder):
            operators = fn_ev(config, store, reads)
            if operators & basic:
                recorder.unknown_operator.add(label)
            arg_masks = [ev(config, store, reads) for ev in arg_evs]
            ctx = tick(label, config.time)
            succs = []
            lam_of = arity.get
            for operator in decode_iter(operators):
                key = id(operator)
                lam = lam_of(key, _MISSING)
                if lam is _MISSING:
                    lam = operator.lam \
                        if type(operator) is KClo \
                        and len(operator.lam.params) == nargs else None
                    arity[key] = lam
                if lam is None:
                    continue
                key = (operator.benv, lam.label, ctx)
                body_benv = extend_memo.get(key)
                if body_benv is None:
                    body_benv = operator.benv.extend(lam.params, ctx)
                    extend_memo[key] = body_benv
                joins = tuple(((param, ctx), mask)
                              for param, mask in zip(lam.params,
                                                     arg_masks))
                recorder.record_apply(label, lam, body_benv)
                succs.append((KConfig(lam.body, body_benv, ctx),
                              joins))
            return succs
        return step

    def _compile_if(self, call: IfCall):
        test_ev = self._atom(call.test)
        then_call, else_call = call.then, call.orelse
        any_truthy = self.table.any_truthy
        any_falsy = self.table.any_falsy

        def step(config, store, reads, recorder):
            test = test_ev(config, store, reads)
            succs = []
            if any_truthy(test):
                succs.append(
                    (KConfig(then_call, config.benv, config.time), ()))
            if any_falsy(test):
                succs.append(
                    (KConfig(else_call, config.benv, config.time), ()))
            return succs
        return step

    def _compile_fix(self, call: FixCall):
        rep_fix = self.rep.fix

        def step(config, store, reads, recorder, _call=call):
            return [rep_fix(config, _call)]
        return step

    def _compile_prim(self, call: PrimCall):
        label = call.label
        prim = lookup_primitive(call.op)
        kind = prim.kind
        arg_evs = tuple(self._atom(arg) for arg in call.args)
        basic = self._basic
        table = self.table
        decode_iter = table.decode_iter
        bit_for = table.bit_for
        tick = self.rep.tick
        extend_memo = self.rep._extend_memo
        car_name = f"car@{label}"
        cdr_name = f"cdr@{label}"
        cont_cell: list = []
        pair_memo: dict = {}
        arity: dict = {}

        def step(config, store, reads, recorder):
            arg_masks = [ev(config, store, reads) for ev in arg_evs]
            if kind == "error":
                return []
            for mask in arg_masks:
                if not mask:
                    return []
            ctx = tick(label, config.time)
            extra_joins = ()
            if kind == "basic":
                result = basic
            elif kind == "cons":
                pair = pair_memo.get(ctx)
                if pair is None:
                    car_addr = (car_name, ctx)
                    cdr_addr = (cdr_name, ctx)
                    pair = (car_addr, cdr_addr,
                            bit_for(APair(car_addr, cdr_addr)))
                    pair_memo[ctx] = pair
                car_addr, cdr_addr, result = pair
                extra_joins = ((car_addr, arg_masks[0]),
                               (cdr_addr, arg_masks[1]))
            else:  # car / cdr
                gathered = table.empty
                want_car = kind == "car"
                for value in decode_iter(arg_masks[0]):
                    if type(value) is APair:
                        addr = value.car if want_car else value.cdr
                        reads.add(addr)
                        gathered |= store.get_mask(addr)
                    elif value is BASIC:
                        gathered |= basic
                if not gathered:
                    return []
                result = gathered
            if not cont_cell:
                cont_cell.append(self._atom(call.cont))
            conts = cont_cell[0](config, store, reads)
            succs = []
            lam_of = arity.get
            for operator in decode_iter(conts):
                key = id(operator)
                lam = lam_of(key, _MISSING)
                if lam is _MISSING:
                    lam = operator.lam \
                        if type(operator) is KClo \
                        and len(operator.lam.params) == 1 else None
                    arity[key] = lam
                if lam is None:
                    continue
                key = (operator.benv, lam.label, ctx)
                body_benv = extend_memo.get(key)
                if body_benv is None:
                    body_benv = operator.benv.extend(lam.params, ctx)
                    extend_memo[key] = body_benv
                recorder.record_apply(label, lam, body_benv)
                succs.append(
                    (KConfig(lam.body, body_benv, ctx),
                     (((lam.params[0], ctx), result),) + extra_joins))
            if not succs and extra_joins:
                succs.append(
                    (KConfig(call, config.benv, config.time),
                     extra_joins))
            return succs
        return step


class ZeroFJFlatMachine:
    """The flat FJ machine under a receiver-insensitive context-free
    policy, with per-statement compiled steps and all times folded to
    ``()`` — the OO mirror of :class:`ZeroFlatKernel`.

    Constructed via :func:`specialize_machine`; delegates everything
    structural (entry seeding, class table, constructor wiring) to
    the generic machine it replaces and only overrides the step loop.
    """

    specialization = "zero-fj-flat"

    def __init__(self, program, policy):
        from repro.fj.poly import FJFlatMachine
        self.program = program
        self.policy = policy
        self._generic = FJFlatMachine(program, policy)

    def boot(self, store):
        config = self._generic.boot(store)
        self.table = self._generic.table
        self._compiled: dict[int, object] = {}
        return config

    def step(self, config, store, reads, recorder):
        stmt = config.stmt
        fn = self._compiled.get(stmt.label)
        if fn is None:
            fn = self._compile(stmt)
            self._compiled[stmt.label] = fn
        return fn(config, store, reads, recorder)

    # -- compilation ---------------------------------------------------

    def _compile(self, stmt):
        from repro.fj.syntax import (
            Cast, FieldAccess, Invoke, New, Return, VarExp,
        )
        if isinstance(stmt, Return):
            return self._compile_return(stmt)
        exp = stmt.exp
        if isinstance(exp, (VarExp, Cast)):
            return self._compile_move(stmt, exp.target
                                      if isinstance(exp, Cast)
                                      else exp.name)
        if isinstance(exp, FieldAccess):
            return self._compile_field_access(stmt, exp)
        if isinstance(exp, Invoke):
            return self._compile_invoke(stmt, exp)
        if isinstance(exp, New):
            return self._compile_new(stmt, exp)
        raise TypeError(f"cannot step statement {stmt!r}")

    def _succ_memo(self, following):
        """``kont_ptr -> PConfig(following, (), kont_ptr, ())``, one
        constructed configuration per continuation pointer."""
        from repro.fj.poly import PConfig
        memo: dict = {}

        def succ_for(kont_ptr):
            succ = memo.get(kont_ptr)
            if succ is None:
                succ = PConfig(following, _EMPTY, kont_ptr, _EMPTY)
                memo[kont_ptr] = succ
            return succ
        return succ_for

    def _compile_move(self, stmt, source_name):
        source = (source_name, _EMPTY)
        target = (stmt.var, _EMPTY)
        following = self.program.succ(stmt.label)
        if following is None:
            def dead(config, store, reads, recorder):
                reads.add(source)
                store.get_mask(source)
                return []
            return dead
        succ_for = self._succ_memo(following)

        def step(config, store, reads, recorder):
            reads.add(source)
            values = store.get_mask(source)
            joins = [(target, values)] if values else []
            return [(succ_for(config.kont_ptr), joins)]
        return step

    def _compile_field_access(self, stmt, exp):
        from repro.fj.poly import PObj
        source = (exp.target, _EMPTY)
        target = (stmt.var, _EMPTY)
        fieldname = exp.fieldname
        all_fields = self.program.all_fields
        field_key = self._generic._field_key
        decode_iter = self.table.decode_iter
        following = self.program.succ(stmt.label)
        addr_memo: dict = {}

        def addr_for(value):
            addr = addr_memo.get(value, _MISSING)
            if addr is _MISSING:
                addr = (field_key(fieldname), value.time) \
                    if isinstance(value, PObj) \
                    and fieldname in all_fields(value.classname) \
                    else None
                addr_memo[value] = addr
            return addr

        if following is None:
            def dead(config, store, reads, recorder):
                reads.add(source)
                for value in decode_iter(store.get_mask(source)):
                    addr = addr_for(value)
                    if addr is not None:
                        reads.add(addr)
                        store.get_mask(addr)
                return []
            return dead
        succ_for = self._succ_memo(following)

        def step(config, store, reads, recorder):
            reads.add(source)
            joins = []
            for value in decode_iter(store.get_mask(source)):
                addr = addr_for(value)
                if addr is None:
                    continue
                reads.add(addr)
                field_values = store.get_mask(addr)
                if field_values:
                    joins.append((target, field_values))
            return [(succ_for(config.kont_ptr), joins)]
        return step

    def _compile_return(self, stmt):
        from repro.fj.kcfa import HALT_PTR
        from repro.fj.poly import PConfig, PKont
        source = (stmt.var, _EMPTY)
        decode = self.table.decode
        decode_iter = self.table.decode_iter
        kont_memo: dict = {}

        def kont_entry(kont):
            entry = kont_memo.get(kont, _MISSING)
            if entry is _MISSING:
                entry = None
                if isinstance(kont, PKont):
                    entry = ((kont.var, kont.caller_entry),
                             PConfig(kont.stmt, kont.caller_entry,
                                     kont.kont_ptr, _EMPTY))
                kont_memo[kont] = entry
            return entry

        def step(config, store, reads, recorder):
            reads.add(source)
            values = store.get_mask(source)
            kont_ptr = config.kont_ptr
            if kont_ptr is HALT_PTR:
                recorder.halt_values |= decode(values)
                return []
            reads.add(kont_ptr)
            succs = []
            for kont in decode_iter(store.get_mask(kont_ptr)):
                entry = kont_entry(kont)
                if entry is None:
                    continue
                target, succ = entry
                joins = [(target, values)] if values else []
                succs.append((succ, joins))
            return succs
        return step

    def _compile_invoke(self, stmt, exp):
        from repro.fj.poly import PConfig, PKont, PObj
        label = stmt.label
        var = stmt.var
        receiver_addr = (exp.target, _EMPTY)
        arg_addrs = tuple((arg, _EMPTY) for arg in exp.args)
        nargs = len(arg_addrs)
        method_name = exp.method
        lookup_method = self.program.lookup_method
        decode_iter = self.table.decode_iter
        bit_for = self.table.bit_for
        following = self.program.succ(stmt.label)
        dispatch_memo: dict = {}   # receiver value -> method | None
        plan_memo: dict = {}       # qualified name -> entry plan
        kont_bits: dict = {}       # kont_ptr -> interned PKont bit
        recorded: set = set()

        def method_for(value):
            method = dispatch_memo.get(value, _MISSING)
            if method is _MISSING:
                method = None
                if isinstance(value, PObj):
                    found = lookup_method(value.classname, method_name)
                    if found is not None \
                            and len(found.params) == nargs:
                        method = found
                dispatch_memo[value] = method
            return method

        def plan_for(qualified_name, method):
            plan = plan_memo.get(qualified_name)
            if plan is None:
                kont_addr = (qualified_name, _EMPTY)
                plan = (kont_addr,
                        tuple((name, _EMPTY)
                              for name in method.param_names()),
                        PConfig(method.body[0], _EMPTY, kont_addr,
                                _EMPTY))
                plan_memo[qualified_name] = plan
            return plan

        def step(config, store, reads, recorder):
            reads.add(receiver_addr)
            receivers = store.get_mask(receiver_addr)
            if following is None:
                return []
            arg_masks = []
            for addr in arg_addrs:
                reads.add(addr)
                arg_masks.append(store.get_mask(addr))
            methods = {}
            for value in decode_iter(receivers):
                method = method_for(value)
                if method is not None:
                    methods[method.qualified_name] = method
            kont_ptr = config.kont_ptr
            succs = []
            for qualified_name, method in sorted(methods.items()):
                kont_bit = kont_bits.get(kont_ptr)
                if kont_bit is None:
                    kont_bit = bit_for(PKont(var, following, _EMPTY,
                                             _EMPTY, kont_ptr))
                    kont_bits[kont_ptr] = kont_bit
                kont_addr, param_addrs, succ = plan_for(
                    qualified_name, method)
                joins = [(kont_addr, kont_bit)]
                if receivers:
                    joins.append((("this", _EMPTY), receivers))
                if qualified_name not in recorded:
                    recorded.add(qualified_name)
                    recorder.invoke_targets.setdefault(
                        label, set()).add(qualified_name)
                    recorder.method_contexts.setdefault(
                        qualified_name, set()).add(_EMPTY)
                for addr, values in zip(param_addrs, arg_masks):
                    if values:
                        joins.append((addr, values))
                succs.append((succ, joins))
            return succs
        return step

    def _compile_new(self, stmt, exp):
        from repro.fj.poly import PObj
        arg_addrs = tuple((arg, _EMPTY) for arg in exp.args)
        field_key = self._generic._field_key
        wiring = tuple(
            ((field_key(fieldname), _EMPTY), param_index)
            for fieldname, param_index
            in self.program.ctor_wiring[exp.classname])
        obj = PObj(exp.classname, stmt.label, _EMPTY)
        obj_cell: list = []
        bit_for = self.table.bit_for
        target = (stmt.var, _EMPTY)
        following = self.program.succ(stmt.label)
        succ_for = self._succ_memo(following) \
            if following is not None else None

        def step(config, store, reads, recorder):
            arg_masks = []
            for addr in arg_addrs:
                reads.add(addr)
                arg_masks.append(store.get_mask(addr))
            joins = []
            for field_addr, param_index in wiring:
                if arg_masks[param_index]:
                    joins.append((field_addr, arg_masks[param_index]))
            recorder.objects.add(obj)
            if not obj_cell:
                obj_cell.append(bit_for(obj))
            joins.append((target, obj_cell[0]))
            if succ_for is None:
                return []
            return [(succ_for(config.kont_ptr), joins)]
        return step
