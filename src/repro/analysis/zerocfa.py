"""0CFA — the context-insensitive base of both hierarchies.

``[m = 0]CFA`` and ``[k = 0]CFA`` are the same analysis (paper §5.3):
with no context, every flat environment is the empty tuple and every
shared environment maps all variables to the empty time, so both
machines compute the same flow sets.  We run it through the flat
machine (a single global environment means no free-variable copying
ever fires — all addresses collapse to ``(v, ())``).

The test suite checks the k-CFA(0) / m-CFA(0) / 0CFA agreement on flow
sets, which is a strong cross-validation of the two machines.
"""

from __future__ import annotations

from repro.cps.program import Program
from repro.analysis.flat_machine import analyze_flat, mcfa_allocator
from repro.analysis.results import AnalysisResult
from repro.util.budget import Budget


def analyze_zerocfa(program: Program,
                    budget: Budget | None = None,
                    plain: bool = False,
                    specialized: bool = True,
                    codegen: bool = True) -> AnalysisResult:
    """Run 0CFA (m-CFA with m = 0) to fixpoint.

    With ``specialized`` (the default) the context-free allocator
    selects the fully folded step loop
    (:class:`~repro.analysis.specialize.ZeroFlatKernel`): no context
    tuples, no free-variable copy reads, addresses pre-resolved.
    ``codegen`` (also the default) lifts that one rung further to
    emitted source with bit-parallel transfer
    (:mod:`repro.analysis.codegen`).
    """
    result = analyze_flat(program, mcfa_allocator(0), "0CFA", 0, budget,
                          plain=plain, specialized=specialized,
                          codegen=codegen)
    return result
