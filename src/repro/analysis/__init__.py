"""The analyses: k-CFA, m-CFA, polynomial k-CFA and 0CFA.

All four share the result API of
:class:`~repro.analysis.results.AnalysisResult` and accept an optional
:class:`~repro.util.budget.Budget` for step/time limits (worst-case
table cells report ∞ via :class:`~repro.errors.AnalysisTimeout`).
"""

from repro.analysis.domains import (
    AConst, APair, AbsStore, AbsVal, Addr, BASIC, BEnv, BasicValue,
    EMPTY_BENV, FClo, FlatEnvAbs, FrozenStore, KClo, Time,
    abstract_literal, first_k, maybe_falsy, maybe_truthy,
)
from repro.analysis.engine import (
    EngineOptions, EngineRun, Machine, NaiveState, run_naive,
    run_single_store,
)
from repro.analysis.kcfa import (
    KCFAMachine, KConfig, Recorder, analyze_kcfa, analyze_kcfa_naive,
    result_from_run,
)
from repro.analysis.flat_machine import (
    FConfig, FlatMachine, analyze_flat, mcfa_allocator,
    poly_kcfa_allocator,
)
from repro.analysis.mcfa import analyze_mcfa
from repro.analysis.polykcfa import analyze_poly_kcfa
from repro.analysis.zerocfa import analyze_zerocfa
from repro.analysis.gc import analyze_kcfa_gc
from repro.analysis.results import AnalysisResult

__all__ = [
    "AConst", "APair", "AbsStore", "AbsVal", "Addr", "BASIC", "BEnv",
    "BasicValue", "EMPTY_BENV", "FClo", "FlatEnvAbs", "FrozenStore",
    "KClo", "Time", "abstract_literal", "first_k", "maybe_falsy",
    "maybe_truthy",
    "EngineOptions", "EngineRun", "Machine", "NaiveState",
    "run_naive", "run_single_store",
    "KCFAMachine", "KConfig", "Recorder", "analyze_kcfa",
    "analyze_kcfa_naive", "result_from_run",
    "FConfig", "FlatMachine", "analyze_flat", "mcfa_allocator",
    "poly_kcfa_allocator",
    "analyze_mcfa", "analyze_poly_kcfa", "analyze_zerocfa",
    "analyze_kcfa_gc", "AnalysisResult",
]
