"""The analyses: one AAM kernel, many context policies.

Every analysis here is the shared transfer function of
:mod:`repro.analysis.kernel` instantiated with a context policy
(:mod:`repro.analysis.policies`) and registered in
:mod:`repro.analysis.registry`.  All share the result API of
:class:`~repro.analysis.results.AnalysisResult` and accept an optional
:class:`~repro.util.budget.Budget` for step/time limits (worst-case
table cells report ∞ via :class:`~repro.errors.AnalysisTimeout`).

Attributes resolve lazily (PEP 562): consulting the registry — which
every front end does at startup — must not pay for the analyzer
modules, whose import is deferred into the registered factories.
"""

_LAZY = {
    **{name: "repro.analysis.domains" for name in (
        "AConst", "APair", "AbsStore", "AbsVal", "Addr", "BASIC",
        "BEnv", "BasicValue", "EMPTY_BENV", "FClo", "FlatEnvAbs",
        "FrozenStore", "KClo", "Time", "abstract_literal", "first_k",
        "maybe_falsy", "maybe_truthy")},
    **{name: "repro.analysis.engine" for name in (
        "EngineOptions", "EngineRun", "Machine", "NaiveState",
        "run_naive", "run_single_store")},
    **{name: "repro.analysis.kernel" for name in (
        "FlatEnv", "Kernel", "SharedEnv")},
    **{name: "repro.analysis.registry" for name in (
        "AnalysisRegistry", "AnalysisSpec", "registry",
        "run_analysis")},
    **{name: "repro.analysis.kcfa" for name in (
        "KCFAMachine", "KConfig", "Recorder", "analyze_kcfa",
        "analyze_kcfa_naive", "result_from_run")},
    **{name: "repro.analysis.flat_machine" for name in (
        "FConfig", "FlatMachine", "analyze_flat", "mcfa_allocator",
        "poly_kcfa_allocator")},
    "analyze_mcfa": "repro.analysis.mcfa",
    "analyze_poly_kcfa": "repro.analysis.polykcfa",
    "analyze_zerocfa": "repro.analysis.zerocfa",
    "analyze_kcfa_gc": "repro.analysis.gc",
    "AnalysisResult": "repro.analysis.results",
}

__all__ = list(_LAZY)

from repro.util.lazymod import lazy_attrs  # noqa: E402

__getattr__, __dir__ = lazy_attrs(__name__, globals(), _LAZY)
