"""Interning (hash-consing) of abstract values into integer bitsets.

Van Horn and Mairson's EXPTIME terms make the worst case unavoidable,
so the constant factor is all we control — and the profile says that
constant is dominated by ``frozenset`` unions over heavyweight
:class:`~repro.analysis.domains.KClo`/:class:`~repro.analysis.domains.
FClo` dataclasses.  The fix is the classic flat-lattice trick (compare
the ``CFACPS`` structure in SNIPPETS.md): assign every distinct
abstract value a small integer on first sight and represent a *flow
set* as a Python ``int`` used as a bitmask.  Then

* ``join`` is ``old | new`` — one machine-word-per-64-values OR;
* growth detection is ``merged != old`` — an int comparison;
* membership of ⊤basic is one AND;
* "could this be truthy/falsy" is one AND against a precomputed mask.

Two table implementations share one protocol so the abstract machines
are representation-agnostic:

* :class:`ValueTable` — the interned representation.  ``bit_for``
  hash-conses a value to a single-bit ``int``; masks are ints.
* :class:`PlainTable` — the identity representation.  ``bit_for``
  returns a singleton ``frozenset``; masks are frozensets, ``|`` is
  set union and truthiness/emptiness behave identically.  This is the
  pre-interning object domain, kept alive so the equivalence test
  (``tests/test_interning.py``) and the benchmark runner's
  ``--values plain`` mode can measure interned against non-interned
  runs of the *same* machine code.

A table is per-analysis-run state (created by
:class:`~repro.analysis.domains.AbsStore`); masks from different
tables must never be mixed.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.analysis.domains import EMPTY, maybe_falsy, maybe_truthy

#: A flow-set mask: ``int`` under :class:`ValueTable`, ``frozenset``
#: under :class:`PlainTable`.  Both support ``|``, ``&``, equality and
#: falsiness-when-empty, which is all the machines and stores use.
Mask = object  # int | frozenset


class ValueTable:
    """Hash-consing table: abstract value ↔ one bit of an int mask."""

    interned = True

    __slots__ = ("_bits", "_values", "_truthy", "_falsy",
                 "_decode_memo", "_encode_memo")

    #: The empty flow set.
    empty = 0

    def __init__(self):
        self._bits: dict[object, int] = {}
        self._values: list[object] = []
        self._truthy = 0
        self._falsy = 0
        self._decode_memo: dict[int, frozenset] = {}
        self._encode_memo: dict[frozenset, int] = {}

    def __len__(self) -> int:
        """How many distinct abstract values have been interned."""
        return len(self._values)

    def bit_for(self, value) -> int:
        """The single-bit mask of *value*, interning on first sight."""
        bit = self._bits.get(value)
        if bit is None:
            bit = 1 << len(self._values)
            self._bits[value] = bit
            self._values.append(value)
            if maybe_truthy(value):
                self._truthy |= bit
            if maybe_falsy(value):
                self._falsy |= bit
        return bit

    def encode(self, values: Iterable) -> int:
        """The mask of a collection of abstract values.

        ``frozenset`` arguments are memoized — the naive engine's
        states alias the same flow sets heavily.
        """
        if isinstance(values, frozenset):
            mask = self._encode_memo.get(values)
            if mask is None:
                mask = 0
                for value in values:
                    mask |= self.bit_for(value)
                self._encode_memo[values] = mask
            return mask
        mask = 0
        for value in values:
            mask |= self.bit_for(value)
        return mask

    def decode(self, mask: int) -> frozenset:
        """The abstract values of *mask*, as a frozenset (memoized)."""
        cached = self._decode_memo.get(mask)
        if cached is None:
            cached = frozenset(self.decode_iter(mask))
            self._decode_memo[mask] = cached
        return cached

    def decode_iter(self, mask: int) -> Iterator:
        """Iterate the values of *mask* in interning order."""
        values = self._values
        while mask:
            low = mask & -mask
            yield values[low.bit_length() - 1]
            mask ^= low

    def mask_len(self, mask: int) -> int:
        return mask.bit_count()

    def any_truthy(self, mask: int) -> bool:
        """Could any value in *mask* be a concrete non-#f value?"""
        return bool(mask & self._truthy)

    def any_falsy(self, mask: int) -> bool:
        """Could any value in *mask* be the concrete value #f?"""
        return bool(mask & self._falsy)


class PlainTable:
    """The identity table: masks *are* frozensets of abstract values.

    Every operation the machines perform on masks (``|``, ``&``,
    equality, truthiness) means the same thing on frozensets, so the
    same machine code runs in the pre-interning object domain.  This
    is the reference implementation the interned runs are checked and
    benchmarked against.
    """

    interned = False

    __slots__ = ("_singletons",)

    #: The empty flow set.
    empty = EMPTY

    def __init__(self):
        self._singletons: dict[object, frozenset] = {}

    def __len__(self) -> int:
        return len(self._singletons)

    def bit_for(self, value) -> frozenset:
        mask = self._singletons.get(value)
        if mask is None:
            mask = frozenset({value})
            self._singletons[value] = mask
        return mask

    def encode(self, values: Iterable) -> frozenset:
        return values if isinstance(values, frozenset) \
            else frozenset(values)

    def decode(self, mask: frozenset) -> frozenset:
        return mask

    def decode_iter(self, mask: frozenset) -> Iterator:
        return iter(mask)

    def mask_len(self, mask: frozenset) -> int:
        return len(mask)

    def any_truthy(self, mask: frozenset) -> bool:
        return any(maybe_truthy(value) for value in mask)

    def any_falsy(self, mask: frozenset) -> bool:
        return any(maybe_falsy(value) for value in mask)
