"""Program generators: worst-case terms, the paradox example, random
well-typed programs."""

from repro.generators.worstcase import (
    worst_case_program, worst_case_series, worst_case_source,
)
from repro.generators.paradox import (
    ParadoxCounts, find_cxy_lambda, functional_paradox_counts,
    paradox_fj_source, paradox_functional_program,
    paradox_functional_source,
)
from repro.generators.random_programs import (
    program_strategy, random_core_expression, random_program,
)

__all__ = [
    "worst_case_program", "worst_case_series", "worst_case_source",
    "ParadoxCounts", "find_cxy_lambda", "functional_paradox_counts",
    "paradox_fj_source", "paradox_functional_program",
    "paradox_functional_source",
    "program_strategy", "random_core_expression", "random_program",
]
