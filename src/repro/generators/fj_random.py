"""Seeded random well-typed Featherweight Java programs.

The FJ property tests need what the Scheme side has had since
:mod:`repro.generators.random_programs`: a stream of programs nobody
hand-picked, so that cross-analysis agreement checks (``fj-poly`` vs
``fj-mcfa`` — two implementations of the same §5 policy) and
parser/typechecker round-trips are *properties*, not anecdotes about
the four checked-in examples.

Every generated program is well-typed and terminating by
construction:

* classes ``C1 .. Cn`` all extend ``Object`` directly, with
  ``Object``-typed fields assigned in the constructor (FJ fields are
  write-once, so this is the only place they can be set);
* a method of ``Ci`` may construct any class but may *invoke* methods
  only on locals of class ``Cj`` with ``j < i`` — the call graph is a
  DAG over the class index, so the concrete machine cannot recurse;
* ``C1`` is guaranteed field-less, giving every constructor-argument
  position a closed-form inhabitant (``new C1()``).

Locals are declared up front and assigned before use, matching the
statement discipline of :mod:`repro.fj.examples`; ``Main.main`` is
the entry point.  Same seed, same source text — byte for byte.
"""

from __future__ import annotations

import random

__all__ = ["fj_random_program", "fj_random_source"]


def _atom(rng: random.Random, fields: list[str],
          assigned: list[str]) -> str:
    """An expression usable as a constructor/no-call argument."""
    pool = ["new C1()", "this"]
    pool += [f"this.{field}" for field in fields]
    pool += assigned
    return rng.choice(pool)


def _new(rng: random.Random, classname: str, arity: int,
         fields: list[str], assigned: list[str]) -> str:
    args = ", ".join(_atom(rng, fields, assigned)
                     for _ in range(arity))
    return f"new {classname}({args})"


def _method_body(rng: random.Random, index: int,
                 fields: list[str],
                 field_counts: list[int],
                 method_names: list[list[str]]) -> str:
    """Statements of one method of class ``C<index>``."""
    decls: list[str] = []
    stmts: list[str] = []
    assigned: list[str] = []
    # Up to two invocation chains through strictly lower classes.
    for serial in range(rng.randint(0, 2)):
        if index == 1:
            break
        callee = rng.randint(1, index - 1)
        receiver = f"r{serial}"
        out = f"o{serial}"
        decls += [f"C{callee} {receiver};", f"Object {out};"]
        stmts.append(
            f"{receiver} = "
            f"{_new(rng, f'C{callee}', field_counts[callee], fields, assigned)};")
        stmts.append(
            f"{out} = {receiver}."
            f"{rng.choice(method_names[callee])}();")
        assigned.append(out)
    returnable = (["this", "new C1()"]
                  + [f"this.{field}" for field in fields] + assigned)
    stmts.append(f"return {rng.choice(returnable)};")
    return " ".join(decls + stmts)


def fj_random_source(seed: int, classes: int = 4) -> str:
    """The deterministic random FJ program for *seed*.

    ``classes`` bounds the class count; the generator draws the
    actual shape (fields, method count, call structure) from the
    seeded stream.
    """
    if classes < 1:
        raise ValueError(f"need at least one class, got {classes}")
    rng = random.Random(seed)
    count = rng.randint(max(1, classes - 1), classes)
    # Index 0 is unused padding so field_counts[i] lines up with Ci.
    field_counts = [0] + [0 if i == 1 else rng.randint(0, 2)
                          for i in range(1, count + 1)]
    method_names: list[list[str]] = [[]] + [
        [f"m{i}_{j}" for j in range(rng.randint(1, 2))]
        for i in range(1, count + 1)]
    parts: list[str] = []
    for i in range(1, count + 1):
        fields = [f"f{i}_{j}" for j in range(field_counts[i])]
        lines = [f"class C{i} extends Object {{"]
        lines += [f"  Object {field};" for field in fields]
        params = ", ".join(f"Object {field}" for field in fields)
        init = "".join(f" this.{field} = {field};"
                       for field in fields)
        lines.append(f"  C{i}({params}) {{ super();{init} }}")
        for name in method_names[i]:
            body = _method_body(rng, i, fields, field_counts,
                                method_names)
            lines.append(f"  Object {name}() {{ {body} }}")
        lines.append("}")
        parts.append("\n".join(lines))
    rng_main = [f"C{rng.randint(1, count)}"
                for _ in range(rng.randint(1, 3))]
    lines = ["class Main extends Object {",
             "  Main() { super(); }"]
    decls, stmts, assigned = [], [], []
    for serial, classname in enumerate(rng_main):
        index = int(classname[1:])
        receiver, out = f"r{serial}", f"o{serial}"
        decls += [f"{classname} {receiver};", f"Object {out};"]
        stmts.append(
            f"{receiver} = "
            f"{_new(rng, classname, field_counts[index], [], assigned)};")
        stmts.append(
            f"{out} = {receiver}.{rng.choice(method_names[index])}();")
        assigned.append(out)
    stmts.append(f"return {rng.choice(assigned)};")
    body = " ".join(decls + stmts)
    lines.append(f"  Object main() {{ {body} }}")
    lines.append("}")
    parts.append("\n".join(lines))
    return "\n".join(parts) + "\n"


def fj_random_program(seed: int, classes: int = 4):
    """Parse the generated source into an
    :class:`~repro.fj.class_table.FJProgram`."""
    from repro.fj import parse_fj
    return parse_fj(fj_random_source(seed, classes))
