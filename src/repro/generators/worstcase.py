"""Van Horn–Mairson worst-case terms (paper §2.2 and §6.1.1).

The construction::

    ((λ (f1) (f1 0) (f1 1))
     (λ (x1)
       ((λ (f2) (f2 0) (f2 1))
        (λ (x2)
          ...
          (λ (z) (z x1 ... xn)) ...))))

binds each ``xi`` at two distinct call sites, so a k-CFA (k ≥ 1)
abstract interpretation must consider 2^n environments closing the
innermost lambda: its state space is driven to the top of the lattice.
m-CFA and the other flat-environment analyses keep one base context per
level and stay polynomial — this generator produces the programs behind
the §6.1.1 worst-case timing table.

The generator emits *surface Scheme* so the terms flow through the same
front end as every other benchmark; ``worst_case_program`` returns the
compiled CPS :class:`~repro.cps.program.Program`.
"""

from __future__ import annotations

from repro.cps.program import Program
from repro.scheme.cps_transform import compile_program


def worst_case_source(depth: int) -> str:
    """The Van Horn–Mairson term with *depth* doubling levels."""
    if depth < 1:
        raise ValueError(f"depth must be >= 1, got {depth}")
    xs = " ".join(f"x{i}" for i in range(1, depth + 1))
    inner = f"(lambda (z) (z {xs}))"
    for level in range(depth, 0, -1):
        inner = (f"((lambda (f{level}) (f{level} 0) (f{level} 1))\n"
                 f" (lambda (x{level})\n  {inner}))")
    return inner


def worst_case_program(depth: int) -> Program:
    """The compiled CPS program for *depth* levels."""
    return compile_program(worst_case_source(depth))


def worst_case_fj_source(depth: int) -> str:
    """The object-oriented translation of the worst-case chain (§2.2).

    Each implicit closure level becomes an explicit closure class whose
    constructor copies all captured variables simultaneously.  Under OO
    k-CFA the copying collapses the per-variable contexts, so analysis
    work grows *linearly* in depth — the same chain that is exponential
    for functional k-CFA.  ``Main.run`` is the entry point.
    """
    if depth < 1:
        raise ValueError(f"depth must be >= 1, got {depth}")
    classes = []
    for level in range(1, depth + 1):
        captured = [f"x{i}" for i in range(1, level)]
        fields = "".join(f"  Object x{i};\n" for i in range(1, level))
        params = ", ".join(f"Object x{i}0" for i in range(1, level))
        inits = " ".join(f"this.x{i} = x{i}0;"
                         for i in range(1, level))
        if level < depth:
            next_args = ", ".join(
                [f"this.x{i}" for i in range(1, level)] + [f"x{level}"])
            body = (f"    Clos{level + 1} c;\n"
                    f"    Object r1;\n    Object r2;\n"
                    f"    c = new Clos{level + 1}({next_args});\n"
                    f"    r1 = c.apply(new Object());\n"
                    f"    r2 = c.apply(new Object());\n"
                    f"    return r2;\n")
        else:
            final_args = ", ".join(
                [f"this.x{i}" for i in range(1, level)] + [f"x{level}"])
            body = (f"    Z z;\n"
                    f"    z = new Z({final_args});\n"
                    f"    return z;\n")
        classes.append(
            f"class Clos{level} extends Object {{\n{fields}"
            f"  Clos{level}({params}) {{ super(); {inits} }}\n"
            f"  Object apply(Object x{level}) {{\n{body}  }}\n}}")
    z_fields = "".join(f"  Object x{i};\n" for i in range(1, depth + 1))
    z_params = ", ".join(f"Object x{i}0" for i in range(1, depth + 1))
    z_inits = " ".join(f"this.x{i} = x{i}0;"
                       for i in range(1, depth + 1))
    classes.append(
        f"class Z extends Object {{\n{z_fields}"
        f"  Z({z_params}) {{ super(); {z_inits} }}\n}}")
    classes.append(
        "class Main extends Object {\n"
        "  Main() { super(); }\n"
        "  Object run() {\n"
        "    Clos1 c;\n    Object r1;\n    Object r2;\n"
        "    c = new Clos1();\n"
        "    r1 = c.apply(new Object());\n"
        "    r2 = c.apply(new Object());\n"
        "    return r2;\n  }\n}")
    return "\n".join(classes)


def worst_case_series(depths: tuple[int, ...] = (2, 3, 4, 5, 6, 7)
                      ) -> list[tuple[int, int, Program]]:
    """(depth, term-count, program) rows for the §6.1.1 table.

    The paper's table uses terms 69, 123, 231, 447, 879, 1743 — sizes
    that roughly double; increasing the depth by one adds a constant
    number of terms but *doubles* the k-CFA environment count, which is
    the quantity that matters.
    """
    rows = []
    for depth in depths:
        program = worst_case_program(depth)
        rows.append((depth, program.term_count(), program))
    return rows
