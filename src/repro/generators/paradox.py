"""The paradox example of Figures 1 and 2, parameterized by N and M.

Figure 2 (functional form): ``caller`` invokes ``foo`` at N call sites
with N distinct objects; ``foo`` closes over ``x`` in an (implicit)
closure ``cx``, which it invokes at M call sites with M distinct
objects; ``cx`` closes over both ``x`` and ``y`` in an inner closure
``cxy`` whose body is "baz".  Under functional 1-CFA, ``x`` and ``y``
keep the *separate* contexts they were captured in, so ``cxy``'s body
is analyzed in O(N·M) abstract environments.

Figure 1 (object-oriented form): the same program with explicit
closure objects ``ClosureX`` / ``ClosureXY``.  Copying ``x`` and ``y``
into constructor fields collapses their contexts to the allocation's
single calling context, so the analysis computes O(N+M) environments.

"Objects" are represented by distinct thunk lambdas on the functional
side (each a distinct abstract closure) and by ``new Object()``
allocation sites on the FJ side (each a distinct abstract object).

The module exposes both source generators plus helpers that run the
analyses and extract the environment counts the figures talk about.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cps.program import Program
from repro.cps.syntax import Lam
from repro.scheme.cps_transform import compile_program


def paradox_functional_source(n: int, m: int) -> str:
    """The Figure 2 program with N caller sites and M inner sites."""
    if n < 1 or m < 1:
        raise ValueError("n and m must both be >= 1")
    object_defs = "\n".join(
        f"(define (ox{i}) {100 + i})" for i in range(1, n + 1))
    object_defs += "\n" + "\n".join(
        f"(define (oy{j}) {200 + j})" for j in range(1, m + 1))
    foo_calls = "\n  ".join(f"(foo ox{i})" for i in range(1, n + 1))
    cx_calls = "\n    ".join(f"(cx oy{j})" for j in range(1, m + 1))
    return f"""
{object_defs}
(define (baz-body cxy) (cxy 0))
(define (foo x)
  (let ((cx (lambda (y)
              (let ((cxy (lambda (ignored) (cons x y))))
                (baz-body cxy)))))
    {cx_calls}))
(define (caller)
  {foo_calls})
(caller)
"""


def paradox_functional_program(n: int, m: int) -> Program:
    return compile_program(paradox_functional_source(n, m))


def find_cxy_lambda(program: Program) -> Lam:
    """The inner "baz" lambda — the one closing over both x and y.

    Identified structurally: the user lambda whose free variables are
    exactly the alpha-renamed descendants of {x, y}.
    """
    from repro.cps.syntax import free_vars_of_lam
    from repro.util.gensym import GensymFactory
    candidates = []
    for lam in program.user_lams:
        stems = {GensymFactory.base_of(name)
                 for name in free_vars_of_lam(lam)}
        if stems == {"x", "y"}:
            candidates.append(lam)
    if len(candidates) != 1:
        raise ValueError(
            f"expected exactly one cxy lambda, found {len(candidates)}")
    return candidates[0]


@dataclass(frozen=True, slots=True)
class ParadoxCounts:
    """Environment counts for one (analysis, N, M) data point."""

    n: int
    m: int
    analysis: str
    cxy_environments: int    # how many abstract envs analyze "baz"
    total_environments: int  # Σ over all lambdas / methods
    elapsed: float

    @property
    def product(self) -> int:
        return self.n * self.m

    @property
    def linear(self) -> int:
        return self.n + self.m


def functional_paradox_counts(n: int, m: int, analyze,
                              name: str | None = None) -> ParadoxCounts:
    """Run *analyze* (e.g. ``lambda p: analyze_kcfa(p, 1)``) on the
    Figure 2 program and report the environment counts."""
    program = paradox_functional_program(n, m)
    result = analyze(program)
    cxy = find_cxy_lambda(program)
    return ParadoxCounts(
        n=n, m=m,
        analysis=name or result.analysis,
        cxy_environments=result.environment_count(cxy),
        total_environments=result.total_environments(),
        elapsed=result.elapsed)


# -- the Figure 1 (object-oriented) source -------------------------------


def paradox_fj_source(n: int, m: int) -> str:
    """The Figure 1 program in our Featherweight Java surface syntax."""
    if n < 1 or m < 1:
        raise ValueError("n and m must both be >= 1")
    caller_locals = "".join(
        f"    Object ox{i};\n    Object r{i};\n"
        for i in range(1, n + 1))
    caller_body = "".join(
        f"    ox{i} = new Object();\n    r{i} = this.foo(ox{i});\n"
        for i in range(1, n + 1))
    foo_locals = "".join(
        f"    Object oy{j};\n    Object s{j};\n"
        for j in range(1, m + 1))
    foo_body = "".join(
        f"    oy{j} = new Object();\n    s{j} = cx.bar(oy{j});\n"
        for j in range(1, m + 1))
    return f"""
class Main extends Object {{
  Main() {{ super(); }}
  Object caller() {{
{caller_locals}{caller_body}    return r{n};
  }}
  Object foo(Object x) {{
    ClosureX cx;
{foo_locals}    cx = new ClosureX(x);
{foo_body}    return s{m};
  }}
}}
class ClosureX extends Object {{
  Object x;
  ClosureX(Object x0) {{ super(); this.x = x0; }}
  Object bar(Object y) {{
    ClosureXY cxy;
    Object r;
    cxy = new ClosureXY(this.x, y);
    r = cxy.baz();
    return r;
  }}
}}
class ClosureXY extends Object {{
  Object x;
  Object y;
  ClosureXY(Object x0, Object y0) {{ super(); this.x = x0; this.y = y0; }}
  Object baz() {{
    Object u;
    Object v;
    u = this.x;
    v = this.y;
    return u;
  }}
}}
"""
