"""A scalable Featherweight Java workload: the dispatch chain ladder.

The checked-in FJ examples are deliberately tiny (they illustrate
semantics), which makes them useless for timing: an analysis finishes
in a fraction of a millisecond and every measurement is noise.  This
module generates ``fjchain<n>`` — *n* field-less classes whose
``get`` methods allocate and invoke down the chain — giving the
benchmark matrix an FJ program whose statement count, object count
and step count scale linearly with *n*, the OO counterpart of the
Scheme suite's ``worst<n>`` ladder (minus the exponential blow-up:
this is the polynomial fragment, which is the paper's point about
objects).

Used by the bench runner (``--programs fjchain200``) to measure the
specialized flat FJ step loop against the generic machine on a body
of code large enough for the ratio to mean something.
"""

from __future__ import annotations

from repro.errors import UsageError

_NODE0 = """class Node0 extends Object {
  Node0() { super(); }
  Object get() { Object r; r = this; return r; }
}"""

_NODE = """class Node{i} extends Object {{
  Node{i}() {{ super(); }}
  Object get() {{ Node{p} n; Object r; n = new Node{p}(); \
r = n.get(); return r; }}
}}"""

_MAIN = """class Main extends Object {{
  Main() {{ super(); }}
  Object main() {{ Node{n} n; Object r; n = new Node{n}(); \
r = n.get(); return r; }}
}}"""


def fj_chain_source(n: int) -> str:
    """The ``fjchain<n>`` program text: a depth-*n* dispatch chain."""
    if n < 1:
        raise UsageError(f"fjchain depth must be >= 1, got {n}")
    parts = [_NODE0]
    parts += [_NODE.format(i=i, p=i - 1) for i in range(1, n + 1)]
    parts.append(_MAIN.format(n=n))
    return "\n".join(parts)


def fj_chain_program(n: int):
    """The parsed :class:`~repro.fj.class_table.FJProgram`."""
    from repro.fj import parse_fj
    return parse_fj(fj_chain_source(n))
