"""Random well-typed program generation for property-based testing.

Programs are generated over a tiny kind system — ``int``, ``bool``,
``fun`` (int → int) and ``pair`` (int × int) — so every generated
program is closed, type-safe and (being recursion-free) terminating.
That makes them ideal for differential and soundness properties:

* the direct interpreter and both concrete CPS machines must agree;
* every analysis must cover the concrete run (α-containment);
* ``[k = 0]``, ``[m = 0]`` and poly ``[k = 0]`` must compute the same
  flow sets.

Two front doors: :func:`random_program` (seeded ``random`` — used by
benchmarks) and :func:`program_strategy` (a hypothesis strategy — used
by the property tests; hypothesis is imported lazily so the library
itself does not depend on it).
"""

from __future__ import annotations

import random as _random
from dataclasses import dataclass

from repro.scheme.ast import (
    App, CoreExp, If, Lam, Let, Letrec, PrimApp, Quote, Var,
)

KINDS = ("int", "bool", "fun", "pair")


@dataclass
class _Gen:
    rng: _random.Random
    max_depth: int
    counter: int = 0

    def fresh(self, base: str) -> str:
        self.counter += 1
        return f"{base}{self.counter}"

    def scope_of(self, scope: tuple, kind: str) -> list[str]:
        return [name for name, k in scope if k == kind]

    # -- expression generators, by kind ---------------------------------

    def exp(self, kind: str, scope: tuple, depth: int) -> CoreExp:
        if depth <= 0:
            return self.leaf(kind, scope)
        choices = [self.leaf]
        if kind == "int":
            choices += [self._arith, self._if_exp, self._let_exp,
                        self._call, self._car]
        elif kind == "bool":
            choices += [self._compare, self._if_exp, self._let_exp]
        elif kind == "fun":
            choices += [self._lambda, self._if_exp, self._let_exp,
                        self._letrec_fun]
        elif kind == "pair":
            choices += [self._cons, self._let_exp]
        picker = self.rng.choice(choices)
        return picker(kind, scope, depth)

    def leaf(self, kind: str, scope: tuple, depth: int = 0) -> CoreExp:
        names = self.scope_of(scope, kind)
        if names and self.rng.random() < 0.6:
            return Var(self.rng.choice(names))
        if kind == "int":
            return Quote(self.rng.randint(-5, 5))
        if kind == "bool":
            return Quote(self.rng.random() < 0.5)
        if kind == "fun":
            return self._lambda(kind, scope, 1)
        if kind == "pair":
            return PrimApp("cons", (self.leaf("int", scope),
                                    self.leaf("int", scope)))
        raise ValueError(f"unknown kind {kind}")

    def _arith(self, kind: str, scope: tuple, depth: int) -> CoreExp:
        op = self.rng.choice(("+", "-", "*"))
        return PrimApp(op, (self.exp("int", scope, depth - 1),
                            self.exp("int", scope, depth - 1)))

    def _compare(self, kind: str, scope: tuple, depth: int) -> CoreExp:
        op = self.rng.choice(("=", "<", ">"))
        return PrimApp(op, (self.exp("int", scope, depth - 1),
                            self.exp("int", scope, depth - 1)))

    def _if_exp(self, kind: str, scope: tuple, depth: int) -> CoreExp:
        return If(self.exp("bool", scope, depth - 1),
                  self.exp(kind, scope, depth - 1),
                  self.exp(kind, scope, depth - 1))

    def _let_exp(self, kind: str, scope: tuple, depth: int) -> CoreExp:
        bound_kind = self.rng.choice(KINDS)
        name = self.fresh(bound_kind[0])
        value = self.exp(bound_kind, scope, depth - 1)
        body = self.exp(kind, scope + ((name, bound_kind),), depth - 1)
        return Let(name, value, body)

    def _lambda(self, kind: str, scope: tuple, depth: int) -> Lam:
        param = self.fresh("x")
        body = self.exp("int", scope + ((param, "int"),),
                        max(depth - 1, 0))
        return Lam((param,), body)

    def _letrec_fun(self, kind: str, scope: tuple, depth: int) -> CoreExp:
        # Non-recursive letrec (the bound lambda does not call itself),
        # so termination is preserved; still exercises FixCall paths.
        name = self.fresh("f")
        lam = self._lambda("fun", scope, depth - 1)
        body = self.exp(kind, scope + ((name, "fun"),), depth - 1)
        return Letrec(((name, lam),), body)

    def _call(self, kind: str, scope: tuple, depth: int) -> CoreExp:
        fn = self.exp("fun", scope, depth - 1)
        arg = self.exp("int", scope, depth - 1)
        return App(fn, (arg,))

    def _car(self, kind: str, scope: tuple, depth: int) -> CoreExp:
        op = self.rng.choice(("car", "cdr"))
        return PrimApp(op, (self.exp("pair", scope, depth - 1),))

    def _cons(self, kind: str, scope: tuple, depth: int) -> CoreExp:
        return PrimApp("cons", (self.exp("int", scope, depth - 1),
                                self.exp("int", scope, depth - 1)))


def random_core_expression(seed: int, max_depth: int = 5) -> CoreExp:
    """A closed, terminating core expression of kind int."""
    generator = _Gen(_random.Random(seed), max_depth)
    return generator.exp("int", (), max_depth)


def random_program(seed: int, max_depth: int = 5):
    """A compiled CPS :class:`~repro.cps.program.Program`."""
    from repro.scheme.alpha import alpha_rename
    from repro.scheme.cps_transform import cps_convert
    from repro.util.gensym import GensymFactory
    gensym = GensymFactory()
    core = alpha_rename(random_core_expression(seed, max_depth), gensym)
    return cps_convert(core, gensym)


def program_strategy(max_depth: int = 5):
    """A hypothesis strategy producing (seed, Program) pairs.

    Drawing only the seed keeps shrinking effective: hypothesis shrinks
    toward seed 0 and smaller depths.
    """
    import hypothesis.strategies as st

    @st.composite
    def programs(draw):
        seed = draw(st.integers(min_value=0, max_value=2 ** 32 - 1))
        depth = draw(st.integers(min_value=1, max_value=max_depth))
        return seed, random_program(seed, depth)

    return programs()
