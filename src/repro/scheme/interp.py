"""Direct-style reference interpreter (an iterative CEK machine).

This interpreter is the *ground truth* for the front end: the CPS
transform is differentially tested by checking that a program evaluates
to the same value directly and after conversion (through the concrete
CPS machines of :mod:`repro.concrete`).

It is written as an explicit-continuation machine rather than a
recursive ``eval`` so that deeply recursive Scheme programs (the SAT
solver, the meta-circular interpreter) do not overflow the Python
stack.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import EvaluationError, FuelExhausted, \
    UnboundVariableError
from repro.scheme.alpha import alpha_rename
from repro.scheme.ast import (
    App, CoreExp, If, Lam, Let, Letrec, PrimApp, Quote, Var,
)
from repro.scheme.desugar import desugar_program
from repro.scheme.primitives import lookup_primitive
from repro.scheme.values import (
    ProcedureValue, Value, datum_to_value, is_truthy,
)

Env = dict  # name -> Value; treated as immutable except during letrec


@dataclass(frozen=True, slots=True)
class DirectClosure(ProcedureValue):
    """A closure of the direct-style machine."""

    lam: Lam
    env: Env

    def __repr__(self) -> str:
        return f"#<procedure ({' '.join(self.lam.params)})>"


# -- continuation frames (a linked stack) ------------------------------


@dataclass(frozen=True, slots=True)
class _HaltK:
    pass


@dataclass(frozen=True, slots=True)
class _AppK:
    """Collecting operator/operand values for an application."""

    remaining: tuple[CoreExp, ...]
    collected: tuple[Value, ...]
    env: Env
    next: object


@dataclass(frozen=True, slots=True)
class _PrimK:
    op: str
    remaining: tuple[CoreExp, ...]
    collected: tuple[Value, ...]
    env: Env
    next: object


@dataclass(frozen=True, slots=True)
class _IfK:
    then: CoreExp
    orelse: CoreExp
    env: Env
    next: object


@dataclass(frozen=True, slots=True)
class _LetK:
    name: str
    body: CoreExp
    env: Env
    next: object


DEFAULT_FUEL = 2_000_000


def evaluate(exp: CoreExp, fuel: int = DEFAULT_FUEL) -> Value:
    """Evaluate a closed core expression to a value."""
    machine = _Machine(fuel)
    return machine.run(exp)


def run_source(source: str, fuel: int = DEFAULT_FUEL) -> Value:
    """Parse, desugar, alpha-rename and evaluate program text."""
    program = alpha_rename(desugar_program(source))
    return evaluate(program, fuel)


class _Machine:
    def __init__(self, fuel: int):
        self.fuel = fuel

    def run(self, exp: CoreExp) -> Value:
        control: Optional[CoreExp] = exp
        env: Env = {}
        value: Value = None
        kont = _HaltK()
        steps = 0
        while True:
            steps += 1
            if steps > self.fuel:
                raise FuelExhausted(self.fuel)
            if control is not None:
                control, env, value, kont = self._eval(control, env, kont)
            else:
                if isinstance(kont, _HaltK):
                    return value
                control, env, value, kont = self._apply(kont, value)

    # -- the E step: evaluate one expression --------------------------

    def _eval(self, exp: CoreExp, env: Env, kont):
        if isinstance(exp, Var):
            if exp.name not in env:
                raise UnboundVariableError(exp.name, "direct interpreter")
            return None, env, env[exp.name], kont
        if isinstance(exp, Quote):
            return None, env, datum_to_value(exp.datum), kont
        if isinstance(exp, Lam):
            return None, env, DirectClosure(exp, env), kont
        if isinstance(exp, App):
            frame = _AppK(tuple(exp.args), (), env, kont)
            return exp.fn, env, None, frame
        if isinstance(exp, PrimApp):
            if not exp.args:
                return self._apply_prim(exp.op, (), env, kont)
            frame = _PrimK(exp.op, tuple(exp.args[1:]), (), env, kont)
            return exp.args[0], env, None, frame
        if isinstance(exp, If):
            frame = _IfK(exp.then, exp.orelse, env, kont)
            return exp.test, env, None, frame
        if isinstance(exp, Let):
            frame = _LetK(exp.name, exp.body, env, kont)
            return exp.value, env, None, frame
        if isinstance(exp, Letrec):
            new_env = dict(env)
            for name, lam in exp.bindings:
                # Closures share new_env, so the mutual references
                # below become visible to all of them.
                new_env[name] = DirectClosure(lam, new_env)
            return exp.body, new_env, None, kont
        raise TypeError(f"not a core expression: {exp!r}")

    # -- the K step: feed a value to the continuation -----------------

    def _apply(self, kont, value: Value):
        if isinstance(kont, _AppK):
            collected = kont.collected + (value,)
            if kont.remaining:
                frame = _AppK(kont.remaining[1:], collected, kont.env,
                              kont.next)
                return kont.remaining[0], kont.env, None, frame
            return self._call(collected[0], collected[1:], kont.next)
        if isinstance(kont, _PrimK):
            collected = kont.collected + (value,)
            if kont.remaining:
                frame = _PrimK(kont.op, kont.remaining[1:], collected,
                               kont.env, kont.next)
                return kont.remaining[0], kont.env, None, frame
            return self._apply_prim(kont.op, collected, kont.env,
                                    kont.next)
        if isinstance(kont, _IfK):
            branch = kont.then if is_truthy(value) else kont.orelse
            return branch, kont.env, None, kont.next
        if isinstance(kont, _LetK):
            new_env = dict(kont.env)
            new_env[kont.name] = value
            return kont.body, new_env, None, kont.next
        raise TypeError(f"not a continuation: {kont!r}")

    def _call(self, fn: Value, args: tuple[Value, ...], kont):
        if not isinstance(fn, DirectClosure):
            raise EvaluationError(
                f"application of a non-procedure: {fn!r}")
        if len(args) != len(fn.lam.params):
            raise EvaluationError(
                f"procedure expects {len(fn.lam.params)} argument(s), "
                f"got {len(args)}")
        new_env = dict(fn.env)
        new_env.update(zip(fn.lam.params, args))
        return fn.lam.body, new_env, None, kont

    def _apply_prim(self, op: str, args: tuple[Value, ...], env: Env,
                    kont):
        prim = lookup_primitive(op)
        if prim is None:
            raise EvaluationError(f"unknown primitive {op}")
        result = prim.apply(args)
        return None, env, result, kont
