"""Scheme front end: reader, core AST, desugarer, interpreter, CPS.

Typical pipeline::

    text --parse_sexps--> data --desugar_program--> core AST
         --alpha_rename--> unique binders --cps_convert--> CPS program
"""

from repro.scheme.sexp import (
    Position, SexpList, Symbol, parse_sexp, parse_sexps, write_sexp,
)
from repro.scheme.ast import (
    App, If, Lam, Let, Letrec, PrimApp, Quote, Var,
)
from repro.scheme.desugar import desugar_expression, desugar_program
from repro.scheme.alpha import alpha_rename, check_unique_binders
from repro.scheme.freevars import free_vars, is_closed
from repro.scheme.pretty import pretty
from repro.scheme.interp import DirectClosure, evaluate, run_source

__all__ = [
    "Position", "SexpList", "Symbol",
    "parse_sexp", "parse_sexps", "write_sexp",
    "App", "If", "Lam", "Let", "Letrec", "PrimApp", "Quote", "Var",
    "desugar_expression", "desugar_program",
    "alpha_rename", "check_unique_binders",
    "free_vars", "is_closed", "pretty",
    "DirectClosure", "evaluate", "run_source",
]
