"""Runtime values shared by every concrete evaluator.

Three evaluators consume these: the direct-style reference interpreter
(:mod:`repro.scheme.interp`) and the two concrete CPS machines
(:mod:`repro.concrete`).  Each machine brings its own closure
representation, but all closures derive from :class:`ProcedureValue` so
generic primitives (``procedure?``, ``equal?``) work across machines.

Pairs are immutable (the subset has no ``set-car!``), so a pair can hold
its components directly rather than store addresses; this matches the
paper's concrete domains, where only *variable bindings* live in the
store.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.errors import EvaluationError
from repro.scheme.sexp import Symbol


class _Singleton:
    """Helper for unique, identity-compared sentinel values."""

    _name = "singleton"

    def __repr__(self) -> str:
        return self._name

    def __reduce__(self):
        return (type(self), ())


class NilType(_Singleton):
    """The empty list ``'()``."""

    _name = "nil"


class VoidType(_Singleton):
    """The unspecified value returned by ``void``, one-armed ``if``..."""

    _name = "#<void>"


NIL = NilType()
VOID = VoidType()


class ProcedureValue:
    """Marker base class for machine-specific closure values."""

    __slots__ = ()


@dataclass(frozen=True, slots=True)
class PairVal:
    """An immutable cons cell."""

    car: object
    cdr: object

    def __repr__(self) -> str:
        return scheme_repr(self)


# A runtime value is one of:
#   int | bool | str | Symbol | NilType | VoidType | PairVal | ProcedureValue
Value = object


def scheme_list(*items: Value) -> Value:
    """Build a proper list value from Python arguments."""
    result: Value = NIL
    for item in reversed(items):
        result = PairVal(item, result)
    return result


def iter_scheme_list(value: Value) -> Iterator[Value]:
    """Iterate a proper list; raises on improper lists."""
    while isinstance(value, PairVal):
        yield value.car
        value = value.cdr
    if not isinstance(value, NilType):
        raise EvaluationError(f"improper list ends in {scheme_repr(value)}")


def datum_to_value(datum: object) -> Value:
    """Convert a reader datum (from a ``quote``) to a runtime value."""
    if isinstance(datum, (tuple, list)):
        return scheme_list(*(datum_to_value(item) for item in datum))
    if isinstance(datum, (bool, int, str, Symbol)):
        return datum
    raise EvaluationError(f"cannot quote datum {datum!r}")


def is_truthy(value: Value) -> bool:
    """Scheme truthiness: everything except ``#f`` is true."""
    return value is not False


def values_equal(left: Value, right: Value) -> bool:
    """Structural equality (``equal?``)."""
    if isinstance(left, PairVal) and isinstance(right, PairVal):
        return (values_equal(left.car, right.car)
                and values_equal(left.cdr, right.cdr))
    return values_eqv(left, right)


def values_eqv(left: Value, right: Value) -> bool:
    """Identity-ish equality (``eqv?`` / ``eq?`` — we conflate them).

    Booleans must not compare equal to integers, so the check is
    type-sensitive the way Scheme programmers expect.
    """
    if isinstance(left, bool) or isinstance(right, bool):
        return left is right
    if isinstance(left, Symbol) and isinstance(right, Symbol):
        return str(left) == str(right)
    if isinstance(left, (int, str)) and isinstance(right, (int, str)):
        return type(left) is type(right) and left == right
    return left is right


def scheme_repr(value: Value) -> str:
    """Render a value the way ``write`` would."""
    if value is True:
        return "#t"
    if value is False:
        return "#f"
    if isinstance(value, (NilType, VoidType)):
        return repr(value)
    if isinstance(value, Symbol):
        return str(value)
    if isinstance(value, int):
        return str(value)
    if isinstance(value, str):
        return '"' + value.replace('"', '\\"') + '"'
    if isinstance(value, PairVal):
        parts = []
        while isinstance(value, PairVal):
            parts.append(scheme_repr(value.car))
            value = value.cdr
        if isinstance(value, NilType):
            return "(" + " ".join(parts) + ")"
        return "(" + " ".join(parts) + " . " + scheme_repr(value) + ")"
    if isinstance(value, ProcedureValue):
        return "#<procedure>"
    return repr(value)
