"""Alpha-renaming: give every binder in a program a unique name.

The CPS converter and the analyses assume globally unique variable
names — k-CFA addresses are ``(variable, time)`` pairs, so two distinct
binders sharing a name would alias in the abstract store and silently
merge their flow sets.  :func:`alpha_rename` establishes the invariant;
:func:`check_unique_binders` verifies it (used by validators and tests).

Renaming preserves the *original* name as a prefix (``x`` becomes
``x%3``) so analysis output stays readable; :func:`pretty names
<repro.util.gensym.GensymFactory.base_of>` recover the stem.
"""

from __future__ import annotations

from repro.errors import DesugarError
from repro.scheme.ast import (
    App, CoreExp, If, Lam, Let, Letrec, PrimApp, Quote, Var,
)
from repro.util.gensym import GensymFactory


def alpha_rename(exp: CoreExp,
                 gensym: GensymFactory | None = None) -> CoreExp:
    """Return an alpha-equivalent copy of *exp* with unique binders.

    Free variables are left untouched (they will be reported as unbound
    later, with their user-written names).
    """
    from repro.util.recursion import deep_recursion
    renamer = _Renamer(gensym or GensymFactory())
    with deep_recursion():
        return renamer.rename(exp, {})


class _Renamer:
    def __init__(self, gensym: GensymFactory):
        self.gensym = gensym

    def rename(self, exp: CoreExp, env: dict[str, str]) -> CoreExp:
        if isinstance(exp, Var):
            return Var(env.get(exp.name, exp.name), exp.pos)
        if isinstance(exp, Quote):
            return exp
        if isinstance(exp, Lam):
            fresh = {p: self.gensym.fresh(p) for p in exp.params}
            inner = {**env, **fresh}
            return Lam(tuple(fresh[p] for p in exp.params),
                       self.rename(exp.body, inner), exp.pos)
        if isinstance(exp, App):
            return App(self.rename(exp.fn, env),
                       tuple(self.rename(a, env) for a in exp.args),
                       exp.pos)
        if isinstance(exp, If):
            return If(self.rename(exp.test, env),
                      self.rename(exp.then, env),
                      self.rename(exp.orelse, env), exp.pos)
        if isinstance(exp, Let):
            value = self.rename(exp.value, env)
            fresh = self.gensym.fresh(exp.name)
            inner = {**env, exp.name: fresh}
            return Let(fresh, value, self.rename(exp.body, inner), exp.pos)
        if isinstance(exp, Letrec):
            fresh = {name: self.gensym.fresh(name)
                     for name, _ in exp.bindings}
            inner = {**env, **fresh}
            bindings = tuple(
                (fresh[name], self.rename(lam, inner))
                for name, lam in exp.bindings)
            return Letrec(bindings, self.rename(exp.body, inner), exp.pos)
        if isinstance(exp, PrimApp):
            return PrimApp(exp.op,
                           tuple(self.rename(a, env) for a in exp.args),
                           exp.pos)
        raise TypeError(f"not a core expression: {exp!r}")


def check_unique_binders(exp: CoreExp) -> None:
    """Raise :class:`DesugarError` if any two binders share a name."""
    seen: set[str] = set()

    def visit_binder(name: str) -> None:
        if name in seen:
            raise DesugarError(f"duplicate binder name {name!r}; "
                               "run alpha_rename first")
        seen.add(name)

    stack: list[CoreExp] = [exp]
    while stack:
        node = stack.pop()
        if isinstance(node, Lam):
            for param in node.params:
                visit_binder(param)
            stack.append(node.body)
        elif isinstance(node, Let):
            visit_binder(node.name)
            stack.extend((node.value, node.body))
        elif isinstance(node, Letrec):
            for name, lam in node.bindings:
                visit_binder(name)
                stack.append(lam)
            stack.append(node.body)
        elif isinstance(node, App):
            stack.append(node.fn)
            stack.extend(node.args)
        elif isinstance(node, If):
            stack.extend((node.test, node.then, node.orelse))
        elif isinstance(node, PrimApp):
            stack.extend(node.args)
