"""Lower surface Scheme to the core AST.

The entry points are :func:`desugar_program` (a sequence of top-level
forms) and :func:`desugar_expression` (one expression).  Handled
surface forms::

    (define (f v ...) body ...)      (define x e)
    (lambda (v ...) body ...)        (quote d)   'd    literals
    (let ((v e) ...) body ...)       (let loop ((v e) ...) body ...)
    (let* ...)  (letrec ...)         (begin e ...)
    (if t c)  (if t c a)             (cond (t e ...) ... (else e ...))
    (and e ...)  (or e ...)          (when t e ...)  (unless t e ...)
    (list e ...)  (cadr x) etc.      primitive applications

Scoping of primitives is honoured: a ``let``-bound ``car`` is an
ordinary variable, and a primitive used as a value is eta-expanded to a
lambda.  Sequencing (``begin``, multi-form bodies) lowers to chains of
single-binding ``Let`` with ignored fresh names, and multi-binding
``let`` lowers through fresh temporaries to preserve parallel-binding
semantics.
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import DesugarError
from repro.scheme.ast import (
    App, CoreExp, If, Lam, Let, Letrec, PrimApp, Quote, Var,
)
from repro.scheme.primitives import lookup_primitive
from repro.scheme.sexp import Position, SexpList, Symbol, parse_sexps
from repro.util.gensym import GensymFactory

_SPECIAL_FORMS = frozenset({
    "lambda", "let", "let*", "letrec", "if", "cond", "else", "begin",
    "and", "or", "when", "unless", "quote", "define",
})


def _pos_of(form) -> Position:
    return getattr(form, "pos", Position())


def _is_cxr(name: str) -> bool:
    """True for compositions like ``cadr``, ``caddr``, ``cddr``."""
    return (len(name) >= 4 and name[0] == "c" and name[-1] == "r"
            and 2 <= len(name) - 2 <= 4
            and all(ch in "ad" for ch in name[1:-1]))


class Desugarer:
    """Stateful lowering pass; one instance per program."""

    def __init__(self, gensym: GensymFactory | None = None):
        self.gensym = gensym or GensymFactory()

    # -- programs and bodies -------------------------------------------

    def program(self, forms: Sequence) -> CoreExp:
        """Desugar a top-level program (defines + expressions)."""
        if not forms:
            raise DesugarError("empty program")
        return self._body(list(forms), scope=frozenset())

    def _body(self, forms: list, scope: frozenset[str]) -> CoreExp:
        """Desugar a body: internal defines followed by expressions.

        All names defined anywhere in the body are in scope throughout
        (letrec* semantics), so they are collected before lowering.
        """
        if not forms:
            raise DesugarError("empty body")
        defined = [self._defined_name(f) for f in forms
                   if self._is_define(f)]
        scope = scope | frozenset(defined)
        return self._body_loop(forms, scope)

    def _body_loop(self, forms: list, scope: frozenset[str]) -> CoreExp:
        index = 0
        # Group consecutive *function* defines into one Letrec so that
        # mutual recursion works; value defines become Lets.
        if self._is_define(forms[index]):
            group: list[tuple[str, Lam]] = []
            while (index < len(forms) and self._is_define(forms[index])
                   and self._define_rhs_is_lambda(forms[index])):
                name, lam_form = self._split_define(forms[index])
                lam = self.expression(lam_form, scope)
                if not isinstance(lam, Lam):
                    raise DesugarError(
                        f"define of {name}: expected a lambda")
                group.append((name, lam))
                index += 1
            if group:
                rest = self._rest_of_body(forms, index, scope)
                return Letrec(tuple(group), rest, _pos_of(forms[0]))
            # A value define: (define x e)
            name, value_form = self._split_define(forms[index])
            value = self.expression(value_form, scope)
            rest = self._rest_of_body(forms, index + 1, scope)
            return Let(name, value, rest, _pos_of(forms[index]))
        expr = self.expression(forms[index], scope)
        if index + 1 == len(forms):
            return expr
        rest = self._body_loop(forms[index + 1:], scope)
        return Let(self.gensym.fresh("seq"), expr, rest, _pos_of(forms[0]))

    def _rest_of_body(self, forms: list, index: int,
                      scope: frozenset[str]) -> CoreExp:
        if index == len(forms):
            # A body that ends in a define evaluates to void.
            return PrimApp("void", ())
        return self._body_loop(forms[index:], scope)

    @staticmethod
    def _is_define(form) -> bool:
        return (isinstance(form, (tuple, list)) and len(form) >= 1
                and isinstance(form[0], Symbol) and form[0] == "define")

    def _defined_name(self, form) -> str:
        header = form[1] if len(form) > 1 else None
        if isinstance(header, Symbol):
            return str(header)
        if (isinstance(header, (tuple, list)) and header
                and isinstance(header[0], Symbol)):
            return str(header[0])
        raise DesugarError(f"malformed define: {form!r}")

    def _define_rhs_is_lambda(self, form) -> bool:
        header = form[1]
        if isinstance(header, (tuple, list)):
            return True  # (define (f ...) ...) is function sugar
        rhs = form[2] if len(form) == 3 else None
        return (isinstance(rhs, (tuple, list)) and len(rhs) >= 1
                and isinstance(rhs[0], Symbol) and rhs[0] == "lambda")

    def _split_define(self, form) -> tuple[str, object]:
        """Return (name, expression-form) for either define flavour."""
        if len(form) < 2:
            raise DesugarError(f"malformed define: {form!r}")
        header = form[1]
        if isinstance(header, (tuple, list)):
            if not header or not all(isinstance(p, Symbol) for p in header):
                raise DesugarError(f"malformed define header: {form!r}")
            name = str(header[0])
            params = SexpList(header[1:], _pos_of(form))
            lam_form = SexpList(
                (Symbol("lambda"), params, *form[2:]), _pos_of(form))
            return name, lam_form
        if len(form) != 3:
            raise DesugarError(
                f"define of {header} expects exactly one expression")
        return str(header), form[2]

    # -- expressions ----------------------------------------------------

    def expression(self, form, scope: frozenset[str]) -> CoreExp:
        """Desugar one surface expression under *scope*."""
        if isinstance(form, bool) or isinstance(form, int):
            return Quote(form)
        if isinstance(form, Symbol):
            return self._symbol(form, scope)
        if isinstance(form, str):
            return Quote(form)
        if not isinstance(form, (tuple, list)):
            raise DesugarError(f"cannot desugar datum {form!r}")
        if len(form) == 0:
            raise DesugarError("empty application ()")
        head = form[0]
        if isinstance(head, Symbol) and str(head) not in scope:
            handler = getattr(self, f"_form_{str(head).replace('*', 'star')}",
                              None)
            if str(head) in _SPECIAL_FORMS and handler is not None:
                return handler(form, scope)
            if str(head) == "list":
                return self._expand_list(form, scope)
            if _is_cxr(str(head)):
                return self._expand_cxr(form, scope)
            prim = lookup_primitive(str(head))
            if prim is not None:
                return self._prim_app(prim, form, scope)
        return self._application(form, scope)

    def _symbol(self, sym: Symbol, scope: frozenset[str]) -> CoreExp:
        name = str(sym)
        if name in scope:
            return Var(name, sym.pos)
        prim = lookup_primitive(name)
        if prim is not None:
            return self._eta_expand(prim, sym.pos)
        if name in _SPECIAL_FORMS:
            raise DesugarError(f"special form {name} used as a value")
        # Unbound names surface as Vars; the CPS converter / evaluators
        # report them with context.
        return Var(name, sym.pos)

    def _eta_expand(self, prim, pos: Position) -> Lam:
        if prim.arity_max == prim.arity_min:
            count = prim.arity_min
        else:
            count = max(prim.arity_min, 2)
        params = tuple(self.gensym.fresh("p") for _ in range(count))
        body = PrimApp(prim.name, tuple(Var(p, pos) for p in params), pos)
        return Lam(params, body, pos)

    def _prim_app(self, prim, form, scope: frozenset[str]) -> PrimApp:
        args = tuple(self.expression(arg, scope) for arg in form[1:])
        try:
            prim.check_arity(len(args))
        except Exception as exc:
            raise DesugarError(str(exc)) from None
        return PrimApp(prim.name, args, _pos_of(form))

    def _expand_list(self, form, scope: frozenset[str]) -> CoreExp:
        result: CoreExp = Quote(SexpList(()), _pos_of(form))
        for arg in reversed(form[1:]):
            result = PrimApp(
                "cons", (self.expression(arg, scope), result),
                _pos_of(form))
        return result

    def _expand_cxr(self, form, scope: frozenset[str]) -> CoreExp:
        if len(form) != 2:
            raise DesugarError(f"{form[0]} expects exactly one argument")
        result = self.expression(form[1], scope)
        for letter in reversed(form[0][1:-1]):
            op = "car" if letter == "a" else "cdr"
            result = PrimApp(op, (result,), _pos_of(form))
        return result

    def _application(self, form, scope: frozenset[str]) -> App:
        fn = self.expression(form[0], scope)
        args = tuple(self.expression(arg, scope) for arg in form[1:])
        return App(fn, args, _pos_of(form))

    # -- special forms ----------------------------------------------------

    def _form_lambda(self, form, scope: frozenset[str]) -> Lam:
        if len(form) < 3:
            raise DesugarError("lambda needs parameters and a body")
        params_form = form[1]
        if not isinstance(params_form, (tuple, list)) or not all(
                isinstance(p, Symbol) for p in params_form):
            raise DesugarError(
                "lambda parameters must be a list of symbols "
                "(variadic parameters are not supported)")
        params = tuple(str(p) for p in params_form)
        if len(set(params)) != len(params):
            raise DesugarError(f"duplicate lambda parameter in {params}")
        body = self._body(list(form[2:]), scope | frozenset(params))
        return Lam(params, body, _pos_of(form))

    def _form_quote(self, form, scope: frozenset[str]) -> Quote:
        if len(form) != 2:
            raise DesugarError("quote expects exactly one datum")
        return Quote(form[1], _pos_of(form))

    def _form_if(self, form, scope: frozenset[str]) -> If:
        if len(form) not in (3, 4):
            raise DesugarError("if expects a test and one or two branches")
        test = self.expression(form[1], scope)
        then = self.expression(form[2], scope)
        if len(form) == 4:
            orelse = self.expression(form[3], scope)
        else:
            orelse = PrimApp("void", ())
        return If(test, then, orelse, _pos_of(form))

    def _form_begin(self, form, scope: frozenset[str]) -> CoreExp:
        if len(form) == 1:
            return PrimApp("void", ())
        return self._body(list(form[1:]), scope)

    def _parse_bindings(self, form) -> list[tuple[str, object]]:
        if len(form) < 3 or not isinstance(form[1], (tuple, list)):
            raise DesugarError(f"malformed {form[0]}: {form!r}")
        bindings = []
        for binding in form[1]:
            if (not isinstance(binding, (tuple, list)) or len(binding) != 2
                    or not isinstance(binding[0], Symbol)):
                raise DesugarError(f"malformed binding {binding!r}")
            bindings.append((str(binding[0]), binding[1]))
        return bindings

    def _form_let(self, form, scope: frozenset[str]) -> CoreExp:
        if len(form) >= 3 and isinstance(form[1], Symbol):
            return self._named_let(form, scope)
        bindings = self._parse_bindings(form)
        names = [name for name, _ in bindings]
        if len(set(names)) != len(names):
            raise DesugarError(f"duplicate let binding in {names}")
        body = self._body(list(form[2:]), scope | frozenset(names))
        # Parallel semantics: evaluate every right-hand side in the
        # *outer* scope via fresh temporaries, then rebind the names.
        values = [self.expression(v, scope) for _, v in bindings]
        temps = [self.gensym.fresh(name) for name in names]
        result = body
        for name, temp in reversed(list(zip(names, temps))):
            result = Let(name, Var(temp), result, _pos_of(form))
        for temp, value in reversed(list(zip(temps, values))):
            result = Let(temp, value, result, _pos_of(form))
        return result

    def _named_let(self, form, scope: frozenset[str]) -> CoreExp:
        loop = str(form[1])
        shifted = SexpList((form[0], *form[2:]), _pos_of(form))
        bindings = self._parse_bindings(shifted)
        names = [name for name, _ in bindings]
        inner_scope = scope | frozenset(names) | {loop}
        body = self._body(list(form[3:]), inner_scope)
        lam = Lam(tuple(names), body, _pos_of(form))
        args = tuple(self.expression(v, scope) for _, v in bindings)
        return Letrec(
            ((loop, lam),),
            App(Var(loop, _pos_of(form)), args, _pos_of(form)),
            _pos_of(form))

    def _form_letstar(self, form, scope: frozenset[str]) -> CoreExp:
        bindings = self._parse_bindings(form)
        body_scope = scope | frozenset(name for name, _ in bindings)
        body = self._body(list(form[2:]), body_scope)
        result = body
        inner = list(scope)
        for index in range(len(bindings) - 1, -1, -1):
            name, value_form = bindings[index]
            visible = scope | frozenset(n for n, _ in bindings[:index])
            value = self.expression(value_form, visible)
            result = Let(name, value, result, _pos_of(form))
        del inner
        return result

    def _form_letrec(self, form, scope: frozenset[str]) -> Letrec:
        bindings = self._parse_bindings(form)
        names = [name for name, _ in bindings]
        if len(set(names)) != len(names):
            raise DesugarError(f"duplicate letrec binding in {names}")
        inner = scope | frozenset(names)
        lowered = []
        for name, value_form in bindings:
            value = self.expression(value_form, inner)
            if not isinstance(value, Lam):
                raise DesugarError(
                    f"letrec binding {name} must be a lambda "
                    "(general letrec is outside the subset)")
            lowered.append((name, value))
        body = self._body(list(form[2:]), inner)
        return Letrec(tuple(lowered), body, _pos_of(form))

    def _form_cond(self, form, scope: frozenset[str]) -> CoreExp:
        return self._cond_clauses(list(form[1:]), scope, _pos_of(form))

    def _cond_clauses(self, clauses: list, scope: frozenset[str],
                      pos: Position) -> CoreExp:
        if not clauses:
            return PrimApp("void", ())
        clause = clauses[0]
        if not isinstance(clause, (tuple, list)) or len(clause) == 0:
            raise DesugarError(f"malformed cond clause {clause!r}")
        head = clause[0]
        if isinstance(head, Symbol) and head == "else":
            if len(clauses) != 1:
                raise DesugarError("cond: else clause must be last")
            return self._body(list(clause[1:]), scope)
        rest = self._cond_clauses(clauses[1:], scope, pos)
        test = self.expression(head, scope)
        if len(clause) == 1:
            temp = self.gensym.fresh("t")
            return Let(temp, test,
                       If(Var(temp), Var(temp), rest, pos), pos)
        if (len(clause) == 3 and isinstance(clause[1], Symbol)
                and clause[1] == "=>"):
            temp = self.gensym.fresh("t")
            receiver = self.expression(clause[2], scope)
            return Let(temp, test,
                       If(Var(temp),
                          App(receiver, (Var(temp),), pos), rest, pos),
                       pos)
        then = self._body(list(clause[1:]), scope)
        return If(test, then, rest, pos)

    def _form_and(self, form, scope: frozenset[str]) -> CoreExp:
        exprs = list(form[1:])
        if not exprs:
            return Quote(True)
        if len(exprs) == 1:
            return self.expression(exprs[0], scope)
        first = self.expression(exprs[0], scope)
        rest = self._form_and(SexpList((form[0], *exprs[1:])), scope)
        return If(first, rest, Quote(False), _pos_of(form))

    def _form_or(self, form, scope: frozenset[str]) -> CoreExp:
        exprs = list(form[1:])
        if not exprs:
            return Quote(False)
        if len(exprs) == 1:
            return self.expression(exprs[0], scope)
        first = self.expression(exprs[0], scope)
        rest = self._form_or(SexpList((form[0], *exprs[1:])), scope)
        temp = self.gensym.fresh("t")
        return Let(temp, first,
                   If(Var(temp), Var(temp), rest, _pos_of(form)),
                   _pos_of(form))

    def _form_when(self, form, scope: frozenset[str]) -> CoreExp:
        if len(form) < 3:
            raise DesugarError("when needs a test and a body")
        test = self.expression(form[1], scope)
        body = self._body(list(form[2:]), scope)
        return If(test, body, PrimApp("void", ()), _pos_of(form))

    def _form_unless(self, form, scope: frozenset[str]) -> CoreExp:
        if len(form) < 3:
            raise DesugarError("unless needs a test and a body")
        test = self.expression(form[1], scope)
        body = self._body(list(form[2:]), scope)
        return If(test, PrimApp("void", ()), body, _pos_of(form))

    def _form_define(self, form, scope: frozenset[str]) -> CoreExp:
        raise DesugarError(
            "define is only allowed at the start of a body or top level")


def desugar_program(source) -> CoreExp:
    """Desugar a whole program.

    *source* may be program text, a single form, or a sequence of
    already-read forms.
    """
    from repro.util.recursion import deep_recursion
    if isinstance(source, str):
        forms = parse_sexps(source)
    elif isinstance(source, SexpList) or not isinstance(source, (list,
                                                                 tuple)):
        forms = [source]
    else:
        forms = list(source)
    with deep_recursion():
        return Desugarer().program(forms)


def desugar_expression(source) -> CoreExp:
    """Desugar a single expression (no top-level defines)."""
    if isinstance(source, str):
        forms = parse_sexps(source)
        if len(forms) != 1:
            raise DesugarError("expected exactly one expression")
        source = forms[0]
    return Desugarer().expression(source, frozenset())
