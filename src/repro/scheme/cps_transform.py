"""CPS conversion: core direct-style AST → labeled, partitioned CPS.

The converter is higher-order, one-pass (Danvy–Filinski style): static
continuations are Python functions, so no administrative beta-redexes
are produced for applications and primitive calls.  Design choices that
matter to the analyses downstream:

* **Partitioning** — lambdas written by the user become ``USER``
  lambdas and receive an extra final continuation parameter; every
  continuation the converter materializes is a ``CONT`` lambda.  m-CFA
  dispatches its environment allocator on this partition (paper §5.3).

* **let is not a call** — ``Let`` lowers to a *continuation* binding
  ``((κ (x) body) value-context)``, so binding a ``let`` variable never
  consumes k-CFA call-site context or an m-CFA stack frame.

* **Join points** — a conditional with a non-trivial continuation binds
  it to a fresh variable first, so the continuation's code is never
  duplicated (and no lambda node appears twice, which would break the
  label-uniqueness invariant).

* **Fresh names** — the converter continues the numbering of whatever
  :class:`~repro.util.gensym.GensymFactory` alpha-renaming used, so
  generated ``k%7``-style names cannot collide with renamed user names.
"""

from __future__ import annotations

import itertools
from typing import Callable, Sequence

from repro.errors import CPSSyntaxError
from repro.scheme import ast
from repro.scheme.alpha import alpha_rename, check_unique_binders
from repro.scheme.desugar import desugar_program
from repro.scheme.freevars import free_vars
from repro.cps.program import Program
from repro.cps.syntax import (
    AppCall, Call, CExp, FixCall, HaltCall, IfCall, Lam, LamKind, Lit,
    PrimCall, Ref,
)
from repro.util.gensym import GensymFactory

MetaCont = Callable[[CExp], Call]


def cps_convert(exp: ast.CoreExp,
                gensym: GensymFactory | None = None) -> Program:
    """Convert a closed, uniquely-bound core expression to CPS."""
    from repro.util.recursion import deep_recursion
    with deep_recursion():
        check_unique_binders(exp)
        missing = free_vars(exp)
        if missing:
            raise CPSSyntaxError(
                "cannot CPS-convert an open program; free: "
                f"{sorted(missing)}")
        converter = _Converter(gensym or _gensym_above(exp))
        root = converter.nontail(
            exp, lambda atom: HaltCall(atom, converter.new_label()))
        return Program(root)


def compile_program(source) -> Program:
    """Full pipeline: text/forms → desugar → alpha-rename → CPS."""
    gensym = GensymFactory()
    core = alpha_rename(desugar_program(source), gensym)
    return cps_convert(core, gensym)


def _gensym_above(exp: ast.CoreExp) -> GensymFactory:
    """A factory whose counter starts above every generated name in
    *exp*, so fresh names cannot collide with alpha-renamed ones."""
    highest = -1
    for node in ast.walk(exp):
        names: tuple[str, ...] = ()
        if isinstance(node, ast.Var):
            names = (node.name,)
        elif isinstance(node, ast.Lam):
            names = node.params
        elif isinstance(node, ast.Let):
            names = (node.name,)
        elif isinstance(node, ast.Letrec):
            names = tuple(name for name, _ in node.bindings)
        for name in names:
            if GensymFactory.is_generated(name):
                suffix = name.rsplit(GensymFactory.SEPARATOR, 1)[1]
                if suffix.isdigit():
                    highest = max(highest, int(suffix))
    return GensymFactory(highest + 1)


class _Converter:
    def __init__(self, gensym: GensymFactory):
        self.gensym = gensym
        self._labels = itertools.count()

    def new_label(self) -> int:
        return next(self._labels)

    # -- atomic expressions --------------------------------------------

    def atom(self, exp: ast.CoreExp) -> CExp | None:
        """The CPS image of an atomically-evaluable expression."""
        if isinstance(exp, ast.Var):
            return Ref(exp.name)
        if isinstance(exp, ast.Quote):
            return Lit(exp.datum)
        if isinstance(exp, ast.Lam):
            return self.user_lam(exp)
        return None

    def user_lam(self, lam: ast.Lam) -> Lam:
        kvar = self.gensym.fresh("k")
        body = self.tail(lam.body, Ref(kvar))
        return Lam(LamKind.USER, (*lam.params, kvar), body,
                   self.new_label())

    def cont_lam(self, param: str, body: Call) -> Lam:
        return Lam(LamKind.CONT, (param,), body, self.new_label())

    # -- T_c: tail conversion against a syntactic continuation ---------

    def tail(self, exp: ast.CoreExp, cont: CExp) -> Call:
        atom = self.atom(exp)
        if atom is not None:
            return AppCall(cont, (atom,), self.new_label())
        if isinstance(exp, ast.App):
            return self.nontail(exp.fn, lambda fn_atom: self._args(
                exp.args, lambda arg_atoms: AppCall(
                    fn_atom, (*arg_atoms, cont), self.new_label())))
        if isinstance(exp, ast.If):
            return self._conditional(exp, cont)
        if isinstance(exp, ast.Let):
            body = self.tail(exp.body, cont)
            return self.tail(exp.value, self.cont_lam(exp.name, body))
        if isinstance(exp, ast.Letrec):
            bindings = tuple((name, self.user_lam(lam))
                             for name, lam in exp.bindings)
            return FixCall(bindings, self.tail(exp.body, cont),
                           self.new_label())
        if isinstance(exp, ast.PrimApp):
            return self._args(exp.args, lambda arg_atoms: PrimCall(
                exp.op, arg_atoms, cont, self.new_label()))
        raise TypeError(f"not a core expression: {exp!r}")

    def _conditional(self, exp: ast.If, cont: CExp) -> Call:
        if isinstance(cont, Ref):
            return self.nontail(exp.test, lambda test_atom: IfCall(
                test_atom,
                self.tail(exp.then, cont),
                self.tail(exp.orelse, cont),
                self.new_label()))
        # The continuation is a lambda: bind it to a join variable so
        # its node is not duplicated across the two branches.
        join = self.gensym.fresh("j")
        branch = self.nontail(exp.test, lambda test_atom: IfCall(
            test_atom,
            self.tail(exp.then, Ref(join)),
            self.tail(exp.orelse, Ref(join)),
            self.new_label()))
        binder = Lam(LamKind.CONT, (join,), branch, self.new_label())
        return AppCall(binder, (cont,), self.new_label())

    # -- T_k: non-tail conversion against a meta continuation ----------

    def nontail(self, exp: ast.CoreExp, kappa: MetaCont) -> Call:
        atom = self.atom(exp)
        if atom is not None:
            return kappa(atom)
        if isinstance(exp, ast.Let):
            body = self.nontail(exp.body, kappa)
            return self.tail(exp.value, self.cont_lam(exp.name, body))
        if isinstance(exp, ast.Letrec):
            bindings = tuple((name, self.user_lam(lam))
                             for name, lam in exp.bindings)
            return FixCall(bindings, self.nontail(exp.body, kappa),
                           self.new_label())
        # Applications, conditionals and primitives need their result
        # named: reify the meta continuation into a CONT lambda.
        result = self.gensym.fresh("rv")
        reified = self.cont_lam(result, kappa(Ref(result)))
        return self.tail(exp, reified)

    def _args(self, exps: Sequence[ast.CoreExp],
              kappa: Callable[[tuple[CExp, ...]], Call]) -> Call:
        """Convert argument expressions left to right."""
        collected: list[CExp] = []

        def step(index: int) -> Call:
            if index == len(exps):
                return kappa(tuple(collected))
            def receive(atom: CExp) -> Call:
                collected.append(atom)
                return step(index + 1)
            return self.nontail(exps[index], receive)

        return step(0)
