"""Free-variable analysis for the core direct-style AST.

m-CFA's concrete and abstract machines both copy the values of a
lambda's free variables into a freshly allocated flat environment, so
free-variable sets are load-bearing here, not just a lint: they are
part of the transition relation (paper Section 5.1/5.2).
"""

from __future__ import annotations

from functools import lru_cache

from repro.scheme.ast import (
    App, CoreExp, If, Lam, Let, Letrec, PrimApp, Quote, Var,
)


def free_vars(exp: CoreExp) -> frozenset[str]:
    """The free variables of *exp*.

    Results are memoized per node identity — core ASTs are immutable,
    and the CPS transform queries the same lambdas repeatedly.
    """
    return _free_vars_cached(id(exp), exp)


@lru_cache(maxsize=None)
def _free_vars_cached(key: int, exp: CoreExp) -> frozenset[str]:
    del key  # only present to make the cache identity-based
    return _free_vars(exp)


def _free_vars(exp: CoreExp) -> frozenset[str]:
    if isinstance(exp, Var):
        return frozenset({exp.name})
    if isinstance(exp, Quote):
        return frozenset()
    if isinstance(exp, Lam):
        return free_vars(exp.body) - frozenset(exp.params)
    if isinstance(exp, App):
        result = free_vars(exp.fn)
        for arg in exp.args:
            result |= free_vars(arg)
        return result
    if isinstance(exp, If):
        return (free_vars(exp.test) | free_vars(exp.then)
                | free_vars(exp.orelse))
    if isinstance(exp, Let):
        return free_vars(exp.value) | (free_vars(exp.body)
                                       - frozenset({exp.name}))
    if isinstance(exp, Letrec):
        bound = frozenset(name for name, _ in exp.bindings)
        result = free_vars(exp.body)
        for _, lam in exp.bindings:
            result |= free_vars(lam)
        return result - bound
    if isinstance(exp, PrimApp):
        result: frozenset[str] = frozenset()
        for arg in exp.args:
            result |= free_vars(arg)
        return result
    raise TypeError(f"not a core expression: {exp!r}")


def is_closed(exp: CoreExp) -> bool:
    """True when *exp* has no free variables (a whole program)."""
    return not free_vars(exp)
