"""The primitive operation table.

Primitives are *not* first-class values in the core languages: the
desugarer turns saturated applications of unshadowed primitive names
into ``PrimApp`` nodes (and eta-expands primitives used as values).
This keeps the abstract value domain small — exactly closures, pairs
and one "basic" top element — which mirrors how Shivers-lineage CFA
implementations treat Scheme primops.

Each entry records:

* ``arity_min`` / ``arity_max`` — ``arity_max`` of ``None`` means
  variadic;
* ``kind`` — how the *abstract* machines transfer it:
  - ``"basic"``: result abstracts to the basic-value top;
  - ``"cons"`` / ``"car"`` / ``"cdr"``: field-sensitive pair rules;
  - ``"error"``: diverges (calls no continuation);
* ``impl`` — the concrete implementation over runtime values.

Predicates return real booleans concretely but abstract to basic-top,
which is why ``if`` must branch both ways in the abstract semantics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.errors import EvaluationError
from repro.scheme.sexp import Symbol
from repro.scheme.values import (
    VOID, NilType, PairVal, ProcedureValue, Value, VoidType,
    is_truthy, iter_scheme_list, scheme_repr, values_equal, values_eqv,
)


class SchemeUserError(EvaluationError):
    """Raised when the analyzed program itself calls ``(error ...)``."""


@dataclass(frozen=True, slots=True)
class Primitive:
    """Specification of one primitive operation."""

    name: str
    arity_min: int
    arity_max: int | None
    kind: str  # "basic" | "cons" | "car" | "cdr" | "error"
    impl: Callable[..., Value]

    def check_arity(self, count: int) -> None:
        if count < self.arity_min or (self.arity_max is not None
                                      and count > self.arity_max):
            if self.arity_max is None:
                expected = f"at least {self.arity_min}"
            elif self.arity_min == self.arity_max:
                expected = str(self.arity_min)
            else:
                expected = f"{self.arity_min}..{self.arity_max}"
            raise EvaluationError(
                f"primitive {self.name} expects {expected} argument(s), "
                f"got {count}")

    def apply(self, args: tuple[Value, ...]) -> Value:
        self.check_arity(len(args))
        return self.impl(*args)


def _need_int(value: Value, op: str) -> int:
    if isinstance(value, bool) or not isinstance(value, int):
        raise EvaluationError(f"{op}: expected an integer, "
                              f"got {scheme_repr(value)}")
    return value


def _need_pair(value: Value, op: str) -> PairVal:
    if not isinstance(value, PairVal):
        raise EvaluationError(f"{op}: expected a pair, "
                              f"got {scheme_repr(value)}")
    return value


def _add(*args: Value) -> int:
    return sum(_need_int(a, "+") for a in args)


def _sub(first: Value, *rest: Value) -> int:
    head = _need_int(first, "-")
    if not rest:
        return -head
    for arg in rest:
        head -= _need_int(arg, "-")
    return head


def _mul(*args: Value) -> int:
    result = 1
    for arg in args:
        result *= _need_int(arg, "*")
    return result


def _quotient(a: Value, b: Value) -> int:
    divisor = _need_int(b, "quotient")
    if divisor == 0:
        raise EvaluationError("quotient: division by zero")
    quotient = abs(_need_int(a, "quotient")) // abs(divisor)
    return quotient if (a >= 0) == (divisor > 0) else -quotient


def _remainder(a: Value, b: Value) -> int:
    divisor = _need_int(b, "remainder")
    if divisor == 0:
        raise EvaluationError("remainder: division by zero")
    return _need_int(a, "remainder") - divisor * _quotient(a, b)


def _modulo(a: Value, b: Value) -> int:
    divisor = _need_int(b, "modulo")
    if divisor == 0:
        raise EvaluationError("modulo: division by zero")
    return _need_int(a, "modulo") % divisor


def _comparison(op: str, test: Callable[[int, int], bool]):
    def compare(*args: Value) -> bool:
        numbers = [_need_int(a, op) for a in args]
        return all(test(x, y) for x, y in zip(numbers, numbers[1:]))
    return compare


def _error(*args: Value) -> Value:
    raise SchemeUserError(" ".join(scheme_repr(a) for a in args))


def _length(value: Value) -> int:
    return sum(1 for _ in iter_scheme_list(value))


def _display(*args: Value) -> VoidType:
    return VOID


def _symbol_to_string(value: Value) -> str:
    if not isinstance(value, Symbol):
        raise EvaluationError(f"symbol->string: expected a symbol, "
                              f"got {scheme_repr(value)}")
    return str(value)


def _string_append(*args: Value) -> str:
    for arg in args:
        if not isinstance(arg, str) or isinstance(arg, Symbol):
            raise EvaluationError(f"string-append: expected a string, "
                                  f"got {scheme_repr(arg)}")
    return "".join(args)


def _number_to_string(value: Value) -> str:
    return str(_need_int(value, "number->string"))


_TABLE: dict[str, Primitive] = {}


def _define(name: str, arity_min: int, arity_max: int | None,
            kind: str, impl: Callable[..., Value]) -> None:
    _TABLE[name] = Primitive(name, arity_min, arity_max, kind, impl)


_define("+", 0, None, "basic", _add)
_define("-", 1, None, "basic", _sub)
_define("*", 0, None, "basic", _mul)
_define("quotient", 2, 2, "basic", _quotient)
_define("remainder", 2, 2, "basic", _remainder)
_define("modulo", 2, 2, "basic", _modulo)
_define("=", 2, None, "basic", _comparison("=", lambda x, y: x == y))
_define("<", 2, None, "basic", _comparison("<", lambda x, y: x < y))
_define(">", 2, None, "basic", _comparison(">", lambda x, y: x > y))
_define("<=", 2, None, "basic", _comparison("<=", lambda x, y: x <= y))
_define(">=", 2, None, "basic", _comparison(">=", lambda x, y: x >= y))
_define("zero?", 1, 1, "basic",
        lambda v: _need_int(v, "zero?") == 0)
_define("not", 1, 1, "basic", lambda v: not is_truthy(v))
_define("eq?", 2, 2, "basic", values_eqv)
_define("eqv?", 2, 2, "basic", values_eqv)
_define("null?", 1, 1, "basic", lambda v: isinstance(v, NilType))
_define("pair?", 1, 1, "basic", lambda v: isinstance(v, PairVal))
_define("number?", 1, 1, "basic",
        lambda v: isinstance(v, int) and not isinstance(v, bool))
_define("boolean?", 1, 1, "basic", lambda v: isinstance(v, bool))
_define("symbol?", 1, 1, "basic", lambda v: isinstance(v, Symbol))
_define("string?", 1, 1, "basic",
        lambda v: isinstance(v, str) and not isinstance(v, Symbol))
_define("procedure?", 1, 1, "basic",
        lambda v: isinstance(v, ProcedureValue))
_define("cons", 2, 2, "cons", PairVal)
_define("car", 1, 1, "car", lambda v: _need_pair(v, "car").car)
_define("cdr", 1, 1, "cdr", lambda v: _need_pair(v, "cdr").cdr)
_define("length", 1, 1, "basic", _length)
_define("void", 0, 0, "basic", lambda: VOID)
_define("display", 0, None, "basic", _display)
_define("newline", 0, 0, "basic", _display)
_define("error", 0, None, "error", _error)
_define("symbol->string", 1, 1, "basic", _symbol_to_string)
_define("number->string", 1, 1, "basic", _number_to_string)
_define("string-append", 0, None, "basic", _string_append)
_define("string=?", 2, 2, "basic",
        lambda a, b: _string_append(a) == _string_append(b))
_define("equal?", 2, 2, "basic", values_equal)


def lookup_primitive(name: str) -> Primitive | None:
    """The primitive named *name*, or None if it is not a primitive."""
    return _TABLE.get(name)


def is_primitive_name(name: str) -> bool:
    return name in _TABLE


def primitive_names() -> frozenset[str]:
    return frozenset(_TABLE)


#: Primitives whose abstract result may include closures (pair fields
#: can hold anything that was consed into them); everything else
#: abstracts to the basic top value.
FLOW_RELEVANT_KINDS = frozenset({"cons", "car", "cdr"})
