"""Core direct-style AST for the Scheme subset.

The desugarer (:mod:`repro.scheme.desugar`) lowers all surface forms to
the seven core constructs here.  The core is deliberately small:

* ``Var``     — variable reference
* ``Lam``     — ``(lambda (v ...) body)`` with a *single* body expression
* ``App``     — application
* ``If``      — two-armed conditional
* ``Let``     — a single, non-recursive binding (multi-binding ``let``,
  ``let*`` and ``begin`` are desugared into chains of these)
* ``Letrec``  — mutually recursive *lambda* bindings (the standard CFA
  restriction: right-hand sides must be ``Lam``)
* ``Quote``   — literal data (numbers and booleans self-quote)
* ``PrimApp`` — fully-applied primitive operation

Keeping ``Let`` distinct from ``App`` matters downstream: the CPS
transform lowers ``Let`` to a *continuation* binding, so ``let`` does
not consume a stack frame of m-CFA context or a call-site of k-CFA
context — exactly how Shivers-lineage CFA implementations treat it.

All nodes are frozen dataclasses; they are compared structurally and
are safe to share.  ``pos`` carries the source position for messages.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Union

from repro.scheme.sexp import Position

CoreExp = Union["Var", "Lam", "App", "If", "Let", "Letrec", "Quote",
                "PrimApp"]


@dataclass(frozen=True, slots=True)
class Var:
    """A variable reference."""

    name: str
    pos: Position = field(default=Position(), compare=False)

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True, slots=True)
class Lam:
    """``(lambda (params...) body)`` — body already a single expression."""

    params: tuple[str, ...]
    body: CoreExp
    pos: Position = field(default=Position(), compare=False)

    def __str__(self) -> str:
        return f"(lambda ({' '.join(self.params)}) {self.body})"


@dataclass(frozen=True, slots=True)
class App:
    """Application of a (non-primitive) operator expression."""

    fn: CoreExp
    args: tuple[CoreExp, ...]
    pos: Position = field(default=Position(), compare=False)

    def __str__(self) -> str:
        parts = " ".join(str(a) for a in (self.fn, *self.args))
        return f"({parts})"


@dataclass(frozen=True, slots=True)
class If:
    """Two-armed conditional; one-armed ``if`` gets a void alternative."""

    test: CoreExp
    then: CoreExp
    orelse: CoreExp
    pos: Position = field(default=Position(), compare=False)

    def __str__(self) -> str:
        return f"(if {self.test} {self.then} {self.orelse})"


@dataclass(frozen=True, slots=True)
class Let:
    """A single non-recursive binding: ``(let ((name value)) body)``."""

    name: str
    value: CoreExp
    body: CoreExp
    pos: Position = field(default=Position(), compare=False)

    def __str__(self) -> str:
        return f"(let (({self.name} {self.value})) {self.body})"


@dataclass(frozen=True, slots=True)
class Letrec:
    """Mutually recursive bindings, each right-hand side a ``Lam``."""

    bindings: tuple[tuple[str, Lam], ...]
    body: CoreExp
    pos: Position = field(default=Position(), compare=False)

    def __str__(self) -> str:
        bound = " ".join(f"({name} {lam})" for name, lam in self.bindings)
        return f"(letrec ({bound}) {self.body})"


@dataclass(frozen=True, slots=True)
class Quote:
    """Literal data: ints, booleans, strings, symbols, nested lists.

    The datum is stored as the reader produced it (tuples for lists);
    evaluators convert it to runtime values.
    """

    datum: object
    pos: Position = field(default=Position(), compare=False)

    def __str__(self) -> str:
        from repro.scheme.sexp import write_sexp
        if isinstance(self.datum, (int, bool, str)):
            return write_sexp(self.datum)
        return f"'{write_sexp(self.datum)}"


@dataclass(frozen=True, slots=True)
class PrimApp:
    """A saturated primitive application, e.g. ``(car xs)``.

    ``op`` is the primitive's name, resolved by the desugarer against
    :mod:`repro.scheme.primitives` with proper shadowing rules.
    """

    op: str
    args: tuple[CoreExp, ...]
    pos: Position = field(default=Position(), compare=False)

    def __str__(self) -> str:
        parts = " ".join(str(a) for a in self.args)
        return f"({self.op} {parts})" if parts else f"({self.op})"


def children(exp: CoreExp) -> tuple[CoreExp, ...]:
    """Immediate sub-expressions of *exp*, in evaluation order."""
    if isinstance(exp, (Var, Quote)):
        return ()
    if isinstance(exp, Lam):
        return (exp.body,)
    if isinstance(exp, App):
        return (exp.fn, *exp.args)
    if isinstance(exp, If):
        return (exp.test, exp.then, exp.orelse)
    if isinstance(exp, Let):
        return (exp.value, exp.body)
    if isinstance(exp, Letrec):
        return (*(lam for _, lam in exp.bindings), exp.body)
    if isinstance(exp, PrimApp):
        return exp.args
    raise TypeError(f"not a core expression: {exp!r}")


def walk(exp: CoreExp) -> Iterator[CoreExp]:
    """Depth-first pre-order traversal of *exp* and its descendants."""
    stack = [exp]
    while stack:
        node = stack.pop()
        yield node
        stack.extend(reversed(children(node)))


def count_nodes(exp: CoreExp) -> int:
    """Total number of AST nodes — a crude direct-style size measure."""
    return sum(1 for _ in walk(exp))


def bound_names(exp: CoreExp) -> frozenset[str]:
    """Every name bound anywhere inside *exp* (by Lam, Let or Letrec)."""
    names: set[str] = set()
    for node in walk(exp):
        if isinstance(node, Lam):
            names.update(node.params)
        elif isinstance(node, Let):
            names.add(node.name)
        elif isinstance(node, Letrec):
            names.update(name for name, _ in node.bindings)
    return frozenset(names)
