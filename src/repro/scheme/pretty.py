"""Pretty-print core ASTs back to readable surface syntax.

The output re-reads to an alpha-equivalent program (generated names
keep their ``%N`` suffix, which the reader accepts), so round-trip
tests can parse → desugar → pretty → parse → desugar and compare.
"""

from __future__ import annotations

from repro.scheme.ast import (
    App, CoreExp, If, Lam, Let, Letrec, PrimApp, Quote, Var,
)
from repro.scheme.sexp import write_sexp

_INDENT = "  "


def pretty(exp: CoreExp, width: int = 72) -> str:
    """Render *exp*; short forms stay on one line."""
    from repro.util.recursion import deep_recursion
    with deep_recursion():
        return _render(exp, 0, width)


def _render(exp: CoreExp, depth: int, width: int) -> str:
    flat = _flat(exp)
    if len(flat) + depth * len(_INDENT) <= width:
        return flat
    pad = _INDENT * (depth + 1)
    if isinstance(exp, Lam):
        return (f"(lambda ({' '.join(exp.params)})\n"
                f"{pad}{_render(exp.body, depth + 1, width)})")
    if isinstance(exp, If):
        return (f"(if {_render(exp.test, depth + 1, width)}\n"
                f"{pad}{_render(exp.then, depth + 1, width)}\n"
                f"{pad}{_render(exp.orelse, depth + 1, width)})")
    if isinstance(exp, Let):
        return (f"(let (({exp.name} "
                f"{_render(exp.value, depth + 2, width)}))\n"
                f"{pad}{_render(exp.body, depth + 1, width)})")
    if isinstance(exp, Letrec):
        inner_pad = _INDENT * (depth + 2)
        bindings = ("\n" + inner_pad).join(
            f"({name} {_render(lam, depth + 2, width)})"
            for name, lam in exp.bindings)
        return (f"(letrec ({bindings})\n"
                f"{pad}{_render(exp.body, depth + 1, width)})")
    if isinstance(exp, App):
        parts = [_render(exp.fn, depth + 1, width)]
        parts += [_render(arg, depth + 1, width) for arg in exp.args]
        return "(" + ("\n" + pad).join(parts) + ")"
    if isinstance(exp, PrimApp):
        parts = [exp.op]
        parts += [_render(arg, depth + 1, width) for arg in exp.args]
        return "(" + ("\n" + pad).join(parts) + ")"
    return flat


def _flat(exp: CoreExp) -> str:
    if isinstance(exp, Var):
        return exp.name
    if isinstance(exp, Quote):
        if isinstance(exp.datum, (bool, int)):
            return write_sexp(exp.datum)
        if isinstance(exp.datum, str) and not hasattr(exp.datum, "pos"):
            return write_sexp(exp.datum)
        return "'" + write_sexp(exp.datum)
    if isinstance(exp, Lam):
        return f"(lambda ({' '.join(exp.params)}) {_flat(exp.body)})"
    if isinstance(exp, App):
        return "(" + " ".join(_flat(e) for e in (exp.fn, *exp.args)) + ")"
    if isinstance(exp, If):
        return (f"(if {_flat(exp.test)} {_flat(exp.then)} "
                f"{_flat(exp.orelse)})")
    if isinstance(exp, Let):
        return f"(let (({exp.name} {_flat(exp.value)})) {_flat(exp.body)})"
    if isinstance(exp, Letrec):
        bindings = " ".join(f"({name} {_flat(lam)})"
                            for name, lam in exp.bindings)
        return f"(letrec ({bindings}) {_flat(exp.body)})"
    if isinstance(exp, PrimApp):
        if exp.args:
            return "(" + " ".join((exp.op,
                                   *(_flat(a) for a in exp.args))) + ")"
        return f"({exp.op})"
    raise TypeError(f"not a core expression: {exp!r}")
