"""S-expression reader and writer.

The reader turns program text into a tree of Python values:

* lists          -> ``SexpList`` (a tuple subclass carrying a position)
* symbols        -> :class:`Symbol`
* exact integers -> ``int``
* booleans       -> ``bool`` (``#t`` / ``#f``)
* strings        -> ``str``

It supports line comments (``;``), block comments (``#| ... |#``),
datum comments (``#;datum``), the quote family of reader macros
(``'x`` -> ``(quote x)``, `````x`` -> ``(quasiquote x)``, ``,x`` ->
``(unquote x)``) and square brackets as alternative parentheses.
Every list and symbol remembers its source line/column, which the
Scheme parser threads through to AST nodes for error messages.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

from repro.errors import SchemeSyntaxError

_DELIMITERS = set("()[]\"';`,")
_CLOSER_FOR = {"(": ")", "[": "]"}


@dataclass(frozen=True, slots=True)
class Position:
    """A 1-based source position."""

    line: int = 0
    column: int = 0

    def __str__(self) -> str:
        return f"{self.line}:{self.column}"


class Symbol(str):
    """A Scheme symbol; compares equal to the equivalent ``str``.

    Subclassing ``str`` keeps symbols hashable and cheap while still
    letting ``isinstance(x, Symbol)`` distinguish ``foo`` from ``"foo"``.
    """

    def __new__(cls, name: str, pos: Position = Position()):
        self = super().__new__(cls, name)
        self.pos = pos
        return self

    def __repr__(self) -> str:
        return f"Symbol({str.__repr__(self)})"


class SexpList(tuple):
    """A read list; a tuple that remembers where it started."""

    def __new__(cls, items: Sequence = (), pos: Position = Position()):
        self = super().__new__(cls, items)
        self.pos = pos
        return self

    def __repr__(self) -> str:
        return f"SexpList({tuple.__repr__(self)})"


Sexp = object  # documentation alias: Symbol | int | bool | str | SexpList


class _Reader:
    """Single-pass recursive-descent reader with position tracking."""

    def __init__(self, text: str):
        self.text = text
        self.index = 0
        self.line = 1
        self.column = 1

    # -- character-level helpers ------------------------------------

    def _peek(self) -> str:
        if self.index >= len(self.text):
            return ""
        return self.text[self.index]

    def _next(self) -> str:
        ch = self.text[self.index]
        self.index += 1
        if ch == "\n":
            self.line += 1
            self.column = 1
        else:
            self.column += 1
        return ch

    def _position(self) -> Position:
        return Position(self.line, self.column)

    def _error(self, message: str) -> SchemeSyntaxError:
        return SchemeSyntaxError(message, self.line, self.column)

    # -- whitespace and comments -------------------------------------

    def _skip_atmosphere(self) -> None:
        while self.index < len(self.text):
            ch = self._peek()
            if ch in " \t\r\n":
                self._next()
            elif ch == ";":
                while self.index < len(self.text) and self._peek() != "\n":
                    self._next()
            elif self.text.startswith("#|", self.index):
                self._skip_block_comment()
            elif self.text.startswith("#;", self.index):
                self._next()
                self._next()
                self.read()  # discard the following datum
            else:
                return

    def _skip_block_comment(self) -> None:
        start = self._position()
        self._next()  # '#'
        self._next()  # '|'
        depth = 1
        while depth > 0:
            if self.index >= len(self.text):
                raise SchemeSyntaxError(
                    "unterminated block comment", start.line, start.column)
            if self.text.startswith("#|", self.index):
                self._next()
                self._next()
                depth += 1
            elif self.text.startswith("|#", self.index):
                self._next()
                self._next()
                depth -= 1
            else:
                self._next()

    # -- datum reading ------------------------------------------------

    def at_eof(self) -> bool:
        self._skip_atmosphere()
        return self.index >= len(self.text)

    def read(self):
        """Read one datum; raises at EOF."""
        self._skip_atmosphere()
        if self.index >= len(self.text):
            raise self._error("unexpected end of input")
        ch = self._peek()
        if ch in "([":
            return self._read_list()
        if ch in ")]":
            raise self._error(f"unexpected {ch!r}")
        if ch == '"':
            return self._read_string()
        if ch == "'":
            return self._read_prefixed("quote")
        if ch == "`":
            return self._read_prefixed("quasiquote")
        if ch == ",":
            pos = self._position()
            self._next()
            if self._peek() == "@":
                self._next()
                return SexpList(
                    (Symbol("unquote-splicing", pos), self.read()), pos)
            return SexpList((Symbol("unquote", pos), self.read()), pos)
        if ch == "#":
            return self._read_hash()
        return self._read_atom()

    def _read_prefixed(self, head: str):
        pos = self._position()
        self._next()
        return SexpList((Symbol(head, pos), self.read()), pos)

    def _read_list(self) -> SexpList:
        pos = self._position()
        opener = self._next()
        closer = _CLOSER_FOR[opener]
        items = []
        while True:
            self._skip_atmosphere()
            if self.index >= len(self.text):
                raise SchemeSyntaxError(
                    f"unterminated list opened here", pos.line, pos.column)
            ch = self._peek()
            if ch in ")]":
                if ch != closer:
                    raise self._error(
                        f"mismatched delimiter: expected {closer!r}, "
                        f"found {ch!r}")
                self._next()
                return SexpList(items, pos)
            items.append(self.read())

    def _read_string(self) -> str:
        start = self._position()
        self._next()  # opening quote
        chars: list[str] = []
        while True:
            if self.index >= len(self.text):
                raise SchemeSyntaxError(
                    "unterminated string literal", start.line, start.column)
            ch = self._next()
            if ch == '"':
                return "".join(chars)
            if ch == "\\":
                if self.index >= len(self.text):
                    raise SchemeSyntaxError(
                        "unterminated string escape",
                        start.line, start.column)
                escape = self._next()
                chars.append({
                    "n": "\n", "t": "\t", "r": "\r",
                    '"': '"', "\\": "\\",
                }.get(escape, escape))
            else:
                chars.append(ch)

    def _read_hash(self):
        pos = self._position()
        self._next()  # '#'
        ch = self._peek()
        if ch in "tf":
            token = self._read_token_text()
            if token in ("t", "true"):
                return True
            if token in ("f", "false"):
                return False
            raise SchemeSyntaxError(
                f"unknown boolean literal #{token}", pos.line, pos.column)
        raise SchemeSyntaxError(
            f"unsupported reader syntax #{ch!r}", pos.line, pos.column)

    def _read_token_text(self) -> str:
        chars: list[str] = []
        while self.index < len(self.text):
            ch = self._peek()
            if ch in " \t\r\n" or ch in _DELIMITERS:
                break
            chars.append(self._next())
        return "".join(chars)

    def _read_atom(self):
        pos = self._position()
        token = self._read_token_text()
        if not token:
            raise self._error("empty token")
        try:
            return int(token)
        except ValueError:
            pass
        # Negative/positive floats and rationals are out of scope: the
        # analyses abstract all numbers to one basic value anyway, so the
        # front end keeps only exact integers.
        return Symbol(token, pos)


def parse_sexps(text: str) -> list:
    """Read every datum in *text*, in order."""
    from repro.util.recursion import deep_recursion
    reader = _Reader(text)
    data = []
    with deep_recursion():
        while not reader.at_eof():
            data.append(reader.read())
    return data


def parse_sexp(text: str):
    """Read exactly one datum; raise if there are zero or several."""
    data = parse_sexps(text)
    if len(data) != 1:
        raise SchemeSyntaxError(
            f"expected exactly one datum, found {len(data)}")
    return data[0]


def write_sexp(datum) -> str:
    """Render a datum back to (re-readable) surface syntax."""
    if datum is True:
        return "#t"
    if datum is False:
        return "#f"
    if isinstance(datum, (Symbol,)):
        return str(datum)
    if isinstance(datum, int):
        return str(datum)
    if isinstance(datum, str):
        escaped = datum.replace("\\", "\\\\").replace('"', '\\"')
        escaped = escaped.replace("\n", "\\n").replace("\t", "\\t")
        return f'"{escaped}"'
    if isinstance(datum, (tuple, list)):
        return "(" + " ".join(write_sexp(item) for item in datum) + ")"
    raise TypeError(f"cannot write datum of type {type(datum).__name__}")


def sexp_equal(left, right) -> bool:
    """Structural equality ignoring positions and list container types."""
    if isinstance(left, (tuple, list)) and isinstance(right, (tuple, list)):
        return (len(left) == len(right)
                and all(sexp_equal(a, b) for a, b in zip(left, right)))
    if isinstance(left, bool) or isinstance(right, bool):
        return left is right
    return type(left) in (int, str, Symbol) and left == right \
        and isinstance(left, Symbol) == isinstance(right, Symbol)


def iter_symbols(datum) -> Iterator[Symbol]:
    """Yield every symbol in *datum*, depth-first."""
    if isinstance(datum, Symbol):
        yield datum
    elif isinstance(datum, (tuple, list)):
        for item in datum:
            yield from iter_symbols(item)
