"""Human-readable reports over analysis results.

Renders the kind of tables the paper draws at the bottom of Figures 1
and 2 — ``context: variable -> {abstract values}`` — plus summaries
for whole runs.  Used by the CLI (:mod:`repro.__main__`) and handy in
a REPL:

    >>> from repro import compile_program, analyze_mcfa
    >>> from repro.reporting import flow_report
    >>> print(flow_report(analyze_mcfa(compile_program("..."), 1)))
"""

from __future__ import annotations

from collections import defaultdict

from repro.analysis.domains import AConst, APair, BASIC, FClo, \
    KClo, SClo, SCont
from repro.analysis.results import AnalysisResult
from repro.fj.kcfa import AKont, AObj, FJResult
from repro.util.gensym import GensymFactory


def render_value(value) -> str:
    """Short, stable rendering of one abstract value."""
    if value is BASIC:
        return "⊤"
    if isinstance(value, AConst):
        return repr(value)
    if isinstance(value, (KClo, FClo, SClo, SCont)):
        return f"λ@{value.lam.label}"
    if isinstance(value, APair):
        return "pair"
    if isinstance(value, AObj):
        return f"{value.classname}@{value.site}"
    if isinstance(value, AKont):
        return f"kont@{value.stmt.label}"
    return repr(value)


def render_flow_set(values) -> str:
    return "{" + ", ".join(sorted(render_value(v) for v in values)) \
        + "}"


def flow_report(result: AnalysisResult, max_rows: int = 60,
                include_generated: bool = False) -> str:
    """The Figure 1/2-style table: ``context: var -> values``.

    Synthetic pair-field and converter-generated bindings are elided
    unless *include_generated* — user-written names tell the story.
    """
    lines = [f"flow facts — {result.analysis}"
             f"({result.parameter}), "
             f"{len(result.store)} store entries"]
    rows = []
    for (name, context), values in sorted(
            result.store.items(), key=lambda item: repr(item[0])):
        if "@" in name:  # pair fields
            continue
        if not include_generated and GensymFactory.is_generated(name) \
                and GensymFactory.base_of(name) in ("k", "rv", "j",
                                                    "seq", "t", "p"):
            continue
        rows.append(f"  {list(context)}: {name} -> "
                    f"{render_flow_set(values)}")
    if len(rows) > max_rows:
        hidden = len(rows) - max_rows
        rows = rows[:max_rows] + [f"  ... ({hidden} more rows)"]
    lines.extend(rows)
    lines.append(f"result: {render_flow_set(result.halt_values)}")
    return "\n".join(lines)


def inlining_report(result: AnalysisResult) -> str:
    """Call-site resolution: monomorphic vs polymorphic sites."""
    lines = [f"call-site resolution — {result.analysis}"
             f"({result.parameter})"]
    inlinable = set(result.inlinable_call_sites())
    for label in sorted(result.callees):
        callees = result.callees[label]
        call = result.program.calls_by_label.get(label)
        kinds = {("user" if lam.is_user else "cont")
                 for lam in callees}
        if kinds == {"cont"}:
            continue  # return points; not interesting here
        marker = "INLINE" if label in inlinable else \
            f"{len(callees)} callees"
        text = str(call)
        if len(text) > 48:
            text = text[:45] + "..."
        lines.append(f"  @{label:<4} {text:<48} [{marker}]")
    lines.append(f"supported inlinings: "
                 f"{result.supported_inlinings()}")
    return "\n".join(lines)


def environment_report(result: AnalysisResult) -> str:
    """Per-lambda entry-environment counts (the Figure 1/2 metric)."""
    lines = [f"environments per lambda — {result.analysis}"
             f"({result.parameter})"]
    for label, count in sorted(result.environment_counts().items()):
        lam = result.program.lams_by_label.get(label)
        kind = "user" if lam is not None and lam.is_user else "cont"
        lines.append(f"  λ@{label:<4} ({kind}): {count}")
    lines.append(f"total: {result.total_environments()}")
    return "\n".join(lines)


def fj_report(result: FJResult) -> str:
    """Points-to-style report for an FJ analysis."""
    lines = [f"{result.analysis}(k={result.parameter}, "
             f"{result.tick_policy} ticking)"]
    lines.append(f"  {len(result.configs)} configurations, "
                 f"{len(result.objects)} abstract objects, "
                 f"{result.total_environments()} environments")
    by_class: dict[str, int] = defaultdict(int)
    for obj in result.objects:
        by_class[obj.classname] += 1
    lines.append("  abstract objects per class:")
    for classname, count in sorted(by_class.items()):
        lines.append(f"    {classname}: {count}")
    lines.append("  invocation targets:")
    for label in sorted(result.invoke_targets):
        targets = sorted(result.invoke_targets[label])
        stmt = result.program.stmt_by_label[label]
        mark = "MONO" if len(targets) == 1 else "poly"
        lines.append(f"    @{label} {str(stmt):<40} -> "
                     f"{targets} [{mark}]")
    lines.append("  result: "
                 + render_flow_set(result.halt_values))
    return "\n".join(lines)


def analyses_report(rows: list, language: str | None,
                    total_registered: int, source: str) -> str:
    """Render registry listing rows (:func:`repro.analysis.registry.
    registry_listing`) as the ``analyses`` table.

    Shared by ``python -m repro analyses`` (rows from the local
    registry) and ``python -m repro submit --list-analyses`` (rows
    served by a remote server's ``analyses`` op) so the two can never
    drift; *source* names where the rows came from.
    """
    from repro.metrics.timing import format_table
    headers = ["name", "display", "lang", "env-rep", "engine",
               "context policy", "complexity", "specialized",
               "codegen"]
    # Rows served by pre-codegen servers lack the two knob columns;
    # render a "?" rather than crashing --list-analyses against them.
    def knob(row, field):
        value = row.get(field)
        if value is None:
            return "?"
        return "yes" if value else "no"
    table_rows = [[row["name"], row["display"], row["language"],
                   row["env_rep"], row["engine"], row["context"],
                   row["complexity"], knob(row, "specialized"),
                   knob(row, "codegen")]
                  for row in rows]
    lines = [format_table(headers, table_rows)]
    if language is None:
        lines.append(f"{len(rows)} analyses registered "
                     f"(source: {source})")
    else:
        lines.append(f"{len(rows)} {language} analyses "
                     f"(of {total_registered} registered; "
                     f"source: {source})")
    return "\n".join(lines)


def bench_report_table(report) -> str:
    """Render a :class:`~repro.benchsuite.runner.BenchReport`.

    One row per matrix cell plus a footer comparing batch wall-clock
    against the serial cost (the sum of per-task times) — the speedup
    the parallel runner buys on a multi-core machine.
    """
    from repro.metrics.timing import format_table
    headers = ["task", "status", "time", "terms", "configs", "steps",
               "inlinings", "mono"]
    rows = []
    for row in report.rows:
        rows.append([
            row["task"], row["status"],
            f"{row['wall_seconds']:.2f}s",
            str(row.get("terms", row.get("statements", "-"))),
            str(row.get("configs", "-")),
            str(row.get("steps", "-")),
            str(row.get("inlinings", "-")),
            str(row.get("mono_sites", "-")),
        ])
    lines = [format_table(headers, rows)]
    counts = ", ".join(f"{count} {status}" for status, count
                       in sorted(report.counts().items()))
    mode = "serial" if report.serial else f"{report.jobs} workers"
    lines.append("")
    lines.append(f"{len(report.rows)} tasks ({counts}) in "
                 f"{report.elapsed:.2f}s wall ({mode}); "
                 f"serial cost {report.total_analysis_seconds():.2f}s")
    return "\n".join(lines)


def job_event_line(event: dict) -> str:
    """One progress line per streamed service event (the ``submit``
    CLI prints these to stderr as a job advances)."""
    kind = event.get("event", "?")
    job = event.get("job", "?")
    if kind == "queued":
        if event.get("session") and not event.get("key"):
            return f"[{job}] queued (session {event['session']})"
        key = (event.get("key") or "")[:12]
        return f"[{job}] queued (key {key})"
    if kind == "running":
        if event.get("session"):
            return f"[{job}] running (session {event['session']})"
        suffix = " (coalesced with an identical in-flight job)" \
            if event.get("coalesced") else ""
        return f"[{job}] running{suffix}"
    if kind == "done":
        extra = " cached" if event.get("cached") else (
            " coalesced" if event.get("coalesced") else "")
        if event.get("session"):
            extra = f" session {event['session']}"
            if event.get("mode"):
                extra += f" ({event['mode']}"
                if event.get("mode") == "resumed":
                    extra += (f": {event.get('cleared', '?')} cleared"
                              f", {event.get('steps', '?')} steps")
                extra += ")"
        wall = event.get("wall_seconds")
        timing = f" in {wall:.2f}s" if isinstance(wall, (int, float)) \
            else ""
        return f"[{job}] {event.get('status')}{extra}{timing}"
    if kind == "busy":
        wait = event.get("retry_after")
        hint = f"; retrying in ~{wait:.2f}s" \
            if isinstance(wait, (int, float)) else ""
        return (f"[{job}] busy (worker {event.get('worker', '?')} "
                f"queue full{hint})")
    if kind == "error":
        return f"[{job}] error: {event.get('error')}"
    return f"[{job}] {kind}"


def service_stats_report(stats: dict) -> str:
    """Render one :meth:`AnalysisServer.stats_snapshot` dict.

    Used by ``python -m repro submit --server-stats`` and the CI
    smoke job; every submission shows up as exactly one of a cache
    hit, a coalesced follower or an executed analysis.
    """
    jobs = stats.get("jobs", {})
    lines = [f"analysis service — {stats.get('endpoint', '?')} "
             f"(protocol v{stats.get('protocol', '?')}, "
             f"{stats.get('workers', '?')} workers, "
             f"up {stats.get('uptime_seconds', 0.0):.0f}s)"]
    lines.append(
        f"  jobs: {jobs.get('submitted', 0)} submitted, "
        f"{jobs.get('completed', 0)} completed "
        f"({jobs.get('ok', 0)} ok, {jobs.get('timeout', 0)} timeout, "
        f"{jobs.get('error', 0)} error), "
        f"{jobs.get('coalesced', 0)} coalesced, "
        f"{jobs.get('rejected', 0)} rejected, "
        f"{stats.get('inflight', 0)} in flight")
    lines.append(f"  executed on the worker fleet: "
                 f"{jobs.get('executed', 0)} analyses "
                 f"({jobs.get('busy', 0)} busy bounces, "
                 f"{jobs.get('redispatched', 0)} redispatched)")
    sessions = stats.get("sessions") or {}
    lines.append(
        f"  sessions: {sessions.get('open', 0)} open "
        f"({jobs.get('sessions', 0)} opened, "
        f"{jobs.get('edits', 0)} edits — "
        f"{jobs.get('resumed', 0)} warm-resumed, "
        f"{jobs.get('scratch', 0)} from scratch — "
        f"{jobs.get('queries', 0)} queries)")
    for row in stats.get("fleet") or ():
        state = "alive" if row.get("alive") else "dead"
        lines.append(
            f"    {row.get('worker', '?')} "
            f"(pid {row.get('pid', '?')}, {state}): "
            f"{row.get('jobs', 0)} jobs, "
            f"{row.get('plans_reused', 0)} plans reused, "
            f"depth {row.get('depth', 0)}")
        for store in ("programs", "codegen"):
            counters = row.get(store)
            if not counters:
                continue
            pruned = counters.get("pruned", 0)
            suffix = f", {pruned} pruned" if pruned else ""
            lines.append(
                f"      {store}: {counters.get('hits', 0)} hits, "
                f"{counters.get('misses', 0)} misses"
                f"{suffix}")
    cache = stats.get("cache")
    if cache:
        lines.append(
            f"  cache: {cache.get('hits', 0)} hits, "
            f"{cache.get('misses', 0)} misses, "
            f"{cache.get('writes', 0)} writes, "
            f"{cache.get('rejected', 0)} rejected")
    else:
        lines.append("  cache: disabled")
    return "\n".join(lines)


def query_answer_report(answer: dict) -> str:
    """Render one session point-query answer (the ``query`` CLI's
    stdout) — a few lines, never a full report."""
    kind = answer.get("query")
    target = answer.get("target")
    if kind == "value-of":
        values = answer.get("values") or []
        lines = [f"value-of {target}: {len(values)} value(s) over "
                 f"{answer.get('contexts', 0)} context(s)"]
        lines += [f"  {value}" for value in values]
        return "\n".join(lines)
    if kind == "call-sites-of":
        sites = answer.get("sites") or []
        rendered = ", ".join(str(site) for site in sites) or "none"
        return (f"call-sites-of lam@{target}: {len(sites)} site(s) "
                f"of {answer.get('probed', 0)} probed\n"
                f"  call label(s): {rendered}")
    if kind == "escaping" and target is not None:
        verdict = "escapes" if answer.get("escaping") \
            else "does not escape"
        channels = [name for name, flag in
                    (("halt", answer.get("to_halt")),
                     ("heap", answer.get("to_heap"))) if flag]
        via = f" (via {', '.join(channels)})" if channels else ""
        return f"escaping lam@{target}: {verdict}{via}"
    import json
    return json.dumps(answer, indent=2, sort_keys=True)


def stress_report(report) -> str:
    """Render one :class:`repro.service.stress.StressReport` — the
    throughput/latency summary ``python -m repro stress`` prints."""
    lines = [f"stress — {report.clients} clients x "
             f"{report.requests_per_client} requests "
             f"({report.distinct} distinct programs, "
             f"{report.workers} workers) against {report.endpoint}"]
    lines.append(
        f"  results: {report.completed} completed "
        f"({report.ok} ok, {report.timeout} timeout, "
        f"{report.errors} error), {report.dropped} dropped, "
        f"{report.duplicated} duplicated, "
        f"{report.busy_bounces} busy bounces")
    lines.append(
        f"  verified: {report.verified} responses byte-checked "
        f"against local runs"
        + (f", {report.mismatched} MISMATCHED"
           if report.mismatched else ""))
    lines.append(
        f"  throughput: {report.throughput:.1f} jobs/s over "
        f"{report.wall_seconds:.2f}s")
    lines.append(
        f"  latency: p50 {report.p50 * 1000:.1f}ms, "
        f"p90 {report.p90 * 1000:.1f}ms, "
        f"p99 {report.p99 * 1000:.1f}ms, "
        f"max {report.max_latency * 1000:.1f}ms")
    if report.server_stats:
        jobs = report.server_stats.get("jobs", {})
        cache = report.server_stats.get("cache") or {}
        plans = sum(row.get("plans_reused", 0) for row in
                    report.server_stats.get("fleet") or ())
        lines.append(
            f"  server: {jobs.get('executed', 0)} executed, "
            f"{jobs.get('coalesced', 0)} coalesced, "
            f"{cache.get('hits', 0)} cache hits, "
            f"{plans} plans reused")
    return "\n".join(lines)


def summary_table(results: list[AnalysisResult]) -> str:
    """One row per analysis — compare precision/size side by side."""
    from repro.metrics.timing import format_table
    headers = ["analysis", "param", "configs", "store", "envs",
               "inlinings", "steps"]
    rows = []
    for result in results:
        rows.append([
            result.analysis, str(result.parameter),
            str(result.config_count), str(len(result.store)),
            str(result.total_environments()),
            str(result.supported_inlinings()), str(result.steps),
        ])
    return format_table(headers, rows)
