"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError`, so
client code can catch one type.  Subsystems raise the most specific
subclass that applies; messages always name the offending construct and,
where available, its source position or label.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class UsageError(ReproError, ValueError):
    """Raised for bad user-supplied options (unknown analysis names,
    invalid context depths, negative policy parameters).  The CLI
    prints these as a one-line message and exits with status 2,
    argparse-style, instead of a traceback.

    Also a :class:`ValueError`: every policy-parameter validation in
    the analyzers (negative k/m/n/obj_depth, unknown tick policies)
    raises this class, and historical callers caught ``ValueError``
    for those — the dual inheritance keeps them working while the CLI
    gets its one-line exit-2 contract."""


class SchemeSyntaxError(ReproError):
    """Raised when S-expression reading or Scheme parsing fails."""

    def __init__(self, message: str, line: int | None = None,
                 column: int | None = None):
        self.line = line
        self.column = column
        if line is not None:
            message = f"{message} (line {line}, column {column})"
        super().__init__(message)


class DesugarError(ReproError):
    """Raised when a surface form is malformed (wrong arity, bad binding)."""


class CPSSyntaxError(ReproError):
    """Raised when a term violates the CPS grammar or labeling discipline."""


class UnboundVariableError(ReproError):
    """Raised by evaluators and validators for references to unbound names."""

    def __init__(self, name: str, where: str = ""):
        self.name = name
        suffix = f" in {where}" if where else ""
        super().__init__(f"unbound variable {name!r}{suffix}")


class EvaluationError(ReproError):
    """Raised by the concrete machines for runtime type/arity errors."""


class FuelExhausted(ReproError):
    """Raised when a concrete machine exceeds its step budget.

    Carries the machine state observed so far so callers (e.g. the
    soundness harness) can still inspect the partial trace.
    """

    def __init__(self, steps: int, trace=None):
        self.steps = steps
        self.trace = trace
        super().__init__(f"evaluation exceeded fuel budget of {steps} steps")


class AnalysisTimeout(ReproError):
    """Raised when an analysis exceeds its wall-clock or step budget."""

    def __init__(self, message: str, elapsed: float | None = None):
        self.elapsed = elapsed
        super().__init__(message)


class FJSyntaxError(ReproError):
    """Raised when Featherweight Java parsing fails."""

    def __init__(self, message: str, line: int | None = None,
                 column: int | None = None):
        self.line = line
        self.column = column
        if line is not None:
            message = f"{message} (line {line}, column {column})"
        super().__init__(message)


class FJTypeError(ReproError):
    """Raised for ill-formed class tables (missing classes, bad overrides)."""
