"""Abstract garbage collection for OO k-CFA — the paper's §8
hypothesis, implemented.

    "The abstract semantics for Featherweight Java make it possible to
     adapt abstract garbage collection to the static analysis of
     object-oriented programs.  We hypothesize that its benefits for
     speed and precision will carry over."

This module adapts ΓCFA to the Figure 9 semantics: a naive engine with
per-state stores, collecting every store down to the addresses
reachable from the configuration's roots before it expands.  Roots are
the binding environment's range plus the continuation pointer;
abstract objects reach their field addresses; abstract continuations
reach their saved environment and the rest of the continuation chain.

``analyze_fj_kcfa_gc`` mirrors :func:`repro.fj.kcfa.analyze_fj_kcfa`'s
result API, so the benchmark harness can compare collected vs.
uncollected directly (``benchmarks/bench_abstract_gc.py``).
"""

from __future__ import annotations

import time as _time
from dataclasses import dataclass
from typing import Iterable

from repro.analysis.domains import AbsStore, FrozenStore
from repro.fj.class_table import FJProgram
from repro.fj.kcfa import (
    AKont, AObj, FJConfig, FJKCFAMachine, FJResult, HALT_PTR,
    _FJRecorder,
)
from repro.util.budget import Budget
from repro.util.fixpoint import Worklist

AbsAddr = tuple


def config_roots(config: FJConfig) -> set[AbsAddr]:
    """Addresses directly referenced by an FJ configuration."""
    roots = {addr for _name, addr in config.benv.items()}
    if config.kont_ptr is not HALT_PTR:
        roots.add(config.kont_ptr)
    return roots


def value_addresses(value) -> Iterable[AbsAddr]:
    """Addresses an abstract FJ value can reach in one step."""
    if isinstance(value, AObj):
        for _field, addr in value.benv.items():
            yield addr
    elif isinstance(value, AKont):
        for _name, addr in value.benv.items():
            yield addr
        if value.kont_ptr is not HALT_PTR:
            yield value.kont_ptr


def reachable_addresses(roots: set[AbsAddr], store) -> set[AbsAddr]:
    seen: set[AbsAddr] = set()
    frontier = list(roots)
    while frontier:
        addr = frontier.pop()
        if addr in seen:
            continue
        seen.add(addr)
        for value in store.get(addr):
            for reached in value_addresses(value):
                if reached not in seen:
                    frontier.append(reached)
    return seen


def collect(config: FJConfig, store: FrozenStore) -> FrozenStore:
    """Restrict *store* to what *config* can reach."""
    live = reachable_addresses(config_roots(config), store)
    return FrozenStore((addr, values) for addr, values in store.items()
                       if addr in live)


@dataclass(frozen=True, slots=True)
class _GCState:
    config: FJConfig
    store: FrozenStore


def analyze_fj_kcfa_gc(program: FJProgram, k: int = 1,
                       tick_policy: str = "invocation",
                       budget: Budget | None = None) -> FJResult:
    """OO k-CFA with abstract garbage collection at every transition."""
    machine = FJKCFAMachine(program, k, tick_policy)
    budget = budget or Budget()
    budget.start()
    recorder = _FJRecorder()
    seed_store = AbsStore()
    initial = machine.initial(seed_store)
    frozen_seed = FrozenStore(seed_store.items())
    worklist: Worklist[_GCState] = Worklist()
    worklist.add(_GCState(initial, collect(initial, frozen_seed)))
    steps = 0
    started = _time.perf_counter()
    while worklist:
        budget.charge()
        state = worklist.pop()
        steps += 1
        reads: set = set()
        succs = machine.transitions(state.config, state.store, reads,
                                    recorder)
        for succ_config, joins in succs:
            next_store = state.store.join_many(joins)
            worklist.add(_GCState(
                succ_config, collect(succ_config, next_store)))
    elapsed = _time.perf_counter() - started
    states = worklist.seen
    merged = AbsStore()
    configs = set()
    for state in states:
        configs.add(state.config)
        for addr, values in state.store.items():
            merged.join(addr, values)
    return FJResult(
        program=program, analysis="FJ-k-CFA+GC", parameter=k,
        tick_policy=tick_policy, store=merged,
        configs=frozenset(configs),
        method_contexts={name: frozenset(times) for name, times
                         in recorder.method_contexts.items()},
        objects=frozenset(recorder.objects),
        invoke_targets={label: frozenset(targets) for label, targets
                        in recorder.invoke_targets.items()},
        halt_values=frozenset(recorder.halt_values),
        steps=steps, elapsed=elapsed)
