"""Abstract garbage collection for OO k-CFA — the paper's §8
hypothesis, implemented.

    "The abstract semantics for Featherweight Java make it possible to
     adapt abstract garbage collection to the static analysis of
     object-oriented programs.  We hypothesize that its benefits for
     speed and precision will carry over."

This module adapts ΓCFA to the Figure 9 semantics: the shared naive
driver (:func:`~repro.analysis.engine.run_naive`) with per-state
stores, collecting every store down to the addresses
reachable from the configuration's roots before it expands.  Roots are
the binding environment's range plus the continuation pointer;
abstract objects reach their field addresses; abstract continuations
reach their saved environment and the rest of the continuation chain.

``analyze_fj_kcfa_gc`` mirrors :func:`repro.fj.kcfa.analyze_fj_kcfa`'s
result API, so the benchmark harness can compare collected vs.
uncollected directly (``benchmarks/bench_abstract_gc.py``).
"""

from __future__ import annotations

from typing import Iterable

from repro.analysis.domains import FrozenStore
from repro.analysis.engine import EngineOptions, run_naive
from repro.fj.class_table import FJProgram
from repro.fj.kcfa import (
    AKont, AObj, FJConfig, FJKCFAMachine, FJResult, HALT_PTR,
    _FJRecorder, fj_result_from_run,
)
from repro.util.budget import Budget

AbsAddr = tuple


def config_roots(config: FJConfig) -> set[AbsAddr]:
    """Addresses directly referenced by an FJ configuration."""
    roots = {addr for _name, addr in config.benv.items()}
    if config.kont_ptr is not HALT_PTR:
        roots.add(config.kont_ptr)
    return roots


def value_addresses(value) -> Iterable[AbsAddr]:
    """Addresses an abstract FJ value can reach in one step."""
    if isinstance(value, AObj):
        for _field, addr in value.benv.items():
            yield addr
    elif isinstance(value, AKont):
        for _name, addr in value.benv.items():
            yield addr
        if value.kont_ptr is not HALT_PTR:
            yield value.kont_ptr


def reachable_addresses(roots: set[AbsAddr], store) -> set[AbsAddr]:
    seen: set[AbsAddr] = set()
    frontier = list(roots)
    while frontier:
        addr = frontier.pop()
        if addr in seen:
            continue
        seen.add(addr)
        for value in store.get(addr):
            for reached in value_addresses(value):
                if reached not in seen:
                    frontier.append(reached)
    return seen


def collect(config: FJConfig, store: FrozenStore) -> FrozenStore:
    """Restrict *store* to what *config* can reach."""
    live = reachable_addresses(config_roots(config), store)
    return FrozenStore((addr, values) for addr, values in store.items()
                       if addr in live)


def analyze_fj_kcfa_gc(program: FJProgram, k: int = 1,
                       tick_policy: str = "invocation",
                       budget: Budget | None = None,
                       plain: bool = False) -> FJResult:
    """OO k-CFA with abstract garbage collection at every transition."""
    from repro.analysis.interning import PlainTable
    run = run_naive(
        FJKCFAMachine(program, k, tick_policy), _FJRecorder(),
        EngineOptions(budget=budget, collect=collect,
                      table_factory=PlainTable if plain else None))
    return fj_result_from_run(run, program, "FJ-k-CFA+GC", k,
                              tick_policy)
