"""The Featherweight Java type system (Igarashi, Pierce, Wadler 2001).

The paper's substrate is *typed* FJ; this module implements the typing
rules, adapted to our A-normal statement form:

* field and method type lookup through the hierarchy,
* method override compatibility (same signature as the overridden
  method — FJ's invariant overriding),
* constructor typing (parameters must agree with the field chain),
* statement/expression typing with subsumption,
* cast classification: upcasts, downcasts, and *stupid* casts (between
  unrelated classes, which FJ's type system famously flags but
  permits so that subject reduction holds).

``typecheck_program`` returns a :class:`TypeReport` listing every
error and every stupid-cast warning.  The class table's structural
validation (well-founded hierarchy, constructor wiring) already runs
at parse time; this pass adds the *type* discipline on top.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.fj.class_table import FJProgram
from repro.fj.syntax import (
    Assign, Cast, FieldAccess, Invoke, Method, New, OBJECT, Return,
    VarExp,
)


@dataclass
class TypeReport:
    """Outcome of type checking; falsy iff errors were found."""

    errors: list[str] = field(default_factory=list)
    warnings: list[str] = field(default_factory=list)
    checked_methods: int = 0

    def __bool__(self) -> bool:
        return not self.errors

    def summary(self) -> str:
        status = "WELL-TYPED" if self else \
            f"{len(self.errors)} TYPE ERROR(S)"
        extra = f", {len(self.warnings)} warning(s)" if self.warnings \
            else ""
        return f"{status} ({self.checked_methods} methods{extra})"


class TypeChecker:
    """Checks one program against the FJ typing rules."""

    def __init__(self, program: FJProgram):
        self.program = program
        self.report = TypeReport()

    # -- auxiliary lookups ------------------------------------------------

    def is_type(self, name: str) -> bool:
        return name in self.program.by_name

    def field_type(self, classname: str, fieldname: str) -> str | None:
        """The declared type of a field, walking up the hierarchy."""
        cursor = classname
        while cursor:
            cls = self.program.by_name[cursor]
            for ftype, fname in cls.fields:
                if fname == fieldname:
                    return ftype
            cursor = cls.superclass
        return None

    def method_signature(self, classname: str, method: str
                         ) -> tuple[tuple[str, ...], str] | None:
        """(parameter types, return type) via dynamic lookup."""
        found = self.program.lookup_method(classname, method)
        if found is None:
            return None
        return (tuple(ptype for ptype, _name in found.params),
                found.ret_type)

    def assignable(self, source: str, target: str) -> bool:
        """Subsumption: a *source* value may flow where *target* is
        expected."""
        return self.program.is_subclass(source, target)

    # -- the checking pass ----------------------------------------------------

    def check(self) -> TypeReport:
        for cls in self.program.classes:
            self._check_constructor(cls)
            for method in cls.methods:
                self._check_override(cls, method)
                self._check_method(cls.name, method)
        return self.report

    def _error(self, where: str, message: str) -> None:
        self.report.errors.append(f"{where}: {message}")

    def _warn(self, where: str, message: str) -> None:
        self.report.warnings.append(f"{where}: {message}")

    def _check_constructor(self, cls) -> None:
        ctor = cls.konstructor
        where = f"{cls.name} constructor"
        for ptype, pname in ctor.params:
            if not self.is_type(ptype):
                self._error(where, f"unknown parameter type {ptype}")
        param_types = dict(
            (pname, ptype) for ptype, pname in ctor.params)
        # every field must receive a subtype of its declared type
        for fieldname, param_index in \
                self.program.ctor_wiring[cls.name]:
            declared = self.field_type(cls.name, fieldname)
            _ptype, pname = ctor.params[param_index]
            provided = param_types[pname]
            if declared and not self.assignable(provided, declared):
                self._error(
                    where,
                    f"field {fieldname}: expected {declared}, "
                    f"constructor supplies {provided}")
        for ftype, fname in cls.fields:
            if not self.is_type(ftype):
                self._error(where, f"unknown field type {ftype} "
                                   f"for {fname}")

    def _check_override(self, cls, method: Method) -> None:
        """FJ overriding: identical parameter and return types."""
        inherited = None
        cursor = cls.superclass
        while cursor:
            inherited = self.program.by_name[cursor].method(method.name)
            if inherited is not None:
                break
            cursor = self.program.by_name[cursor].superclass
        if inherited is None:
            return
        where = f"{cls.name}.{method.name}"
        own_sig = (tuple(t for t, _n in method.params),
                   method.ret_type)
        super_sig = (tuple(t for t, _n in inherited.params),
                     inherited.ret_type)
        if own_sig != super_sig:
            self._error(
                where,
                f"invalid override: {own_sig} does not match the "
                f"inherited signature {super_sig}")

    def _check_method(self, classname: str, method: Method) -> None:
        self.report.checked_methods += 1
        where = f"{classname}.{method.name}"
        env: dict[str, str] = {"this": classname}
        for ptype, pname in method.params:
            if not self.is_type(ptype):
                self._error(where, f"unknown parameter type {ptype}")
                ptype = OBJECT
            env[pname] = ptype
        for ltype, lname in method.locals:
            if not self.is_type(ltype):
                self._error(where, f"unknown local type {ltype}")
                ltype = OBJECT
            env[lname] = ltype
        if not self.is_type(method.ret_type):
            self._error(where, f"unknown return type "
                               f"{method.ret_type}")
        for stmt in method.body:
            if isinstance(stmt, Return):
                actual = env[stmt.var]
                if self.is_type(method.ret_type) and \
                        not self.assignable(actual, method.ret_type):
                    self._error(
                        where,
                        f"return of {actual} where {method.ret_type} "
                        "expected")
                continue
            exp_type = self._type_of(where, stmt, env)
            if self._is_anf_temp(stmt.var):
                # A-normalization temps are assigned exactly once;
                # infer their type from that assignment instead of
                # trusting the synthesized Object declaration.
                if exp_type is not None:
                    env[stmt.var] = exp_type
                continue
            target = env[stmt.var]
            if exp_type is not None and \
                    not self.assignable(exp_type, target):
                self._error(
                    where,
                    f"assignment of {exp_type} to {stmt.var} "
                    f"(declared {target}) at statement {stmt.label}")

    @staticmethod
    def _is_anf_temp(name: str) -> bool:
        return name.startswith("t$")

    def _type_of(self, where: str, stmt: Assign,
                 env: dict[str, str]) -> str | None:
        exp = stmt.exp
        if isinstance(exp, VarExp):
            return env[exp.name]
        if isinstance(exp, FieldAccess):
            target = env[exp.target]
            ftype = self.field_type(target, exp.fieldname)
            if ftype is None:
                self._error(
                    where,
                    f"type {target} has no field {exp.fieldname} "
                    f"(statement {stmt.label})")
            return ftype
        if isinstance(exp, Invoke):
            target = env[exp.target]
            signature = self.method_signature(target, exp.method)
            if signature is None:
                self._error(
                    where,
                    f"type {target} has no method {exp.method} "
                    f"(statement {stmt.label})")
                return None
            param_types, ret_type = signature
            if len(param_types) != len(exp.args):
                self._error(
                    where,
                    f"{target}.{exp.method} expects "
                    f"{len(param_types)} argument(s), got "
                    f"{len(exp.args)}")
                return ret_type
            for expected, arg in zip(param_types, exp.args):
                actual = env[arg]
                if not self.assignable(actual, expected):
                    self._error(
                        where,
                        f"argument {arg}: {actual} where {expected} "
                        f"expected (statement {stmt.label})")
            return ret_type
        if isinstance(exp, New):
            ctor = self.program.by_name[exp.classname].konstructor
            for (expected, _pname), arg in zip(ctor.params, exp.args):
                actual = env[arg]
                if self.is_type(expected) and \
                        not self.assignable(actual, expected):
                    self._error(
                        where,
                        f"constructor argument {arg}: {actual} where "
                        f"{expected} expected (statement "
                        f"{stmt.label})")
            return exp.classname
        if isinstance(exp, Cast):
            source = env[exp.target]
            target = exp.classname
            if self.assignable(source, target):
                pass  # upcast: always fine
            elif self.assignable(target, source):
                pass  # downcast: checked at runtime
            else:
                # FJ's famous "stupid cast" — statically unrelated
                self._warn(
                    where,
                    f"stupid cast from {source} to {target} "
                    f"(statement {stmt.label})")
            return target
        raise TypeError(f"not an expression: {exp!r}")


def typecheck_program(program: FJProgram) -> TypeReport:
    """Type-check an FJ program; returns the report."""
    return TypeChecker(program).check()
