"""m-CFA for Featherweight Java — the paper's §5 "exploiting"
direction closed over the object fragment.

Section 5 derives m-CFA by transplanting the OO environment
representation onto closures: one base context per frame, free
variables copied in.  This module transplants it *back*: the flat FJ
machine (:class:`~repro.fj.poly.FJFlatMachine`) with the
:class:`~repro.analysis.policies.FJStack` policy —

* contexts are the top **m stack frames** (call-site labels pushed on
  the caller's *entry* context, restored on return);
* ``this`` is re-bound by **copying the receiver's fields** into the
  entry context, the §5.2 flat-closure move with an object's fields
  playing the free variables, so every address a method body touches
  shares one base context (§4.4's invariant).

Complexity is polynomial for any fixed m: configurations are
|Stmt| × |Label|^m and the store lattice has height
|Name| × |Label|^m × |Val|.  Before the kernel refactor this analysis
would have been a ninth hand-copied machine; now it is one policy
value (see :mod:`repro.analysis.policies`) plus this wrapper.
"""

from __future__ import annotations

from repro.analysis.policies import FJStack
from repro.fj.class_table import FJProgram
from repro.fj.kcfa import FJResult
from repro.fj.poly import FJFlatMachine, run_flat_policy
from repro.errors import UsageError
from repro.util.budget import Budget


def analyze_fj_mcfa(program: FJProgram, m: int = 1,
                    budget: Budget | None = None,
                    plain: bool = False,
                    specialized: bool = True) -> FJResult:
    """Run FJ m-CFA (stack-frame contexts, field copying) to fixpoint."""
    if m < 0:
        raise UsageError(f"m must be non-negative, got {m}")
    return run_flat_policy(FJFlatMachine(program, FJStack(m)),
                           "FJ-m-CFA", m, budget, plain, specialized)
