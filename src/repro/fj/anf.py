"""Surface expression trees and A-normalization for Featherweight Java.

The parser (:mod:`repro.fj.parser`) accepts nested expressions —
``return f.foo(b.bar());`` — but the paper's semantics work on
A-Normal Featherweight Java, where every argument is atomically
evaluable.  :func:`normalize_method` introduces fresh ``Object``-typed
temporaries and splits nested expressions into statement sequences,
reproducing the paper's example::

    return f.foo(b.bar());
      ==>
    B b1 = b.bar();  F f1 = f.foo(b1);  return f1;

Labels are assigned program-wide by a shared counter, so they are
unique across methods (the machines key continuations by label-derived
times).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Union

from repro.fj.syntax import (
    Assign, Cast, Exp, FieldAccess, Invoke, Method, New,
    Return, Stmt, VarExp,
)

# -- surface (possibly nested) expressions -------------------------------


@dataclass(frozen=True, slots=True)
class SVar:
    name: str


@dataclass(frozen=True, slots=True)
class SField:
    target: "SExp"
    fieldname: str


@dataclass(frozen=True, slots=True)
class SInvoke:
    target: "SExp"
    method: str
    args: tuple["SExp", ...]


@dataclass(frozen=True, slots=True)
class SNew:
    classname: str
    args: tuple["SExp", ...]


@dataclass(frozen=True, slots=True)
class SCast:
    classname: str
    target: "SExp"


SExp = Union[SVar, SField, SInvoke, SNew, SCast]


@dataclass(frozen=True, slots=True)
class SAssign:
    var: str
    exp: SExp


@dataclass(frozen=True, slots=True)
class SReturn:
    exp: SExp


SStmt = Union[SAssign, SReturn]


@dataclass(frozen=True, slots=True)
class SurfaceMethod:
    ret_type: str
    name: str
    params: tuple[tuple[str, str], ...]
    locals: tuple[tuple[str, str], ...]
    body: tuple[SStmt, ...]


class LabelCounter:
    """Program-wide statement label allocator."""

    def __init__(self):
        self._labels = itertools.count()

    def fresh(self) -> int:
        return next(self._labels)


class _Normalizer:
    def __init__(self, labels: LabelCounter, taken: set[str]):
        self.labels = labels
        self.taken = set(taken)
        self.temps: list[tuple[str, str]] = []
        self.statements: list[Stmt] = []
        self._counter = itertools.count(1)

    def fresh_temp(self) -> str:
        while True:
            name = f"t${next(self._counter)}"
            if name not in self.taken:
                self.taken.add(name)
                self.temps.append(("Object", name))
                return name

    def emit(self, var: str, exp: Exp) -> None:
        self.statements.append(Assign(var, exp, self.labels.fresh()))

    def atomize(self, exp: SExp) -> str:
        """Reduce *exp* to a variable name, emitting statements."""
        if isinstance(exp, SVar):
            return exp.name
        temp = self.fresh_temp()
        self.emit(temp, self.flatten(exp))
        return temp

    def flatten(self, exp: SExp) -> Exp:
        """One level of *exp* with atomic sub-parts."""
        if isinstance(exp, SVar):
            return VarExp(exp.name)
        if isinstance(exp, SField):
            return FieldAccess(self.atomize(exp.target), exp.fieldname)
        if isinstance(exp, SInvoke):
            target = self.atomize(exp.target)
            args = tuple(self.atomize(arg) for arg in exp.args)
            return Invoke(target, exp.method, args)
        if isinstance(exp, SNew):
            args = tuple(self.atomize(arg) for arg in exp.args)
            return New(exp.classname, args)
        if isinstance(exp, SCast):
            return Cast(exp.classname, self.atomize(exp.target))
        raise TypeError(f"not a surface expression: {exp!r}")


def normalize_method(surface: SurfaceMethod, labels: LabelCounter,
                     owner: str) -> Method:
    """Lower one surface method to A-normal form."""
    taken = {name for _, name in surface.params}
    taken.update(name for _, name in surface.locals)
    taken.add("this")
    normalizer = _Normalizer(labels, taken)
    for stmt in surface.body:
        if isinstance(stmt, SAssign):
            flat = normalizer.flatten(stmt.exp)
            normalizer.emit(stmt.var, flat)
        elif isinstance(stmt, SReturn):
            name = normalizer.atomize(stmt.exp)
            normalizer.statements.append(
                Return(name, labels.fresh()))
        else:
            raise TypeError(f"not a surface statement: {stmt!r}")
    return Method(
        ret_type=surface.ret_type, name=surface.name,
        params=surface.params,
        locals=surface.locals + tuple(normalizer.temps),
        body=tuple(normalizer.statements), owner=owner)
