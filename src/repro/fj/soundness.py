"""Machine-checked soundness for the FJ analyses (paper §3.5, for §4).

Strategy mirrors :mod:`repro.analysis.abstraction`: run the concrete FJ
machine with trace and write-log recording, abstract every recorded
state and every store write with α, and assert containment in the
analysis result.  Because the FJ store is written more than once per
address (locals are reassigned), the *write log* — not the final store
— is what gets checked: every value ever stored at an address must be
covered by the abstract store at the abstracted address.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.domains import first_k
from repro.fj.concrete import (
    ConcreteAddr, FJConcreteResult, FJKont, FJObjectVal, HALT,
)
from repro.fj.kcfa import (
    AKont, AObj, FJBEnv, FJConfig, FJResult, HALT_PTR,
)
from repro.fj.poly import PObj


@dataclass
class FJSoundnessReport:
    analysis: str
    states_checked: int = 0
    writes_checked: int = 0
    violations: list[str] = field(default_factory=list)

    def __bool__(self) -> bool:
        return not self.violations

    def summary(self) -> str:
        status = "SOUND" if self else f"{len(self.violations)} VIOLATIONS"
        return (f"{self.analysis}: {status} "
                f"({self.states_checked} states, "
                f"{self.writes_checked} writes)")


def _alpha_time(k: int, time: tuple) -> tuple:
    return first_k(k, time)


def _alpha_addr(k: int, addr: ConcreteAddr) -> tuple:
    name, (_serial, time) = addr
    return (name, _alpha_time(k, time))


def check_fj_soundness(result: FJResult,
                       concrete: FJConcreteResult) -> FJSoundnessReport:
    """Check a map-based FJ k-CFA result against a concrete run.

    The concrete run must use the same ``tick_policy`` as the analysis
    and must have been recorded (``record_trace=True``).
    """
    k = result.parameter
    report = FJSoundnessReport(analysis=f"FJ-k-CFA(k={k})")

    def alpha_benv(items) -> FJBEnv:
        return FJBEnv((name, _alpha_addr(k, addr))
                      for name, addr in items)

    def alpha_kont_ptr(ptr):
        if ptr is HALT:
            return HALT_PTR
        return _alpha_addr(k, ptr)

    def alpha_value(value):
        if isinstance(value, FJObjectVal):
            return AObj(value.classname, value.site,
                        alpha_benv(value.fields))
        if isinstance(value, FJKont):
            return AKont(value.var, value.stmt, alpha_benv(value.benv),
                         _alpha_time(k, value.saved_time),
                         alpha_kont_ptr(value.kont_ptr))
        raise TypeError(f"unexpected concrete value {value!r}")

    for entry in concrete.trace:
        report.states_checked += 1
        config = FJConfig(entry.stmt, alpha_benv(entry.benv),
                          alpha_kont_ptr(entry.kont_ptr),
                          _alpha_time(k, entry.time))
        if config not in result.configs:
            report.violations.append(
                f"unreached config at statement {entry.stmt.label} "
                f"time {config.time}")
    for addr, value in concrete.writes:
        report.writes_checked += 1
        abs_addr = _alpha_addr(k, addr)
        if alpha_value(value) not in result.store.get(abs_addr):
            report.violations.append(
                f"store gap at {abs_addr}: {value!r} not covered")
    if alpha_value(concrete.value) not in result.halt_values:
        report.violations.append(
            f"result {concrete.value!r} not covered by halt values")
    return report


def check_fj_poly_soundness(result: FJResult,
                            concrete: FJConcreteResult
                            ) -> FJSoundnessReport:
    """Check the collapsed machine: store writes and the final value.

    Configurations are skipped (the collapsed representation has no
    per-state binding environments to compare); covering every store
    write plus the result is the meaningful containment.
    """
    k = result.parameter
    report = FJSoundnessReport(analysis=f"FJ-poly-k-CFA(k={k})")

    def alpha_value(value):
        if isinstance(value, FJObjectVal):
            alloc_time = ()
            if value.fields:
                _name, (_serial, time) = value.fields[0][1]
                alloc_time = _alpha_time(k, time)
                return PObj(value.classname, value.site, alloc_time)
            return None  # field-less: site check below
        if isinstance(value, FJKont):
            return None  # representation differs; skip
        raise TypeError(f"unexpected concrete value {value!r}")

    for addr, value in concrete.writes:
        if isinstance(value, FJKont):
            continue
        report.writes_checked += 1
        abs_addr = _alpha_addr(k, addr)
        if abs_addr[0] == "%entry":
            # The collapsed machine bootstraps the entry object at
            # ("this", ()) instead of the synthetic %entry address.
            abs_addr = ("this", abs_addr[1])
        abstract = alpha_value(value)
        candidates = result.store.get(abs_addr)
        if abstract is not None:
            if abstract in candidates:
                continue
            report.violations.append(
                f"store gap at {abs_addr}: {value!r} not covered")
        else:
            # Field-less object: any PObj with the same class and site
            # covers it (the collapsed machine keeps finer contexts).
            if not any(isinstance(cand, PObj)
                       and cand.classname == value.classname
                       and cand.site == value.site
                       for cand in candidates):
                report.violations.append(
                    f"store gap at {abs_addr}: {value!r} not covered")
    covered = any(isinstance(cand, PObj)
                  and cand.classname == concrete.value.classname
                  and cand.site == concrete.value.site
                  for cand in result.halt_values) \
        if isinstance(concrete.value, FJObjectVal) else True
    if not covered:
        report.violations.append(
            f"result {concrete.value!r} not covered by halt values")
    return report
