"""Hand-written Featherweight Java example programs.

Used by tests, examples and documentation.  Each entry is a source
string suitable for :func:`repro.fj.parser.parse_fj`; entry points are
``Main.main`` unless stated otherwise.
"""

from __future__ import annotations

#: Pairs à la the original FJ paper: construct, project, swap.
PAIRS = """
class Pair extends Object {
  Object fst;
  Object snd;
  Pair(Object f, Object s) { super(); this.fst = f; this.snd = s; }
  Object getFst() { return this.fst; }
  Object getSnd() { return this.snd; }
  Pair swap() {
    return new Pair(this.snd, this.fst);
  }
}
class A extends Object { A() { super(); } }
class B extends Object { B() { super(); } }
class Main extends Object {
  Main() { super(); }
  Object main() {
    Pair p;
    Pair q;
    Object r;
    p = new Pair(new A(), new B());
    q = p.swap();
    r = q.getFst();
    return r;
  }
}
"""

#: Dynamic dispatch: the classic animals hierarchy.
DISPATCH = """
class Animal extends Object {
  Animal() { super(); }
  Object speak() { return new Silence(); }
}
class Dog extends Animal {
  Dog() { super(); }
  Object speak() { return new Bark(); }
}
class Cat extends Animal {
  Cat() { super(); }
  Object speak() { return new Meow(); }
}
class Silence extends Object { Silence() { super(); } }
class Bark extends Object { Bark() { super(); } }
class Meow extends Object { Meow() { super(); } }
class Main extends Object {
  Main() { super(); }
  Object pet(Animal a) { return a.speak(); }
  Object main() {
    Object x;
    Object y;
    x = this.pet(new Dog());
    y = this.pet(new Cat());
    return y;
  }
}
"""

#: A linked list with map via subclass dispatch (no lambdas in FJ).
LINKED_LIST = """
class List extends Object {
  List() { super(); }
  List wrapAll(Wrapper w) { return this; }
}
class Nil extends List {
  Nil() { super(); }
  List wrapAll(Wrapper w) { return this; }
}
class Cons extends List {
  Object head;
  List tail;
  Cons(Object h, List t) { super(); this.head = h; this.tail = t; }
  List wrapAll(Wrapper w) {
    return new Cons(w.wrap(this.head), this.tail.wrapAll(w));
  }
}
class Wrapper extends Object {
  Wrapper() { super(); }
  Object wrap(Object x) { return new Box(x); }
}
class Box extends Object {
  Object contents;
  Box(Object c) { super(); this.contents = c; }
}
class Elem extends Object { Elem() { super(); } }
class Main extends Object {
  Main() { super(); }
  Object main() {
    List xs;
    List ys;
    xs = new Cons(new Elem(), new Cons(new Elem(), new Nil()));
    ys = xs.wrapAll(new Wrapper());
    return ys;
  }
}
"""

#: The paper's running A-normalization example (§4): the surface
#: parser accepts the nested call and ANF splits it.
ANF_EXAMPLE = """
class B extends Object {
  B() { super(); }
  Object bar() { return new B(); }
}
class F extends Object {
  F() { super(); }
  Object foo(Object b1) { return b1; }
}
class Main extends Object {
  Main() { super(); }
  Object main() {
    F f;
    B b;
    f = new F();
    b = new B();
    return f.foo(b.bar());
  }
}
"""

#: Receiver-polymorphic identity — the OO cousin of the §6 example.
OO_IDENTITY = """
class Id extends Object {
  Id() { super(); }
  Object identity(Object x) { return x; }
}
class A extends Object { A() { super(); } }
class B extends Object { B() { super(); } }
class Main extends Object {
  Main() { super(); }
  Object main() {
    Id id;
    Object a;
    Object b;
    id = new Id();
    a = id.identity(new A());
    b = id.identity(new B());
    return b;
  }
}
"""

ALL_EXAMPLES = {
    "pairs": PAIRS,
    "dispatch": DISPATCH,
    "linked_list": LINKED_LIST,
    "anf_example": ANF_EXAMPLE,
    "oo_identity": OO_IDENTITY,
}
