"""Featherweight Java: syntax, parser, concrete and abstract semantics.

The OO side of the paradox (paper §4): the same k-CFA specification
that is exponential for CPS is polynomial here, because object records
close all their fields in one context.
"""

from repro.fj.syntax import (
    Assign, Cast, ClassDef, FieldAccess, Invoke, Konstructor, Method,
    New, OBJECT, Return, VarExp,
)
from repro.fj.class_table import FJProgram
from repro.fj.parser import parse_fj
from repro.fj.concrete import (
    FJConcreteResult, FJKont, FJMachine, FJObjectVal, HALT, run_fj,
)
from repro.fj.kcfa import (
    AKont, AObj, FJBEnv, FJConfig, FJKCFAMachine, FJResult, HALT_PTR,
    analyze_fj_kcfa,
)
from repro.fj.poly import FJPolyMachine, PConfig, PKont, PObj, \
    analyze_fj_poly
from repro.fj.gc import analyze_fj_kcfa_gc
from repro.fj.typecheck import TypeReport, typecheck_program
from repro.fj.examples import ALL_EXAMPLES

__all__ = [
    "Assign", "Cast", "ClassDef", "FieldAccess", "Invoke",
    "Konstructor", "Method", "New", "OBJECT", "Return", "VarExp",
    "FJProgram", "parse_fj",
    "FJConcreteResult", "FJKont", "FJMachine", "FJObjectVal", "HALT",
    "run_fj",
    "AKont", "AObj", "FJBEnv", "FJConfig", "FJKCFAMachine", "FJResult",
    "HALT_PTR", "analyze_fj_kcfa",
    "FJPolyMachine", "PConfig", "PKont", "PObj", "analyze_fj_poly",
    "analyze_fj_kcfa_gc", "TypeReport", "typecheck_program",
    "ALL_EXAMPLES",
]
