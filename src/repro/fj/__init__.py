"""Featherweight Java: syntax, parser, concrete and abstract semantics.

The OO side of the paradox (paper §4): the same k-CFA specification
that is exponential for CPS is polynomial here, because object records
close all their fields in one context.

Attributes resolve lazily (PEP 562, like :mod:`repro` and
:mod:`repro.analysis`): a registry factory importing one FJ analyzer
must not load all of them.
"""

_LAZY = {
    **{name: "repro.fj.syntax" for name in (
        "Assign", "Cast", "ClassDef", "FieldAccess", "Invoke",
        "Konstructor", "Method", "New", "OBJECT", "Return",
        "VarExp")},
    "FJProgram": "repro.fj.class_table",
    "parse_fj": "repro.fj.parser",
    **{name: "repro.fj.concrete" for name in (
        "FJConcreteResult", "FJKont", "FJMachine", "FJObjectVal",
        "HALT", "run_fj")},
    **{name: "repro.fj.kcfa" for name in (
        "AKont", "AObj", "FJBEnv", "FJConfig", "FJKCFAMachine",
        "FJResult", "HALT_PTR", "analyze_fj_kcfa")},
    **{name: "repro.fj.poly" for name in (
        "FJFlatMachine", "FJPolyMachine", "PConfig", "PKont", "PObj",
        "analyze_fj_poly")},
    "analyze_fj_mcfa": "repro.fj.mcfa",
    "analyze_fj_hybrid": "repro.fj.hybrid",
    "analyze_fj_obj": "repro.fj.hybrid",
    "analyze_fj_kcfa_gc": "repro.fj.gc",
    "TypeReport": "repro.fj.typecheck",
    "typecheck_program": "repro.fj.typecheck",
    "ALL_EXAMPLES": "repro.fj.examples",
}

__all__ = list(_LAZY)

from repro.util.lazymod import lazy_attrs  # noqa: E402

__getattr__, __dir__ = lazy_attrs(__name__, globals(), _LAZY)
