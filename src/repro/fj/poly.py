"""The flat-environment FJ machine — §4.4's polynomial collapse,
generalized over context policies.

Inspecting the Figure 9 semantics shows that every address in the range
of a binding environment shares one allocation time, so environments
can be replaced by that time with no loss of precision: ``BEnv ≅ Time``.
Objects become ``(class, site, base-time)`` and the system space
becomes polynomial in program size for fixed k.

:class:`FJFlatMachine` implements that collapsed machine once, with
every context decision delegated to an
:class:`~repro.analysis.policies.FJContextPolicy`:

* :class:`~repro.analysis.policies.FJCallSite` reproduces the
  historical ``fj-poly`` analysis (both §4.3/§4.5 ticking policies);
* :class:`~repro.analysis.policies.FJStack` is m-CFA transplanted to
  FJ (:mod:`repro.fj.mcfa`): top-m stack frames and ``this`` re-bound
  by copying the receiver's fields — flat-closure copying with fields
  as the free variables;
* :class:`~repro.analysis.policies.FJHybrid` is the object-/call-site
  sensitivity ladder (:mod:`repro.fj.hybrid`).

Receiver-*sensitive* policies (the latter two) take a per-receiver
invoke path: each dispatching object gets its own entry context.  The
receiver-insensitive path is byte-identical to the pre-kernel machine
(pinned by the golden suite).

Two deltas against the faithful map-based machine, both noted in the
original DESIGN.md:

* ``this`` is bound by *copy* into ``(this, t̂')`` rather than by
  aliasing the receiver's address — required for the uniform-time
  invariant, and reaching the same fixpoint (the copy is re-done when
  the source grows, via dependency tracking);
* field-less classes keep their allocation context (the map-based
  encoding collapses their empty records), so the collapsed machine is
  equal on classes with fields and finer on field-less ones.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.domains import AbsStore
from repro.analysis.engine import EngineOptions, codegen_stage, \
    machine_path, run_single_store, specialize
from repro.analysis.policies import FJCallSite, FJContextPolicy
from repro.fj.class_table import FJProgram
from repro.fj.concrete import TICK_POLICIES
from repro.fj.kcfa import (
    HALT_PTR, FJResult, _FJRecorder, fj_result_from_run,
)
from repro.fj.syntax import (
    Assign, Cast, FieldAccess, Invoke, Method, New, Return, Stmt,
    VarExp,
)
from repro.errors import UsageError
from repro.util.budget import Budget

AbsTime = tuple
AbsAddr = tuple[str, AbsTime]


@dataclass(frozen=True, slots=True)
class PObj:
    """A collapsed abstract object: class + site + base time."""

    classname: str
    site: int
    time: AbsTime

    def __repr__(self) -> str:
        return f"obj[{self.classname}@{self.site}]{list(self.time)}"


@dataclass(frozen=True, slots=True)
class PKont:
    """A collapsed continuation: the caller is its entry time."""

    var: str
    stmt: Stmt
    caller_entry: AbsTime
    saved_time: AbsTime
    kont_ptr: object


class PConfig:
    """``(stmt, t̂_entry, p̂κ, t̂_now)`` — β̂ collapsed to its time.

    Hash cached at construction; the engine hashes configurations on
    every worklist and dependency operation.
    """

    __slots__ = ("stmt", "entry", "kont_ptr", "time", "_hash")

    def __init__(self, stmt: Stmt, entry: AbsTime, kont_ptr,
                 time: AbsTime):
        self.stmt = stmt
        self.entry = entry
        self.kont_ptr = kont_ptr
        self.time = time
        self._hash = hash((stmt, entry, kont_ptr, time))

    def __hash__(self) -> int:
        return self._hash

    def __eq__(self, other) -> bool:
        return self is other or (
            type(other) is PConfig and self.stmt == other.stmt
            and self.entry == other.entry
            and self.kont_ptr == other.kont_ptr
            and self.time == other.time)

    def __repr__(self) -> str:
        return (f"PConfig(stmt={self.stmt!r}, entry={self.entry!r}, "
                f"kont_ptr={self.kont_ptr!r}, time={self.time!r})")


class FJFlatMachine:
    """The collapsed abstract transition relation, policy-driven."""

    def __init__(self, program: FJProgram, policy: FJContextPolicy):
        self.program = program
        self.policy = policy
        # The historical collapse stores a field at (fieldname, time),
        # sharing the namespace of variables at the same time.  The
        # receiver-sensitive policies tag field addresses ("f@f" —
        # '@' cannot appear in an FJ identifier) because the rebind
        # mode copies fields to the *method entry* context, exactly
        # where parameters and locals bind; an untagged copy would
        # merge a parameter named like a field into field reads.
        self._field_key = (
            (lambda fieldname: f"{fieldname}@f")
            if policy.receiver_sensitive else
            (lambda fieldname: fieldname))

    def initial(self, store: AbsStore) -> PConfig:
        program = self.program
        start = self.policy.initial()
        entry_obj = PObj(program.entry_class, -1, start)
        store.join(("this", start), {entry_obj})
        method = program.lookup_method(program.entry_class,
                                       program.entry_method)
        return PConfig(method.body[0], start, HALT_PTR, start)

    # -- the engine's Machine protocol ---------------------------------

    def boot(self, store: AbsStore) -> PConfig:
        """Adopt the store's value table and seed the entry object."""
        self.table = store.table
        return self.initial(store)

    def step(self, config: PConfig, store, reads: set[AbsAddr],
             recorder: _FJRecorder) -> list[tuple[PConfig, list]]:
        """One transfer-function application, in engine form."""
        return self.transitions(config, store, reads, recorder)

    # -- transitions ------------------------------------------------------

    def transitions(self, config: PConfig, store: AbsStore,
                    reads: set[AbsAddr], recorder: _FJRecorder
                    ) -> list[tuple[PConfig, list]]:
        stmt, entry = config.stmt, config.entry
        kont_ptr, now = config.kont_ptr, config.time
        if isinstance(stmt, Return):
            return self._return(stmt, entry, kont_ptr, now, store,
                                reads, recorder)
        exp = stmt.exp
        if isinstance(exp, VarExp):
            source = (exp.name, entry)
            reads.add(source)
            values = store.get_mask(source)
            joins = [((stmt.var, entry), values)] if values else []
            return self._advance(stmt, entry, kont_ptr, now, joins)
        if isinstance(exp, FieldAccess):
            source = (exp.target, entry)
            reads.add(source)
            joins = []
            for value in self.table.decode_iter(store.get_mask(source)):
                if isinstance(value, PObj) and exp.fieldname in \
                        self.program.all_fields(value.classname):
                    addr = (self._field_key(exp.fieldname), value.time)
                    reads.add(addr)
                    field_values = store.get_mask(addr)
                    if field_values:
                        joins.append(((stmt.var, entry), field_values))
            return self._advance(stmt, entry, kont_ptr, now, joins)
        if isinstance(exp, Invoke):
            return self._invoke(stmt, exp, entry, kont_ptr, now, store,
                                reads, recorder)
        if isinstance(exp, New):
            return self._new(stmt, exp, entry, kont_ptr, now, store,
                             reads, recorder)
        if isinstance(exp, Cast):
            source = (exp.target, entry)
            reads.add(source)
            values = store.get_mask(source)
            joins = [((stmt.var, entry), values)] if values else []
            return self._advance(stmt, entry, kont_ptr, now, joins)
        raise TypeError(f"cannot step statement {stmt!r}")

    def _advance(self, stmt: Stmt, entry: AbsTime, kont_ptr,
                 now: AbsTime, joins: list) -> list:
        following = self.program.succ(stmt.label)
        if following is None:
            return []
        succ = PConfig(following, entry, kont_ptr,
                       self.policy.step(stmt.label, now))
        return [(succ, joins)]

    def _return(self, stmt: Return, entry: AbsTime, kont_ptr,
                now: AbsTime, store: AbsStore, reads: set,
                recorder: _FJRecorder) -> list:
        source = (stmt.var, entry)
        reads.add(source)
        values = store.get_mask(source)
        if kont_ptr is HALT_PTR:
            recorder.halt_values |= self.table.decode(values)
            return []
        reads.add(kont_ptr)
        succs = []
        for kont in self.table.decode_iter(store.get_mask(kont_ptr)):
            if not isinstance(kont, PKont):
                continue
            joins = []
            if values:
                joins.append(((kont.var, kont.caller_entry), values))
            new_time = self.policy.ret(stmt.label, now,
                                       kont.saved_time)
            succs.append((PConfig(kont.stmt, kont.caller_entry,
                                  kont.kont_ptr, new_time), joins))
        return succs

    # -- invocation -------------------------------------------------------

    def _invoke(self, stmt: Assign, exp: Invoke, entry: AbsTime,
                kont_ptr, now: AbsTime, store: AbsStore, reads: set,
                recorder: _FJRecorder) -> list:
        receiver_addr = (exp.target, entry)
        reads.add(receiver_addr)
        receivers = store.get_mask(receiver_addr)
        following = self.program.succ(stmt.label)
        if following is None:
            return []
        arg_values = []
        for arg in exp.args:
            addr = (arg, entry)
            reads.add(addr)
            arg_values.append(store.get_mask(addr))
        if self.policy.receiver_sensitive:
            return self._invoke_per_receiver(
                stmt, exp, entry, kont_ptr, now, receivers, arg_values,
                following, store, reads, recorder)
        methods: dict[str, Method] = {}
        for value in self.table.decode_iter(receivers):
            if not isinstance(value, PObj):
                continue
            method = self.program.lookup_method(value.classname,
                                                exp.method)
            if method is not None and \
                    len(method.params) == len(exp.args):
                methods[method.qualified_name] = method
        succs = []
        for qualified_name, method in sorted(methods.items()):
            new_time = self.policy.invoke(stmt.label, now, entry, None)
            kont = PKont(stmt.var, following, entry, now, kont_ptr)
            joins: list = [((qualified_name, new_time),
                            self.table.bit_for(kont))]
            # this is bound by copy, keeping every address at t̂'.
            if receivers:
                joins.append((("this", new_time), receivers))
            self._record_entry(recorder, stmt.label, qualified_name,
                               new_time)
            self._bind_args(joins, method, arg_values, new_time)
            succs.append((PConfig(method.body[0], new_time,
                                  (qualified_name, new_time), new_time),
                          joins))
        return succs

    def _invoke_per_receiver(self, stmt: Assign, exp: Invoke,
                             entry: AbsTime, kont_ptr, now: AbsTime,
                             receivers, arg_values, following,
                             store: AbsStore, reads: set,
                             recorder: _FJRecorder) -> list:
        """One successor per dispatching receiver object: the entry
        context may depend on the receiver (object sensitivity), and
        ``this`` binds per the policy's ``this_mode``."""
        policy = self.policy
        targets = []
        for value in self.table.decode_iter(receivers):
            if not isinstance(value, PObj):
                continue
            method = self.program.lookup_method(value.classname,
                                                exp.method)
            if method is None or len(method.params) != len(exp.args):
                continue
            new_time = policy.invoke(stmt.label, now, entry, value)
            targets.append((method.qualified_name, method, new_time,
                            value))
        succs = []
        for qualified_name, method, new_time, receiver in sorted(
                targets, key=lambda t: (t[0], repr(t[2]), repr(t[3]))):
            kont = PKont(stmt.var, following, entry, now, kont_ptr)
            joins: list = [((qualified_name, new_time),
                            self.table.bit_for(kont))]
            joins.extend(self._bind_this(receiver, new_time, store,
                                         reads))
            self._record_entry(recorder, stmt.label, qualified_name,
                               new_time)
            self._bind_args(joins, method, arg_values, new_time)
            succs.append((PConfig(method.body[0], new_time,
                                  (qualified_name, new_time), new_time),
                          joins))
        return succs

    def _bind_this(self, receiver: PObj, new_time: AbsTime,
                   store: AbsStore, reads: set) -> list:
        """Bind ``this`` for one receiver, per the policy."""
        if self.policy.this_mode == "alias":
            return [(("this", new_time), self.table.bit_for(receiver))]
        # "rebind": flat-closure copying for objects — the receiver is
        # re-based into the entry context and its fields are copied
        # there, so every address the method touches shares one base
        # context.  Sound because FJ fields are constructor-only; the
        # copy re-runs when its source grows (dependency tracking).
        rebased = PObj(receiver.classname, receiver.site, new_time)
        joins = [(("this", new_time), self.table.bit_for(rebased))]
        for fieldname in self.program.all_fields(receiver.classname):
            key = self._field_key(fieldname)
            source = (key, receiver.time)
            reads.add(source)
            copied = store.get_mask(source)
            if copied:
                joins.append(((key, new_time), copied))
        return joins

    def _record_entry(self, recorder: _FJRecorder, label: int,
                      qualified_name: str, new_time: AbsTime) -> None:
        recorder.invoke_targets.setdefault(
            label, set()).add(qualified_name)
        recorder.method_contexts.setdefault(
            qualified_name, set()).add(new_time)

    @staticmethod
    def _bind_args(joins: list, method: Method, arg_values,
                   new_time: AbsTime) -> None:
        for name, values in zip(method.param_names(), arg_values):
            if values:
                joins.append(((name, new_time), values))

    def _new(self, stmt: Assign, exp: New, entry: AbsTime, kont_ptr,
             now: AbsTime, store: AbsStore, reads: set,
             recorder: _FJRecorder) -> list:
        alloc_time = self.policy.step(stmt.label, now)
        arg_values = []
        for arg in exp.args:
            addr = (arg, entry)
            reads.add(addr)
            arg_values.append(store.get_mask(addr))
        joins = []
        for fieldname, param_index in \
                self.program.ctor_wiring[exp.classname]:
            if arg_values[param_index]:
                joins.append(((self._field_key(fieldname), alloc_time),
                              arg_values[param_index]))
        obj = PObj(exp.classname, stmt.label, alloc_time)
        recorder.objects.add(obj)
        joins.append(((stmt.var, entry), self.table.bit_for(obj)))
        following = self.program.succ(stmt.label)
        if following is None:
            return []
        return [(PConfig(following, entry, kont_ptr, alloc_time),
                 joins)]


class FJPolyMachine(FJFlatMachine):
    """The historical §4.4 machine: flat contexts from call-site
    windows, with either of the paper's ticking policies."""

    def __init__(self, program: FJProgram, k: int,
                 tick_policy: str = "invocation"):
        if k < 0:
            raise UsageError(f"k must be non-negative, got {k}")
        if tick_policy not in TICK_POLICIES:
            raise UsageError(f"unknown tick_policy {tick_policy!r}")
        super().__init__(program, FJCallSite(k, tick_policy))
        self.k = k
        self.tick_policy = tick_policy


def run_flat_policy(machine: FJFlatMachine, display: str,
                    parameter: int, budget: Budget | None = None,
                    plain: bool = False,
                    specialized: bool = True,
                    codegen: bool = True) -> FJResult:
    """Drive one flat FJ machine to fixpoint and package the result —
    the single run harness behind every flat-machine analysis
    (``fj-poly``, ``fj-mcfa``, ``fj-hybrid``, ``fj-obj``).

    ``specialized`` routes the machine through the specialization
    stage first: receiver-insensitive context-free policies get the
    per-statement compiled step loop, everything else runs generic.
    ``codegen`` lifts the covered policies one rung further to
    generated source (:mod:`repro.analysis.codegen`); it only engages
    on top of specialization.
    """
    from repro.analysis.interning import PlainTable
    staged = codegen_stage(machine, specialized and codegen)
    machine = staged if staged is not None \
        else specialize(machine, specialized)
    run = run_single_store(
        machine, _FJRecorder(),
        EngineOptions(budget=budget,
                      table_factory=PlainTable if plain else None))
    result = fj_result_from_run(run, machine.program, display,
                                parameter, machine.policy.display)
    result.engine_path = machine_path(machine)
    return result


def analyze_fj_poly(program: FJProgram, k: int = 1,
                    tick_policy: str = "invocation",
                    budget: Budget | None = None,
                    plain: bool = False,
                    specialized: bool = True,
                    codegen: bool = True) -> FJResult:
    """Run the collapsed polynomial OO k-CFA."""
    return run_flat_policy(FJPolyMachine(program, k, tick_policy),
                           "FJ-poly-k-CFA", k, budget, plain,
                           specialized, codegen)
