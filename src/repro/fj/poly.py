"""The §4.4 polynomial collapse of OO k-CFA.

Inspecting the Figure 9 semantics shows that every address in the range
of a binding environment shares one allocation time, so environments
can be replaced by that time with no loss of precision: ``BEnv ≅ Time``.
Objects become ``(class, allocation-time)`` — a base address — and the
system space becomes polynomial in program size for fixed k.

This module implements that collapsed machine directly.  Two deltas
against the faithful map-based machine, both noted in DESIGN.md:

* ``this`` is bound by *copy* into ``(this, t̂')`` rather than by
  aliasing the receiver's address — required for the uniform-time
  invariant, and reaching the same fixpoint (the copy is re-done when
  the source grows, via dependency tracking);
* field-less classes keep their allocation context (the map-based
  encoding collapses their empty records), so the collapsed machine is
  equal on classes with fields and finer on field-less ones.

``analyze_fj_poly`` produces the same :class:`~repro.fj.kcfa.FJResult`
API; the test suite checks agreement with the map-based machine on
class+site projections of every flow set.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.domains import AbsStore, first_k
from repro.analysis.engine import EngineOptions, run_single_store
from repro.fj.class_table import FJProgram
from repro.fj.concrete import TICK_POLICIES
from repro.fj.kcfa import (
    HALT_PTR, FJResult, _FJRecorder, fj_result_from_run,
)
from repro.fj.syntax import (
    Assign, Cast, FieldAccess, Invoke, Method, New, Return, Stmt,
    VarExp,
)
from repro.util.budget import Budget

AbsTime = tuple[int, ...]
AbsAddr = tuple[str, AbsTime]


@dataclass(frozen=True, slots=True)
class PObj:
    """A collapsed abstract object: class + site + base time."""

    classname: str
    site: int
    time: AbsTime

    def __repr__(self) -> str:
        return f"obj[{self.classname}@{self.site}]{list(self.time)}"


@dataclass(frozen=True, slots=True)
class PKont:
    """A collapsed continuation: the caller is its entry time."""

    var: str
    stmt: Stmt
    caller_entry: AbsTime
    saved_time: AbsTime
    kont_ptr: object


@dataclass(frozen=True, slots=True)
class PConfig:
    """``(stmt, t̂_entry, p̂κ, t̂_now)`` — β̂ collapsed to its time."""

    stmt: Stmt
    entry: AbsTime
    kont_ptr: object
    time: AbsTime


class FJPolyMachine:
    """The collapsed (polynomial) abstract transition relation."""

    def __init__(self, program: FJProgram, k: int,
                 tick_policy: str = "invocation"):
        if k < 0:
            raise ValueError(f"k must be non-negative, got {k}")
        if tick_policy not in TICK_POLICIES:
            raise ValueError(f"unknown tick_policy {tick_policy!r}")
        self.program = program
        self.k = k
        self.tick_policy = tick_policy

    def simple_tick(self, label: int, time: AbsTime) -> AbsTime:
        if self.tick_policy == "statement":
            return first_k(self.k, (label, *time))
        return time

    def invoke_tick(self, label: int, time: AbsTime) -> AbsTime:
        return first_k(self.k, (label, *time))

    def initial(self, store: AbsStore) -> PConfig:
        program = self.program
        entry_obj = PObj(program.entry_class, -1, ())
        store.join(("this", ()), {entry_obj})
        method = program.lookup_method(program.entry_class,
                                       program.entry_method)
        return PConfig(method.body[0], (), HALT_PTR, ())

    # -- the engine's Machine protocol ---------------------------------

    def boot(self, store: AbsStore) -> PConfig:
        """Adopt the store's value table and seed the entry object."""
        self.table = store.table
        return self.initial(store)

    def step(self, config: PConfig, store, reads: set[AbsAddr],
             recorder: _FJRecorder) -> list[tuple[PConfig, list]]:
        """One transfer-function application, in engine form."""
        return self.transitions(config, store, reads, recorder)

    # -- transitions ------------------------------------------------------

    def transitions(self, config: PConfig, store: AbsStore,
                    reads: set[AbsAddr], recorder: _FJRecorder
                    ) -> list[tuple[PConfig, list]]:
        stmt, entry = config.stmt, config.entry
        kont_ptr, now = config.kont_ptr, config.time
        if isinstance(stmt, Return):
            return self._return(stmt, entry, kont_ptr, now, store,
                                reads, recorder)
        exp = stmt.exp
        if isinstance(exp, VarExp):
            source = (exp.name, entry)
            reads.add(source)
            values = store.get_mask(source)
            joins = [((stmt.var, entry), values)] if values else []
            return self._advance(stmt, entry, kont_ptr, now, joins)
        if isinstance(exp, FieldAccess):
            source = (exp.target, entry)
            reads.add(source)
            joins = []
            for value in self.table.decode_iter(store.get_mask(source)):
                if isinstance(value, PObj) and exp.fieldname in \
                        self.program.all_fields(value.classname):
                    addr = (exp.fieldname, value.time)
                    reads.add(addr)
                    field_values = store.get_mask(addr)
                    if field_values:
                        joins.append(((stmt.var, entry), field_values))
            return self._advance(stmt, entry, kont_ptr, now, joins)
        if isinstance(exp, Invoke):
            return self._invoke(stmt, exp, entry, kont_ptr, now, store,
                                reads, recorder)
        if isinstance(exp, New):
            return self._new(stmt, exp, entry, kont_ptr, now, store,
                             reads, recorder)
        if isinstance(exp, Cast):
            source = (exp.target, entry)
            reads.add(source)
            values = store.get_mask(source)
            joins = [((stmt.var, entry), values)] if values else []
            return self._advance(stmt, entry, kont_ptr, now, joins)
        raise TypeError(f"cannot step statement {stmt!r}")

    def _advance(self, stmt: Stmt, entry: AbsTime, kont_ptr,
                 now: AbsTime, joins: list) -> list:
        following = self.program.succ(stmt.label)
        if following is None:
            return []
        succ = PConfig(following, entry, kont_ptr,
                       self.simple_tick(stmt.label, now))
        return [(succ, joins)]

    def _return(self, stmt: Return, entry: AbsTime, kont_ptr,
                now: AbsTime, store: AbsStore, reads: set,
                recorder: _FJRecorder) -> list:
        source = (stmt.var, entry)
        reads.add(source)
        values = store.get_mask(source)
        if kont_ptr is HALT_PTR:
            recorder.halt_values |= self.table.decode(values)
            return []
        reads.add(kont_ptr)
        succs = []
        for kont in self.table.decode_iter(store.get_mask(kont_ptr)):
            if not isinstance(kont, PKont):
                continue
            joins = []
            if values:
                joins.append(((kont.var, kont.caller_entry), values))
            if self.tick_policy == "invocation":
                new_time = kont.saved_time
            else:
                new_time = first_k(self.k, (stmt.label, *now))
            succs.append((PConfig(kont.stmt, kont.caller_entry,
                                  kont.kont_ptr, new_time), joins))
        return succs

    def _invoke(self, stmt: Assign, exp: Invoke, entry: AbsTime,
                kont_ptr, now: AbsTime, store: AbsStore, reads: set,
                recorder: _FJRecorder) -> list:
        receiver_addr = (exp.target, entry)
        reads.add(receiver_addr)
        receivers = store.get_mask(receiver_addr)
        methods: dict[str, Method] = {}
        for value in self.table.decode_iter(receivers):
            if not isinstance(value, PObj):
                continue
            method = self.program.lookup_method(value.classname,
                                                exp.method)
            if method is not None and \
                    len(method.params) == len(exp.args):
                methods[method.qualified_name] = method
        arg_values = []
        for arg in exp.args:
            addr = (arg, entry)
            reads.add(addr)
            arg_values.append(store.get_mask(addr))
        following = self.program.succ(stmt.label)
        if following is None:
            return []
        succs = []
        for qualified_name, method in sorted(methods.items()):
            recorder.invoke_targets.setdefault(
                stmt.label, set()).add(qualified_name)
            new_time = self.invoke_tick(stmt.label, now)
            recorder.method_contexts.setdefault(
                qualified_name, set()).add(new_time)
            kont = PKont(stmt.var, following, entry, now, kont_ptr)
            joins: list = [((qualified_name, new_time),
                            self.table.bit_for(kont))]
            # this is bound by copy, keeping every address at t̂'.
            if receivers:
                joins.append((("this", new_time), receivers))
            for name, values in zip(method.param_names(), arg_values):
                if values:
                    joins.append(((name, new_time), values))
            succs.append((PConfig(method.body[0], new_time,
                                  (qualified_name, new_time), new_time),
                          joins))
        return succs

    def _new(self, stmt: Assign, exp: New, entry: AbsTime, kont_ptr,
             now: AbsTime, store: AbsStore, reads: set,
             recorder: _FJRecorder) -> list:
        if self.tick_policy == "statement":
            alloc_time = first_k(self.k, (stmt.label, *now))
            next_time = alloc_time
        else:
            alloc_time = now
            next_time = now
        arg_values = []
        for arg in exp.args:
            addr = (arg, entry)
            reads.add(addr)
            arg_values.append(store.get_mask(addr))
        joins = []
        for fieldname, param_index in \
                self.program.ctor_wiring[exp.classname]:
            if arg_values[param_index]:
                joins.append(((fieldname, alloc_time),
                              arg_values[param_index]))
        obj = PObj(exp.classname, stmt.label, alloc_time)
        recorder.objects.add(obj)
        joins.append(((stmt.var, entry), self.table.bit_for(obj)))
        following = self.program.succ(stmt.label)
        if following is None:
            return []
        return [(PConfig(following, entry, kont_ptr, next_time), joins)]


def analyze_fj_poly(program: FJProgram, k: int = 1,
                    tick_policy: str = "invocation",
                    budget: Budget | None = None,
                    plain: bool = False) -> FJResult:
    """Run the collapsed polynomial OO k-CFA."""
    from repro.analysis.interning import PlainTable
    run = run_single_store(
        FJPolyMachine(program, k, tick_policy), _FJRecorder(),
        EngineOptions(budget=budget,
                      table_factory=PlainTable if plain else None))
    return fj_result_from_run(run, program, "FJ-poly-k-CFA", k,
                              tick_policy)
