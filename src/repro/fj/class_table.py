"""The FJ class table: 𝒞 (constructor lookup) and ℳ (method lookup).

:class:`FJProgram` bundles the class table with the designated entry
point and precomputes what the machines need:

* the inherited-fields-included field list per class (𝒞's first
  component);
* the *constructor wiring*: for every field of a class (own and
  inherited), which constructor parameter position supplies its value
  — computed once by composing ``super(...)`` argument passing, so the
  machines run constructors without re-walking the hierarchy;
* the method-lookup table with inheritance (ℳ);
* the statement successor function ``succ`` and label → statement maps.

Construction validates the table: no duplicate/undefined classes,
acyclic inheritance, every field initialized exactly once from a
constructor parameter, ``super(...)`` arity agreement, unique labels,
and names in statements resolving to locals/params/fields.
"""

from __future__ import annotations

from dataclasses import dataclass, field as dataclass_field

from repro.errors import FJTypeError
from repro.fj.syntax import (
    Cast, ClassDef, FieldAccess, Invoke, Konstructor, Label,
    Method, New, OBJECT, Return, Stmt, VarExp,
)

_OBJECT_CLASS = ClassDef(
    name=OBJECT, superclass="", fields=(),
    konstructor=Konstructor(OBJECT, (), (), ()), methods=())


@dataclass
class FJProgram:
    """A validated Featherweight Java program."""

    classes: tuple[ClassDef, ...]
    entry_class: str = "Main"
    entry_method: str = "main"

    by_name: dict[str, ClassDef] = dataclass_field(init=False)
    succ_table: dict[Label, Stmt] = dataclass_field(init=False)
    stmt_by_label: dict[Label, Stmt] = dataclass_field(init=False)
    method_of_label: dict[Label, Method] = dataclass_field(init=False)
    #: class → ((field, ctor-param-index), ...) including inherited fields
    ctor_wiring: dict[str, tuple[tuple[str, int], ...]] = \
        dataclass_field(init=False)

    def __post_init__(self):
        self.by_name = {OBJECT: _OBJECT_CLASS}
        for cls in self.classes:
            if cls.name in self.by_name:
                raise FJTypeError(f"duplicate class {cls.name}")
            self.by_name[cls.name] = cls
        self._check_hierarchy()
        self.ctor_wiring = {}
        for cls in self.by_name.values():
            self.ctor_wiring[cls.name] = self._wire_constructor(cls)
        self.succ_table = {}
        self.stmt_by_label = {}
        self.method_of_label = {}
        for cls in self.classes:
            for method in cls.methods:
                self._index_method(cls, method)
        self._check_entry()

    # -- validation --------------------------------------------------------

    def _check_hierarchy(self) -> None:
        for cls in self.classes:
            seen = {cls.name}
            cursor = cls.superclass
            while cursor != OBJECT:
                if cursor not in self.by_name:
                    raise FJTypeError(
                        f"class {cls.name}: undefined superclass "
                        f"{cursor}")
                if cursor in seen:
                    raise FJTypeError(
                        f"inheritance cycle through {cursor}")
                seen.add(cursor)
                cursor = self.by_name[cursor].superclass

    def _wire_constructor(self, cls: ClassDef) -> tuple[tuple[str, int],
                                                        ...]:
        if cls.name == OBJECT:
            return ()
        ctor = cls.konstructor
        params = ctor.param_names()
        if len(set(params)) != len(params):
            raise FJTypeError(
                f"{cls.name}: duplicate constructor parameter")
        index_of = {name: index for index, name in enumerate(params)}
        super_cls = self.by_name[cls.superclass]
        super_wiring = self.ctor_wiring.get(cls.superclass)
        if super_wiring is None:
            super_wiring = self._wire_constructor(super_cls)
            self.ctor_wiring[cls.superclass] = super_wiring
        super_arity = len(super_cls.konstructor.params)
        if len(ctor.super_args) != super_arity:
            raise FJTypeError(
                f"{cls.name}: super(...) passes "
                f"{len(ctor.super_args)} argument(s), "
                f"{cls.superclass} expects {super_arity}")
        wiring: list[tuple[str, int]] = []
        for fieldname, super_index in super_wiring:
            passed = ctor.super_args[super_index]
            if passed not in index_of:
                raise FJTypeError(
                    f"{cls.name}: super argument {passed!r} is not a "
                    "constructor parameter")
            wiring.append((fieldname, index_of[passed]))
        initialized = set()
        own_fields = set(cls.field_names())
        for fieldname, param in ctor.field_inits:
            if fieldname not in own_fields:
                raise FJTypeError(
                    f"{cls.name}: constructor initializes unknown "
                    f"field {fieldname}")
            if fieldname in initialized:
                raise FJTypeError(
                    f"{cls.name}: field {fieldname} initialized twice")
            if param not in index_of:
                raise FJTypeError(
                    f"{cls.name}: field {fieldname} initialized from "
                    f"non-parameter {param!r}")
            initialized.add(fieldname)
            wiring.append((fieldname, index_of[param]))
        missing = own_fields - initialized
        if missing:
            raise FJTypeError(
                f"{cls.name}: field(s) {sorted(missing)} never "
                "initialized")
        return tuple(wiring)

    def _index_method(self, cls: ClassDef, method: Method) -> None:
        names = method.param_names() + method.local_names() + ("this",)
        if len(set(names)) != len(names):
            raise FJTypeError(
                f"{cls.name}.{method.name}: duplicate parameter/local")
        if not method.body:
            raise FJTypeError(f"{cls.name}.{method.name}: empty body")
        if not isinstance(method.body[-1], Return):
            raise FJTypeError(
                f"{cls.name}.{method.name}: body must end in return")
        scope = set(names)
        for stmt in method.body:
            if stmt.label in self.stmt_by_label:
                raise FJTypeError(
                    f"duplicate statement label {stmt.label}")
            self.stmt_by_label[stmt.label] = stmt
            self.method_of_label[stmt.label] = method
            self._check_stmt_names(cls, method, stmt, scope)
        for current, following in zip(method.body, method.body[1:]):
            self.succ_table[current.label] = following

    def _check_stmt_names(self, cls: ClassDef, method: Method,
                          stmt: Stmt, scope: set[str]) -> None:
        def need(name: str) -> None:
            if name not in scope:
                raise FJTypeError(
                    f"{cls.name}.{method.name}: unknown name {name!r} "
                    f"in {stmt}")
        if isinstance(stmt, Return):
            need(stmt.var)
            return
        need(stmt.var)
        exp = stmt.exp
        if isinstance(exp, VarExp):
            need(exp.name)
        elif isinstance(exp, FieldAccess):
            need(exp.target)
        elif isinstance(exp, Invoke):
            need(exp.target)
            for arg in exp.args:
                need(arg)
        elif isinstance(exp, New):
            if exp.classname not in self.by_name:
                raise FJTypeError(
                    f"{cls.name}.{method.name}: new of undefined class "
                    f"{exp.classname}")
            expected = len(self.by_name[exp.classname].konstructor.params)
            if len(exp.args) != expected:
                raise FJTypeError(
                    f"{cls.name}.{method.name}: new {exp.classname} "
                    f"expects {expected} argument(s), got "
                    f"{len(exp.args)}")
            for arg in exp.args:
                need(arg)
        elif isinstance(exp, Cast):
            if exp.classname not in self.by_name:
                raise FJTypeError(
                    f"cast to undefined class {exp.classname}")
            need(exp.target)

    def _check_entry(self) -> None:
        entry = self.by_name.get(self.entry_class)
        if entry is None:
            raise FJTypeError(f"no entry class {self.entry_class}")
        if self.konstructor_arity(self.entry_class) != 0:
            raise FJTypeError(
                f"entry class {self.entry_class} needs a zero-argument "
                "constructor")
        if self.lookup_method(self.entry_class, self.entry_method) is None:
            raise FJTypeError(
                f"entry class {self.entry_class} has no method "
                f"{self.entry_method}")
        if self.lookup_method(self.entry_class, self.entry_method).params:
            raise FJTypeError(
                f"entry method {self.entry_method} must take no "
                "arguments")

    # -- 𝒞 and ℳ -----------------------------------------------------------

    def all_fields(self, classname: str) -> tuple[str, ...]:
        """Field names of *classname*, inherited first (𝒞's first
        component)."""
        return tuple(fieldname
                     for fieldname, _ in self.ctor_wiring[classname])

    def konstructor_arity(self, classname: str) -> int:
        return len(self.by_name[classname].konstructor.params)

    def lookup_method(self, classname: str,
                      method: str) -> Method | None:
        """ℳ: dynamic dispatch — walk up the hierarchy."""
        cursor = classname
        while cursor:
            cls = self.by_name[cursor]
            found = cls.method(method)
            if found is not None:
                return found
            cursor = cls.superclass
        return None

    def is_subclass(self, classname: str, ancestor: str) -> bool:
        cursor = classname
        while cursor:
            if cursor == ancestor:
                return True
            cursor = self.by_name[cursor].superclass
        return ancestor == OBJECT and classname == OBJECT

    def succ(self, label: Label) -> Stmt | None:
        return self.succ_table.get(label)

    # -- sizes --------------------------------------------------------------

    def statement_count(self) -> int:
        return len(self.stmt_by_label)

    def method_count(self) -> int:
        return sum(len(cls.methods) for cls in self.classes)

    def stats(self) -> dict[str, int]:
        return {
            "classes": len(self.classes),
            "methods": self.method_count(),
            "statements": self.statement_count(),
            "fields": sum(len(cls.fields) for cls in self.classes),
        }

    @property
    def methods(self) -> list[Method]:
        return [method for cls in self.classes
                for method in cls.methods]
