"""The hybrid call-site/object-sensitivity ladder for FJ.

The paper's §8 lists carrying OO analysis ideas across the bridge it
builds; object sensitivity — contexts drawn from the *receiver's
allocation site* rather than the call site — is the canonical OO-side
policy.  With the kernel's policy axis it is one more data point:

* ``fj-hybrid`` (:func:`analyze_fj_hybrid`) concatenates the
  receiver's allocation chain (``obj_depth`` tagged ``O`` elements,
  one by default) with the last n call sites (tagged ``C`` elements)
  — :class:`~repro.analysis.policies.FJHybrid`, each axis drawn from
  its own history so neither crowds out the other;
* ``fj-obj`` (:func:`analyze_fj_obj`) keeps only the allocation
  chain, Milanova-style obj^n — deliberately *without* call-site
  padding, so two calls on one receiver merge at every depth (the
  imprecision the hybrid rung exists to fix).

Both run on the flat FJ machine's per-receiver invoke path — each
dispatching object gets its own entry context, with ``this`` aliased
to exactly that receiver — and are registered in
:mod:`repro.analysis.registry`, so ``analyze``, ``serve`` and
``bench`` pick them up with no dispatch-table edits.  The rungs of
the ladder are the parameter n (and, for custom policies,
``obj_depth``); ``python -m repro analyses`` lists them.
"""

from __future__ import annotations

from repro.analysis.policies import FJHybrid
from repro.fj.class_table import FJProgram
from repro.fj.kcfa import FJResult
from repro.fj.poly import FJFlatMachine, run_flat_policy
from repro.errors import UsageError
from repro.util.budget import Budget


def analyze_fj_hybrid(program: FJProgram, n: int = 1,
                      obj_depth: int = 1,
                      budget: Budget | None = None,
                      plain: bool = False,
                      specialized: bool = True) -> FJResult:
    """Run the hybrid ladder: *obj_depth* receiver-chain elements
    concatenated with the last *n* call sites per context window.

    Parameter validation raises
    :class:`~repro.errors.UsageError` so the CLI (``analyze``,
    ``bench --obj-depth``) reports a one-line message and exits 2
    instead of leaking a traceback.
    """
    if n < 0:
        raise UsageError(f"n must be non-negative, got {n}")
    if isinstance(obj_depth, bool) or not isinstance(obj_depth, int) \
            or obj_depth < 0:
        raise UsageError(
            f"obj_depth must be a non-negative integer, got "
            f"{obj_depth!r}")
    return run_flat_policy(
        FJFlatMachine(program, FJHybrid(call_depth=n,
                                        obj_depth=obj_depth)),
        "FJ-hybrid", n, budget, plain, specialized)


def analyze_fj_obj(program: FJProgram, n: int = 1,
                   budget: Budget | None = None,
                   plain: bool = False,
                   specialized: bool = True) -> FJResult:
    """Run pure object sensitivity (obj^n): the context window is the
    receiver's allocation chain alone."""
    if n < 0:
        raise UsageError(f"n must be non-negative, got {n}")
    return run_flat_policy(
        FJFlatMachine(program, FJHybrid(call_depth=0, obj_depth=n)),
        "FJ-obj", n, budget, plain, specialized)
