"""Concrete semantics for A-Normal Featherweight Java (paper Figure 6).

States are ``(stmt, β, σ, p_κ, t)``: statements execute over a binding
environment, a store holding both objects' field values and
continuations, a continuation pointer, and a time-stamp.

Times are label histories (the paper's ``Time = Lab*``) so the k-CFA
abstraction map is directly computable; concrete addresses add a
machine-global serial for freshness (``(name, (serial, t))``), since
unlike the CPS machine the FJ store is written more than once per
address (locals can be reassigned).

Two ticking policies are supported (paper §4.3 vs §4.5):

* ``"statement"`` — Shivers-faithful: every statement ticks;
* ``"invocation"`` — OO-conventional: only method invocation ticks, and
  ``return`` *restores* the caller's time (saved in the continuation).

The policy changes which context allocations receive; the machines and
analyses take it as a constructor argument so the §4.5 variations can
be compared head-to-head.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import EvaluationError, FuelExhausted
from repro.fj.class_table import FJProgram
from repro.fj.syntax import (
    Assign, Cast, FieldAccess, Invoke, New, Return, Stmt,
    VarExp,
)

#: A concrete time: the history of labels traversed (most recent first).
ConcreteTime = tuple[int, ...]

#: A concrete address: (name, (serial, time)).
ConcreteAddr = tuple[str, tuple[int, ConcreteTime]]

TICK_POLICIES = ("statement", "invocation")


@dataclass(frozen=True, slots=True)
class FJObjectVal:
    """A concrete object: class name, allocation site, field record."""

    classname: str
    site: int
    fields: tuple[tuple[str, ConcreteAddr], ...]

    def field_addr(self, name: str) -> ConcreteAddr:
        for fieldname, addr in self.fields:
            if fieldname == name:
                return addr
        raise EvaluationError(
            f"object of class {self.classname} has no field {name}")

    def __repr__(self) -> str:
        return f"#<{self.classname}@{self.site}>"


@dataclass(frozen=True, slots=True)
class FJKont:
    """A concrete continuation (paper's Kont, plus the saved time that
    the §4.5 "restore caller context" variant needs)."""

    var: str
    stmt: Stmt
    benv: tuple[tuple[str, ConcreteAddr], ...]
    saved_time: ConcreteTime
    kont_ptr: object  # ConcreteAddr or HALT

    def __repr__(self) -> str:
        return f"#<kont {self.var}>"


class _Halt:
    def __repr__(self) -> str:
        return "#halt"


HALT = _Halt()


@dataclass(frozen=True, slots=True)
class FJTraceEntry:
    stmt: Stmt
    benv: tuple[tuple[str, ConcreteAddr], ...]
    kont_ptr: object
    time: ConcreteTime


@dataclass
class FJConcreteResult:
    value: object
    steps: int
    store: dict[ConcreteAddr, object]
    writes: list[tuple[ConcreteAddr, object]]
    trace: list[FJTraceEntry] = field(default_factory=list)


DEFAULT_FUEL = 1_000_000


class FJMachine:
    """Driver for the concrete Featherweight Java semantics."""

    def __init__(self, program: FJProgram,
                 tick_policy: str = "invocation",
                 fuel: int = DEFAULT_FUEL, record_trace: bool = False):
        if tick_policy not in TICK_POLICIES:
            raise ValueError(f"unknown tick_policy {tick_policy!r}")
        self.program = program
        self.tick_policy = tick_policy
        self.fuel = fuel
        self.record_trace = record_trace
        self.store: dict[ConcreteAddr, object] = {}
        self.writes: list[tuple[ConcreteAddr, object]] = []
        self.trace: list[FJTraceEntry] = []
        self._serial = 0

    # -- addresses and time ------------------------------------------------

    def alloc(self, name: str, time: ConcreteTime) -> ConcreteAddr:
        self._serial += 1
        return (name, (self._serial, time))

    def write(self, addr: ConcreteAddr, value: object) -> None:
        self.store[addr] = value
        self.writes.append((addr, value))

    def simple_tick(self, label: int, time: ConcreteTime) -> ConcreteTime:
        """Time after a non-invocation statement."""
        if self.tick_policy == "statement":
            return (label, *time)
        return time

    def invoke_tick(self, label: int, time: ConcreteTime) -> ConcreteTime:
        """Both policies tick at a method invocation."""
        return (label, *time)

    # -- running --------------------------------------------------------------

    def run(self) -> FJConcreteResult:
        stmt, benv, kont_ptr, time = self.initial()
        steps = 0
        while True:
            steps += 1
            if steps > self.fuel:
                raise FuelExhausted(self.fuel, trace=self.trace)
            if self.record_trace:
                self.trace.append(FJTraceEntry(
                    stmt, tuple(sorted(benv.items())), kont_ptr, time))
            outcome = self.step(stmt, benv, kont_ptr, time)
            if not isinstance(outcome, tuple):
                return FJConcreteResult(outcome, steps, self.store,
                                        self.writes, self.trace)
            stmt, benv, kont_ptr, time = outcome

    def initial(self):
        program = self.program
        time: ConcreteTime = ()
        entry_obj = FJObjectVal(program.entry_class, -1, ())
        entry_addr = self.alloc("%entry", time)
        self.write(entry_addr, entry_obj)
        method = program.lookup_method(program.entry_class,
                                       program.entry_method)
        benv = {"this": entry_addr}
        for local in method.local_names():
            benv[local] = self.alloc(local, time)
        return method.body[0], benv, HALT, time

    # -- one transition (Figure 6) ----------------------------------------

    def step(self, stmt: Stmt, benv: dict, kont_ptr, time: ConcreteTime):
        if isinstance(stmt, Return):
            return self._return(stmt, benv, kont_ptr, time)
        exp = stmt.exp
        if isinstance(exp, VarExp):
            self.write(benv[stmt.var], self.store[benv[exp.name]])
            return self._advance(stmt, benv, kont_ptr, time)
        if isinstance(exp, FieldAccess):
            target = self.store[benv[exp.target]]
            if not isinstance(target, FJObjectVal):
                raise EvaluationError(
                    f"field access on non-object {target!r}")
            value = self.store[target.field_addr(exp.fieldname)]
            self.write(benv[stmt.var], value)
            return self._advance(stmt, benv, kont_ptr, time)
        if isinstance(exp, Invoke):
            return self._invoke(stmt, exp, benv, kont_ptr, time)
        if isinstance(exp, New):
            return self._new(stmt, exp, benv, kont_ptr, time)
        if isinstance(exp, Cast):
            value = self.store[benv[exp.target]]
            if not isinstance(value, FJObjectVal) or \
                    not self.program.is_subclass(value.classname,
                                                 exp.classname):
                raise EvaluationError(
                    f"bad cast of {value!r} to {exp.classname}")
            self.write(benv[stmt.var], value)
            return self._advance(stmt, benv, kont_ptr, time)
        raise TypeError(f"cannot step statement {stmt!r}")

    def _advance(self, stmt: Stmt, benv: dict, kont_ptr,
                 time: ConcreteTime):
        following = self.program.succ(stmt.label)
        if following is None:
            raise EvaluationError(
                f"statement {stmt} falls off the end of its method")
        return following, benv, kont_ptr, self.simple_tick(stmt.label,
                                                           time)

    def _return(self, stmt: Return, benv: dict, kont_ptr,
                time: ConcreteTime):
        value = self.store[benv[stmt.var]]
        if kont_ptr is HALT:
            return value  # machine result
        kont = self.store[kont_ptr]
        if not isinstance(kont, FJKont):
            raise EvaluationError(f"corrupt continuation at {kont_ptr}")
        caller_benv = dict(kont.benv)
        self.write(caller_benv[kont.var], value)
        if self.tick_policy == "invocation":
            new_time = kont.saved_time
        else:
            new_time = (stmt.label, *time)
        return kont.stmt, caller_benv, kont.kont_ptr, new_time

    def _invoke(self, stmt: Assign, exp: Invoke, benv: dict, kont_ptr,
                time: ConcreteTime):
        receiver = self.store[benv[exp.target]]
        if not isinstance(receiver, FJObjectVal):
            raise EvaluationError(
                f"method call on non-object {receiver!r}")
        method = self.program.lookup_method(receiver.classname,
                                            exp.method)
        if method is None:
            raise EvaluationError(
                f"class {receiver.classname} has no method "
                f"{exp.method}")
        if len(method.params) != len(exp.args):
            raise EvaluationError(
                f"{method.qualified_name} expects "
                f"{len(method.params)} argument(s), got "
                f"{len(exp.args)}")
        args = [self.store[benv[arg]] for arg in exp.args]
        new_time = self.invoke_tick(stmt.label, time)
        following = self.program.succ(stmt.label)
        if following is None:
            raise EvaluationError(
                f"invocation {stmt} has no successor statement")
        kont = FJKont(stmt.var, following,
                      tuple(sorted(benv.items())), time, kont_ptr)
        kont_addr = self.alloc(method.qualified_name, new_time)
        self.write(kont_addr, kont)
        new_benv = {"this": benv[exp.target]}
        for name, value in zip(method.param_names(), args):
            addr = self.alloc(name, new_time)
            new_benv[name] = addr
            self.write(addr, value)
        for local in method.local_names():
            new_benv[local] = self.alloc(local, new_time)
        return method.body[0], new_benv, kont_addr, new_time

    def _new(self, stmt: Assign, exp: New, benv: dict, kont_ptr,
             time: ConcreteTime):
        if self.tick_policy == "statement":
            alloc_time = (stmt.label, *time)
            next_time = alloc_time
        else:
            alloc_time = time
            next_time = time
        args = [self.store[benv[arg]] for arg in exp.args]
        record = []
        for fieldname, param_index in \
                self.program.ctor_wiring[exp.classname]:
            addr = self.alloc(fieldname, alloc_time)
            self.write(addr, args[param_index])
            record.append((fieldname, addr))
        obj = FJObjectVal(exp.classname, stmt.label,
                          tuple(sorted(record)))
        self.write(benv[stmt.var], obj)
        following = self.program.succ(stmt.label)
        if following is None:
            raise EvaluationError(
                f"allocation {stmt} has no successor statement")
        return following, benv, kont_ptr, next_time


def run_fj(program: FJProgram, tick_policy: str = "invocation",
           fuel: int = DEFAULT_FUEL,
           record_trace: bool = False) -> FJConcreteResult:
    """Run *program* from its entry point."""
    return FJMachine(program, tick_policy, fuel, record_trace).run()
