"""Abstract k-CFA for A-Normal Featherweight Java (paper Figure 9).

This is Shivers's k-CFA transplanted onto Java exactly as §4 does it:
abstract times are the last k labels, addresses pair a variable, field
or method with a time, and continuations are allocated in the store at
``(method, time)`` addresses.  Objects are a class name plus a *record
of field addresses* — the encoding "congruent to k-CFA's encoding of
closures" whose degeneracy (§4.4) the polynomial variant
(:mod:`repro.fj.poly`) exploits.

Both §4.3/§4.5 ticking policies are available (``"statement"`` and
``"invocation"``), matching the concrete machine.

Objects additionally record their allocation site, the standard
allocation-site sensitivity of OO points-to analyses; without it,
field-less classes would collapse to a single abstract object and the
Figure 1 points-to table would not be expressible.
"""

from __future__ import annotations

from dataclasses import dataclass, field as dataclass_field
from typing import Iterable, Iterator

from repro.analysis.domains import AbsStore
from repro.analysis.engine import EngineOptions, EngineRun, \
    run_single_store
from repro.fj.class_table import FJProgram
from repro.fj.concrete import TICK_POLICIES
from repro.fj.syntax import (
    Assign, Cast, FieldAccess, Invoke, Method, New, Return, Stmt,
    VarExp,
)
from repro.errors import UsageError
from repro.util.budget import Budget

AbsTime = tuple[int, ...]
AbsAddr = tuple[str, AbsTime]


class FJBEnv:
    """An immutable binding environment: name → abstract address.

    Unlike the CPS analyses' environments, values are full addresses —
    the Figure 9 invocation rule *aliases* ``this`` to the receiver
    variable's address, so the address name can differ from the bound
    name.
    """

    __slots__ = ("_items", "_dict", "_hash")

    def __init__(self, items: Iterable[tuple[str, AbsAddr]] = ()):
        pairs = tuple(sorted(items))
        self._items = pairs
        self._dict = dict(pairs)
        self._hash = hash(pairs)

    def __getitem__(self, name: str) -> AbsAddr:
        return self._dict[name]

    def get(self, name: str, default=None):
        return self._dict.get(name, default)

    def __contains__(self, name: str) -> bool:
        return name in self._dict

    def items(self) -> tuple[tuple[str, AbsAddr], ...]:
        return self._items

    def __iter__(self) -> Iterator[str]:
        return iter(self._dict)

    def __eq__(self, other) -> bool:
        return isinstance(other, FJBEnv) and self._items == other._items

    def __hash__(self) -> int:
        return self._hash

    def __len__(self) -> int:
        return len(self._items)

    def __repr__(self) -> str:
        inner = ", ".join(f"{name}→{addr}" for name, addr in self._items)
        return "{" + inner + "}"


@dataclass(frozen=True, slots=True)
class AObj:
    """An abstract object: class, allocation site, field record."""

    classname: str
    site: int
    benv: FJBEnv  # field name → address

    def __repr__(self) -> str:
        return f"obj[{self.classname}@{self.site}]{self.benv!r}"


@dataclass(frozen=True, slots=True)
class AKont:
    """An abstract continuation (Figure 7's ˆKont plus saved time)."""

    var: str
    stmt: Stmt
    benv: FJBEnv
    saved_time: AbsTime
    kont_ptr: object  # AbsAddr or HALT_PTR

    def __repr__(self) -> str:
        return f"kont[{self.var}@{self.stmt.label}]"


class _HaltPtr:
    def __repr__(self) -> str:
        return "#halt-ptr"


HALT_PTR = _HaltPtr()


class FJConfig:
    """A store-less abstract state: ``(stmt, β̂, p̂κ, t̂)`` (hash cached
    at construction; the engine hashes configurations constantly)."""

    __slots__ = ("stmt", "benv", "kont_ptr", "time", "_hash")

    def __init__(self, stmt: Stmt, benv: FJBEnv, kont_ptr,
                 time: AbsTime):
        self.stmt = stmt
        self.benv = benv
        self.kont_ptr = kont_ptr
        self.time = time
        self._hash = hash((stmt, benv, kont_ptr, time))

    def __hash__(self) -> int:
        return self._hash

    def __eq__(self, other) -> bool:
        return self is other or (
            type(other) is FJConfig and self.stmt == other.stmt
            and self.benv == other.benv
            and self.kont_ptr == other.kont_ptr
            and self.time == other.time)

    def __repr__(self) -> str:
        return (f"FJConfig(stmt={self.stmt!r}, benv={self.benv!r}, "
                f"kont_ptr={self.kont_ptr!r}, time={self.time!r})")


@dataclass
class FJResult:
    """What OO k-CFA learned about a program."""

    program: FJProgram
    analysis: str
    parameter: int
    tick_policy: str
    store: AbsStore
    configs: frozenset
    method_contexts: dict[str, frozenset[AbsTime]]
    objects: frozenset[AObj]
    invoke_targets: dict[int, frozenset[str]]
    halt_values: frozenset
    steps: int
    elapsed: float = 0.0
    #: Which step loop ran — ``generic`` or ``specialized:<name>``
    #: (provenance only; never part of :meth:`summary`).
    engine_path: str = "generic"

    # -- queries ---------------------------------------------------------

    def points_to(self, name: str) -> frozenset:
        """Objects a variable may point to, joined over contexts.

        Works for both machine families: map-based results hold
        :class:`AObj`, flat results :class:`~repro.fj.poly.PObj` —
        anything with a ``classname`` that is not a continuation.
        """
        values = set()
        for (addr_name, _time), addr_values in self.store.items():
            if addr_name == name:
                values.update(value for value in addr_values
                              if hasattr(value, "classname"))
        return frozenset(values)

    def objects_of_class(self, classname: str) -> frozenset[AObj]:
        return frozenset(obj for obj in self.objects
                         if obj.classname == classname)

    def method_context_count(self, qualified_name: str) -> int:
        return len(self.method_contexts.get(qualified_name, frozenset()))

    def total_environments(self) -> int:
        """Σ method analysis contexts + distinct abstract objects —
        the O(N+M) quantity of Figure 1."""
        contexts = sum(len(times)
                       for times in self.method_contexts.values())
        return contexts + len(self.objects)

    def monomorphic_call_sites(self) -> list[int]:
        """Invocation sites with exactly one resolved target."""
        return sorted(label
                      for label, targets in self.invoke_targets.items()
                      if len(targets) == 1)

    def summary(self) -> dict[str, object]:
        return {
            "analysis": self.analysis,
            "parameter": self.parameter,
            "tick_policy": self.tick_policy,
            "statements": self.program.statement_count(),
            "configs": len(self.configs),
            "objects": len(self.objects),
            "environments": self.total_environments(),
            "store_entries": len(self.store),
            "mono_sites": len(self.monomorphic_call_sites()),
            "steps": self.steps,
            "elapsed": round(self.elapsed, 6),
        }

    def __repr__(self) -> str:
        return (f"<{self.analysis}({self.parameter}, "
                f"{self.tick_policy}) configs={len(self.configs)} "
                f"objects={len(self.objects)}>")


@dataclass
class _FJRecorder:
    method_contexts: dict[str, set[AbsTime]] = \
        dataclass_field(default_factory=dict)
    objects: set[AObj] = dataclass_field(default_factory=set)
    invoke_targets: dict[int, set[str]] = \
        dataclass_field(default_factory=dict)
    halt_values: set = dataclass_field(default_factory=set)


class FJKCFAMachine:
    """The Figure 9 abstract transition relation.

    The machine owns the syntax-directed step rules; every context
    decision is delegated to an
    :class:`~repro.analysis.policies.FJContextPolicy` (here the
    :class:`~repro.analysis.policies.FJCallSite` family — the
    map-based machine has no flat entry context, so it cannot host
    receiver-sensitive policies; those run on
    :class:`~repro.fj.poly.FJFlatMachine`).
    """

    def __init__(self, program: FJProgram, k: int,
                 tick_policy: str = "invocation"):
        from repro.analysis.policies import FJCallSite
        if k < 0:
            raise UsageError(f"k must be non-negative, got {k}")
        if tick_policy not in TICK_POLICIES:
            raise UsageError(f"unknown tick_policy {tick_policy!r}")
        self.program = program
        self.k = k
        self.tick_policy = tick_policy
        self.policy = FJCallSite(k, tick_policy)

    # -- time ----------------------------------------------------------

    def simple_tick(self, label: int, time: AbsTime) -> AbsTime:
        return self.policy.step(label, time)

    def invoke_tick(self, label: int, time: AbsTime) -> AbsTime:
        return self.policy.invoke(label, time, None, None)

    # -- initial state ----------------------------------------------------

    def initial(self, store: AbsStore) -> FJConfig:
        program = self.program
        entry_obj = AObj(program.entry_class, -1, FJBEnv())
        entry_addr = ("%entry", ())
        store.join(entry_addr, {entry_obj})
        method = program.lookup_method(program.entry_class,
                                       program.entry_method)
        benv_items = [("this", entry_addr)]
        benv_items += [(local, (local, ()))
                       for local in method.local_names()]
        return FJConfig(method.body[0], FJBEnv(benv_items), HALT_PTR, ())

    # -- the engine's Machine protocol ---------------------------------

    def boot(self, store: AbsStore) -> FJConfig:
        """Adopt the store's value table and seed the entry object."""
        self.table = store.table
        return self.initial(store)

    def step(self, config: FJConfig, store, reads: set[AbsAddr],
             recorder: "_FJRecorder") -> list[tuple[FJConfig, list]]:
        """One transfer-function application, in engine form."""
        return self.transitions(config, store, reads, recorder)

    # -- transitions (Figure 9) ----------------------------------------------

    def transitions(self, config: FJConfig, store: AbsStore,
                    reads: set[AbsAddr], recorder: _FJRecorder
                    ) -> list[tuple[FJConfig, list]]:
        stmt, benv = config.stmt, config.benv
        kont_ptr, now = config.kont_ptr, config.time
        if isinstance(stmt, Return):
            return self._return(stmt, benv, kont_ptr, now, store, reads,
                                recorder)
        exp = stmt.exp
        if isinstance(exp, VarExp):
            reads.add(benv[exp.name])
            values = store.get_mask(benv[exp.name])
            joins = [(benv[stmt.var], values)] if values else []
            return self._advance(stmt, benv, kont_ptr, now, joins)
        if isinstance(exp, FieldAccess):
            reads.add(benv[exp.target])
            joins = []
            receivers = store.get_mask(benv[exp.target])
            for value in self.table.decode_iter(receivers):
                if isinstance(value, AObj) and \
                        exp.fieldname in value.benv:
                    addr = value.benv[exp.fieldname]
                    reads.add(addr)
                    field_values = store.get_mask(addr)
                    if field_values:
                        joins.append((benv[stmt.var], field_values))
            return self._advance(stmt, benv, kont_ptr, now, joins)
        if isinstance(exp, Invoke):
            return self._invoke(stmt, exp, benv, kont_ptr, now, store,
                                reads, recorder)
        if isinstance(exp, New):
            return self._new(stmt, exp, benv, kont_ptr, now, store,
                             reads, recorder)
        if isinstance(exp, Cast):
            reads.add(benv[exp.target])
            values = store.get_mask(benv[exp.target])
            joins = [(benv[stmt.var], values)] if values else []
            return self._advance(stmt, benv, kont_ptr, now, joins)
        raise TypeError(f"cannot step statement {stmt!r}")

    def _advance(self, stmt: Stmt, benv: FJBEnv, kont_ptr,
                 now: AbsTime, joins: list) -> list:
        following = self.program.succ(stmt.label)
        if following is None:
            return []
        succ = FJConfig(following, benv, kont_ptr,
                        self.simple_tick(stmt.label, now))
        return [(succ, joins)]

    def _return(self, stmt: Return, benv: FJBEnv, kont_ptr,
                now: AbsTime, store: AbsStore, reads: set,
                recorder: _FJRecorder) -> list:
        reads.add(benv[stmt.var])
        values = store.get_mask(benv[stmt.var])
        if kont_ptr is HALT_PTR:
            recorder.halt_values |= self.table.decode(values)
            return []
        reads.add(kont_ptr)
        succs = []
        for kont in self.table.decode_iter(store.get_mask(kont_ptr)):
            if not isinstance(kont, AKont):
                continue
            joins = []
            if values:
                joins.append((kont.benv[kont.var], values))
            new_time = self.policy.ret(stmt.label, now,
                                       kont.saved_time)
            succs.append((FJConfig(kont.stmt, kont.benv, kont.kont_ptr,
                                   new_time), joins))
        return succs

    def _invoke(self, stmt: Assign, exp: Invoke, benv: FJBEnv,
                kont_ptr, now: AbsTime, store: AbsStore, reads: set,
                recorder: _FJRecorder) -> list:
        receiver_addr = benv[exp.target]
        reads.add(receiver_addr)
        receivers = store.get_mask(receiver_addr)
        methods: dict[str, Method] = {}
        for value in self.table.decode_iter(receivers):
            if not isinstance(value, AObj):
                continue
            method = self.program.lookup_method(value.classname,
                                                exp.method)
            if method is not None and \
                    len(method.params) == len(exp.args):
                methods[method.qualified_name] = method
        arg_values = []
        for arg in exp.args:
            reads.add(benv[arg])
            arg_values.append(store.get_mask(benv[arg]))
        following = self.program.succ(stmt.label)
        if following is None:
            return []
        succs = []
        for qualified_name, method in sorted(methods.items()):
            recorder.invoke_targets.setdefault(
                stmt.label, set()).add(qualified_name)
            new_time = self.invoke_tick(stmt.label, now)
            recorder.method_contexts.setdefault(
                qualified_name, set()).add(new_time)
            kont = AKont(stmt.var, following, benv, now, kont_ptr)
            kont_addr = (qualified_name, new_time)
            joins: list = [(kont_addr, self.table.bit_for(kont))]
            # β' = [this ↦ β(v0)] — this aliases the receiver address.
            benv_items = [("this", receiver_addr)]
            for name, values in zip(method.param_names(), arg_values):
                addr = (name, new_time)
                benv_items.append((name, addr))
                if values:
                    joins.append((addr, values))
            for local in method.local_names():
                benv_items.append((local, (local, new_time)))
            succs.append((FJConfig(method.body[0], FJBEnv(benv_items),
                                   kont_addr, new_time), joins))
        return succs

    def _new(self, stmt: Assign, exp: New, benv: FJBEnv, kont_ptr,
             now: AbsTime, store: AbsStore, reads: set,
             recorder: _FJRecorder) -> list:
        alloc_time = next_time = self.policy.step(stmt.label, now)
        arg_values = []
        for arg in exp.args:
            reads.add(benv[arg])
            arg_values.append(store.get_mask(benv[arg]))
        joins = []
        record = []
        for fieldname, param_index in \
                self.program.ctor_wiring[exp.classname]:
            addr = (fieldname, alloc_time)
            record.append((fieldname, addr))
            if arg_values[param_index]:
                joins.append((addr, arg_values[param_index]))
        obj = AObj(exp.classname, stmt.label, FJBEnv(record))
        recorder.objects.add(obj)
        joins.append((benv[stmt.var], self.table.bit_for(obj)))
        following = self.program.succ(stmt.label)
        if following is None:
            return []
        succ = FJConfig(following, benv, kont_ptr, next_time)
        return [(succ, joins)]


def fj_result_from_run(run: EngineRun, program: FJProgram,
                       analysis: str, parameter: int,
                       tick_policy: str) -> FJResult:
    """Package an engine run + :class:`_FJRecorder` as an FJResult."""
    recorder: _FJRecorder = run.recorder
    return FJResult(
        program=program, analysis=analysis, parameter=parameter,
        tick_policy=tick_policy, store=run.store, configs=run.configs,
        method_contexts={name: frozenset(times) for name, times
                         in recorder.method_contexts.items()},
        objects=frozenset(recorder.objects),
        invoke_targets={label: frozenset(targets) for label, targets
                        in recorder.invoke_targets.items()},
        halt_values=frozenset(recorder.halt_values),
        steps=run.steps, elapsed=run.elapsed)


def analyze_fj_kcfa(program: FJProgram, k: int = 1,
                    tick_policy: str = "invocation",
                    budget: Budget | None = None,
                    plain: bool = False) -> FJResult:
    """Run OO k-CFA with the single-threaded store."""
    from repro.analysis.interning import PlainTable
    run = run_single_store(
        FJKCFAMachine(program, k, tick_policy), _FJRecorder(),
        EngineOptions(budget=budget,
                      table_factory=PlainTable if plain else None))
    return fj_result_from_run(run, program, "FJ-k-CFA", k, tick_policy)
