"""Parser for the Featherweight Java surface syntax.

The accepted language is the paper's FJ with Java-style notation::

    class C extends D {
      Object f;
      C(Object f0) { super(); this.f = f0; }
      Object m(Object v) {
        Object tmp;
        tmp = this.f;
        return tmp.n(new E(v));
      }
    }

Nested expressions are allowed everywhere a variable is — the parser
builds surface trees and :mod:`repro.fj.anf` flattens them to A-normal
form.  Locals are declared (``Type name;``) before the first statement
of a body, as in the paper's grammar.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.errors import FJSyntaxError
from repro.fj.anf import (
    LabelCounter, SAssign, SCast, SExp, SField, SInvoke, SNew, SReturn,
    SStmt, SurfaceMethod, SVar, normalize_method,
)
from repro.fj.class_table import FJProgram
from repro.fj.syntax import ClassDef, Konstructor, Method

_TOKEN_RE = re.compile(r"""
    (?P<ws>\s+|//[^\n]*)
  | (?P<ident>[A-Za-z_$][A-Za-z0-9_$]*)
  | (?P<punct>[{}();,.=])
""", re.VERBOSE)

_KEYWORDS = frozenset({"class", "extends", "super", "this", "new",
                       "return"})


@dataclass(frozen=True, slots=True)
class _Token:
    kind: str   # "ident", "keyword", or the punctuation itself
    text: str
    line: int
    column: int


def _tokenize(source: str) -> list[_Token]:
    tokens = []
    index, line, col = 0, 1, 1
    while index < len(source):
        match = _TOKEN_RE.match(source, index)
        if match is None:
            raise FJSyntaxError(
                f"unexpected character {source[index]!r}", line, col)
        text = match.group(0)
        if match.lastgroup == "ident":
            kind = "keyword" if text in _KEYWORDS else "ident"
            tokens.append(_Token(kind, text, line, col))
        elif match.lastgroup == "punct":
            tokens.append(_Token(text, text, line, col))
        newlines = text.count("\n")
        if newlines:
            line += newlines
            col = len(text) - text.rfind("\n")
        else:
            col += len(text)
        index = match.end()
    return tokens


class _Parser:
    def __init__(self, tokens: list[_Token]):
        self.tokens = tokens
        self.index = 0

    # -- token helpers ---------------------------------------------------

    def _peek(self, offset: int = 0) -> _Token | None:
        position = self.index + offset
        if position < len(self.tokens):
            return self.tokens[position]
        return None

    def _error(self, message: str) -> FJSyntaxError:
        token = self._peek()
        if token is None:
            return FJSyntaxError(f"{message} (at end of input)")
        return FJSyntaxError(f"{message}, found {token.text!r}",
                             token.line, token.column)

    def _next(self) -> _Token:
        token = self._peek()
        if token is None:
            raise FJSyntaxError("unexpected end of input")
        self.index += 1
        return token

    def _expect(self, kind: str, what: str = "") -> _Token:
        token = self._peek()
        if token is None or token.kind != kind:
            raise self._error(f"expected {what or kind!r}")
        return self._next()

    def _expect_keyword(self, word: str) -> _Token:
        token = self._peek()
        if token is None or token.kind != "keyword" or \
                token.text != word:
            raise self._error(f"expected keyword {word!r}")
        return self._next()

    def _at(self, kind: str, text: str | None = None,
            offset: int = 0) -> bool:
        token = self._peek(offset)
        return (token is not None and token.kind == kind
                and (text is None or token.text == text))

    # -- grammar ------------------------------------------------------------

    def program(self) -> list[tuple]:
        classes = []
        while self._peek() is not None:
            classes.append(self.class_def())
        if not classes:
            raise FJSyntaxError("empty program")
        return classes

    def class_def(self) -> tuple:
        self._expect_keyword("class")
        name = self._expect("ident", "class name").text
        self._expect_keyword("extends")
        superclass = self._expect("ident", "superclass name").text
        self._expect("{")
        fields = []
        while self._at("ident") and self._at("ident", offset=1) \
                and self._at(";", offset=2):
            ftype = self._next().text
            fname = self._next().text
            self._next()  # ';'
            fields.append((ftype, fname))
        konstructor = self.konstructor(name)
        methods = []
        while not self._at("}"):
            methods.append(self.method())
        self._expect("}")
        return (name, superclass, tuple(fields), konstructor,
                tuple(methods))

    def konstructor(self, classname: str) -> Konstructor:
        name = self._expect("ident", "constructor name").text
        if name != classname:
            raise self._error(
                f"constructor must be named {classname}")
        params = self.param_list()
        self._expect("{")
        self._expect_keyword("super")
        self._expect("(")
        super_args = []
        while not self._at(")"):
            super_args.append(self._expect("ident", "argument").text)
            if self._at(","):
                self._next()
        self._expect(")")
        self._expect(";")
        inits = []
        while self._at("keyword", "this"):
            self._next()
            self._expect(".")
            fieldname = self._expect("ident", "field name").text
            self._expect("=")
            param = self._expect("ident", "parameter name").text
            self._expect(";")
            inits.append((fieldname, param))
        self._expect("}")
        return Konstructor(classname, params, tuple(super_args),
                           tuple(inits))

    def param_list(self) -> tuple[tuple[str, str], ...]:
        self._expect("(")
        params = []
        while not self._at(")"):
            ptype = self._expect("ident", "parameter type").text
            pname = self._expect("ident", "parameter name").text
            params.append((ptype, pname))
            if self._at(","):
                self._next()
        self._expect(")")
        return tuple(params)

    def method(self) -> SurfaceMethod:
        ret_type = self._expect("ident", "return type").text
        name = self._expect("ident", "method name").text
        params = self.param_list()
        self._expect("{")
        locals_ = []
        while self._at("ident") and self._at("ident", offset=1) \
                and self._at(";", offset=2):
            ltype = self._next().text
            lname = self._next().text
            self._next()  # ';'
            locals_.append((ltype, lname))
        body: list[SStmt] = []
        while not self._at("}"):
            body.append(self.statement())
        self._expect("}")
        if not body:
            raise self._error(f"method {name} has an empty body")
        return SurfaceMethod(ret_type, name, params, tuple(locals_),
                             tuple(body))

    def statement(self) -> SStmt:
        if self._at("keyword", "return"):
            self._next()
            exp = self.expression()
            self._expect(";")
            return SReturn(exp)
        var = self._expect("ident", "variable name").text
        self._expect("=")
        exp = self.expression()
        self._expect(";")
        return SAssign(var, exp)

    def expression(self) -> SExp:
        exp = self.primary()
        while self._at("."):
            self._next()
            member = self._expect("ident", "member name").text
            if self._at("("):
                args = self.argument_list()
                exp = SInvoke(exp, member, args)
            else:
                exp = SField(exp, member)
        return exp

    def primary(self) -> SExp:
        if self._at("keyword", "new"):
            self._next()
            classname = self._expect("ident", "class name").text
            args = self.argument_list()
            return SNew(classname, args)
        if self._at("keyword", "this"):
            self._next()
            return SVar("this")
        if self._at("("):
            # a cast: (C) expr
            self._next()
            classname = self._expect("ident", "class name").text
            self._expect(")")
            return SCast(classname, self.primary_postfix())
        name = self._expect("ident", "variable").text
        return SVar(name)

    def primary_postfix(self) -> SExp:
        """A primary with member chains — the operand of a cast."""
        exp = self.primary()
        while self._at("."):
            self._next()
            member = self._expect("ident", "member name").text
            if self._at("("):
                exp = SInvoke(exp, member, self.argument_list())
            else:
                exp = SField(exp, member)
        return exp

    def argument_list(self) -> tuple[SExp, ...]:
        self._expect("(")
        args = []
        while not self._at(")"):
            args.append(self.expression())
            if self._at(","):
                self._next()
        self._expect(")")
        return tuple(args)


def parse_fj(source: str, entry_class: str = "Main",
             entry_method: str = "main") -> FJProgram:
    """Parse and A-normalize an FJ program."""
    parser = _Parser(_tokenize(source))
    raw_classes = parser.program()
    labels = LabelCounter()
    classes = []
    for name, superclass, fields, konstructor, surface_methods in \
            raw_classes:
        methods = tuple(normalize_method(surface, labels, name)
                        for surface in surface_methods)
        classes.append(ClassDef(name, superclass, fields, konstructor,
                                methods))
    return FJProgram(tuple(classes), entry_class, entry_method)
