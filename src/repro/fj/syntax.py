"""A-Normal Featherweight Java — abstract syntax (paper §4).

The grammar follows the paper::

    Class  ::= class C extends C' { C'' f; K M... }
    K      ::= C (C f...) { super(f'...); this.f'' = f'''; ... }
    M      ::= C m (C v...) { C v; ...  s... }
    s      ::= v = e;^l  |  return v;^l
    e      ::= v | v.f | v.m(v...) | new C(v...) | (C) v

Arguments are atomic (A-normal form); the surface parser accepts nested
expressions and :mod:`repro.fj.anf` flattens them.  Every statement
carries a unique label; ``succ`` maps a label to the following
statement in its method body (encoded here by keeping bodies as
tuples and a program-level successor table).

Like the CPS AST, statements and larger nodes are identity-hashed
(each occurs once per program); expressions are structural.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Union

Label = int

OBJECT = "Object"  # the built-in root class


# -- expressions (atomic; right-hand sides of assignments) --------------


@dataclass(frozen=True, slots=True)
class VarExp:
    """``v``"""

    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True, slots=True)
class FieldAccess:
    """``v.f``"""

    target: str
    fieldname: str

    def __str__(self) -> str:
        return f"{self.target}.{self.fieldname}"


@dataclass(frozen=True, slots=True)
class Invoke:
    """``v.m(v1, ..., vn)``"""

    target: str
    method: str
    args: tuple[str, ...]

    def __str__(self) -> str:
        return f"{self.target}.{self.method}({', '.join(self.args)})"


@dataclass(frozen=True, slots=True)
class New:
    """``new C(v1, ..., vn)``"""

    classname: str
    args: tuple[str, ...]

    def __str__(self) -> str:
        return f"new {self.classname}({', '.join(self.args)})"


@dataclass(frozen=True, slots=True)
class Cast:
    """``(C) v``"""

    classname: str
    target: str

    def __str__(self) -> str:
        return f"({self.classname}) {self.target}"


Exp = Union[VarExp, FieldAccess, Invoke, New, Cast]


# -- statements -----------------------------------------------------------


@dataclass(frozen=True, eq=False, slots=True)
class Assign:
    """``v = e;^label``"""

    var: str
    exp: Exp
    label: Label

    # Label-hashed (labels are unique per program) so engine set
    # iteration orders are reproducible across processes.
    def __hash__(self) -> int:
        return self.label

    def __str__(self) -> str:
        return f"{self.var} = {self.exp};"


@dataclass(frozen=True, eq=False, slots=True)
class Return:
    """``return v;^label``"""

    var: str
    label: Label

    # Label-hashed (labels are unique per program) so engine set
    # iteration orders are reproducible across processes.
    def __hash__(self) -> int:
        return self.label

    def __str__(self) -> str:
        return f"return {self.var};"


Stmt = Union[Assign, Return]


# -- members ---------------------------------------------------------------


@dataclass(frozen=True, eq=False, slots=True)
class Konstructor:
    """``C(C1 p1, ..., Cn pn) { super(p...); this.f = p; ... }``"""

    classname: str
    params: tuple[tuple[str, str], ...]       # (type, name)
    super_args: tuple[str, ...]               # names of params passed up
    field_inits: tuple[tuple[str, str], ...]  # (field, param name)

    def param_names(self) -> tuple[str, ...]:
        return tuple(name for _, name in self.params)

    def __str__(self) -> str:
        params = ", ".join(f"{t} {n}" for t, n in self.params)
        inits = " ".join(f"this.{f} = {p};" for f, p in self.field_inits)
        return (f"{self.classname}({params}) "
                f"{{ super({', '.join(self.super_args)}); {inits} }}")


@dataclass(frozen=True, eq=False, slots=True)
class Method:
    """``C m(C v...) { C v; ... s... }`` — typed locals, then statements."""

    ret_type: str
    name: str
    params: tuple[tuple[str, str], ...]   # (type, name)
    locals: tuple[tuple[str, str], ...]   # (type, name)
    body: tuple[Stmt, ...]
    owner: str = ""                       # set by ClassDef construction

    def param_names(self) -> tuple[str, ...]:
        return tuple(name for _, name in self.params)

    def local_names(self) -> tuple[str, ...]:
        return tuple(name for _, name in self.locals)

    def __str__(self) -> str:
        params = ", ".join(f"{t} {n}" for t, n in self.params)
        return f"{self.ret_type} {self.name}({params}) {{...}}"

    @property
    def qualified_name(self) -> str:
        return f"{self.owner}.{self.name}" if self.owner else self.name


@dataclass(frozen=True, eq=False, slots=True)
class ClassDef:
    """``class C extends C' { fields; K; methods }``"""

    name: str
    superclass: str
    fields: tuple[tuple[str, str], ...]   # (type, name), own fields only
    konstructor: Konstructor
    methods: tuple[Method, ...]

    def field_names(self) -> tuple[str, ...]:
        return tuple(name for _, name in self.fields)

    def method(self, name: str) -> Method | None:
        for method in self.methods:
            if method.name == name:
                return method
        return None

    def __str__(self) -> str:
        return f"class {self.name} extends {self.superclass} {{...}}"


def iter_statements(method: Method) -> Iterator[Stmt]:
    yield from method.body


def method_labels(method: Method) -> list[Label]:
    return [stmt.label for stmt in method.body]
