"""The sharded worker fleet behind the asyncio front door.

A :class:`WorkerFleet` owns N **long-lived** worker processes — not a
task pool: the whole point of consistent-hash routing
(:mod:`repro.service.sharding`) is that the *same* worker sees the
same program again, and that only pays off if the worker survives
between jobs, keeping its :class:`~repro.cache.ProgramCache` of
compiled ``Program`` objects (with the structural plans the
specializer cached on them) warm across submissions.

Threading model (the part that has to be right):

* Each worker child runs :func:`_worker_main`: a plain recv → run →
  send loop over its end of a duplex pipe.  It processes jobs
  serially, FIFO; queue depth is bounded by the *front door's*
  admission control, never by blocking here.
* The parent side gives every worker two daemon threads.  A **sender**
  drains an unbounded in-process outbox onto the pipe, so dispatching
  never blocks the event loop even when a worker is busy and the pipe
  buffer is full of 16 MB sources.  A **pump** blocks in
  :func:`multiprocessing.connection.wait` on the pipe *and* the
  process sentinel, delivering results via ``on_result`` and — after
  draining any results the worker managed to send before dying —
  reporting death via ``on_death``.  Both callbacks fire on pump
  threads; the server marshals them into its event loop with
  ``loop.call_soon_threadsafe``.
* Exactly-once death reporting: a dead worker fires ``on_death`` once,
  and never during :meth:`WorkerFleet.stop` (shutdown is not an
  outage).

Workers use the ``forkserver`` start method where available (fork
from a single-threaded helper — forking the threaded, asyncio-running
parent directly is deprecated), falling back to ``spawn``.
"""

from __future__ import annotations

import multiprocessing
import os
import queue
import threading
from multiprocessing.connection import wait as _wait_connections


def _fleet_context():
    """A start method safe for a threaded parent (see module doc)."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context(
        "forkserver" if "forkserver" in methods else "spawn")


def _worker_main(conn, worker_id: str,
                 codegen_dir=None) -> None:
    """The worker child's whole life: recv a kind-tagged request, run
    it warm, send the row back with cumulative stats.  Exits on pipe
    EOF (parent closed its end — the clean shutdown signal) or a
    broken pipe.

    Request kinds (see :meth:`WorkerFleet.dispatch`):

    * ``("job", ticket, spec)`` — one-shot analysis;
    * ``("session", ticket, session_id, spec)`` — open a warm
      session;
    * ``("edit", ticket, session_id, source, timeout)`` — incremental
      re-analysis of a session;
    * ``("query", ticket, session_id, kind, target)`` — point query.

    Session state lives here, in the worker, next to the program
    cache it pins — the parent only routes by session id.
    """
    from repro.cache import CodegenCache, ProgramCache
    from repro.analysis.codegen import (
        default_codegen_cache, set_default_codegen_cache,
    )
    from repro.service.jobs import WorkerSessions, run_job
    programs = ProgramCache()
    # The worker's generated-module store: installed as the process
    # default so the codegen stage inside run_job hits it without
    # plumbing.  Disk entries persist across worker restarts (keys
    # are content hashes), so a respawned shard re-warms from disk
    # for free.  ``codegen_dir`` relocates it next to a ``serve
    # --cache-dir`` result cache (the fleet spawns, so the parent's
    # default does not carry over).
    if codegen_dir is not None:
        try:
            codegen = CodegenCache(codegen_dir)
        except OSError:
            codegen = CodegenCache()
        set_default_codegen_cache(codegen)
    else:
        codegen = default_codegen_cache()
    sessions = WorkerSessions(programs=programs)
    jobs_done = 0
    plans_reused = 0
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            return
        if message is None:  # explicit stop sentinel
            return
        kind, ticket = message[0], message[1]
        if kind == "session":
            row = sessions.create(message[2], message[3])
        elif kind == "edit":
            row = sessions.edit(message[2], message[3], message[4])
        elif kind == "query":
            row = sessions.query(message[2], message[3], message[4])
        else:
            row = run_job(message[2], programs=programs)
        jobs_done += 1
        # A program-cache hit reuses the compiled Program *object*,
        # and with it every structural plan the specializer already
        # built and cached on it — that is the warm-worker win the
        # sharding tests observe.
        if row.get("warm"):
            plans_reused += 1
        stats = {"jobs": jobs_done, "plans_reused": plans_reused,
                 "programs": programs.as_dict(),
                 "codegen": codegen.as_dict(),
                 "sessions": sessions.counters()}
        try:
            conn.send((ticket, row, stats))
        except (OSError, BrokenPipeError):
            return


class WorkerHandle:
    """Parent-side view of one worker process."""

    def __init__(self, worker_id: str, process, conn):
        self.worker_id = worker_id
        self.process = process
        self.conn = conn
        self.outbox: queue.Queue = queue.Queue()
        self.alive = True
        # Cumulative stats as last reported by the worker (updated by
        # the pump thread; plain int reads are safe cross-thread).
        self.jobs = 0
        self.plans_reused = 0
        # Last-reported cache counter dicts.  ``programs`` was always
        # shipped in the stats tuple but dropped on the floor here;
        # both stores now surface symmetrically in stats_row.
        self.programs: dict = {}
        self.codegen: dict = {}

    @property
    def pid(self) -> int | None:
        return self.process.pid

    def stats_row(self) -> dict:
        return {"worker": self.worker_id, "pid": self.pid,
                "alive": self.alive, "jobs": self.jobs,
                "plans_reused": self.plans_reused,
                "programs": dict(self.programs),
                "codegen": dict(self.codegen)}


class WorkerFleet:
    """N long-lived workers plus their sender/pump threads.

    ``on_result(worker_id, ticket, row, stats)`` and
    ``on_death(worker_id)`` are invoked **from pump threads**; the
    caller is responsible for marshalling into its own loop.
    """

    def __init__(self, size: int, on_result, on_death,
                 codegen_dir=None):
        if size < 1:
            raise ValueError(f"fleet needs at least one worker, got "
                             f"{size}")
        self.size = size
        self.on_result = on_result
        self.on_death = on_death
        self.codegen_dir = codegen_dir
        self._handles: dict[str, WorkerHandle] = {}
        self._threads: list[threading.Thread] = []
        self._stopping = False
        self._lock = threading.Lock()

    # -- lifecycle -------------------------------------------------------

    def start(self) -> "WorkerFleet":
        context = _fleet_context()
        for index in range(self.size):
            worker_id = f"w{index}"
            parent_conn, child_conn = context.Pipe(duplex=True)
            process = context.Process(
                target=_worker_main,
                args=(child_conn, worker_id, self.codegen_dir),
                name=f"repro-{worker_id}", daemon=True)
            process.start()
            child_conn.close()  # the child's copy lives in the child
            handle = WorkerHandle(worker_id, process, parent_conn)
            self._handles[worker_id] = handle
            for target in (self._sender, self._pump):
                thread = threading.Thread(
                    target=target, args=(handle,), daemon=True,
                    name=f"repro-{worker_id}-{target.__name__}")
                thread.start()
                self._threads.append(thread)
        return self

    def stop(self) -> None:
        """Retire every worker: close the pipes (the child's EOF
        signal), give each a moment to exit, then force the rest."""
        with self._lock:
            if self._stopping:
                return
            self._stopping = True
        for handle in self._handles.values():
            handle.outbox.put(None)  # unblock + retire the sender
        for handle in self._handles.values():
            try:
                handle.conn.close()
            except OSError:
                pass
            handle.process.join(timeout=2.0)
            if handle.process.is_alive():
                handle.process.kill()
                handle.process.join(timeout=2.0)
            handle.alive = False
        for thread in self._threads:
            thread.join(timeout=1.0)

    # -- parent-side operations ------------------------------------------

    def dispatch(self, worker_id: str, request: tuple) -> bool:
        """Queue one kind-tagged request (see :func:`_worker_main`)
        for *worker_id*; never blocks.  False when the worker is
        already known-dead (the caller re-routes or errors out)."""
        handle = self._handles.get(worker_id)
        if handle is None or not handle.alive:
            return False
        handle.outbox.put(request)
        return True

    def live_workers(self) -> list[str]:
        return [worker_id
                for worker_id, handle in self._handles.items()
                if handle.alive]

    def handle(self, worker_id: str) -> WorkerHandle | None:
        return self._handles.get(worker_id)

    def stats_rows(self) -> list[dict]:
        return [handle.stats_row()
                for _, handle in sorted(self._handles.items())]

    def kill(self, worker_id: str) -> None:
        """Hard-kill one worker (SIGKILL) — the fault-injection hook.
        Death detection and re-dispatch then run the normal path, as
        they would for an OOM kill in production."""
        handle = self._handles[worker_id]
        handle.process.kill()

    # -- per-worker threads ----------------------------------------------

    def _sender(self, handle: WorkerHandle) -> None:
        """Drain the outbox onto the pipe.  Blocking in conn.send is
        fine *here* — this thread exists so the event loop never
        does."""
        while True:
            item = handle.outbox.get()
            if item is None:
                return
            try:
                handle.conn.send(item)
            except (OSError, BrokenPipeError, ValueError):
                return  # pump thread owns death reporting

    def _pump(self, handle: WorkerHandle) -> None:
        """Deliver results; on death, drain stragglers then report."""
        sentinel = handle.process.sentinel
        while True:
            try:
                ready = _wait_connections([handle.conn, sentinel])
            except OSError:
                self._died(handle)
                return
            if handle.conn in ready:
                try:
                    message = handle.conn.recv()
                except (EOFError, OSError):
                    self._died(handle)
                    return
                self._deliver(handle, message)
            elif sentinel in ready:
                # The process is gone but results it sent before dying
                # may still sit in the pipe — deliver those first so a
                # completed job is never replayed as a failure.
                try:
                    while handle.conn.poll(0):
                        self._deliver(handle, handle.conn.recv())
                except (EOFError, OSError):
                    pass
                self._died(handle)
                return

    def _deliver(self, handle: WorkerHandle, message) -> None:
        ticket, row, stats = message
        handle.jobs = stats["jobs"]
        handle.plans_reused = stats["plans_reused"]
        handle.programs = stats.get("programs", {})
        handle.codegen = stats.get("codegen", {})
        self.on_result(handle.worker_id, ticket, row, stats)

    def _died(self, handle: WorkerHandle) -> None:
        with self._lock:
            if self._stopping or not handle.alive:
                return
            handle.alive = False
        self.on_death(handle.worker_id)
