"""The job core: one analysis request, from source text to report.

Every front end that answers an analysis question — the ``analyze``
subcommand, the ``bench`` worker processes and the ``serve`` worker
pool — runs through this module, so they cannot drift apart: the
central :mod:`~repro.analysis.registry` picks the analysis, the same
renderer produces the report text, and the same key function
addresses the persistent cache.  The differential test suite
(``tests/test_service_differential.py``) holds the server to
byte-identical output against ``analyze``; sharing this code path is
what makes that a stable property rather than a coincidence.

Since the kernel refactor the job core is fully registry-driven: both
languages (Scheme/CPS *and* Featherweight Java) flow through
:class:`JobSpec`/:func:`run_job`, and a newly registered analysis is
reachable from ``analyze``, ``submit`` and the server with no edits
here — there is no per-analysis dispatch table left.

A request is a :class:`JobSpec` (program text, analysis, context
depth, budget, values domain, report selection).  :func:`run_job`
executes one spec and always returns a row dict with ``status`` in
``ok | timeout | error`` — it never raises, which makes it safe as a
:class:`concurrent.futures.ProcessPoolExecutor` task.

Cache-key audit
---------------

:func:`job_cache_key` must cover **every result-affecting option** of
a job: the exact source text, the analysis name, the context depth,
``simplify`` (changes the analyzed term), ``report`` (changes the
rendered text) and ``values``, ``specialize`` and ``codegen`` (each
of the plain/interned domains, the specialized/generic step loops and
the generated/compiled transfer functions produces byte-identical
reports *today*, but those equivalences are theorems about the
current code, not the key scheme's business — flipping any of them
must never return a stale entry).  A batch client query
(``query_kind``/``query_target``) replaces the rendered report with
the pass's JSON answer, so both fields enter the key — but only when
set, keeping every pre-existing plain-job key unchanged.  The
wall-clock ``timeout``
is deliberately excluded: a completed result does not depend on how
long it was allowed to take, and timed-out runs are never cached.
The cache schema version rides inside
:func:`repro.cache.cache_key` itself.  A regression test
(``tests/test_cache.py``) locks each of these facts down.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass

from repro.analysis.clients import run_result_query, validate_query
from repro.analysis.registry import registry, run_analysis
from repro.errors import AnalysisTimeout, ReproError, UsageError
from repro.util.budget import Budget

#: The *builtin* Scheme/CPS analyses — an import-time snapshot of the
#: registry, kept as stable public tuples for test parametrization
#: and docs.  Dispatch itself (validate_job_options, run_job,
#: build_matrix, ``bench --analyses all``) always consults the live
#: registry, so analyses registered at runtime work everywhere even
#: though they do not appear here.
SCHEME_ANALYSES = registry().names("scheme")

#: The builtin Featherweight Java analyses (same snapshot caveat).
FJ_ANALYSES = registry().names("fj")

#: Value-domain representations (see :mod:`repro.analysis.interning`):
#: ``interned`` is the bitset production path, ``plain`` the
#: pre-interning object domain.
VALUE_MODES = ("interned", "plain")

#: Report selections understood by :func:`render_reports`.
REPORT_CHOICES = ("flow", "inlining", "envs", "all")


def run_scheme_analysis(program, analysis: str, parameter: int,
                        budget: Budget | None = None,
                        plain: bool = False,
                        specialize: bool | None = None,
                        codegen: bool | None = None,
                        obj_depth: int | None = None):
    """Dispatch one Scheme analysis via the registry."""
    return run_analysis(analysis, program, parameter, budget,
                        plain=plain, language="scheme",
                        specialize=specialize, codegen=codegen,
                        obj_depth=obj_depth)


def run_fj_analysis(program, analysis: str, parameter: int,
                    budget: Budget | None = None,
                    plain: bool = False,
                    specialize: bool | None = None,
                    codegen: bool | None = None,
                    obj_depth: int | None = None):
    """Dispatch one Featherweight Java analysis via the registry."""
    return run_analysis(analysis, program, parameter, budget,
                        plain=plain, language="fj",
                        specialize=specialize, codegen=codegen,
                        obj_depth=obj_depth)


def validate_job_options(analysis: str, context: int,
                         simplify: bool = False, report: str = "all",
                         values: str = "interned"):
    """Validate the source-independent options of a job.

    Shared between :meth:`JobSpec.validate` and the CLI front ends,
    which call it *before* reading any source so that a typo fails
    fast (and never blocks on stdin).  Raises
    :class:`~repro.errors.UsageError`; returns the analysis's
    registry spec.
    """
    spec = registry().get(analysis)  # UsageError on a miss
    if isinstance(context, bool) or not isinstance(context, int) \
            or context < 0:
        raise UsageError(
            f"context depth must be a non-negative integer, got "
            f"{context!r}")
    if spec.language == "fj" and simplify:
        raise UsageError(
            "--simplify shrink-simplifies CPS terms and does not "
            "apply to Featherweight Java analyses")
    if report not in REPORT_CHOICES:
        raise UsageError(
            f"unknown report {report!r}; choose from "
            f"{', '.join(REPORT_CHOICES)}")
    if spec.language == "fj" and report != "all":
        raise UsageError(
            f"Featherweight Java analyses render a single "
            f"points-to report; --report {report!r} is Scheme-only")
    if values not in VALUE_MODES:
        raise UsageError(
            f"unknown values domain {values!r}; choose from "
            f"{', '.join(VALUE_MODES)}")
    return spec


@dataclass(frozen=True, slots=True)
class JobSpec:
    """One analysis question, as a value.

    ``timeout`` is the per-job wall-clock budget in seconds (``None``
    means unlimited from the CLI; the server substitutes its default
    budget so no request can hold a worker forever).
    """

    source: str
    analysis: str = "mcfa"
    context: int = 1
    simplify: bool = False
    report: str = "all"
    values: str = "interned"
    timeout: float | None = None
    #: Route the run through the per-policy specialization stage
    #: (byte-identical results either way; False is the
    #: ``--no-specialize`` escape hatch).
    specialize: bool = True
    #: Run covered policies through generated per-node step source
    #: (byte-identical to the compiled loops; False is the
    #: ``--codegen off`` escape hatch).  Has no effect when
    #: ``specialize`` is off — codegen rides on specialization.
    codegen: bool = True
    #: Batch client query (see :mod:`repro.analysis.clients`): when
    #: ``query_kind`` is set the job's stdout is the pass's JSON
    #: answer instead of the rendered reports, and the row carries
    #: the answer object under ``answer``.
    query_kind: str | None = None
    query_target: str | None = None

    def validate(self) -> "JobSpec":
        """Raise :class:`~repro.errors.ReproError` on a bad field.

        Option errors (unknown analysis, bad context depth,
        Scheme-only flags on FJ analyses) raise the
        :class:`~repro.errors.UsageError` subclass so the CLI can
        exit 2 with a one-line message.
        """
        if not isinstance(self.source, str) or not self.source.strip():
            raise ReproError("job source must be non-empty program "
                             "text")
        spec = validate_job_options(self.analysis, self.context,
                                    self.simplify, self.report,
                                    self.values)
        if self.query_target is not None and self.query_kind is None:
            raise UsageError(
                "query_target is meaningless without query_kind")
        if self.query_kind is not None:
            validate_query(self.query_kind, self.query_target,
                           language=spec.language)
        if not isinstance(self.specialize, bool):
            raise UsageError(
                f"specialize must be a boolean, got "
                f"{self.specialize!r}")
        if not isinstance(self.codegen, bool):
            raise UsageError(
                f"codegen must be a boolean, got {self.codegen!r}")
        if self.timeout is not None:
            if isinstance(self.timeout, bool) \
                    or not isinstance(self.timeout, (int, float)) \
                    or self.timeout <= 0:
                raise ReproError(
                    f"timeout must be a positive number of seconds, "
                    f"got {self.timeout!r}")
        return self


def job_cache_key(spec: JobSpec) -> str:
    """The persistent-cache key of one job (see the module docstring
    for the audit of what must be included)."""
    from repro.cache import cache_key
    extra = {"command": "analyze",
             "simplify": spec.simplify,
             "report": spec.report,
             "values": spec.values,
             "specialize": spec.specialize,
             "codegen": spec.codegen}
    if spec.query_kind is not None:
        # Only when set: every plain-job key predating the client
        # layer stays byte-identical.
        extra["query_kind"] = spec.query_kind
        extra["query_target"] = spec.query_target
    return cache_key(spec.source, spec.analysis, spec.context, extra)


def cache_payload(row: dict) -> dict:
    """The slice of a finished row worth persisting."""
    return {key: row[key]
            for key in ("stdout", "summary", "answer", "wall_seconds")
            if key in row}


def render_reports(program, result, report: str = "all") -> str:
    """The ``analyze`` output text for one result — the exact bytes
    the differential suite compares across front ends."""
    from repro.reporting import (
        environment_report, flow_report, inlining_report,
    )
    lines = [f"program: {program.stats()}"]
    if report in ("flow", "all"):
        lines += ["", flow_report(result)]
    if report in ("inlining", "all"):
        lines += ["", inlining_report(result)]
    if report in ("envs", "all"):
        lines += ["", environment_report(result)]
    return "\n".join(lines) + "\n"


def render_fj_reports(program, result) -> str:
    """The ``analyze`` output text for a Featherweight Java result."""
    from repro.reporting import fj_report
    return (f"program: {program.stats()}\n\n"
            f"{fj_report(result)}\n")


def _compile_for_job(spec: JobSpec, language: str, programs=None):
    """Compile one spec's source, through the worker's warm
    :class:`~repro.cache.ProgramCache` when given; returns
    ``(program, warm)``."""
    from repro.cache import ProgramCache
    from repro.cps.simplify import simplify_program
    from repro.scheme.cps_transform import compile_program
    program = None
    program_key = None
    if programs is not None:
        program_key = ProgramCache.key(language, spec.source,
                                       spec.simplify)
        program = programs.get(program_key)
        if program is not None:
            return program, True
    if language == "fj":
        from repro.fj import parse_fj
        program = parse_fj(spec.source)
    else:
        program = compile_program(spec.source)
        if spec.simplify:
            program = simplify_program(program)
    if programs is not None:
        programs.put(program_key, program)
    return program, False


class WorkerSessions:
    """The worker-side table of live analysis sessions.

    One per fleet worker, next to its :class:`~repro.cache.
    ProgramCache`: maps session ids to warm
    :class:`~repro.analysis.incremental.AnalysisSession` objects, LRU
    bounded (a warm store is memory, not disk).  While a session is
    live its compiled-program cache entry is *pinned* so LRU eviction
    there cannot drop the object the session was built from; the pin
    moves when an edit re-keys the source and is released when the
    session is evicted or dropped.

    Every method returns a row shaped like :func:`run_job`'s — the
    fleet worker sends it back verbatim — and never raises.
    """

    def __init__(self, programs=None, capacity: int = 8):
        if capacity < 1:
            raise ValueError(f"capacity must be positive, got "
                             f"{capacity}")
        self.programs = programs
        self.capacity = capacity
        #: id → (session, program_key, report, simplify), LRU order.
        self._sessions: dict[str, tuple] = {}
        self.created = 0
        self.evicted = 0
        self.dropped = 0

    def __len__(self) -> int:
        return len(self._sessions)

    def counters(self) -> dict:
        resumed = sum(entry[0].resumed
                      for entry in self._sessions.values())
        scratch = sum(entry[0].scratch
                      for entry in self._sessions.values())
        return {"open": len(self._sessions), "created": self.created,
                "evicted": self.evicted, "dropped": self.dropped,
                "resumed": resumed, "scratch": scratch}

    # -- bookkeeping -----------------------------------------------------

    def _pin(self, key) -> None:
        if self.programs is not None and key is not None:
            self.programs.pin(key)

    def _unpin(self, key) -> None:
        if self.programs is not None and key is not None:
            self.programs.unpin(key)

    def _touch(self, session_id: str) -> tuple | None:
        entry = self._sessions.pop(session_id, None)
        if entry is not None:
            self._sessions[session_id] = entry  # refresh to MRU
        return entry

    def _install(self, session_id: str, entry: tuple) -> None:
        self.drop(session_id)  # replacing an id releases its pin
        self._sessions[session_id] = entry
        while len(self._sessions) > self.capacity:
            victim = next(iter(self._sessions))
            key = self._sessions.pop(victim)[1]
            self._unpin(key)
            self.evicted += 1

    def drop(self, session_id: str) -> bool:
        entry = self._sessions.pop(session_id, None)
        if entry is None:
            return False
        self._unpin(entry[1])
        self.dropped += 1
        return True

    @staticmethod
    def _missing(session_id: str, row: dict) -> dict:
        row["status"] = "error"
        row["error"] = (f"unknown session {session_id!r} (never "
                        f"opened, expired from this worker, or lost "
                        f"to a worker death)")
        row["session_dropped"] = True  # the server unlearns the id
        return row

    # -- operations ------------------------------------------------------

    def create(self, session_id: str, spec: JobSpec) -> dict:
        """Open a session: compile, run the tracked fixpoint, keep
        the warm state under *session_id*."""
        from repro.analysis.incremental import AnalysisSession
        from repro.cache import ProgramCache
        row = {"session": session_id, "analysis": spec.analysis,
               "context": spec.context, "values": spec.values,
               "pid": os.getpid()}
        started = time.perf_counter()
        try:
            language = validate_job_options(
                spec.analysis, spec.context, spec.simplify,
                spec.report, spec.values).language
            budget = Budget(max_seconds=spec.timeout).start()
            program, warm = _compile_for_job(spec, language,
                                             self.programs)
            row["warm"] = warm
            session = AnalysisSession(
                program, spec.analysis, spec.context,
                plain=spec.values == "plain", budget=budget)
            program_key = None if self.programs is None else \
                ProgramCache.key(language, spec.source, spec.simplify)
            self._pin(program_key)
            self._install(session_id, (session, program_key,
                                       spec.report, spec.simplify))
            self.created += 1
            row["stdout"] = render_reports(session.program,
                                           session.result, spec.report)
            row["summary"] = session.result.summary()
            row["mode"] = "scratch"
            row["status"] = "ok"
        except AnalysisTimeout as error:
            row["status"] = "timeout"
            row["error"] = str(error)
        except ReproError as error:
            row["status"] = "error"
            row["error"] = str(error)
        except Exception as error:  # keep the worker alive
            row["status"] = "error"
            row["error"] = f"{type(error).__name__}: {error}"
        row["wall_seconds"] = round(time.perf_counter() - started, 6)
        return row

    def edit(self, session_id: str, source: str,
             timeout: float | None) -> dict:
        """Re-analyze a session against edited *source* — warm resume
        when the tree diff allows, from-scratch otherwise."""
        from repro.cache import ProgramCache
        row = {"session": session_id, "pid": os.getpid()}
        started = time.perf_counter()
        entry = self._touch(session_id)
        if entry is None:
            row["wall_seconds"] = round(
                time.perf_counter() - started, 6)
            return self._missing(session_id, row)
        session, old_key, report, simplify = entry
        try:
            budget = Budget(max_seconds=timeout).start()
            spec = JobSpec(source=source, analysis=session.analysis,
                           context=session.parameter,
                           simplify=simplify,
                           values="plain" if session.plain
                           else "interned")
            program, warm = _compile_for_job(spec, "scheme",
                                             self.programs)
            row["warm"] = warm
            outcome = session.edit(program, budget)
            new_key = None if self.programs is None else \
                ProgramCache.key("scheme", source, simplify)
            if new_key != old_key:
                self._pin(new_key)
                self._unpin(old_key)
                self._sessions[session_id] = (session, new_key,
                                              report, simplify)
            row["stdout"] = render_reports(session.program,
                                           session.result, report)
            row["summary"] = session.result.summary()
            row["mode"] = outcome.mode
            row["reason"] = outcome.reason
            row["kept_ratio"] = round(outcome.kept_ratio, 4)
            row["affected"] = outcome.affected
            row["cleared"] = outcome.cleared
            row["seeds"] = outcome.seeds
            row["steps"] = session.result.steps
            row["status"] = "ok"
        except AnalysisTimeout as error:
            # Even the from-scratch shadow path ran out of budget;
            # the warm state may be half-rebuilt, so the session is
            # dropped rather than left lying.
            self.drop(session_id)
            row["status"] = "timeout"
            row["error"] = str(error)
            row["session_dropped"] = True
        except ReproError as error:
            row["status"] = "error"
            row["error"] = str(error)
        except Exception as error:
            row["status"] = "error"
            row["error"] = f"{type(error).__name__}: {error}"
        row["wall_seconds"] = round(time.perf_counter() - started, 6)
        return row

    def query(self, session_id: str, kind: str,
              target: str | None) -> dict:
        """Answer one query from a session's warm state."""
        row = {"session": session_id, "pid": os.getpid()}
        started = time.perf_counter()
        entry = self._touch(session_id)
        if entry is None:
            row["wall_seconds"] = round(
                time.perf_counter() - started, 6)
            return self._missing(session_id, row)
        session = entry[0]
        try:
            row["answer"] = session.query(kind, target)
            row["session_stats"] = session.stats()
            row["status"] = "ok"
        except ReproError as error:
            row["status"] = "error"
            row["error"] = str(error)
        except Exception as error:
            row["status"] = "error"
            row["error"] = f"{type(error).__name__}: {error}"
        row["wall_seconds"] = round(time.perf_counter() - started, 6)
        return row


def run_job(spec: JobSpec, programs=None) -> dict:
    """Execute one job; always returns a row, never raises.

    This is the worker entry point: it compiles the program in the
    worker process (so front-end work parallelizes too) and runs the
    analysis under the spec's cooperative wall-clock budget.  The
    row's ``status`` is ``ok`` (with ``stdout`` and ``summary``),
    ``timeout`` or ``error`` (with ``error``).

    *programs*, when given, is a :class:`repro.cache.ProgramCache` —
    the fleet worker's warm store.  A hit skips parse/CPS/simplify
    and reuses the compiled :class:`Program` object together with the
    structural plans the specializer cached on it; the row then
    carries ``warm: True``.  Warm and cold runs are byte-identical
    (the program is a pure value; plan caches only memoize), which
    ``tests/test_sharding.py`` pins.  Only successfully compiled
    programs are ever cached, so a source that fails the front end
    re-fails identically every time.
    """
    row = {"analysis": spec.analysis, "context": spec.context,
           "values": spec.values, "pid": os.getpid()}
    started = time.perf_counter()
    try:
        # run_job is authoritative even for callers that skipped
        # spec.validate(): option errors (unknown analysis,
        # Scheme-only flags on an FJ analysis) become error rows
        # rather than being silently ignored.
        language = validate_job_options(
            spec.analysis, spec.context, spec.simplify, spec.report,
            spec.values).language
        # The budget clock starts before the front end so compile and
        # simplify time count against the job's allowance; the check
        # is cooperative (between phases and per analysis step), so a
        # pathological source can overrun the budget by one compile —
        # bounded in the service by the protocol's frame size cap.
        budget = Budget(max_seconds=spec.timeout).start()
        program, warm = _compile_for_job(spec, language, programs)
        if programs is not None:
            row["warm"] = warm
        if budget.exhausted():
            raise AnalysisTimeout(
                f"analysis exceeded time budget of "
                f"{spec.timeout}s", elapsed=budget.elapsed)
        if language == "fj":
            result = run_fj_analysis(
                program, spec.analysis, spec.context, budget,
                plain=spec.values == "plain",
                specialize=spec.specialize,
                codegen=spec.codegen)
            row["stdout"] = render_fj_reports(program, result)
        else:
            result = run_scheme_analysis(
                program, spec.analysis, spec.context, budget,
                plain=spec.values == "plain",
                specialize=spec.specialize,
                codegen=spec.codegen)
            row["stdout"] = render_reports(program, result,
                                           spec.report)
        if spec.query_kind is not None:
            import json
            answer = run_result_query(result, spec.query_kind,
                                      spec.query_target)
            row["answer"] = answer
            row["stdout"] = json.dumps(answer, indent=2,
                                       sort_keys=True) + "\n"
        row["summary"] = result.summary()
        row["status"] = "ok"
    except AnalysisTimeout as error:
        row["status"] = "timeout"
        row["error"] = str(error)
    except ReproError as error:
        row["status"] = "error"
        row["error"] = str(error)
    except Exception as error:  # keep the pool alive
        row["status"] = "error"
        row["error"] = f"{type(error).__name__}: {error}"
    row["wall_seconds"] = round(time.perf_counter() - started, 6)
    return row
