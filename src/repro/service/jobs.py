"""The job core: one analysis request, from source text to report.

Every front end that answers an analysis question — the ``analyze``
subcommand, the ``bench`` worker processes and the ``serve`` worker
pool — runs through this module, so they cannot drift apart: the
central :mod:`~repro.analysis.registry` picks the analysis, the same
renderer produces the report text, and the same key function
addresses the persistent cache.  The differential test suite
(``tests/test_service_differential.py``) holds the server to
byte-identical output against ``analyze``; sharing this code path is
what makes that a stable property rather than a coincidence.

Since the kernel refactor the job core is fully registry-driven: both
languages (Scheme/CPS *and* Featherweight Java) flow through
:class:`JobSpec`/:func:`run_job`, and a newly registered analysis is
reachable from ``analyze``, ``submit`` and the server with no edits
here — there is no per-analysis dispatch table left.

A request is a :class:`JobSpec` (program text, analysis, context
depth, budget, values domain, report selection).  :func:`run_job`
executes one spec and always returns a row dict with ``status`` in
``ok | timeout | error`` — it never raises, which makes it safe as a
:class:`concurrent.futures.ProcessPoolExecutor` task.

Cache-key audit
---------------

:func:`job_cache_key` must cover **every result-affecting option** of
a job: the exact source text, the analysis name, the context depth,
``simplify`` (changes the analyzed term), ``report`` (changes the
rendered text) and ``values`` and ``specialize`` (each of the plain/interned domains
and the specialized/generic step loops produces byte-identical
reports *today*, but those equivalences are theorems about the
current code, not the key scheme's business — flipping either must
never return a stale entry).  The wall-clock ``timeout``
is deliberately excluded: a completed result does not depend on how
long it was allowed to take, and timed-out runs are never cached.
The cache schema version rides inside
:func:`repro.cache.cache_key` itself.  A regression test
(``tests/test_cache.py``) locks each of these facts down.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass

from repro.analysis.registry import registry, run_analysis
from repro.errors import AnalysisTimeout, ReproError, UsageError
from repro.util.budget import Budget

#: The *builtin* Scheme/CPS analyses — an import-time snapshot of the
#: registry, kept as stable public tuples for test parametrization
#: and docs.  Dispatch itself (validate_job_options, run_job,
#: build_matrix, ``bench --analyses all``) always consults the live
#: registry, so analyses registered at runtime work everywhere even
#: though they do not appear here.
SCHEME_ANALYSES = registry().names("scheme")

#: The builtin Featherweight Java analyses (same snapshot caveat).
FJ_ANALYSES = registry().names("fj")

#: Value-domain representations (see :mod:`repro.analysis.interning`):
#: ``interned`` is the bitset production path, ``plain`` the
#: pre-interning object domain.
VALUE_MODES = ("interned", "plain")

#: Report selections understood by :func:`render_reports`.
REPORT_CHOICES = ("flow", "inlining", "envs", "all")


def run_scheme_analysis(program, analysis: str, parameter: int,
                        budget: Budget | None = None,
                        plain: bool = False,
                        specialize: bool | None = None,
                        obj_depth: int | None = None):
    """Dispatch one Scheme analysis via the registry."""
    return run_analysis(analysis, program, parameter, budget,
                        plain=plain, language="scheme",
                        specialize=specialize, obj_depth=obj_depth)


def run_fj_analysis(program, analysis: str, parameter: int,
                    budget: Budget | None = None,
                    plain: bool = False,
                    specialize: bool | None = None,
                    obj_depth: int | None = None):
    """Dispatch one Featherweight Java analysis via the registry."""
    return run_analysis(analysis, program, parameter, budget,
                        plain=plain, language="fj",
                        specialize=specialize, obj_depth=obj_depth)


def validate_job_options(analysis: str, context: int,
                         simplify: bool = False, report: str = "all",
                         values: str = "interned"):
    """Validate the source-independent options of a job.

    Shared between :meth:`JobSpec.validate` and the CLI front ends,
    which call it *before* reading any source so that a typo fails
    fast (and never blocks on stdin).  Raises
    :class:`~repro.errors.UsageError`; returns the analysis's
    registry spec.
    """
    spec = registry().get(analysis)  # UsageError on a miss
    if isinstance(context, bool) or not isinstance(context, int) \
            or context < 0:
        raise UsageError(
            f"context depth must be a non-negative integer, got "
            f"{context!r}")
    if spec.language == "fj" and simplify:
        raise UsageError(
            "--simplify shrink-simplifies CPS terms and does not "
            "apply to Featherweight Java analyses")
    if report not in REPORT_CHOICES:
        raise UsageError(
            f"unknown report {report!r}; choose from "
            f"{', '.join(REPORT_CHOICES)}")
    if spec.language == "fj" and report != "all":
        raise UsageError(
            f"Featherweight Java analyses render a single "
            f"points-to report; --report {report!r} is Scheme-only")
    if values not in VALUE_MODES:
        raise UsageError(
            f"unknown values domain {values!r}; choose from "
            f"{', '.join(VALUE_MODES)}")
    return spec


@dataclass(frozen=True, slots=True)
class JobSpec:
    """One analysis question, as a value.

    ``timeout`` is the per-job wall-clock budget in seconds (``None``
    means unlimited from the CLI; the server substitutes its default
    budget so no request can hold a worker forever).
    """

    source: str
    analysis: str = "mcfa"
    context: int = 1
    simplify: bool = False
    report: str = "all"
    values: str = "interned"
    timeout: float | None = None
    #: Route the run through the per-policy specialization stage
    #: (byte-identical results either way; False is the
    #: ``--no-specialize`` escape hatch).
    specialize: bool = True

    def validate(self) -> "JobSpec":
        """Raise :class:`~repro.errors.ReproError` on a bad field.

        Option errors (unknown analysis, bad context depth,
        Scheme-only flags on FJ analyses) raise the
        :class:`~repro.errors.UsageError` subclass so the CLI can
        exit 2 with a one-line message.
        """
        if not isinstance(self.source, str) or not self.source.strip():
            raise ReproError("job source must be non-empty program "
                             "text")
        validate_job_options(self.analysis, self.context,
                             self.simplify, self.report, self.values)
        if not isinstance(self.specialize, bool):
            raise UsageError(
                f"specialize must be a boolean, got "
                f"{self.specialize!r}")
        if self.timeout is not None:
            if isinstance(self.timeout, bool) \
                    or not isinstance(self.timeout, (int, float)) \
                    or self.timeout <= 0:
                raise ReproError(
                    f"timeout must be a positive number of seconds, "
                    f"got {self.timeout!r}")
        return self


def job_cache_key(spec: JobSpec) -> str:
    """The persistent-cache key of one job (see the module docstring
    for the audit of what must be included)."""
    from repro.cache import cache_key
    return cache_key(spec.source, spec.analysis, spec.context,
                     {"command": "analyze",
                      "simplify": spec.simplify,
                      "report": spec.report,
                      "values": spec.values,
                      "specialize": spec.specialize})


def cache_payload(row: dict) -> dict:
    """The slice of a finished row worth persisting."""
    return {key: row[key]
            for key in ("stdout", "summary", "wall_seconds")
            if key in row}


def render_reports(program, result, report: str = "all") -> str:
    """The ``analyze`` output text for one result — the exact bytes
    the differential suite compares across front ends."""
    from repro.reporting import (
        environment_report, flow_report, inlining_report,
    )
    lines = [f"program: {program.stats()}"]
    if report in ("flow", "all"):
        lines += ["", flow_report(result)]
    if report in ("inlining", "all"):
        lines += ["", inlining_report(result)]
    if report in ("envs", "all"):
        lines += ["", environment_report(result)]
    return "\n".join(lines) + "\n"


def render_fj_reports(program, result) -> str:
    """The ``analyze`` output text for a Featherweight Java result."""
    from repro.reporting import fj_report
    return (f"program: {program.stats()}\n\n"
            f"{fj_report(result)}\n")


def run_job(spec: JobSpec, programs=None) -> dict:
    """Execute one job; always returns a row, never raises.

    This is the worker entry point: it compiles the program in the
    worker process (so front-end work parallelizes too) and runs the
    analysis under the spec's cooperative wall-clock budget.  The
    row's ``status`` is ``ok`` (with ``stdout`` and ``summary``),
    ``timeout`` or ``error`` (with ``error``).

    *programs*, when given, is a :class:`repro.cache.ProgramCache` —
    the fleet worker's warm store.  A hit skips parse/CPS/simplify
    and reuses the compiled :class:`Program` object together with the
    structural plans the specializer cached on it; the row then
    carries ``warm: True``.  Warm and cold runs are byte-identical
    (the program is a pure value; plan caches only memoize), which
    ``tests/test_sharding.py`` pins.  Only successfully compiled
    programs are ever cached, so a source that fails the front end
    re-fails identically every time.
    """
    from repro.cache import ProgramCache
    from repro.cps.simplify import simplify_program
    from repro.scheme.cps_transform import compile_program
    row = {"analysis": spec.analysis, "context": spec.context,
           "values": spec.values, "pid": os.getpid()}
    started = time.perf_counter()
    try:
        # run_job is authoritative even for callers that skipped
        # spec.validate(): option errors (unknown analysis,
        # Scheme-only flags on an FJ analysis) become error rows
        # rather than being silently ignored.
        language = validate_job_options(
            spec.analysis, spec.context, spec.simplify, spec.report,
            spec.values).language
        # The budget clock starts before the front end so compile and
        # simplify time count against the job's allowance; the check
        # is cooperative (between phases and per analysis step), so a
        # pathological source can overrun the budget by one compile —
        # bounded in the service by the protocol's frame size cap.
        budget = Budget(max_seconds=spec.timeout).start()
        program = None
        if programs is not None:
            program_key = ProgramCache.key(language, spec.source,
                                           spec.simplify)
            program = programs.get(program_key)
            row["warm"] = program is not None
        if program is None:
            if language == "fj":
                from repro.fj import parse_fj
                program = parse_fj(spec.source)
            else:
                program = compile_program(spec.source)
                if spec.simplify:
                    program = simplify_program(program)
            if programs is not None:
                programs.put(program_key, program)
        if budget.exhausted():
            raise AnalysisTimeout(
                f"analysis exceeded time budget of "
                f"{spec.timeout}s", elapsed=budget.elapsed)
        if language == "fj":
            result = run_fj_analysis(
                program, spec.analysis, spec.context, budget,
                plain=spec.values == "plain",
                specialize=spec.specialize)
            row["stdout"] = render_fj_reports(program, result)
        else:
            result = run_scheme_analysis(
                program, spec.analysis, spec.context, budget,
                plain=spec.values == "plain",
                specialize=spec.specialize)
            row["stdout"] = render_reports(program, result,
                                           spec.report)
        row["summary"] = result.summary()
        row["status"] = "ok"
    except AnalysisTimeout as error:
        row["status"] = "timeout"
        row["error"] = str(error)
    except ReproError as error:
        row["status"] = "error"
        row["error"] = str(error)
    except Exception as error:  # keep the pool alive
        row["status"] = "error"
        row["error"] = f"{type(error).__name__}: {error}"
    row["wall_seconds"] = round(time.perf_counter() - started, 6)
    return row
