"""The streaming NDJSON wire protocol of the analysis service.

One JSON object per ``\\n``-terminated line, UTF-8, in both
directions.  Requests carry an ``op``:

``submit``
    ``{"op": "submit", "id": "7", "source": "(f 1)" | "path": ...,
    "analysis": "kcfa", "context": 1, "simplify": false,
    "report": "all", "values": "interned", "timeout": 30.0}``
    — exactly one of ``source`` (program text) or ``path`` (a file
    readable *by the server*).  Everything but the program is
    optional and defaults as in :class:`~repro.service.jobs.JobSpec`.
    A submit carrying ``"session": true`` additionally opens a
    long-lived *analysis session* on the worker the job hashes to:
    the ``done`` event then carries a ``session`` id for follow-up
    ``edit``/``query`` requests.  Session submits bypass the result
    cache and coalescing (their value is the warm mutable state, not
    the one-shot answer).
``edit``
    ``{"op": "edit", "id": "8", "session": "s1", "source": ... |
    "path": ..., "timeout": 30.0}`` — re-analyze a session's program
    after an edit.  The worker aligns the labelled syntax trees and
    resumes the fixpoint from the warm store when the diff allows;
    the ``done`` event reports ``mode`` (``resumed | scratch``) and
    the resume statistics.
``query``
    Two forms.  *Session*: ``{"op": "query", "id": "9", "session":
    "s1", "kind": "value-of", "target": "x"}`` — a demand-driven
    query answered from the session's warm store (kinds:
    :data:`~repro.analysis.clients.SESSION_KINDS`; ``target`` is
    required, optional or forbidden per kind).  *Sessionless batch*:
    ``{"op": "query", "id": "9", "source": ... | "path": ...,
    "kind": "call-graph", "analysis": "kcfa", "context": 1, ...}`` —
    runs the analysis as an ordinary cached/coalesced job and
    answers the client pass from its result (kinds:
    :data:`~repro.analysis.clients.BATCH_KINDS`).  Either way the
    ``done`` event carries the ``answer`` object; the batch form's
    ``stdout`` is the answer's JSON rendering, byte-identical to
    ``python -m repro query --kind ...``.
``stats``
    ``{"op": "stats"}`` — one ``stats`` event with the scheduler's
    counters (see :meth:`AnalysisServer.stats_snapshot`).
``analyses``
    ``{"op": "analyses", "language": "fj"}`` (``language`` optional) —
    one ``analyses`` event listing every registered analysis straight
    from the server's :mod:`~repro.analysis.registry`, so remote
    clients can discover policies without a local checkout
    (``python -m repro submit --list-analyses``).
``ping`` / ``shutdown``
    Liveness probe / graceful stop.

The server streams events back, each tagged with the request's
``id`` as ``job``.  A submitted job progresses
``queued`` → ``running`` → ``done``, where the ``done`` event carries
``status`` (``ok | timeout | error``), the rendered ``stdout`` and
``summary`` on success, and the ``cached`` / ``coalesced`` flags
(cache hits skip ``running`` entirely; coalesced followers attach to
the leader's run).  ``done`` is terminal: in the rare race where a
follower attaches just as the leader finishes, its ``running`` frame
can trail the ``done``, so clients must stop at ``done`` and ignore
any late job-tagged frames.  Malformed requests produce an ``error``
event and never tear down the connection.

Backpressure is an event, not an error: when the worker shard a job
hashes to already has its admission queue full, the server answers
``queued`` → ``busy`` (with the target ``worker`` and a
``retry_after`` hint in seconds) instead of running anything.  A
``busy`` bounce is terminal *for that attempt only* — the job was not
started and will never produce ``done``; clients should back off and
resubmit (``ServiceClient.submit`` does, with jittered exponential
backoff).  ``busy`` is additive, so the protocol version is
unchanged: version-1 clients that predate it simply never see it
unless the fleet is saturated.

JSON strings escape newlines, so framing can never be broken by
report text; :data:`MAX_LINE_BYTES` bounds memory against a
misbehaving peer.
"""

from __future__ import annotations

import json

from repro.analysis.clients import (
    BATCH_KINDS, SESSION_KINDS, validate_query,
)
from repro.errors import ReproError
from repro.service.jobs import JobSpec

#: Bump when the wire format changes shape incompatibly.
PROTOCOL_VERSION = 1

#: Upper bound on one NDJSON line (requests embed whole programs).
MAX_LINE_BYTES = 16 * 1024 * 1024

#: Operations a request may carry.
OPS = ("submit", "edit", "query", "stats", "analyses", "ping",
       "shutdown")

#: Every field a ``submit`` request may carry; unknown fields are
#: rejected so a typo ("contxt") fails loudly instead of silently
#: analyzing under defaults.
SUBMIT_FIELDS = frozenset(
    ("op", "id", "source", "path", "analysis", "context", "simplify",
     "report", "values", "timeout", "specialize", "codegen",
     "session"))

#: Fields of an ``analyses`` request (same strictness as submit).
ANALYSES_FIELDS = frozenset(("op", "id", "language"))

#: Fields of an ``edit`` request: a new source against a session.
EDIT_FIELDS = frozenset(
    ("op", "id", "session", "source", "path", "timeout"))

#: Fields of a *session* ``query`` request.
QUERY_SESSION_FIELDS = frozenset(
    ("op", "id", "session", "kind", "target"))

#: Every field a ``query`` request may carry: the session form plus
#: the job options of the sessionless batch form.
QUERY_FIELDS = QUERY_SESSION_FIELDS | frozenset(
    ("source", "path", "analysis", "context", "simplify", "values",
     "timeout", "specialize", "codegen"))

#: Query kinds a session answers (re-exported for wire clients).
QUERY_KINDS = SESSION_KINDS

#: Query kinds the sessionless batch form answers.
BATCH_QUERY_KINDS = BATCH_KINDS


class ProtocolError(ReproError):
    """Raised for malformed frames or invalid request fields."""


def encode_message(message: dict) -> bytes:
    """One NDJSON frame: compact JSON plus the terminating newline."""
    return (json.dumps(message, sort_keys=True,
                       separators=(",", ":")) + "\n").encode("utf-8")


def decode_message(line: str | bytes) -> dict:
    """Parse one frame; raise :class:`ProtocolError` on anything that
    is not a JSON object."""
    if isinstance(line, bytes):
        if len(line) > MAX_LINE_BYTES:
            raise ProtocolError(
                f"frame exceeds {MAX_LINE_BYTES} bytes")
        try:
            line = line.decode("utf-8")
        except UnicodeDecodeError as error:
            raise ProtocolError(f"frame is not UTF-8: {error}") \
                from None
    try:
        message = json.loads(line)
    except json.JSONDecodeError as error:
        raise ProtocolError(f"frame is not JSON: {error}") from None
    if not isinstance(message, dict):
        raise ProtocolError(
            f"frame must be a JSON object, got "
            f"{type(message).__name__}")
    return message


def read_messages(stream):
    """Yield decoded frames from a binary line-iterable (socket file,
    test fixture, ...); blank lines are ignored."""
    for raw in stream:
        if not raw.strip():
            continue
        yield decode_message(raw)


def read_frame(stream) -> bytes | None:
    """One raw frame from a binary file-like, or None at EOF.

    Reads with a hard :data:`MAX_LINE_BYTES` limit so a peer
    streaming an endless unterminated line cannot balloon memory —
    ``readline`` returns at the cap, which an honest frame never
    hits, and the oversized read raises :class:`ProtocolError`
    (the connection cannot be resynced mid-line, so callers should
    drop it)."""
    while True:
        raw = stream.readline(MAX_LINE_BYTES + 1)
        if not raw:
            return None
        if len(raw) > MAX_LINE_BYTES:
            raise ProtocolError(
                f"frame exceeds {MAX_LINE_BYTES} bytes")
        if raw.strip():
            return raw


def submit_spec(message: dict) -> JobSpec:
    """Validate a ``submit`` request into a
    :class:`~repro.service.jobs.JobSpec`.

    ``path`` is read here, server-side; unreadable paths and every
    bad field raise :class:`ProtocolError` with a message naming the
    offender.
    """
    unknown = sorted(set(message) - SUBMIT_FIELDS)
    if unknown:
        raise ProtocolError(
            f"unknown submit field(s) {', '.join(unknown)}; allowed: "
            f"{', '.join(sorted(SUBMIT_FIELDS))}")
    source = _read_source(message, "submit")
    simplify = message.get("simplify", False)
    if not isinstance(simplify, bool):
        raise ProtocolError(
            f"simplify must be a JSON boolean, got {simplify!r}")
    specialize = message.get("specialize", True)
    if not isinstance(specialize, bool):
        raise ProtocolError(
            f"specialize must be a JSON boolean, got {specialize!r}")
    codegen = message.get("codegen", True)
    if not isinstance(codegen, bool):
        raise ProtocolError(
            f"codegen must be a JSON boolean, got {codegen!r}")
    spec = JobSpec(
        source=source,
        analysis=message.get("analysis", "mcfa"),
        context=message.get("context", 1),
        simplify=simplify,
        report=message.get("report", "all"),
        values=message.get("values", "interned"),
        timeout=message.get("timeout"),
        specialize=specialize,
        codegen=codegen)
    try:
        return spec.validate()
    except ProtocolError:
        raise
    except ReproError as error:
        raise ProtocolError(str(error)) from None


def _read_source(message: dict, op: str) -> str:
    """The program text of a request: exactly one of ``source`` or
    ``path`` (read here, server-side)."""
    source = message.get("source")
    path = message.get("path")
    if (source is None) == (path is None):
        raise ProtocolError(
            f"{op} needs exactly one of 'source' (program text) or "
            f"'path' (a file readable by the server)")
    if path is not None:
        if not isinstance(path, str):
            raise ProtocolError(f"path must be a string, got "
                                f"{type(path).__name__}")
        try:
            with open(path, "r", encoding="utf-8") as handle:
                source = handle.read()
        except (OSError, UnicodeDecodeError) as error:
            raise ProtocolError(f"cannot read path {path!r}: "
                                f"{error}") from None
    return source


def submit_wants_session(message: dict) -> bool:
    """Does this (already field-checked) submit open a session?"""
    session = message.get("session", False)
    if not isinstance(session, bool):
        raise ProtocolError(
            f"session must be a JSON boolean, got {session!r}")
    return session


def _session_id_of(message: dict, op: str) -> str:
    session = message.get("session")
    if not isinstance(session, str) or not session:
        raise ProtocolError(
            f"{op} needs 'session': the id a session-opening submit "
            f"returned")
    return session


def edit_request(message: dict) -> tuple[str, str, float | None]:
    """Validate an ``edit`` request into
    ``(session_id, source, timeout)``."""
    unknown = sorted(set(message) - EDIT_FIELDS)
    if unknown:
        raise ProtocolError(
            f"unknown edit field(s) {', '.join(unknown)}; allowed: "
            f"{', '.join(sorted(EDIT_FIELDS))}")
    session = _session_id_of(message, "edit")
    source = _read_source(message, "edit")
    timeout = message.get("timeout")
    if timeout is not None:
        if isinstance(timeout, bool) \
                or not isinstance(timeout, (int, float)) \
                or timeout <= 0:
            raise ProtocolError(
                f"timeout must be a positive number of seconds, got "
                f"{timeout!r}")
    return session, source, timeout


def _query_target_of(message: dict) -> str | None:
    target = message.get("target")
    if target is not None \
            and (not isinstance(target, str) or not target):
        raise ProtocolError(
            f"target must be a non-empty string, got {target!r}")
    return target


def query_request(message: dict) -> tuple[str, str, str | None]:
    """Validate a *session* ``query`` request into
    ``(session_id, kind, target)``."""
    unknown = sorted(set(message) - QUERY_SESSION_FIELDS)
    if unknown:
        batch_only = sorted(set(unknown) & QUERY_FIELDS)
        if batch_only:
            raise ProtocolError(
                f"field(s) {', '.join(batch_only)} apply only to "
                f"sessionless batch queries; a session query takes "
                f"kind and target")
        raise ProtocolError(
            f"unknown query field(s) {', '.join(unknown)}; allowed: "
            f"{', '.join(sorted(QUERY_SESSION_FIELDS))}")
    session = _session_id_of(message, "query")
    kind = message.get("kind")
    target = _query_target_of(message)
    try:
        validate_query(kind, target, session=True)
    except ReproError as error:
        raise ProtocolError(str(error)) from None
    return session, kind, target


def query_job_spec(message: dict) -> JobSpec:
    """Validate a *sessionless* ``query`` request into a
    :class:`~repro.service.jobs.JobSpec` carrying the query fields.

    The analysis itself is an ordinary job (cached, coalesced,
    sharded); the pass rides on its result.
    """
    unknown = sorted(set(message) - QUERY_FIELDS)
    if unknown:
        raise ProtocolError(
            f"unknown query field(s) {', '.join(unknown)}; allowed: "
            f"{', '.join(sorted(QUERY_FIELDS))}")
    kind = message.get("kind")
    if not isinstance(kind, str) or not kind:
        raise ProtocolError(
            f"query needs 'kind'; choose from "
            f"{', '.join(BATCH_KINDS)}")
    target = _query_target_of(message)
    source = _read_source(message, "query")
    simplify = message.get("simplify", False)
    if not isinstance(simplify, bool):
        raise ProtocolError(
            f"simplify must be a JSON boolean, got {simplify!r}")
    specialize = message.get("specialize", True)
    if not isinstance(specialize, bool):
        raise ProtocolError(
            f"specialize must be a JSON boolean, got {specialize!r}")
    codegen = message.get("codegen", True)
    if not isinstance(codegen, bool):
        raise ProtocolError(
            f"codegen must be a JSON boolean, got {codegen!r}")
    spec = JobSpec(
        source=source,
        analysis=message.get("analysis", "mcfa"),
        context=message.get("context", 1),
        simplify=simplify,
        values=message.get("values", "interned"),
        timeout=message.get("timeout"),
        specialize=specialize,
        codegen=codegen,
        query_kind=kind,
        query_target=target)
    try:
        return spec.validate()
    except ProtocolError:
        raise
    except ReproError as error:
        raise ProtocolError(str(error)) from None


def analyses_request_language(message: dict) -> str | None:
    """Validate an ``analyses`` request; returns its language filter
    (``None`` means every registered analysis)."""
    unknown = sorted(set(message) - ANALYSES_FIELDS)
    if unknown:
        raise ProtocolError(
            f"unknown analyses field(s) {', '.join(unknown)}; "
            f"allowed: {', '.join(sorted(ANALYSES_FIELDS))}")
    language = message.get("language")
    if language is None:
        return None
    if language not in ("scheme", "fj"):
        raise ProtocolError(
            f"language must be 'scheme' or 'fj', got {language!r}")
    return language
