"""The streaming NDJSON wire protocol of the analysis service.

One JSON object per ``\\n``-terminated line, UTF-8, in both
directions.  Requests carry an ``op``:

``submit``
    ``{"op": "submit", "id": "7", "source": "(f 1)" | "path": ...,
    "analysis": "kcfa", "context": 1, "simplify": false,
    "report": "all", "values": "interned", "timeout": 30.0}``
    — exactly one of ``source`` (program text) or ``path`` (a file
    readable *by the server*).  Everything but the program is
    optional and defaults as in :class:`~repro.service.jobs.JobSpec`.
``stats``
    ``{"op": "stats"}`` — one ``stats`` event with the scheduler's
    counters (see :meth:`AnalysisServer.stats_snapshot`).
``analyses``
    ``{"op": "analyses", "language": "fj"}`` (``language`` optional) —
    one ``analyses`` event listing every registered analysis straight
    from the server's :mod:`~repro.analysis.registry`, so remote
    clients can discover policies without a local checkout
    (``python -m repro submit --list-analyses``).
``ping`` / ``shutdown``
    Liveness probe / graceful stop.

The server streams events back, each tagged with the request's
``id`` as ``job``.  A submitted job progresses
``queued`` → ``running`` → ``done``, where the ``done`` event carries
``status`` (``ok | timeout | error``), the rendered ``stdout`` and
``summary`` on success, and the ``cached`` / ``coalesced`` flags
(cache hits skip ``running`` entirely; coalesced followers attach to
the leader's run).  ``done`` is terminal: in the rare race where a
follower attaches just as the leader finishes, its ``running`` frame
can trail the ``done``, so clients must stop at ``done`` and ignore
any late job-tagged frames.  Malformed requests produce an ``error``
event and never tear down the connection.

Backpressure is an event, not an error: when the worker shard a job
hashes to already has its admission queue full, the server answers
``queued`` → ``busy`` (with the target ``worker`` and a
``retry_after`` hint in seconds) instead of running anything.  A
``busy`` bounce is terminal *for that attempt only* — the job was not
started and will never produce ``done``; clients should back off and
resubmit (``ServiceClient.submit`` does, with jittered exponential
backoff).  ``busy`` is additive, so the protocol version is
unchanged: version-1 clients that predate it simply never see it
unless the fleet is saturated.

JSON strings escape newlines, so framing can never be broken by
report text; :data:`MAX_LINE_BYTES` bounds memory against a
misbehaving peer.
"""

from __future__ import annotations

import json

from repro.errors import ReproError
from repro.service.jobs import JobSpec

#: Bump when the wire format changes shape incompatibly.
PROTOCOL_VERSION = 1

#: Upper bound on one NDJSON line (requests embed whole programs).
MAX_LINE_BYTES = 16 * 1024 * 1024

#: Operations a request may carry.
OPS = ("submit", "stats", "analyses", "ping", "shutdown")

#: Every field a ``submit`` request may carry; unknown fields are
#: rejected so a typo ("contxt") fails loudly instead of silently
#: analyzing under defaults.
SUBMIT_FIELDS = frozenset(
    ("op", "id", "source", "path", "analysis", "context", "simplify",
     "report", "values", "timeout", "specialize"))

#: Fields of an ``analyses`` request (same strictness as submit).
ANALYSES_FIELDS = frozenset(("op", "id", "language"))


class ProtocolError(ReproError):
    """Raised for malformed frames or invalid request fields."""


def encode_message(message: dict) -> bytes:
    """One NDJSON frame: compact JSON plus the terminating newline."""
    return (json.dumps(message, sort_keys=True,
                       separators=(",", ":")) + "\n").encode("utf-8")


def decode_message(line: str | bytes) -> dict:
    """Parse one frame; raise :class:`ProtocolError` on anything that
    is not a JSON object."""
    if isinstance(line, bytes):
        if len(line) > MAX_LINE_BYTES:
            raise ProtocolError(
                f"frame exceeds {MAX_LINE_BYTES} bytes")
        try:
            line = line.decode("utf-8")
        except UnicodeDecodeError as error:
            raise ProtocolError(f"frame is not UTF-8: {error}") \
                from None
    try:
        message = json.loads(line)
    except json.JSONDecodeError as error:
        raise ProtocolError(f"frame is not JSON: {error}") from None
    if not isinstance(message, dict):
        raise ProtocolError(
            f"frame must be a JSON object, got "
            f"{type(message).__name__}")
    return message


def read_messages(stream):
    """Yield decoded frames from a binary line-iterable (socket file,
    test fixture, ...); blank lines are ignored."""
    for raw in stream:
        if not raw.strip():
            continue
        yield decode_message(raw)


def read_frame(stream) -> bytes | None:
    """One raw frame from a binary file-like, or None at EOF.

    Reads with a hard :data:`MAX_LINE_BYTES` limit so a peer
    streaming an endless unterminated line cannot balloon memory —
    ``readline`` returns at the cap, which an honest frame never
    hits, and the oversized read raises :class:`ProtocolError`
    (the connection cannot be resynced mid-line, so callers should
    drop it)."""
    while True:
        raw = stream.readline(MAX_LINE_BYTES + 1)
        if not raw:
            return None
        if len(raw) > MAX_LINE_BYTES:
            raise ProtocolError(
                f"frame exceeds {MAX_LINE_BYTES} bytes")
        if raw.strip():
            return raw


def submit_spec(message: dict) -> JobSpec:
    """Validate a ``submit`` request into a
    :class:`~repro.service.jobs.JobSpec`.

    ``path`` is read here, server-side; unreadable paths and every
    bad field raise :class:`ProtocolError` with a message naming the
    offender.
    """
    unknown = sorted(set(message) - SUBMIT_FIELDS)
    if unknown:
        raise ProtocolError(
            f"unknown submit field(s) {', '.join(unknown)}; allowed: "
            f"{', '.join(sorted(SUBMIT_FIELDS))}")
    source = message.get("source")
    path = message.get("path")
    if (source is None) == (path is None):
        raise ProtocolError(
            "submit needs exactly one of 'source' (program text) or "
            "'path' (a file readable by the server)")
    if path is not None:
        if not isinstance(path, str):
            raise ProtocolError(f"path must be a string, got "
                                f"{type(path).__name__}")
        try:
            with open(path, "r", encoding="utf-8") as handle:
                source = handle.read()
        except (OSError, UnicodeDecodeError) as error:
            raise ProtocolError(f"cannot read path {path!r}: "
                                f"{error}") from None
    simplify = message.get("simplify", False)
    if not isinstance(simplify, bool):
        raise ProtocolError(
            f"simplify must be a JSON boolean, got {simplify!r}")
    specialize = message.get("specialize", True)
    if not isinstance(specialize, bool):
        raise ProtocolError(
            f"specialize must be a JSON boolean, got {specialize!r}")
    spec = JobSpec(
        source=source,
        analysis=message.get("analysis", "mcfa"),
        context=message.get("context", 1),
        simplify=simplify,
        report=message.get("report", "all"),
        values=message.get("values", "interned"),
        timeout=message.get("timeout"),
        specialize=specialize)
    try:
        return spec.validate()
    except ProtocolError:
        raise
    except ReproError as error:
        raise ProtocolError(str(error)) from None


def analyses_request_language(message: dict) -> str | None:
    """Validate an ``analyses`` request; returns its language filter
    (``None`` means every registered analysis)."""
    unknown = sorted(set(message) - ANALYSES_FIELDS)
    if unknown:
        raise ProtocolError(
            f"unknown analyses field(s) {', '.join(unknown)}; "
            f"allowed: {', '.join(sorted(ANALYSES_FIELDS))}")
    language = message.get("language")
    if language is None:
        return None
    if language not in ("scheme", "fj"):
        raise ProtocolError(
            f"language must be 'scheme' or 'fj', got {language!r}")
    return language
