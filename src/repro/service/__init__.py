"""Analysis-as-a-service: a persistent server for repeated queries.

The one-shot CLI (``python -m repro analyze``) pays interpreter
startup, parsing and CPS compilation per request.  k-CFA being
EXPTIME-complete, a serving layer must make per-request budgets,
request coalescing and cache reuse first-class — this package is that
layer:

* :mod:`repro.service.jobs` — one analysis request as a value
  (:class:`~repro.service.jobs.JobSpec`), plus the compile-and-run
  core shared by ``analyze``, ``bench`` workers and the server's
  worker pool;
* :mod:`repro.service.protocol` — the streaming NDJSON wire format;
* :mod:`repro.service.server` — the concurrent job scheduler
  (``python -m repro serve``);
* :mod:`repro.service.client` — a thin client
  (``python -m repro submit``).

Importing the package stays light: the server and client modules pull
in sockets and the process pool only when actually imported.
"""

from repro.service.jobs import (
    FJ_ANALYSES, JobSpec, REPORT_CHOICES, SCHEME_ANALYSES, VALUE_MODES,
    job_cache_key, run_job,
)
from repro.service.protocol import PROTOCOL_VERSION, ProtocolError

__all__ = [
    "FJ_ANALYSES", "JobSpec", "REPORT_CHOICES", "SCHEME_ANALYSES",
    "VALUE_MODES", "job_cache_key", "run_job",
    "PROTOCOL_VERSION", "ProtocolError",
]
