"""Consistent-hash sharding for the worker fleet.

The async front door (:mod:`repro.service.server`) routes every job
to one long-lived worker process by consistent hash of its
``job_cache_key``, so repeat submissions of the same program land on
the *same* worker — whose in-memory
:class:`~repro.cache.ProgramCache` then still holds the compiled
:class:`~repro.cps.program.Program` (and the structural plans
:mod:`repro.analysis.specialize` cached on it), turning a result-cache
miss into a warm run that skips parse/CPS/boot entirely.

:class:`HashRing` is the classic construction: each node is hashed
onto the ring at :data:`REPLICAS` virtual points, and a key belongs to
the first virtual point clockwise from the key's own hash.  Two
properties the fleet relies on (pinned by ``tests/test_sharding.py``):

* **stability** — ``node_for(key)`` depends only on the key and the
  live node set, never on insertion order or process hash seed (all
  hashing is SHA-256, not Python ``hash``);
* **minimal disruption** — removing a node remaps *only* the keys
  that node owned; every other key keeps its shard, so one worker
  death never cold-starts the whole fleet.
"""

from __future__ import annotations

import bisect
import hashlib

#: Virtual points per node.  More replicas smooth the key
#: distribution across a small fleet (4 workers × 96 points gives a
#: near-uniform split) at a negligible memory cost.
REPLICAS = 96


def _point(token: str) -> int:
    """A node's or key's position on the ring: the first 8 bytes of
    its SHA-256, as an integer (process-independent, unlike hash())."""
    digest = hashlib.sha256(token.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class HashRing:
    """A consistent-hash ring over opaque node names."""

    def __init__(self, nodes=(), replicas: int = REPLICAS):
        if replicas < 1:
            raise ValueError(f"need at least one replica per node, "
                             f"got {replicas}")
        self.replicas = replicas
        self._points: list[int] = []       # sorted virtual points
        self._owners: dict[int, str] = {}  # point -> node
        self._nodes: set[str] = set()
        for node in nodes:
            self.add(node)

    def _node_points(self, node: str) -> list[int]:
        return [_point(f"{node}#{replica}")
                for replica in range(self.replicas)]

    def add(self, node: str) -> None:
        """Place *node* on the ring (idempotent)."""
        if node in self._nodes:
            return
        self._nodes.add(node)
        for point in self._node_points(node):
            # SHA-256 collisions between distinct vnode tokens are not
            # a practical concern; deterministic tie-break keeps the
            # ring identical however nodes were added.
            if point not in self._owners \
                    or node < self._owners[point]:
                if point not in self._owners:
                    bisect.insort(self._points, point)
                self._owners[point] = node

    def remove(self, node: str) -> None:
        """Take *node* off the ring; its keys fall to the next node
        clockwise, everyone else's keys stay put (idempotent)."""
        if node not in self._nodes:
            return
        self._nodes.discard(node)
        for point in self._node_points(node):
            if self._owners.get(point) == node:
                del self._owners[point]
                index = bisect.bisect_left(self._points, point)
                if index < len(self._points) \
                        and self._points[index] == point:
                    del self._points[index]

    def node_for(self, key: str) -> str:
        """The live node owning *key*; raises LookupError when the
        ring is empty (the caller decides how a dead fleet fails)."""
        if not self._points:
            raise LookupError("hash ring has no live nodes")
        index = bisect.bisect_right(self._points, _point(key))
        if index == len(self._points):
            index = 0  # wrap past 12 o'clock
        return self._owners[self._points[index]]

    def nodes(self) -> frozenset[str]:
        return frozenset(self._nodes)

    def __contains__(self, node: str) -> bool:
        return node in self._nodes

    def __len__(self) -> int:
        return len(self._nodes)
