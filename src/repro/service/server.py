"""The concurrent job scheduler behind ``python -m repro serve``.

One always-resident process owns a listening socket (TCP loopback or
Unix domain), a shared :class:`concurrent.futures.ProcessPoolExecutor`
worker pool, an :class:`~repro.cache.InflightTable` and (optionally) a
persistent :class:`~repro.cache.ResultCache`.  Each client connection
gets a reader thread speaking the NDJSON protocol of
:mod:`repro.service.protocol`; submitted jobs flow through three
tiers, cheapest first:

1. **disk cache** — a previously completed identical job is answered
   immediately (``done`` with ``cached: true``, no ``running`` event);
2. **in-flight coalescing** — an identical job currently running
   absorbs the submission as a follower; when the leader's analysis
   lands, every subscriber receives the same ``done`` event
   (followers with ``coalesced: true``);
3. **the worker pool** — otherwise the job is dispatched to a worker
   process, which compiles and analyzes under the job's cooperative
   wall-clock :class:`~repro.util.budget.Budget`, so one exponential
   request times out cleanly instead of wedging a worker forever.

Identical means *same cache key and same budget*: the cache key
deliberately excludes the timeout (a completed answer does not depend
on it), but two in-flight submissions only coalesce when their budgets
agree, so a 1-second probe can never be handed a 60-second run's
timeout verdict or vice versa.

Completion ordering matters for the no-duplicate-work guarantee: a
finished job is written to the disk cache *before* its in-flight entry
is retired, and a submission that becomes a flight's *leader*
re-checks the cache before dispatching to the pool.  Together the two
close the race: a submission that missed the first cache probe while
an identical job was finishing either joins the still-open flight or
finds the freshly written entry on the re-check — there is no window
in which it re-runs the analysis.

The pool uses the ``forkserver`` start method where available (fork
from a single-threaded helper — forking a threaded server directly is
deprecated), falling back to ``spawn``.
"""

from __future__ import annotations

import itertools
import multiprocessing
import os
import socket
import threading
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import replace

from repro.cache import CACHE_SCHEMA_VERSION, InflightTable
from repro.service.jobs import (
    JobSpec, cache_payload, job_cache_key, run_job,
)
from repro.service.protocol import (
    PROTOCOL_VERSION, ProtocolError, analyses_request_language,
    decode_message, encode_message, read_frame, submit_spec,
)


def _pool_context():
    """A start method safe for a threaded parent (see module doc)."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context(
        "forkserver" if "forkserver" in methods else "spawn")


class AnalysisServer:
    """A persistent analysis server; see the module docstring.

    Construct, :meth:`start`, then read :attr:`endpoint` (useful with
    ``port=0``, which binds a free port).  :meth:`stop` is idempotent
    and also runs on ``shutdown`` requests from clients.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0,
                 socket_path: str | None = None,
                 workers: int | None = None, cache=None,
                 default_timeout: float | None = 60.0,
                 specialize: bool = True):
        self.host = host
        self.port = port
        self.socket_path = socket_path
        self.workers = max(1, workers or os.cpu_count() or 1)
        self.cache = cache
        self.default_timeout = default_timeout
        #: Server-wide specialization override: with ``serve
        #: --no-specialize`` every job runs the generic step loop,
        #: whatever the request says (results are byte-identical, so
        #: this is an operational escape hatch, not a semantic knob).
        self.specialize = specialize
        self._lock = threading.Lock()
        self._inflight = InflightTable()
        self._jobs = {"submitted": 0, "executed": 0, "completed": 0,
                      "ok": 0, "timeout": 0, "error": 0,
                      "coalesced": 0, "rejected": 0}
        self._job_ids = itertools.count(1)
        self._listener: socket.socket | None = None
        self._pool: ProcessPoolExecutor | None = None
        self._connections: set[socket.socket] = set()
        self._stopped = threading.Event()
        self._started_at: float | None = None

    # -- lifecycle -------------------------------------------------------

    def start(self) -> "AnalysisServer":
        """Bind the socket, create the pool, accept in a thread."""
        if self.socket_path:
            listener = socket.socket(socket.AF_UNIX,
                                     socket.SOCK_STREAM)
            if os.path.exists(self.socket_path):
                os.unlink(self.socket_path)
            listener.bind(self.socket_path)
        else:
            listener = socket.socket(socket.AF_INET,
                                     socket.SOCK_STREAM)
            listener.setsockopt(socket.SOL_SOCKET,
                                socket.SO_REUSEADDR, 1)
            listener.bind((self.host, self.port))
            self.port = listener.getsockname()[1]
        listener.listen(128)
        self._listener = listener
        self._pool = ProcessPoolExecutor(max_workers=self.workers,
                                         mp_context=_pool_context())
        self._started_at = time.monotonic()
        threading.Thread(target=self._accept_loop,
                         name="repro-serve-accept",
                         daemon=True).start()
        return self

    @property
    def endpoint(self) -> str:
        """``host:port`` or the Unix socket path."""
        if self.socket_path:
            return self.socket_path
        return f"{self.host}:{self.port}"

    def wait(self, timeout: float | None = None) -> bool:
        """Block until the server stops; True iff it has."""
        return self._stopped.wait(timeout)

    def stop(self) -> None:
        """Stop accepting, drop connections, retire the pool."""
        if self._stopped.is_set():
            return
        self._stopped.set()
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass
        with self._lock:
            connections = list(self._connections)
        for conn in connections:
            try:
                conn.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                conn.close()
            except OSError:
                pass
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
        if self.socket_path and os.path.exists(self.socket_path):
            try:
                os.unlink(self.socket_path)
            except OSError:
                pass

    # -- stats -----------------------------------------------------------

    def stats_snapshot(self) -> dict:
        """The scheduler's counters, as one JSON-able dict.

        ``jobs.submitted`` counts every submission; each ends up as
        exactly one of a cache hit (``cache.hits``), a coalesced
        follower (``jobs.coalesced``) or an executed analysis
        (``jobs.executed``) — the stress suite asserts that identity.
        """
        with self._lock:
            jobs = dict(self._jobs)
        uptime = 0.0 if self._started_at is None \
            else time.monotonic() - self._started_at
        return {
            "endpoint": self.endpoint,
            "protocol": PROTOCOL_VERSION,
            "cache_schema": CACHE_SCHEMA_VERSION,
            "workers": self.workers,
            "uptime_seconds": round(uptime, 3),
            "jobs": jobs,
            "inflight": self._inflight.pending(),
            "cache": (self.cache.stats.as_dict()
                      if self.cache is not None else None),
        }

    def _count(self, counter: str, amount: int = 1) -> None:
        with self._lock:
            self._jobs[counter] += amount

    # -- connection handling ---------------------------------------------

    def _accept_loop(self) -> None:
        while not self._stopped.is_set():
            try:
                conn, _ = self._listener.accept()
            except OSError:
                break
            threading.Thread(target=self._serve_connection,
                             args=(conn,), daemon=True).start()

    def _serve_connection(self, conn: socket.socket) -> None:
        with self._lock:
            self._connections.add(conn)
        send_lock = threading.Lock()

        def send(message: dict) -> None:
            data = encode_message(message)
            with send_lock:
                conn.sendall(data)

        try:
            stream = conn.makefile("rb")
            while not self._stopped.is_set():
                try:
                    raw = read_frame(stream)
                except ProtocolError as error:
                    # An oversized frame cannot be resynced mid-line;
                    # report and drop the connection.
                    self._count("rejected")
                    send({"event": "error", "error": str(error)})
                    break
                if raw is None:
                    break
                try:
                    self._dispatch(raw, send)
                except ProtocolError as error:
                    self._count("rejected")
                    send({"event": "error", "error": str(error)})
                except _Shutdown:
                    break
        except (OSError, ValueError):
            pass  # client went away mid-frame; nothing to clean up
        finally:
            with self._lock:
                self._connections.discard(conn)
            try:
                conn.close()
            except OSError:
                pass

    def _dispatch(self, raw: bytes, send) -> None:
        message = decode_message(raw)
        op = message.get("op", "submit")
        if op == "submit":
            self._handle_submit(message, send)
        elif op == "ping":
            send({"event": "pong", "protocol": PROTOCOL_VERSION})
        elif op == "stats":
            send({"event": "stats", "stats": self.stats_snapshot()})
        elif op == "analyses":
            from repro.analysis.registry import registry_listing
            language = analyses_request_language(message)
            rows = registry_listing(language)
            event = {"event": "analyses", "count": len(rows),
                     "analyses": rows}
            if "id" in message:
                event["job"] = str(message["id"])
            send(event)
        elif op == "shutdown":
            send({"event": "bye"})
            threading.Thread(target=self.stop, daemon=True).start()
            raise _Shutdown()
        else:
            raise ProtocolError(
                f"unknown op {op!r}; choose from submit, stats, "
                f"ping, shutdown")

    # -- the scheduler ---------------------------------------------------

    def _handle_submit(self, message: dict, send) -> None:
        job_id = str(message["id"]) if "id" in message \
            else f"job-{next(self._job_ids)}"
        try:
            spec = submit_spec(message)
        except ProtocolError as error:
            self._count("rejected")
            send({"event": "error", "job": job_id,
                  "error": str(error)})
            return
        if spec.timeout is None and self.default_timeout is not None:
            spec = replace(spec, timeout=self.default_timeout)
        if not self.specialize and spec.specialize:
            spec = replace(spec, specialize=False)
        key = job_cache_key(spec)
        self._count("submitted")
        send({"event": "queued", "job": job_id, "key": key})
        payload = self._cache_get(key)
        if payload is not None:
            with self._lock:
                self._jobs["completed"] += 1
                self._jobs["ok"] += 1
            send(self._cached_done_event(job_id, key, payload))
            return
        flight = (key, spec.timeout)
        if not self._inflight.join(flight, (send, job_id)):
            self._count("coalesced")
            send({"event": "running", "job": job_id,
                  "coalesced": True})
            return
        # Leader.  Re-check the cache: an identical job may have
        # finished between the probe above and the join — the
        # write-before-retire order in _finish guarantees its entry
        # is visible by now (see the module docstring).  The probe
        # above already counted this submission's miss; don't count
        # the re-probe too.
        payload = self._cache_get(key, count_miss=False)
        if payload is not None:
            self._settle(flight, key,
                         {"status": "ok",
                          "stdout": payload.get("stdout"),
                          "summary": payload.get("summary"),
                          "wall_seconds": payload.get("wall_seconds")},
                         cached=True)
            return
        # `running` goes out before the dispatch so the leader can
        # never observe `done` first, however fast the job is.  A
        # failed send (client already gone) must not abandon the
        # flight here — followers and the cache still want the run.
        try:
            send({"event": "running", "job": job_id,
                  "coalesced": False})
        except OSError:
            pass
        self._count("executed")
        try:
            future = self._pool.submit(run_job, spec)
        except Exception as error:
            # Broken pool or racing stop(): the flight must still be
            # retired, or every identical job would hang forever.
            self._settle(flight, key,
                         {"status": "error",
                          "error": f"{type(error).__name__}: {error}",
                          "wall_seconds": 0.0})
            return
        future.add_done_callback(
            lambda fut, flight=flight, key=key:
            self._finish(flight, key, fut))

    def _cache_get(self, key: str, count_miss: bool = True):
        if self.cache is None:
            return None
        return self.cache.get(key, count_miss=count_miss)

    @staticmethod
    def _cached_done_event(job_id: str, key: str,
                           payload: dict) -> dict:
        return {"event": "done", "job": job_id, "key": key,
                "status": "ok", "stdout": payload.get("stdout"),
                "summary": payload.get("summary"),
                "wall_seconds": payload.get("wall_seconds"),
                "cached": True, "coalesced": False}

    def _finish(self, flight, key: str, future) -> None:
        """Pool callback: persist, retire the flight, fan out.

        Cache write strictly precedes the in-flight pop — see the
        module docstring for why that order closes the re-run race.
        """
        try:
            row = future.result()
        except Exception as error:  # cancelled or broken pool
            row = {"status": "error",
                   "error": f"{type(error).__name__}: {error}",
                   "wall_seconds": 0.0}
        if self.cache is not None and row["status"] == "ok":
            try:
                self.cache.put(key, cache_payload(row))
            except OSError:
                pass  # a full disk must not take the service down
        self._settle(flight, key, row)

    def _settle(self, flight, key: str, row: dict,
                cached: bool = False) -> None:
        """Retire a flight and fan *row* out to every subscriber."""
        subscribers = self._inflight.complete(flight)
        with self._lock:
            self._jobs["completed"] += len(subscribers)
            self._jobs[row["status"]] += len(subscribers)
        event = {"event": "done", "key": key,
                 "status": row["status"],
                 "wall_seconds": row.get("wall_seconds"),
                 "cached": cached}
        if row["status"] == "ok":
            event["stdout"] = row.get("stdout")
            event["summary"] = row.get("summary")
        else:
            event["error"] = row.get("error", "")
        for index, (send, job_id) in enumerate(subscribers):
            message = dict(event)
            message["job"] = job_id
            message["coalesced"] = index > 0
            try:
                send(message)
            except OSError:
                pass  # that client disconnected while waiting


class _Shutdown(Exception):
    """Internal: unwind a connection loop after a shutdown request."""
