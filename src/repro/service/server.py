"""The async front door behind ``python -m repro serve``.

One always-resident process runs an asyncio event loop (in a
dedicated thread) that accepts thousands of concurrent NDJSON
connections, and a fleet of long-lived worker processes
(:mod:`repro.service.fleet`) that actually run analyses.  Submitted
jobs flow through three tiers, cheapest first:

1. **disk cache** — a previously completed identical job is answered
   immediately (``done`` with ``cached: true``, no ``running`` event);
2. **in-flight coalescing** — an identical job currently running
   absorbs the submission as a follower; when the leader's analysis
   lands, every subscriber receives the same ``done`` event
   (followers with ``coalesced: true``);
3. **the worker fleet** — otherwise the job is routed by consistent
   hash of its cache key (:mod:`repro.service.sharding`) to one
   long-lived worker, which keeps compiled programs and their
   specialization plans warm across jobs, and runs each under the
   job's cooperative wall-clock :class:`~repro.util.budget.Budget`.

Identical means *same cache key and same budget*: the cache key
deliberately excludes the timeout (a completed answer does not depend
on it), but two in-flight submissions only coalesce when their budgets
agree, so a 1-second probe can never be handed a 60-second run's
timeout verdict or vice versa.

Fleet-wide coordination lives here, not in the workers: the front
door owns the one :class:`~repro.cache.InflightTable` and the one
:class:`~repro.cache.ResultCache`, so coalescing and caching span the
whole fleet.  Completion ordering still matters for the
no-duplicate-work guarantee: a finished job is written to the disk
cache *before* its in-flight entry is retired, and a submission that
becomes a flight's *leader* re-checks the cache before dispatching.
Together the two close the race: a submission that missed the first
cache probe while an identical job was finishing either joins the
still-open flight or finds the freshly written entry on the re-check
— there is no window in which it re-runs the analysis.

Admission control bounds each worker's queue: when the target shard
already has ``max_queue`` jobs in flight, the leader's flight is
abandoned and the client gets a ``busy`` event with a ``retry_after``
hint (:class:`~repro.service.client.ServiceClient` retries with
jittered exponential backoff).  When a worker dies mid-job the pump
thread reports it, the ring drops the shard, and every orphaned job
is re-dispatched to the key's next live shard — already-admitted jobs
bypass admission so a death can never bounce them.

Concurrency rules (why there are no locks here):

* **Every** piece of scheduler state — the counters, the hash ring,
  the assignment and depth tables, the in-flight joins — is touched
  only from the event-loop thread.  Fleet pump threads marshal
  results and deaths in via ``loop.call_soon_threadsafe``.
* ``_handle_submit`` is fully synchronous (no awaits), so the
  cache-probe / flight-join sequence is atomic by construction.  It
  does touch the disk cache inline; at this payload size that is a
  sub-millisecond pause the loop absorbs.
* A connection never blocks the loop on a slow peer: writes go
  through a bounded per-connection queue drained by its own task
  (``await drain()``); a peer that stops reading past the bound is
  dropped, and fan-out sends never raise, so a flight always retires.
"""

from __future__ import annotations

import asyncio
import itertools
import os
import threading
import time
from dataclasses import replace

from repro.cache import CACHE_SCHEMA_VERSION, InflightTable
from repro.service.fleet import WorkerFleet
from repro.service.jobs import cache_payload, job_cache_key
from repro.service.protocol import (
    MAX_LINE_BYTES, PROTOCOL_VERSION, ProtocolError,
    analyses_request_language, decode_message, edit_request,
    encode_message, query_job_spec, query_request, submit_spec,
    submit_wants_session,
)
from repro.service.sharding import HashRing

#: Queued-but-unsent events tolerated per connection before the peer
#: is declared pathologically slow and dropped (an honest client
#: reads a handful of events per job).
MAX_SEND_QUEUE = 256

#: Per-worker queue depth bound when ``serve --max-queue`` is not
#: given: deep enough to keep a worker busy, shallow enough that a
#: burst turns into ``busy`` + client backoff instead of a pile-up.
DEFAULT_MAX_QUEUE = 8

#: The ``retry_after`` hint (seconds) carried by ``busy`` events.
BUSY_RETRY_HINT = 0.05


class _Connection:
    """One client connection's write side: a bounded queue drained by
    a dedicated task, so scheduler code can ``send`` synchronously
    without ever blocking the loop or raising on a dead peer."""

    def __init__(self, writer: asyncio.StreamWriter):
        self._writer = writer
        self._outbox: asyncio.Queue = asyncio.Queue()
        self._closed = False
        self._task = asyncio.get_running_loop().create_task(
            self._drain())

    def send(self, message: dict) -> None:
        """Queue one event (loop thread only; never blocks, never
        raises — a gone or over-slow peer just stops receiving)."""
        if self._closed:
            return
        if self._outbox.qsize() >= MAX_SEND_QUEUE:
            # The peer has not read hundreds of events: drop it
            # rather than buffer without bound.
            self._closed = True
            self._outbox.put_nowait(None)
            return
        self._outbox.put_nowait(encode_message(message))

    async def _drain(self) -> None:
        try:
            while True:
                data = await self._outbox.get()
                if data is None:
                    break
                self._writer.write(data)
                await self._writer.drain()
        except (ConnectionError, OSError):
            pass
        finally:
            self._closed = True
            try:
                self._writer.close()
            except (ConnectionError, OSError, RuntimeError):
                pass

    async def aclose(self) -> None:
        """Flush queued events (bounded wait), then close."""
        if not self._closed:
            self._closed = True
            self._outbox.put_nowait(None)
        try:
            await asyncio.wait_for(
                asyncio.shield(self._task), timeout=2.0)
        except (asyncio.TimeoutError, asyncio.CancelledError):
            self._task.cancel()


class AnalysisServer:
    """A persistent analysis server; see the module docstring.

    Construct, :meth:`start`, then read :attr:`endpoint` (useful with
    ``port=0``, which binds a free port).  :meth:`stop` is idempotent
    and also runs on ``shutdown`` requests from clients.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0,
                 socket_path: str | None = None,
                 workers: int | None = None, cache=None,
                 default_timeout: float | None = 60.0,
                 specialize: bool = True,
                 codegen: bool = True,
                 codegen_dir=None,
                 max_queue: int = DEFAULT_MAX_QUEUE):
        self.host = host
        self.port = port
        self.socket_path = socket_path
        self.workers = max(1, workers or os.cpu_count() or 1)
        self.cache = cache
        self.default_timeout = default_timeout
        #: Server-wide specialization override: with ``serve
        #: --no-specialize`` every job runs the generic step loop,
        #: whatever the request says (results are byte-identical, so
        #: this is an operational escape hatch, not a semantic knob).
        self.specialize = specialize
        #: Server-wide codegen override, same contract: ``serve
        #: --codegen off`` pins every job to the compiled loops.
        self.codegen = codegen
        #: Where fleet workers keep generated modules (``--cache-dir``
        #: relocates it beside the result cache; None = the default).
        self.codegen_dir = codegen_dir
        self.max_queue = max(1, max_queue)
        self._inflight = InflightTable()
        self._jobs = {"submitted": 0, "executed": 0, "completed": 0,
                      "ok": 0, "timeout": 0, "error": 0,
                      "coalesced": 0, "rejected": 0, "busy": 0,
                      "redispatched": 0, "sessions": 0, "edits": 0,
                      "queries": 0, "resumed": 0, "scratch": 0}
        self._job_ids = itertools.count(1)
        self._tickets = itertools.count(1)
        #: ticket -> ("job", worker_id, flight, key, spec) for every
        #: one-shot job currently at a worker, or
        #: ("session"|"edit"|"query", worker_id, send, job_id,
        #: session_id) for a session operation; the death handler
        #: re-dispatches orphaned jobs (session ops cannot move — the
        #: warm state died with the worker, so they error out), the
        #: result handler retires them.
        self._assignments: dict[int, tuple] = {}
        #: session id -> worker id.  Sessions are *pinned to their
        #: shard*: the warm store lives in one worker process, so
        #: every edit/query for the id routes there, bypassing the
        #: hash ring.
        self._sessions: dict[str, str] = {}
        self._session_ids = itertools.count(1)
        self._depth: dict[str, int] = {}
        self._ring = HashRing()
        self._fleet: WorkerFleet | None = None
        self._connections: set[_Connection] = set()
        self._loop: asyncio.AbstractEventLoop | None = None
        self._loop_thread: threading.Thread | None = None
        self._shutdown_event: asyncio.Event | None = None
        self._stopping = False
        self._started = threading.Event()
        self._start_error: BaseException | None = None
        self._stop_requested = threading.Event()
        self._stopped = threading.Event()
        self._teardown_lock = threading.Lock()
        self._torn_down = False
        self._started_at: float | None = None

    # -- lifecycle -------------------------------------------------------

    def start(self) -> "AnalysisServer":
        """Spawn the fleet and the event loop; returns once bound."""
        self._fleet = WorkerFleet(self.workers, self._post_result,
                                  self._post_death,
                                  codegen_dir=self.codegen_dir
                                  ).start()
        for worker_id in self._fleet.live_workers():
            self._ring.add(worker_id)
            self._depth[worker_id] = 0
        self._loop_thread = threading.Thread(
            target=self._run_loop, name="repro-serve-loop",
            daemon=True)
        self._loop_thread.start()
        self._started.wait()
        if self._start_error is not None:
            self.stop()
            raise self._start_error
        return self

    @property
    def endpoint(self) -> str:
        """``host:port`` or the Unix socket path."""
        if self.socket_path:
            return self.socket_path
        return f"{self.host}:{self.port}"

    def wait(self, timeout: float | None = None) -> bool:
        """Block until the server stops; True iff it has."""
        return self._stopped.wait(timeout)

    def stop(self) -> None:
        """Stop accepting, drop connections, retire the fleet."""
        self._stop_requested.set()
        loop = self._loop
        if loop is not None and not loop.is_closed():
            try:
                loop.call_soon_threadsafe(self._begin_shutdown)
            except RuntimeError:
                pass  # closed between the check and the call
        thread = self._loop_thread
        if thread is not None \
                and thread is not threading.current_thread():
            thread.join(timeout=10.0)
        self._teardown()

    def _teardown(self) -> None:
        with self._teardown_lock:
            if self._torn_down:
                return
            self._torn_down = True
        if self._fleet is not None:
            self._fleet.stop()
        if self.socket_path and os.path.exists(self.socket_path):
            try:
                os.unlink(self.socket_path)
            except OSError:
                pass
        self._stopped.set()

    def _run_loop(self) -> None:
        loop = asyncio.new_event_loop()
        self._loop = loop
        try:
            loop.run_until_complete(self._serve())
        except BaseException as error:  # never strand start()/wait()
            if self._start_error is None:
                self._start_error = error
        finally:
            try:
                loop.close()
            except OSError:
                pass
            self._started.set()  # no-op when startup succeeded
            self._teardown()

    async def _serve(self) -> None:
        self._shutdown_event = asyncio.Event()
        if self._stop_requested.is_set():
            self._shutdown_event.set()
        try:
            # limit bounds each connection's read buffer: a peer
            # streaming an endless unterminated line hits the cap and
            # is dropped, exactly like the protocol module's
            # read_frame promises.
            if self.socket_path:
                if os.path.exists(self.socket_path):
                    os.unlink(self.socket_path)
                server = await asyncio.start_unix_server(
                    self._serve_connection, path=self.socket_path,
                    limit=MAX_LINE_BYTES + 2, backlog=1024)
            else:
                server = await asyncio.start_server(
                    self._serve_connection, host=self.host,
                    port=self.port, limit=MAX_LINE_BYTES + 2,
                    backlog=1024)
                self.port = server.sockets[0].getsockname()[1]
        except OSError as error:
            self._start_error = error
            self._started.set()
            return
        self._started_at = time.monotonic()
        self._started.set()
        try:
            await self._shutdown_event.wait()
        finally:
            self._stopping = True
            server.close()
            await server.wait_closed()
            # Let farewell frames (`bye`, final `done`s) flush before
            # the axe falls on the remaining handler tasks.
            if self._connections:
                await asyncio.gather(
                    *[connection.aclose()
                      for connection in list(self._connections)],
                    return_exceptions=True)
            current = asyncio.current_task()
            tasks = [task for task in asyncio.all_tasks()
                     if task is not current]
            for task in tasks:
                task.cancel()
            if tasks:
                await asyncio.gather(*tasks, return_exceptions=True)

    def _begin_shutdown(self) -> None:
        self._stopping = True
        if self._shutdown_event is not None:
            self._shutdown_event.set()

    # -- stats -----------------------------------------------------------

    def stats_snapshot(self) -> dict:
        """The scheduler's counters, as one JSON-able dict.

        ``jobs.submitted`` counts every submission; each ends up as
        exactly one of a cache hit (``cache.hits``), a coalesced
        follower (``jobs.coalesced``), a backpressure bounce
        (``jobs.busy``) or an executed analysis (``jobs.executed``)
        — the stress suite asserts that identity.  ``redispatched``
        counts executed jobs that additionally survived a worker
        death (they are not re-counted as executed).
        """
        jobs = dict(self._jobs)
        uptime = 0.0 if self._started_at is None \
            else time.monotonic() - self._started_at
        fleet = []
        if self._fleet is not None:
            for row in self._fleet.stats_rows():
                row["depth"] = self._depth.get(row["worker"], 0)
                fleet.append(row)
        return {
            "endpoint": self.endpoint,
            "protocol": PROTOCOL_VERSION,
            "cache_schema": CACHE_SCHEMA_VERSION,
            "workers": self.workers,
            "max_queue": self.max_queue,
            "uptime_seconds": round(uptime, 3),
            "jobs": jobs,
            "inflight": self._inflight.pending(),
            "sessions": {"open": len(self._sessions)},
            "fleet": fleet,
            "cache": (self.cache.stats.as_dict()
                      if self.cache is not None else None),
        }

    # -- connection handling ---------------------------------------------

    async def _serve_connection(self, reader: asyncio.StreamReader,
                                writer: asyncio.StreamWriter) -> None:
        connection = _Connection(writer)
        self._connections.add(connection)
        try:
            while not self._stopping:
                try:
                    raw = await reader.readline()
                except ValueError:
                    # Line blew the StreamReader limit; cannot resync
                    # mid-line, so report and drop the connection.
                    self._jobs["rejected"] += 1
                    connection.send({
                        "event": "error",
                        "error": f"frame exceeds {MAX_LINE_BYTES} "
                                 f"bytes"})
                    break
                except (ConnectionError, OSError):
                    break
                if not raw:
                    break  # EOF: client is done
                if not raw.strip():
                    continue
                if len(raw) > MAX_LINE_BYTES:
                    self._jobs["rejected"] += 1
                    connection.send({
                        "event": "error",
                        "error": f"frame exceeds {MAX_LINE_BYTES} "
                                 f"bytes"})
                    break
                try:
                    self._dispatch(raw, connection)
                except ProtocolError as error:
                    self._jobs["rejected"] += 1
                    connection.send({"event": "error",
                                     "error": str(error)})
                except _Shutdown:
                    break
        except asyncio.CancelledError:
            raise
        finally:
            self._connections.discard(connection)
            await connection.aclose()

    def _dispatch(self, raw: bytes, connection: _Connection) -> None:
        message = decode_message(raw)
        op = message.get("op", "submit")
        if op == "submit":
            self._handle_submit(message, connection.send)
        elif op == "edit":
            self._handle_edit(message, connection.send)
        elif op == "query":
            self._handle_query(message, connection.send)
        elif op == "ping":
            connection.send({"event": "pong",
                             "protocol": PROTOCOL_VERSION})
        elif op == "stats":
            connection.send({"event": "stats",
                             "stats": self.stats_snapshot()})
        elif op == "analyses":
            from repro.analysis.registry import registry_listing
            language = analyses_request_language(message)
            rows = registry_listing(language)
            event = {"event": "analyses", "count": len(rows),
                     "analyses": rows}
            if "id" in message:
                event["job"] = str(message["id"])
            connection.send(event)
        elif op == "shutdown":
            connection.send({"event": "bye"})
            # stop() joins the loop thread, so it cannot run here.
            threading.Thread(target=self.stop, daemon=True).start()
            raise _Shutdown()
        else:
            raise ProtocolError(
                f"unknown op {op!r}; choose from submit, edit, "
                f"query, stats, ping, shutdown")

    # -- the scheduler (loop thread only) --------------------------------

    def _handle_submit(self, message: dict, send) -> None:
        job_id = str(message["id"]) if "id" in message \
            else f"job-{next(self._job_ids)}"
        try:
            spec = submit_spec(message)
            wants_session = submit_wants_session(message)
        except ProtocolError as error:
            self._jobs["rejected"] += 1
            send({"event": "error", "job": job_id,
                  "error": str(error)})
            return
        if spec.timeout is None and self.default_timeout is not None:
            spec = replace(spec, timeout=self.default_timeout)
        if not self.specialize and spec.specialize:
            spec = replace(spec, specialize=False)
        if not self.codegen and spec.codegen:
            spec = replace(spec, codegen=False)
        key = job_cache_key(spec)
        self._jobs["submitted"] += 1
        send({"event": "queued", "job": job_id, "key": key})
        if wants_session:
            # Session submits skip the cache and coalescing entirely:
            # their value is the warm mutable state on a worker, not
            # the one-shot answer, so every one must actually run.
            self._handle_session_open(job_id, key, spec, send)
            return
        self._schedule(job_id, key, spec, send)

    def _schedule(self, job_id: str, key: str, spec, send) -> None:
        """Run one cacheable job: cache probe, coalescing, sharded
        dispatch.  Shared by plain submits and sessionless queries —
        a batch query *is* an ordinary job whose spec carries the
        query fields."""
        payload = self._cache_get(key)
        if payload is not None:
            self._jobs["completed"] += 1
            self._jobs["ok"] += 1
            send(self._cached_done_event(job_id, key, payload))
            return
        flight = (key, spec.timeout)
        if not self._inflight.join(flight, (send, job_id)):
            self._jobs["coalesced"] += 1
            send({"event": "running", "job": job_id,
                  "coalesced": True})
            return
        # Leader.  Re-check the cache: an identical job may have
        # finished between the probe above and the join — the
        # write-before-retire order in _finish guarantees its entry
        # is visible by now (see the module docstring).  The probe
        # above already counted this submission's miss; don't count
        # the re-probe too.
        payload = self._cache_get(key, count_miss=False)
        if payload is not None:
            row = {"status": "ok",
                   "stdout": payload.get("stdout"),
                   "summary": payload.get("summary"),
                   "wall_seconds": payload.get("wall_seconds")}
            if "answer" in payload:
                row["answer"] = payload["answer"]
            self._settle(flight, key, row, cached=True)
            return
        try:
            worker_id = self._ring.node_for(key)
        except LookupError:
            self._settle(flight, key,
                         {"status": "error",
                          "error": "no live workers in the fleet",
                          "wall_seconds": 0.0})
            return
        # Admission control: the target shard is saturated — bounce
        # with `busy` instead of queueing without bound.  Only the
        # leader can get here (followers coalesced above), so popping
        # the flight un-leads exactly this submission.
        if self._depth.get(worker_id, 0) >= self.max_queue:
            self._inflight.complete(flight)
            self._jobs["busy"] += 1
            send({"event": "busy", "job": job_id, "key": key,
                  "worker": worker_id,
                  "retry_after": BUSY_RETRY_HINT})
            return
        # `running` goes out before the dispatch so the leader can
        # never observe `done` first, however fast the job is.
        send({"event": "running", "job": job_id, "coalesced": False})
        self._jobs["executed"] += 1
        self._dispatch_job(worker_id, flight, key, spec)

    def _dispatch_job(self, worker_id: str, flight, key: str,
                      spec) -> None:
        ticket = next(self._tickets)
        self._assignments[ticket] = ("job", worker_id, flight, key,
                                     spec)
        self._depth[worker_id] = self._depth.get(worker_id, 0) + 1
        if not self._fleet.dispatch(worker_id, ("job", ticket, spec)):
            # The worker died between routing and dispatch; undo the
            # bookkeeping and route to the next live shard.
            del self._assignments[ticket]
            self._depth[worker_id] -= 1
            self._ring.remove(worker_id)
            self._redispatch(flight, key, spec)

    # -- sessions (loop thread only) --------------------------------------

    def _handle_session_open(self, job_id: str, key: str, spec,
                             send) -> None:
        """Open a warm session: route by cache key (so repeats of the
        same program land on the worker already holding it compiled),
        then pin the new session id to that shard."""
        while True:
            try:
                worker_id = self._ring.node_for(key)
            except LookupError:
                self._jobs["completed"] += 1
                self._jobs["error"] += 1
                send({"event": "done", "job": job_id, "key": key,
                      "status": "error", "cached": False,
                      "coalesced": False, "wall_seconds": 0.0,
                      "error": "no live workers in the fleet"})
                return
            if self._depth.get(worker_id, 0) >= self.max_queue:
                self._jobs["busy"] += 1
                send({"event": "busy", "job": job_id, "key": key,
                      "worker": worker_id,
                      "retry_after": BUSY_RETRY_HINT})
                return
            session_id = f"s{next(self._session_ids)}"
            ticket = next(self._tickets)
            self._assignments[ticket] = ("session", worker_id, send,
                                         job_id, session_id)
            self._depth[worker_id] = self._depth.get(worker_id, 0) + 1
            if self._fleet.dispatch(
                    worker_id, ("session", ticket, session_id, spec)):
                break
            # Dead between routing and dispatch: undo, drop the
            # shard, and route the session somewhere alive.
            del self._assignments[ticket]
            self._depth[worker_id] -= 1
            self._ring.remove(worker_id)
        self._sessions[session_id] = worker_id
        self._jobs["executed"] += 1
        self._jobs["sessions"] += 1
        send({"event": "running", "job": job_id, "coalesced": False,
              "session": session_id})

    def _session_op(self, kind: str, message: dict, send,
                    parse) -> None:
        """The shared shape of ``edit`` and ``query``: validate, find
        the session's pinned worker, admission-check, dispatch."""
        job_id = str(message["id"]) if "id" in message \
            else f"job-{next(self._job_ids)}"
        try:
            session_id, request = parse(message)
        except ProtocolError as error:
            self._jobs["rejected"] += 1
            send({"event": "error", "job": job_id,
                  "error": str(error)})
            return
        worker_id = self._sessions.get(session_id)
        if worker_id is None or worker_id not in self._depth:
            self._jobs["rejected"] += 1
            send({"event": "error", "job": job_id,
                  "session": session_id,
                  "error": f"unknown session {session_id!r} (never "
                           f"opened, expired, or lost to a worker "
                           f"death)"})
            return
        send({"event": "queued", "job": job_id,
              "session": session_id})
        # Session ops share the shard's admission bound with one-shot
        # jobs — they run in the same serial worker loop.
        if self._depth.get(worker_id, 0) >= self.max_queue:
            self._jobs["busy"] += 1
            send({"event": "busy", "job": job_id,
                  "session": session_id, "worker": worker_id,
                  "retry_after": BUSY_RETRY_HINT})
            return
        send({"event": "running", "job": job_id, "coalesced": False,
              "session": session_id})
        ticket = next(self._tickets)
        self._assignments[ticket] = (kind, worker_id, send, job_id,
                                     session_id)
        self._depth[worker_id] += 1
        self._jobs["executed"] += 1
        self._jobs[kind + "s" if kind == "edit" else "queries"] += 1
        if not self._fleet.dispatch(
                worker_id, (kind, ticket, session_id) + request):
            # The pinned worker is dead; the warm state is gone with
            # it, so there is nowhere to re-dispatch.  _on_death will
            # also fire, but the assignment is already retired here.
            del self._assignments[ticket]
            self._depth[worker_id] -= 1
            self._lose_session(session_id, send, job_id)

    def _handle_edit(self, message: dict, send) -> None:
        def parse(msg):
            session_id, source, timeout = edit_request(msg)
            if timeout is None:
                timeout = self.default_timeout
            return session_id, (source, timeout)
        self._session_op("edit", message, send, parse)

    def _handle_query(self, message: dict, send) -> None:
        if "session" not in message:
            self._handle_batch_query(message, send)
            return

        def parse(msg):
            session_id, kind, target = query_request(msg)
            return session_id, (kind, target)
        self._session_op("query", message, send, parse)

    def _handle_batch_query(self, message: dict, send) -> None:
        """A sessionless query: an ordinary cached job whose spec
        carries the client-pass fields."""
        job_id = str(message["id"]) if "id" in message \
            else f"job-{next(self._job_ids)}"
        try:
            spec = query_job_spec(message)
        except ProtocolError as error:
            self._jobs["rejected"] += 1
            send({"event": "error", "job": job_id,
                  "error": str(error)})
            return
        if spec.timeout is None and self.default_timeout is not None:
            spec = replace(spec, timeout=self.default_timeout)
        if not self.specialize and spec.specialize:
            spec = replace(spec, specialize=False)
        if not self.codegen and spec.codegen:
            spec = replace(spec, codegen=False)
        key = job_cache_key(spec)
        self._jobs["submitted"] += 1
        self._jobs["queries"] += 1
        send({"event": "queued", "job": job_id, "key": key})
        self._schedule(job_id, key, spec, send)

    def _lose_session(self, session_id: str, send,
                      job_id: str) -> None:
        self._sessions.pop(session_id, None)
        self._jobs["completed"] += 1
        self._jobs["error"] += 1
        send({"event": "done", "job": job_id, "session": session_id,
              "status": "error", "cached": False, "coalesced": False,
              "wall_seconds": 0.0,
              "error": f"worker holding session {session_id!r} died; "
                       f"the warm state is lost — submit again with "
                       f"session: true"})

    def _cache_get(self, key: str, count_miss: bool = True):
        if self.cache is None:
            return None
        return self.cache.get(key, count_miss=count_miss)

    @staticmethod
    def _cached_done_event(job_id: str, key: str,
                           payload: dict) -> dict:
        event = {"event": "done", "job": job_id, "key": key,
                 "status": "ok", "stdout": payload.get("stdout"),
                 "summary": payload.get("summary"),
                 "wall_seconds": payload.get("wall_seconds"),
                 "cached": True, "coalesced": False}
        if "answer" in payload:
            event["answer"] = payload["answer"]
        return event

    # -- fleet callbacks (pump threads -> loop) --------------------------

    def _post_result(self, worker_id: str, ticket: int, row: dict,
                     stats: dict) -> None:
        loop = self._loop
        if loop is None:
            return
        try:
            loop.call_soon_threadsafe(self._on_result, ticket, row)
        except RuntimeError:
            pass  # loop already closed: shutting down

    def _post_death(self, worker_id: str) -> None:
        loop = self._loop
        if loop is None:
            return
        try:
            loop.call_soon_threadsafe(self._on_death, worker_id)
        except RuntimeError:
            pass

    def _on_result(self, ticket: int, row: dict) -> None:
        assignment = self._assignments.pop(ticket, None)
        if assignment is None:
            return  # retired by a racing shutdown
        kind, worker_id = assignment[0], assignment[1]
        if worker_id in self._depth:
            self._depth[worker_id] = max(
                0, self._depth[worker_id] - 1)
        if kind == "job":
            _, _, flight, key, _spec = assignment
            self._finish(flight, key, row)
        else:
            _, _, send, job_id, session_id = assignment
            self._finish_session_op(kind, send, job_id, session_id,
                                    row)

    def _on_death(self, worker_id: str) -> None:
        """A worker died: drop its shard, re-dispatch its orphaned
        jobs, error out its orphaned session ops.

        The pump thread delivers every result the worker sent before
        dying *before* reporting the death (FIFO through
        call_soon_threadsafe), so an orphan here is genuinely
        unfinished — a completed job is never run twice.  Session ops
        are *not* re-dispatched: the warm store they target died with
        the worker, so the client gets a terminal error and must open
        a fresh session.
        """
        if self._stopping:
            return
        self._ring.remove(worker_id)
        self._depth.pop(worker_id, None)
        orphans = [ticket
                   for ticket, assignment in self._assignments.items()
                   if assignment[1] == worker_id]
        for ticket in orphans:
            assignment = self._assignments.pop(ticket)
            if assignment[0] == "job":
                _, _, flight, key, spec = assignment
                self._jobs["redispatched"] += 1
                self._redispatch(flight, key, spec)
            else:
                _, _, send, job_id, session_id = assignment
                self._lose_session(session_id, send, job_id)
        # Sessions idle on the dead worker (no op in flight) are just
        # as gone; forget them so later edits fail fast server-side.
        for session_id in [sid for sid, wid in self._sessions.items()
                           if wid == worker_id]:
            del self._sessions[session_id]

    def _redispatch(self, flight, key: str, spec) -> None:
        """Route an already-admitted job to the key's next live
        shard; admission is bypassed (a death must never bounce a job
        that was already accepted)."""
        try:
            worker_id = self._ring.node_for(key)
        except LookupError:
            self._settle(flight, key,
                         {"status": "error",
                          "error": "worker died and no live workers "
                                   "remain",
                          "wall_seconds": 0.0})
            return
        self._dispatch_job(worker_id, flight, key, spec)

    # -- completion ------------------------------------------------------

    def _finish(self, flight, key: str, row: dict) -> None:
        """Persist, retire the flight, fan out.

        Cache write strictly precedes the in-flight pop — see the
        module docstring for why that order closes the re-run race.
        """
        if self.cache is not None and row["status"] == "ok":
            try:
                self.cache.put(key, cache_payload(row))
            except OSError:
                pass  # a full disk must not take the service down
        self._settle(flight, key, row)

    def _finish_session_op(self, kind: str, send, job_id: str,
                           session_id: str, row: dict) -> None:
        """Complete a session open/edit/query: one subscriber, no
        flight, no cache — just the done event with the row's
        session-specific fields attached."""
        status = row.get("status", "error")
        self._jobs["completed"] += 1
        self._jobs[status] += 1
        event = {"event": "done", "job": job_id,
                 "session": session_id, "status": status,
                 "cached": False, "coalesced": False,
                 "wall_seconds": row.get("wall_seconds")}
        if status == "ok":
            for field in ("stdout", "summary", "mode", "reason",
                          "kept_ratio", "affected", "cleared",
                          "seeds", "steps", "answer",
                          "session_stats"):
                if field in row:
                    event[field] = row[field]
            if kind == "edit":
                mode = row.get("mode")
                if mode in ("resumed", "scratch"):
                    self._jobs[mode] += 1
        else:
            event["error"] = row.get("error", "")
            # A failed open never installed worker state; a timed-out
            # edit dropped it.  Either way the id is dead.
            if kind == "session" or row.get("session_dropped"):
                self._sessions.pop(session_id, None)
        send(event)

    def _settle(self, flight, key: str, row: dict,
                cached: bool = False) -> None:
        """Retire a flight and fan *row* out to every subscriber."""
        subscribers = self._inflight.complete(flight)
        self._jobs["completed"] += len(subscribers)
        self._jobs[row["status"]] += len(subscribers)
        event = {"event": "done", "key": key,
                 "status": row["status"],
                 "wall_seconds": row.get("wall_seconds"),
                 "cached": cached}
        if row["status"] == "ok":
            event["stdout"] = row.get("stdout")
            event["summary"] = row.get("summary")
            if "answer" in row:
                event["answer"] = row["answer"]
        else:
            event["error"] = row.get("error", "")
        for index, (send, job_id) in enumerate(subscribers):
            message = dict(event)
            message["job"] = job_id
            message["coalesced"] = index > 0
            send(message)  # a gone subscriber is silently skipped


class _Shutdown(Exception):
    """Internal: unwind a connection loop after a shutdown request."""
