"""A thin client for the analysis service.

Speaks the NDJSON protocol of :mod:`repro.service.protocol` over one
blocking socket connection.  Used by ``python -m repro submit`` and
directly from tests::

    from repro.service.client import ServiceClient
    with ServiceClient(port=server.port) as client:
        final = client.submit(source="((lambda (x) x) 1)",
                              analysis="kcfa", context=1)
        assert final["status"] == "ok"
        print(final["stdout"])

A client is single-flight: :meth:`submit` blocks until the job's
terminal event arrives (streaming intermediate events to an optional
callback).  Concurrency comes from opening more clients — the stress
suite drives eight at once — not from pipelining on one connection.
"""

from __future__ import annotations

import itertools
import random
import socket
import time

from repro.service.protocol import (
    ProtocolError, decode_message, encode_message, read_frame,
)

#: Default TCP port of ``python -m repro serve``.
DEFAULT_PORT = 7557

#: Events that end a submitted job.
TERMINAL_EVENTS = ("done", "error")

#: How many times :meth:`ServiceClient.submit` re-offers a job the
#: server bounced with ``busy`` before giving up.
BUSY_RETRIES = 8

#: First backoff step after a ``busy`` bounce, in seconds; each
#: further bounce doubles it (capped), and every sleep is jittered
#: ±50% so a herd of bounced clients does not retry in lockstep.
BUSY_BACKOFF_BASE = 0.05
BUSY_BACKOFF_CAP = 2.0


def busy_backoff(attempt: int, base: float = BUSY_BACKOFF_BASE,
                 cap: float = BUSY_BACKOFF_CAP,
                 rng: random.Random | None = None) -> float:
    """The jittered exponential backoff delay for retry *attempt*
    (0-based): ``min(cap, base * 2**attempt)`` scaled by a uniform
    factor in [0.5, 1.5]."""
    delay = min(cap, base * (2 ** attempt))
    jitter = (rng or random).uniform(0.5, 1.5)
    return delay * jitter


class ServiceClient:
    """One connection to a running :class:`AnalysisServer`."""

    def __init__(self, host: str = "127.0.0.1",
                 port: int = DEFAULT_PORT,
                 socket_path: str | None = None,
                 connect_timeout: float = 10.0):
        if socket_path:
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            sock.settimeout(connect_timeout)
            sock.connect(socket_path)
        else:
            sock = socket.create_connection(
                (host, int(port)), timeout=connect_timeout)
        sock.settimeout(None)  # jobs block for their full budget
        self._sock = sock
        self._stream = sock.makefile("rb")
        self._ids = itertools.count(1)

    @classmethod
    def connect(cls, endpoint: str,
                connect_timeout: float = 10.0) -> "ServiceClient":
        """From an endpoint string: ``host:port`` or a socket path
        (the format ``serve --ready-file`` writes)."""
        if "/" in endpoint or ":" not in endpoint:
            return cls(socket_path=endpoint,
                       connect_timeout=connect_timeout)
        host, port = endpoint.rsplit(":", 1)
        return cls(host=host, port=int(port),
                   connect_timeout=connect_timeout)

    # -- plumbing --------------------------------------------------------

    def _send(self, message: dict) -> None:
        self._sock.sendall(encode_message(message))

    def _next_event(self) -> dict:
        raw = read_frame(self._stream)
        if raw is None:
            raise ConnectionError("server closed the connection")
        return decode_message(raw)

    def _roundtrip(self, message: dict, expect: str) -> dict:
        self._send(message)
        while True:
            event = self._next_event()
            if event.get("event") != expect and "job" in event:
                # A late frame from an earlier submission (e.g. a
                # follower's `running` trailing its `done`) — skip.
                continue
            if event.get("event") != expect:
                raise ProtocolError(
                    f"expected a {expect!r} event, got {event!r}")
            return event

    # -- operations ------------------------------------------------------

    def ping(self) -> dict:
        """Liveness probe; returns the ``pong`` event."""
        return self._roundtrip({"op": "ping"}, "pong")

    def stats(self) -> dict:
        """The server's counters (one ``stats`` snapshot dict)."""
        return self._roundtrip({"op": "stats"}, "stats")["stats"]

    def analyses(self, language: str | None = None) -> list[dict]:
        """The server's registered analyses (one registry row per
        dict, as served by the ``analyses`` op)."""
        message: dict = {"op": "analyses"}
        if language is not None:
            message["language"] = language
        return self._roundtrip(message, "analyses")["analyses"]

    def shutdown(self) -> dict:
        """Ask the server to stop; returns its ``bye`` event."""
        return self._roundtrip({"op": "shutdown"}, "bye")

    def _attempt(self, message: dict, on_event) -> dict:
        """Send one request and block until its ``busy`` or terminal
        event, streaming intermediates to *on_event*.

        Only events carrying exactly this request's job id belong to
        it.  A frame tagged with a *different* id is a stray from an
        earlier attempt on this connection (e.g. a coalesced
        follower's ``running`` trailing its ``done``, or a late frame
        from a busy-bounced attempt) and must never be mistaken for
        this request's — accepting unattributed frames here once let
        a stale event terminate the wrong retry attempt.  The one
        exception: an *untagged* ``error`` is a connection-level
        rejection the server could not attribute to any job, and is
        terminal for whatever is in flight.
        """
        job_id = message["id"]
        self._send(message)
        while True:
            event = self._next_event()
            if event.get("job") != job_id:
                if "job" in event or event.get("event") != "error":
                    continue
            if event.get("event") == "busy":
                return event
            if event.get("event") in TERMINAL_EVENTS:
                return event
            if on_event is not None:
                on_event(event)

    def _with_busy_retries(self, base: dict, on_event,
                           busy_retries: int) -> dict:
        """Run *base* to a terminal event, retrying ``busy`` bounces
        up to *busy_retries* times with jittered exponential backoff,
        under a fresh job id each attempt.  Only after the last
        bounce does the ``busy`` event itself come back, so callers
        can distinguish "gave up on a saturated fleet" from a
        result."""
        for attempt in range(busy_retries + 1):
            message = dict(base, id=f"c{next(self._ids)}")
            event = self._attempt(message, on_event)
            if event.get("event") != "busy" \
                    or attempt >= busy_retries:
                return event
            if on_event is not None:
                on_event(event)
            time.sleep(max(event.get("retry_after", 0.0),
                           busy_backoff(attempt)))

    def submit(self, source: str | None = None,
               path: str | None = None, analysis: str = "mcfa",
               context: int = 1, simplify: bool = False,
               report: str = "all", values: str = "interned",
               timeout: float | None = None,
               specialize: bool = True,
               codegen: bool = True,
               session: bool = False,
               on_event=None,
               busy_retries: int = BUSY_RETRIES) -> dict:
        """Submit one job and block until its terminal event.

        Intermediate events (``queued``, ``running``) stream to
        *on_event* as they arrive.  Returns the ``done`` event —
        check its ``status`` — or an ``error`` event for requests the
        server rejected outright.  ``busy`` bounces are retried
        transparently (see :meth:`_with_busy_retries`).

        With ``session=True`` the submit opens a warm analysis
        session on its worker; the ``done`` event then carries the
        ``session`` id to pass to :meth:`edit` and :meth:`query`.
        """
        base: dict = {"op": "submit", "analysis": analysis,
                      "context": context, "simplify": simplify,
                      "report": report, "values": values}
        if not specialize:
            # Only sent when non-default: older servers reject unknown
            # submit fields strictly, so the default-True case must
            # stay wire-compatible with them.
            base["specialize"] = False
        if not codegen:
            # Same wire-compatibility rule as specialize.
            base["codegen"] = False
        if session:
            # Same wire-compatibility rule as specialize.
            base["session"] = True
        if source is not None:
            base["source"] = source
        if path is not None:
            base["path"] = path
        if timeout is not None:
            base["timeout"] = timeout
        return self._with_busy_retries(base, on_event, busy_retries)

    def edit(self, session: str, source: str | None = None,
             path: str | None = None, timeout: float | None = None,
             on_event=None,
             busy_retries: int = BUSY_RETRIES) -> dict:
        """Re-analyze *session* against edited source and block until
        the terminal event; its ``done`` carries ``mode``
        (``resumed | scratch``) and the resume statistics."""
        base: dict = {"op": "edit", "session": session}
        if source is not None:
            base["source"] = source
        if path is not None:
            base["path"] = path
        if timeout is not None:
            base["timeout"] = timeout
        return self._with_busy_retries(base, on_event, busy_retries)

    def query(self, session: str | None = None,
              kind: str | None = None, target: str | None = None, *,
              source: str | None = None, path: str | None = None,
              analysis: str = "mcfa", context: int = 1,
              simplify: bool = False, values: str = "interned",
              timeout: float | None = None, specialize: bool = True,
              codegen: bool = True,
              on_event=None,
              busy_retries: int = BUSY_RETRIES) -> dict:
        """One client query; the ``done`` event carries ``answer``.

        With *session* set this is the warm-session form (``kind``
        plus ``target`` as the kind demands).  Without it the query
        is *sessionless*: ``source``/``path`` and the job options
        describe an ordinary cached analysis job, and the pass named
        by ``kind`` runs over its result server-side.
        """
        base: dict = {"op": "query", "kind": kind}
        if target is not None:
            base["target"] = target
        if session is not None:
            base["session"] = session
            return self._with_busy_retries(base, on_event,
                                           busy_retries)
        base["analysis"] = analysis
        base["context"] = context
        base["simplify"] = simplify
        base["values"] = values
        if not specialize:
            # Only sent when non-default (same wire-compatibility
            # rule as submit).
            base["specialize"] = False
        if not codegen:
            base["codegen"] = False
        if source is not None:
            base["source"] = source
        if path is not None:
            base["path"] = path
        if timeout is not None:
            base["timeout"] = timeout
        return self._with_busy_retries(base, on_event, busy_retries)

    # -- lifecycle -------------------------------------------------------

    def close(self) -> None:
        try:
            self._stream.close()
        except OSError:
            pass
        try:
            self._sock.close()
        except OSError:
            pass

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
