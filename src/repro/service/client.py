"""A thin client for the analysis service.

Speaks the NDJSON protocol of :mod:`repro.service.protocol` over one
blocking socket connection.  Used by ``python -m repro submit`` and
directly from tests::

    from repro.service.client import ServiceClient
    with ServiceClient(port=server.port) as client:
        final = client.submit(source="((lambda (x) x) 1)",
                              analysis="kcfa", context=1)
        assert final["status"] == "ok"
        print(final["stdout"])

A client is single-flight: :meth:`submit` blocks until the job's
terminal event arrives (streaming intermediate events to an optional
callback).  Concurrency comes from opening more clients — the stress
suite drives eight at once — not from pipelining on one connection.
"""

from __future__ import annotations

import itertools
import random
import socket
import time

from repro.service.protocol import (
    ProtocolError, decode_message, encode_message, read_frame,
)

#: Default TCP port of ``python -m repro serve``.
DEFAULT_PORT = 7557

#: Events that end a submitted job.
TERMINAL_EVENTS = ("done", "error")

#: How many times :meth:`ServiceClient.submit` re-offers a job the
#: server bounced with ``busy`` before giving up.
BUSY_RETRIES = 8

#: First backoff step after a ``busy`` bounce, in seconds; each
#: further bounce doubles it (capped), and every sleep is jittered
#: ±50% so a herd of bounced clients does not retry in lockstep.
BUSY_BACKOFF_BASE = 0.05
BUSY_BACKOFF_CAP = 2.0


def busy_backoff(attempt: int, base: float = BUSY_BACKOFF_BASE,
                 cap: float = BUSY_BACKOFF_CAP,
                 rng: random.Random | None = None) -> float:
    """The jittered exponential backoff delay for retry *attempt*
    (0-based): ``min(cap, base * 2**attempt)`` scaled by a uniform
    factor in [0.5, 1.5]."""
    delay = min(cap, base * (2 ** attempt))
    jitter = (rng or random).uniform(0.5, 1.5)
    return delay * jitter


class ServiceClient:
    """One connection to a running :class:`AnalysisServer`."""

    def __init__(self, host: str = "127.0.0.1",
                 port: int = DEFAULT_PORT,
                 socket_path: str | None = None,
                 connect_timeout: float = 10.0):
        if socket_path:
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            sock.settimeout(connect_timeout)
            sock.connect(socket_path)
        else:
            sock = socket.create_connection(
                (host, int(port)), timeout=connect_timeout)
        sock.settimeout(None)  # jobs block for their full budget
        self._sock = sock
        self._stream = sock.makefile("rb")
        self._ids = itertools.count(1)

    @classmethod
    def connect(cls, endpoint: str,
                connect_timeout: float = 10.0) -> "ServiceClient":
        """From an endpoint string: ``host:port`` or a socket path
        (the format ``serve --ready-file`` writes)."""
        if "/" in endpoint or ":" not in endpoint:
            return cls(socket_path=endpoint,
                       connect_timeout=connect_timeout)
        host, port = endpoint.rsplit(":", 1)
        return cls(host=host, port=int(port),
                   connect_timeout=connect_timeout)

    # -- plumbing --------------------------------------------------------

    def _send(self, message: dict) -> None:
        self._sock.sendall(encode_message(message))

    def _next_event(self) -> dict:
        raw = read_frame(self._stream)
        if raw is None:
            raise ConnectionError("server closed the connection")
        return decode_message(raw)

    def _roundtrip(self, message: dict, expect: str) -> dict:
        self._send(message)
        while True:
            event = self._next_event()
            if event.get("event") != expect and "job" in event:
                # A late frame from an earlier submission (e.g. a
                # follower's `running` trailing its `done`) — skip.
                continue
            if event.get("event") != expect:
                raise ProtocolError(
                    f"expected a {expect!r} event, got {event!r}")
            return event

    # -- operations ------------------------------------------------------

    def ping(self) -> dict:
        """Liveness probe; returns the ``pong`` event."""
        return self._roundtrip({"op": "ping"}, "pong")

    def stats(self) -> dict:
        """The server's counters (one ``stats`` snapshot dict)."""
        return self._roundtrip({"op": "stats"}, "stats")["stats"]

    def analyses(self, language: str | None = None) -> list[dict]:
        """The server's registered analyses (one registry row per
        dict, as served by the ``analyses`` op)."""
        message: dict = {"op": "analyses"}
        if language is not None:
            message["language"] = language
        return self._roundtrip(message, "analyses")["analyses"]

    def shutdown(self) -> dict:
        """Ask the server to stop; returns its ``bye`` event."""
        return self._roundtrip({"op": "shutdown"}, "bye")

    def submit(self, source: str | None = None,
               path: str | None = None, analysis: str = "mcfa",
               context: int = 1, simplify: bool = False,
               report: str = "all", values: str = "interned",
               timeout: float | None = None,
               specialize: bool = True,
               on_event=None,
               busy_retries: int = BUSY_RETRIES) -> dict:
        """Submit one job and block until its terminal event.

        Intermediate events (``queued``, ``running``) stream to
        *on_event* as they arrive.  Returns the ``done`` event —
        check its ``status`` — or an ``error`` event for requests the
        server rejected outright.

        A ``busy`` bounce (the target worker's admission queue is
        full) is retried transparently up to *busy_retries* times
        with jittered exponential backoff, under a fresh job id each
        attempt; bounces stream to *on_event* like any other
        intermediate event.  Only after the last bounce does the
        ``busy`` event itself come back, so callers can distinguish
        "gave up on a saturated fleet" from a result.
        """
        base = {"analysis": analysis, "context": context,
                "simplify": simplify, "report": report,
                "values": values}
        if not specialize:
            # Only sent when non-default: older servers reject unknown
            # submit fields strictly, so the default-True case must
            # stay wire-compatible with them.
            base["specialize"] = False
        if source is not None:
            base["source"] = source
        if path is not None:
            base["path"] = path
        if timeout is not None:
            base["timeout"] = timeout
        for attempt in range(busy_retries + 1):
            job_id = f"c{next(self._ids)}"
            self._send({"op": "submit", "id": job_id, **base})
            bounced = None
            while True:
                event = self._next_event()
                if event.get("job") not in (job_id, None):
                    continue  # a stray frame for another submission
                if event.get("event") == "busy":
                    bounced = event
                    break
                if on_event is not None \
                        and event.get("event") not in TERMINAL_EVENTS:
                    on_event(event)
                if event.get("event") in TERMINAL_EVENTS:
                    return event
            if attempt >= busy_retries:
                return bounced
            if on_event is not None:
                on_event(bounced)
            time.sleep(max(bounced.get("retry_after", 0.0),
                           busy_backoff(attempt)))

    # -- lifecycle -------------------------------------------------------

    def close(self) -> None:
        try:
            self._stream.close()
        except OSError:
            pass
        try:
            self._sock.close()
        except OSError:
            pass

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
