"""Stress harness: thousands of concurrent clients, one fleet.

This is the load generator behind ``python -m repro stress`` and
``benchmarks/stress_service.py``.  It drives N asyncio clients — each
its own NDJSON connection submitting sequential jobs drawn from a
small pool of distinct programs — against either an in-process
:class:`~repro.service.server.AnalysisServer` (the default: a
self-contained benchmark) or an external ``--endpoint``.

The harness is a *correctness* check as much as a throughput meter:

* every ``ok`` response is byte-compared against a locally computed
  run of the same program (``mismatched`` must be zero — results must
  never cross wires between clients, however hard the fleet is hit);
* a job that never reaches a terminal event within the deadline
  counts as ``dropped``; a ``done`` for an id that already finished
  counts as ``duplicated`` — the acceptance bar is zero of each;
* ``busy`` bounces are retried with the client library's jittered
  backoff and reported, not failed.

The request mix is deterministic: client *c*'s requests all use
program ``c % distinct``, and each client submits ``requests`` rounds
back-to-back.  With the result cache disabled (the default here),
round 1 exercises in-flight coalescing (many clients, few keys) and
round 2 exercises warm-worker reuse: the key hashes to the same
shard, whose :class:`~repro.cache.ProgramCache` still holds the
compiled program — observable as ``plans_reused`` in the final server
stats.
"""

from __future__ import annotations

import asyncio
import contextlib
import math
import time
from dataclasses import dataclass, field

from repro.service.client import busy_backoff
from repro.service.jobs import JobSpec, run_job
from repro.service.protocol import (
    MAX_LINE_BYTES, decode_message, encode_message,
)

#: Defaults sized for the CI smoke (200 clients) — the acceptance run
#: scales ``--clients`` to 1000+.
DEFAULT_CLIENTS = 200
DEFAULT_REQUESTS = 2
DEFAULT_DISTINCT = 8
DEFAULT_WORKERS = 4

#: Stress clients retry ``busy`` harder than the interactive client:
#: under deliberate overload, giving up early would misreport
#: saturation as loss.
STRESS_BUSY_RETRIES = 16


def stress_program(index: int) -> str:
    """The *index*-th distinct stress program: tiny, constant-varied
    so each index has its own cache key (and so its own shard)."""
    return (f"(define (id x) x)\n"
            f"(+ (id {index}) (id {index + 1}))")


def raise_fd_limit(wanted: int) -> int:
    """Best-effort bump of ``RLIMIT_NOFILE`` toward *wanted* (each
    client burns a socket; 1000 clients need headroom past the
    common 1024 soft default).  Returns the limit now in force."""
    try:
        import resource
    except ImportError:  # non-POSIX: nothing to raise
        return wanted
    soft, hard = resource.getrlimit(resource.RLIMIT_NOFILE)
    if soft >= wanted:
        return soft
    target = min(wanted, hard) if hard > 0 else wanted
    try:
        resource.setrlimit(resource.RLIMIT_NOFILE, (target, hard))
    except (ValueError, OSError):
        return soft
    return target


@dataclass
class StressReport:
    """One stress run's verdict — counters, latency percentiles and
    the server's closing stats snapshot."""

    endpoint: str
    clients: int
    requests_per_client: int
    distinct: int
    workers: int
    completed: int = 0
    ok: int = 0
    timeout: int = 0
    errors: int = 0
    dropped: int = 0
    duplicated: int = 0
    busy_bounces: int = 0
    verified: int = 0
    mismatched: int = 0
    wall_seconds: float = 0.0
    throughput: float = 0.0
    p50: float = 0.0
    p90: float = 0.0
    p99: float = 0.0
    max_latency: float = 0.0
    server_stats: dict | None = None
    latencies: list = field(default_factory=list, repr=False)

    def percentile(self, quantile: float) -> float:
        """Nearest-rank percentile: the smallest value with at least
        ``quantile`` of the sample at or below it.  The old
        round-half-to-index formula drifted at small n (p90 of two
        samples returned the *lower* one) and at exact quantile
        boundaries; nearest-rank is ``ceil(q*n)`` (1-based), exact at
        every n."""
        if not self.latencies:
            return 0.0
        ordered = sorted(self.latencies)
        index = max(0, math.ceil(quantile * len(ordered)) - 1)
        return ordered[min(index, len(ordered) - 1)]

    def finalize(self, wall_seconds: float) -> "StressReport":
        self.wall_seconds = wall_seconds
        self.throughput = (self.completed / wall_seconds
                           if wall_seconds > 0 else 0.0)
        self.p50 = self.percentile(0.50)
        self.p90 = self.percentile(0.90)
        self.p99 = self.percentile(0.99)
        self.max_latency = max(self.latencies, default=0.0)
        return self

    def as_dict(self) -> dict:
        row = {key: value for key, value in self.__dict__.items()
               if key != "latencies"}
        row["latency_samples"] = len(self.latencies)
        return row


async def _open(endpoint: str):
    """One client connection to *endpoint* (host:port or a socket
    path), with the read limit the protocol's frame cap requires."""
    if "/" in endpoint or ":" not in endpoint:
        return await asyncio.open_unix_connection(
            endpoint, limit=MAX_LINE_BYTES + 2)
    host, port = endpoint.rsplit(":", 1)
    return await asyncio.open_connection(
        host, int(port), limit=MAX_LINE_BYTES + 2)


async def _run_client(endpoint: str, client_index: int,
                      programs: list[str], expected: dict,
                      report: StressReport, analysis: str,
                      context: int, job_timeout: float) -> None:
    reader, writer = await _open(endpoint)
    completed_ids: set[str] = set()
    try:
        source = programs[client_index % len(programs)]
        for request_index in range(report.requests_per_client):
            started = time.perf_counter()
            outcome = None
            for attempt in range(STRESS_BUSY_RETRIES + 1):
                job_id = (f"s{client_index}-{request_index}"
                          f"-{attempt}")
                writer.write(encode_message(
                    {"op": "submit", "id": job_id, "source": source,
                     "analysis": analysis, "context": context,
                     "timeout": job_timeout}))
                await writer.drain()
                bounced = False
                while True:
                    line = await reader.readline()
                    if not line:
                        raise ConnectionError(
                            "server closed the connection")
                    event = decode_message(line)
                    event_job = event.get("job")
                    if event_job != job_id:
                        # A frame for a finished submission: a late
                        # `running` is protocol-legal, a second
                        # `done` is the duplication bug this harness
                        # exists to catch.
                        if event.get("event") == "done" \
                                and event_job in completed_ids:
                            report.duplicated += 1
                        continue
                    kind = event.get("event")
                    if kind == "busy":
                        report.busy_bounces += 1
                        bounced = True
                        break
                    if kind in ("done", "error"):
                        outcome = event
                        completed_ids.add(job_id)
                        break
                if not bounced:
                    break
                await asyncio.sleep(busy_backoff(attempt))
            if outcome is None:  # busy retries exhausted
                report.dropped += 1
                continue
            report.latencies.append(time.perf_counter() - started)
            report.completed += 1
            status = outcome.get("status")
            if outcome.get("event") == "error" \
                    or status == "error":
                report.errors += 1
            elif status == "timeout":
                report.timeout += 1
            else:
                report.ok += 1
                want = expected.get(source)
                if want is not None:
                    report.verified += 1
                    if outcome.get("stdout") != want:
                        report.mismatched += 1
    finally:
        with contextlib.suppress(OSError):
            writer.close()
        with contextlib.suppress(Exception):
            await writer.wait_closed()


async def _fetch_stats(endpoint: str) -> dict | None:
    try:
        reader, writer = await _open(endpoint)
    except OSError:
        return None
    try:
        writer.write(encode_message({"op": "stats"}))
        await writer.drain()
        line = await reader.readline()
        if not line:
            return None
        return decode_message(line).get("stats")
    finally:
        with contextlib.suppress(OSError):
            writer.close()
        with contextlib.suppress(Exception):
            await writer.wait_closed()


async def _drive(endpoint: str, report: StressReport,
                 programs: list[str], expected: dict, analysis: str,
                 context: int, job_timeout: float,
                 deadline: float) -> None:
    tasks = [asyncio.create_task(_run_client(
        endpoint, client_index, programs, expected, report,
        analysis, context, job_timeout))
        for client_index in range(report.clients)]
    done, pending = await asyncio.wait(tasks, timeout=deadline)
    for task in pending:
        task.cancel()
    if pending:
        await asyncio.gather(*pending, return_exceptions=True)
    for task in done:
        error = task.exception()
        if error is not None:
            # A client that died (connection torn down, protocol
            # violation) abandons its remaining requests — those
            # fall into `dropped` below.
            report.errors += 1
    # Whatever never reached a terminal event — deadline-cancelled,
    # stranded by a crashed client — was dropped.
    report.dropped = (report.clients * report.requests_per_client
                      - report.completed)
    report.server_stats = await _fetch_stats(endpoint)


def run_stress(endpoint: str | None = None,
               clients: int = DEFAULT_CLIENTS,
               requests: int = DEFAULT_REQUESTS,
               distinct: int = DEFAULT_DISTINCT,
               workers: int = DEFAULT_WORKERS,
               max_queue: int | None = None,
               analysis: str = "mcfa", context: int = 1,
               job_timeout: float = 30.0,
               deadline: float = 300.0,
               verify: bool = True) -> StressReport:
    """Run one stress campaign and return its report.

    With *endpoint* ``None`` an in-process server is started (cache
    disabled, *workers* workers) and stopped afterwards; otherwise
    the named server is driven as-is.  *verify* precomputes each
    distinct program's expected output locally for byte-comparison —
    skip it only when stressing analyses too slow to run twice.
    """
    if clients < 1 or requests < 1 or distinct < 1:
        raise ValueError("clients, requests and distinct must all "
                         "be positive")
    raise_fd_limit(2 * clients + 64)
    programs = [stress_program(index) for index in range(distinct)]
    expected = {}
    if verify:
        for source in programs:
            row = run_job(JobSpec(source=source, analysis=analysis,
                                  context=context,
                                  timeout=job_timeout))
            if row["status"] == "ok":
                expected[source] = row["stdout"]
    server = None
    if endpoint is None:
        from repro.service.server import AnalysisServer
        kwargs = {} if max_queue is None \
            else {"max_queue": max_queue}
        server = AnalysisServer(port=0, workers=workers,
                                cache=None, **kwargs).start()
        endpoint = server.endpoint
    report = StressReport(endpoint=endpoint, clients=clients,
                          requests_per_client=requests,
                          distinct=distinct, workers=workers)
    started = time.perf_counter()
    try:
        asyncio.run(_drive(endpoint, report, programs, expected,
                           analysis, context, job_timeout, deadline))
    finally:
        if server is not None:
            server.stop()
    return report.finalize(time.perf_counter() - started)
