"""repro — *Resolving and Exploiting the k-CFA Paradox* (PLDI 2010).

A complete reproduction of Might, Smaragdakis and Van Horn's paper:
Shivers's k-CFA as a small-step abstract interpreter of CPS, the same
specification for A-Normal Featherweight Java (where it collapses to
polynomial time), and the paper's contribution — the **m-CFA**
hierarchy of polynomial-time context-sensitive flow analyses built on
flat-environment closures.

Quickstart::

    from repro import compile_program, analyze_mcfa

    program = compile_program('''
        (define (compose f g) (lambda (x) (f (g x))))
        ((compose (lambda (a) (+ a 1)) (lambda (b) (* b 2))) 20)
    ''')
    result = analyze_mcfa(program, m=1)
    print(result.supported_inlinings(), result.halt_values)

The subpackages:

* :mod:`repro.scheme` — reader, desugarer, interpreter, CPS transform;
* :mod:`repro.cps` — the labeled, partitioned CPS core language;
* :mod:`repro.concrete` — concrete shared-env and flat-env machines;
* :mod:`repro.analysis` — k-CFA, m-CFA, poly k-CFA, 0CFA + soundness;
* :mod:`repro.fj` — Featherweight Java: parser, ANF, concrete, k-CFA;
* :mod:`repro.generators` — worst-case, paradox and random programs;
* :mod:`repro.metrics` — precision, complexity and timing harnesses;
* :mod:`repro.benchsuite` — the §6.2 benchmark programs;
* :mod:`repro.cache` — the persistent content-keyed result cache.
"""

from repro.scheme.cps_transform import compile_program, cps_convert
from repro.scheme.interp import run_source
from repro.cps import Program, parse_cps, pretty_cps
from repro.concrete import run_flat, run_shared
from repro.analysis import (
    AnalysisResult, analyze_kcfa, analyze_kcfa_naive, analyze_mcfa,
    analyze_poly_kcfa, analyze_zerocfa,
)
from repro.fj import (
    FJProgram, analyze_fj_kcfa, analyze_fj_poly, parse_fj, run_fj,
)
from repro.cache import ResultCache, cache_key
from repro.util.budget import Budget
from repro.errors import AnalysisTimeout, ReproError

__version__ = "1.1.0"

__all__ = [
    "compile_program", "cps_convert", "run_source",
    "Program", "parse_cps", "pretty_cps",
    "run_flat", "run_shared",
    "AnalysisResult", "analyze_kcfa", "analyze_kcfa_naive",
    "analyze_mcfa", "analyze_poly_kcfa", "analyze_zerocfa",
    "FJProgram", "analyze_fj_kcfa", "analyze_fj_poly", "parse_fj",
    "run_fj",
    "ResultCache", "cache_key",
    "Budget", "AnalysisTimeout", "ReproError",
    "__version__",
]
