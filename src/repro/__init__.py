"""repro — *Resolving and Exploiting the k-CFA Paradox* (PLDI 2010).

A complete reproduction of Might, Smaragdakis and Van Horn's paper:
Shivers's k-CFA as a small-step abstract interpreter of CPS, the same
specification for A-Normal Featherweight Java (where it collapses to
polynomial time), and the paper's contribution — the **m-CFA**
hierarchy of polynomial-time context-sensitive flow analyses built on
flat-environment closures.

Quickstart::

    from repro import compile_program, analyze_mcfa

    program = compile_program('''
        (define (compose f g) (lambda (x) (f (g x))))
        ((compose (lambda (a) (+ a 1)) (lambda (b) (* b 2))) 20)
    ''')
    result = analyze_mcfa(program, m=1)
    print(result.supported_inlinings(), result.halt_values)

The subpackages:

* :mod:`repro.scheme` — reader, desugarer, interpreter, CPS transform;
* :mod:`repro.cps` — the labeled, partitioned CPS core language;
* :mod:`repro.concrete` — concrete shared-env and flat-env machines;
* :mod:`repro.analysis` — k-CFA, m-CFA, poly k-CFA, 0CFA + soundness;
* :mod:`repro.fj` — Featherweight Java: parser, ANF, concrete, k-CFA;
* :mod:`repro.generators` — worst-case, paradox and random programs;
* :mod:`repro.metrics` — precision, complexity and timing harnesses;
* :mod:`repro.benchsuite` — the §6.2 benchmark programs;
* :mod:`repro.cache` — the persistent content-keyed result cache.
"""

# The convenience API is loaded lazily (PEP 562): importing any
# `repro.*` submodule executes this file first, and CLI startup,
# bench/service worker spawns and registry consultations must not pay
# for the whole analyzer stack.  `from repro import analyze_mcfa`
# still works — the attribute is resolved (and cached) on first use.

__version__ = "1.1.0"

_LAZY = {
    "compile_program": "repro.scheme.cps_transform",
    "cps_convert": "repro.scheme.cps_transform",
    "run_source": "repro.scheme.interp",
    "Program": "repro.cps",
    "parse_cps": "repro.cps",
    "pretty_cps": "repro.cps",
    "run_flat": "repro.concrete",
    "run_shared": "repro.concrete",
    "AnalysisResult": "repro.analysis",
    "analyze_kcfa": "repro.analysis",
    "analyze_kcfa_naive": "repro.analysis",
    "analyze_mcfa": "repro.analysis",
    "analyze_poly_kcfa": "repro.analysis",
    "analyze_zerocfa": "repro.analysis",
    "FJProgram": "repro.fj",
    "analyze_fj_kcfa": "repro.fj",
    "analyze_fj_poly": "repro.fj",
    "parse_fj": "repro.fj",
    "run_fj": "repro.fj",
    "ResultCache": "repro.cache",
    "cache_key": "repro.cache",
    "Budget": "repro.util.budget",
    "AnalysisTimeout": "repro.errors",
    "ReproError": "repro.errors",
}

__all__ = [*_LAZY, "__version__"]

from repro.util.lazymod import lazy_attrs  # noqa: E402

__getattr__, __dir__ = lazy_attrs(__name__, globals(), _LAZY)
