"""Precision comparison across analyses (paper §6.2).

The paper's practical metric is "number of inlinings supported": call
sites whose operator resolves to exactly one lambda.  This module
computes that plus finer-grained comparisons:

* :func:`precision_row` — one §6.2 table row (time + inlinings per
  analysis) for one program;
* :func:`flow_comparison` — pointwise comparison of the lambda flow
  sets of two results (is one everywhere at least as precise?);
* :func:`average_flow_size` — mean operator flow-set cardinality, a
  secondary precision signal.

As §6.1 notes, CFAs are not totally ordered by precision: two analyses
can each win at different points, which is why
:class:`FlowComparison` reports both directions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.analysis.results import AnalysisResult
from repro.cps.program import Program
from repro.metrics.timing import TimingCell, timed_cell
from repro.util.budget import Budget


@dataclass(frozen=True, slots=True)
class FlowComparison:
    """Pointwise comparison of callee sets between two results."""

    left_name: str
    right_name: str
    sites_compared: int
    left_strictly_better: int    # sites where left ⊂ right
    right_strictly_better: int   # sites where right ⊂ left
    incomparable: int            # sites where neither contains the other

    @property
    def left_at_least_as_precise(self) -> bool:
        return self.right_strictly_better == 0 and self.incomparable == 0

    @property
    def right_at_least_as_precise(self) -> bool:
        return self.left_strictly_better == 0 and self.incomparable == 0

    @property
    def equal(self) -> bool:
        return (self.left_strictly_better == 0
                and self.right_strictly_better == 0
                and self.incomparable == 0)


def flow_comparison(left: AnalysisResult,
                    right: AnalysisResult) -> FlowComparison:
    """Compare callee sets per call site (reachable in either)."""
    labels = set(left.callees) | set(right.callees)
    left_better = right_better = incomparable = 0
    for label in labels:
        left_set = left.callees.get(label, frozenset())
        right_set = right.callees.get(label, frozenset())
        if left_set == right_set:
            continue
        if left_set < right_set:
            left_better += 1
        elif right_set < left_set:
            right_better += 1
        else:
            incomparable += 1
    return FlowComparison(
        left_name=f"{left.analysis}({left.parameter})",
        right_name=f"{right.analysis}({right.parameter})",
        sites_compared=len(labels),
        left_strictly_better=left_better,
        right_strictly_better=right_better,
        incomparable=incomparable)


def average_flow_size(result: AnalysisResult) -> float:
    """Mean callee-set size over reachable application sites."""
    sizes = [len(callees) for callees in result.callees.values()]
    if not sizes:
        return 0.0
    return sum(sizes) / len(sizes)


@dataclass(frozen=True, slots=True)
class PrecisionCell:
    """One analysis on one program: time + inlinings (or ∞)."""

    analysis: str
    cell: TimingCell

    @property
    def inlinings(self) -> int | None:
        if self.cell.timed_out or self.cell.payload is None:
            return None
        return self.cell.payload.supported_inlinings()


def precision_row(program: Program,
                  analyses: dict[str, Callable[[Program, Budget],
                                               AnalysisResult]],
                  timeout: float = 30.0) -> dict[str, PrecisionCell]:
    """One §6.2 table row: run every analysis on *program*.

    ``analyses`` maps display names to ``fn(program, budget)``
    callables; each is run under its own wall-clock budget.
    """
    row = {}
    for name, analyze in analyses.items():
        cell = timed_cell(
            lambda budget, fn=analyze: fn(program, budget), timeout)
        row[name] = PrecisionCell(analysis=name, cell=cell)
    return row


def standard_analyses() -> dict[str, Callable]:
    """The four §6.2 columns: k=1, m=1, naive poly k=1, k=0."""
    from repro.analysis import (
        analyze_kcfa, analyze_mcfa, analyze_poly_kcfa, analyze_zerocfa,
    )
    return {
        "k=1": lambda program, budget: analyze_kcfa(program, 1, budget),
        "m=1": lambda program, budget: analyze_mcfa(program, 1, budget),
        "poly,k=1": lambda program, budget:
            analyze_poly_kcfa(program, 1, budget),
        "k=0": lambda program, budget:
            analyze_zerocfa(program, budget),
    }
