"""Timed analysis cells for the benchmark tables.

The paper's worst-case table (§6.1.1) reports wall-clock times with
``ϵ`` for sub-second results and ``∞`` for runs past the timeout.
:func:`timed_cell` reproduces one cell; :func:`format_cell` renders it
the way the paper prints it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.errors import AnalysisTimeout
from repro.util.budget import Budget


@dataclass(frozen=True, slots=True)
class TimingCell:
    """One table cell: elapsed seconds, or a timeout marker."""

    seconds: float
    timed_out: bool
    steps: int = 0
    payload: object = None   # the analysis result when it finished

    @property
    def infinite(self) -> bool:
        return self.timed_out


def timed_cell(analyze: Callable[[Budget], object],
               timeout: float) -> TimingCell:
    """Run ``analyze(budget)`` under a wall-clock budget.

    ``analyze`` receives a started :class:`Budget` and must pass it to
    the analysis; an :class:`AnalysisTimeout` becomes an ``∞`` cell.
    """
    budget = Budget(max_seconds=timeout)
    budget.start()
    try:
        result = analyze(budget)
    except AnalysisTimeout:
        return TimingCell(seconds=budget.elapsed, timed_out=True,
                          steps=budget.steps)
    steps = getattr(result, "steps", budget.steps)
    return TimingCell(seconds=budget.elapsed, timed_out=False,
                      steps=steps, payload=result)


def format_cell(cell: TimingCell, epsilon: float = 1.0) -> str:
    """Render a cell the way the paper's table does."""
    if cell.timed_out:
        return "∞"
    if cell.seconds < epsilon:
        return "ϵ"
    if cell.seconds < 60:
        return f"{cell.seconds:.1f} s"
    minutes = int(cell.seconds // 60)
    seconds = cell.seconds - 60 * minutes
    return f"{minutes} m {seconds:.0f} s"


def format_table(headers: list[str], rows: list[list[str]]) -> str:
    """Monospace-align a small results table."""
    widths = [len(header) for header in headers]
    for row in rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = []
    lines.append("  ".join(header.ljust(width)
                           for header, width in zip(headers, widths)))
    lines.append("  ".join("-" * width for width in widths))
    for row in rows:
        lines.append("  ".join(cell.ljust(width)
                               for cell, width in zip(row, widths)))
    return "\n".join(lines)
