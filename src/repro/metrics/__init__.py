"""Metrics: precision, complexity accounting, timed table cells."""

from repro.metrics.precision import (
    FlowComparison, PrecisionCell, average_flow_size, flow_comparison,
    precision_row, standard_analyses,
)
from repro.metrics.complexity import (
    bits, fj_poly_lattice_bits, growth_table, kcfa_benv_count,
    kcfa_lattice_height, kcfa_naive_state_space, kcfa_time_count,
    mcfa_lattice_height,
)
from repro.metrics.timing import (
    TimingCell, format_cell, format_table, timed_cell,
)

__all__ = [
    "FlowComparison", "PrecisionCell", "average_flow_size",
    "flow_comparison", "precision_row", "standard_analyses",
    "bits", "fj_poly_lattice_bits", "growth_table", "kcfa_benv_count",
    "kcfa_lattice_height", "kcfa_naive_state_space", "kcfa_time_count",
    "mcfa_lattice_height",
    "TimingCell", "format_cell", "format_table", "timed_cell",
]
