"""Lattice-size accounting from the paper's complexity arguments.

These functions compute, for a concrete program and parameter, the
bounds the paper derives:

* :func:`kcfa_naive_state_space` — §3.6: the size of the naive k-CFA
  state space (deeply exponential even for k = 0);
* :func:`kcfa_lattice_height` — §3.7: the height of the single-threaded
  store system-space (exponential for k ≥ 1 because of |BEnv|);
* :func:`mcfa_lattice_height` — §5.4 / Theorem 5.1: polynomial;
* :func:`fj_poly_lattice_bits` — §4.4: the polynomial bit count for
  collapsed OO k-CFA.

The numbers get astronomically large (that is the point); they are
exact Python integers, and :func:`bits` renders them on a log scale
for tables.
"""

from __future__ import annotations

from repro.cps.program import Program
from repro.fj.class_table import FJProgram


def _sizes(program: Program) -> tuple[int, int, int]:
    stats = program.stats()
    return stats["calls"], stats["variables"], stats["lambdas"]


def kcfa_time_count(program: Program, k: int) -> int:
    """|T̂ime| = |Call|^k."""
    calls, _vars, _lams = _sizes(program)
    return calls ** k


def kcfa_benv_count(program: Program, k: int) -> int:
    """|B̂Env| ≤ |T̂ime|^|Var| — the exponential factor (footnote 3)."""
    calls, variables, _lams = _sizes(program)
    return (calls ** k) ** variables


def kcfa_lattice_height(program: Program, k: int) -> int:
    """§3.7: |Call|·|B̂Env|·|T̂ime| + |Âddr|·|ˆClo|."""
    calls, variables, lams = _sizes(program)
    times = calls ** k
    benvs = times ** variables
    addrs = variables * times
    clos = lams * benvs
    return calls * benvs * times + addrs * clos


def kcfa_naive_state_space(program: Program, k: int) -> int:
    """§3.6: |Call| × |B̂Env| × |ˆStore| × |T̂ime| (store is a powerset
    exponent — this is the "deeply exponential" figure)."""
    calls, variables, lams = _sizes(program)
    times = calls ** k
    benvs = times ** variables
    addrs = variables * times
    clos = lams * benvs
    stores = 2 ** (clos * addrs) if clos * addrs < 4096 else \
        2 ** 4096  # clamp: the exact value is astronomically large
    return calls * benvs * stores * times


def mcfa_lattice_height(program: Program, m: int) -> int:
    """§5.4: |Call|·|Call|^m + |Var|·|Call|^m · |Lam|·|Call|^m."""
    calls, variables, lams = _sizes(program)
    envs = calls ** m
    return calls * envs + (variables * envs) * (lams * envs)


def fj_poly_lattice_bits(program: FJProgram, k: int) -> int:
    """§4.4: the polynomial bit count for collapsed OO k-CFA."""
    stats = program.stats()
    stmts = stats["statements"]
    methods = max(stats["methods"], 1)
    classes = max(stats["classes"], 1)
    variables = stats["fields"] + sum(
        len(method.params) + len(method.locals) + 1
        for method in program.methods)
    times = max(stmts, 1) ** k
    return (stmts * times ** 3 * methods
            + (methods + variables) * times
            * (classes * times + variables * stmts * times * methods
               * times))


def bits(value: int) -> int:
    """log2-scale rendering of a lattice size for tables."""
    return max(value, 1).bit_length()


def growth_table(programs: list[Program], k: int
                 ) -> list[dict[str, object]]:
    """Rows contrasting k-CFA vs m-CFA lattice sizes as programs grow.

    Regenerates the §3.7-vs-§5.4 comparison: the k-CFA column's bit
    count grows linearly in |Var| (so the size itself is exponential),
    while the m-CFA column's bits grow only logarithmically.
    """
    rows = []
    for program in programs:
        rows.append({
            "terms": program.term_count(),
            "kcfa_height_bits": bits(kcfa_lattice_height(program, k)),
            "mcfa_height_bits": bits(mcfa_lattice_height(program, k)),
            "naive_bits": bits(kcfa_naive_state_space(program, k)),
        })
    return rows
