"""Tests for the Featherweight Java type checker."""

import pytest

from repro.fj import parse_fj
from repro.fj.examples import ALL_EXAMPLES
from repro.fj.typecheck import typecheck_program

WELL_TYPED_WRAPPER = """
class A extends Object {{ A() {{ super(); }} }}
class B extends A {{ B() {{ super(); }} }}
{body}
class Main extends Object {{
  Main() {{ super(); }}
  Object main() {{ return this; }}
}}
"""


def check(body: str):
    return typecheck_program(parse_fj(
        WELL_TYPED_WRAPPER.format(body=body)))


class TestWellTyped:
    @pytest.mark.parametrize("name", list(ALL_EXAMPLES))
    def test_examples_are_well_typed(self, name):
        report = typecheck_program(parse_fj(ALL_EXAMPLES[name]))
        assert report, report.errors

    def test_paradox_program_well_typed(self):
        from repro.generators.paradox import paradox_fj_source
        program = parse_fj(paradox_fj_source(3, 3),
                           entry_method="caller")
        report = typecheck_program(program)
        assert report, report.errors

    def test_worst_case_fj_well_typed(self):
        from repro.generators.worstcase import worst_case_fj_source
        program = parse_fj(worst_case_fj_source(4), entry_method="run")
        report = typecheck_program(program)
        assert report, report.errors

    def test_subtype_argument_accepted(self):
        report = check("""
        class User extends Object {
          User() { super(); }
          A give() { return new B(); }
          Object take(A a) { return a; }
          Object go() {
            Object r;
            r = this.take(new B());
            return r;
          }
        }
        """)
        assert report, report.errors

    def test_summary_format(self):
        report = typecheck_program(parse_fj(ALL_EXAMPLES["pairs"]))
        assert "WELL-TYPED" in report.summary()


class TestTypeErrors:
    def test_return_type_mismatch(self):
        report = check("""
        class Bad extends Object {
          Bad() { super(); }
          B wrong() { return new A(); }
        }
        """)
        assert not report
        assert any("return of A where B" in e for e in report.errors)

    def test_argument_type_mismatch(self):
        report = check("""
        class Bad extends Object {
          Bad() { super(); }
          Object wants(B b) { return b; }
          Object go() {
            Object r;
            r = this.wants(new A());
            return r;
          }
        }
        """)
        assert not report
        assert any("where B expected" in e for e in report.errors)

    def test_unknown_method(self):
        report = check("""
        class Bad extends Object {
          Bad() { super(); }
          Object go() {
            Object r;
            r = this.missing();
            return r;
          }
        }
        """)
        assert not report
        assert any("no method missing" in e for e in report.errors)

    def test_unknown_field(self):
        report = check("""
        class Bad extends Object {
          Bad() { super(); }
          Object go(A a) { return a.ghost; }
        }
        """)
        assert not report
        assert any("no field ghost" in e for e in report.errors)

    def test_assignment_type_mismatch(self):
        report = check("""
        class Bad extends Object {
          Bad() { super(); }
          Object go() {
            B b;
            b = new A();
            return b;
          }
        }
        """)
        assert not report

    def test_invalid_override(self):
        report = check("""
        class Base extends Object {
          Base() { super(); }
          A m(A x) { return x; }
        }
        class Derived extends Base {
          Derived() { super(); }
          B m(A x) { return new B(); }
        }
        """)
        assert not report
        assert any("invalid override" in e for e in report.errors)

    def test_matching_override_accepted(self):
        report = check("""
        class Base extends Object {
          Base() { super(); }
          A m(A x) { return x; }
        }
        class Derived extends Base {
          Derived() { super(); }
          A m(A y) { return y; }
        }
        """)
        assert report, report.errors

    def test_constructor_field_type_mismatch(self):
        report = check("""
        class Holder extends Object {
          B item;
          Holder(A x) { super(); this.item = x; }
        }
        """)
        assert not report
        assert any("field item" in e for e in report.errors)

    def test_unknown_types_reported(self):
        report = check("""
        class Bad extends Object {
          Bad() { super(); }
          Ghost go(Phantom p) { return p; }
        }
        """)
        assert not report
        assert any("unknown parameter type Phantom" in e
                   for e in report.errors)
        assert any("unknown return type Ghost" in e
                   for e in report.errors)


class TestCasts:
    def test_upcast_silent(self):
        report = check("""
        class C extends Object {
          C() { super(); }
          Object go() {
            A up;
            up = (A) new B();
            return up;
          }
        }
        """)
        assert report and not report.warnings

    def test_downcast_silent(self):
        report = check("""
        class C extends Object {
          C() { super(); }
          Object go(A a) {
            B down;
            down = (B) a;
            return down;
          }
        }
        """)
        assert report and not report.warnings

    def test_stupid_cast_warns(self):
        report = check("""
        class Unrelated extends Object { Unrelated() { super(); } }
        class C extends Object {
          C() { super(); }
          Object go(A a) {
            Unrelated u;
            u = (Unrelated) a;
            return u;
          }
        }
        """)
        assert report  # stupid casts are warnings, not errors (IPW01)
        assert any("stupid cast" in w for w in report.warnings)
