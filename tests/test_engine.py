"""Tests for the shared fixpoint engine and its delta propagation.

Covers the ISSUE-1 checklist: DependencyWorklist dirty/re-enqueue
semantics (a reader is re-enqueued exactly once per store change,
non-readers never), the delta handed back by ``pop_delta``, AbsStore
version counters, and engine-vs-naive result agreement on small
programs.
"""

from __future__ import annotations

import pytest

from repro.analysis import (
    AbsStore, analyze_kcfa, analyze_kcfa_naive, analyze_mcfa,
)
from repro.analysis.engine import (
    EngineOptions, Machine, NaiveState, run_naive, run_single_store,
)
from repro.analysis.flat_machine import FlatMachine, mcfa_allocator
from repro.analysis.kcfa import KCFAMachine, Recorder
from repro.errors import AnalysisTimeout
from repro.scheme.cps_transform import compile_program
from repro.util.budget import Budget
from repro.util.fixpoint import DependencyWorklist


class TestDirtySemantics:
    """Re-enqueue exactly the readers, exactly once per change."""

    def _ran(self, worklist, config, reads):
        """Simulate one processed configuration."""
        worklist.add(config)
        assert worklist.pop() == config
        worklist.record_reads(config, reads)

    def test_reader_requeued_once_per_change(self):
        worklist = DependencyWorklist()
        self._ran(worklist, "reader", ["a"])
        assert worklist.dirty(["a"]) == 1
        assert worklist.pop() == "reader"
        # The store grows again after the re-run: one more re-enqueue.
        assert worklist.dirty(["a"]) == 1
        assert worklist.pop() == "reader"
        assert not worklist

    def test_pending_reader_not_requeued_twice(self):
        worklist = DependencyWorklist()
        self._ran(worklist, "reader", ["a", "b"])
        assert worklist.dirty(["a"]) == 1
        # Second change before the reader re-ran: no duplicate entry.
        assert worklist.dirty(["b"]) == 0
        assert len(worklist) == 1
        assert worklist.requeue_count == 1

    def test_non_readers_never_requeued(self):
        worklist = DependencyWorklist()
        self._ran(worklist, "reader", ["a"])
        self._ran(worklist, "bystander", ["b"])
        assert worklist.dirty(["a"]) == 1
        assert worklist.pop() == "reader"
        assert not worklist  # bystander stayed out
        assert worklist.readers_of("a") == {"reader"}
        assert worklist.readers_of("b") == {"bystander"}

    def test_multiple_readers_all_requeued(self):
        worklist = DependencyWorklist()
        self._ran(worklist, "r1", ["shared"])
        self._ran(worklist, "r2", ["shared"])
        assert worklist.dirty(["shared"]) == 2
        assert {worklist.pop(), worklist.pop()} == {"r1", "r2"}


class TestPopDelta:
    def test_first_visit_has_no_delta(self):
        worklist = DependencyWorklist()
        worklist.add("fresh")
        assert worklist.pop_delta() == ("fresh", None)

    def test_requeue_carries_exact_changed_addresses(self):
        worklist = DependencyWorklist()
        worklist.add("reader")
        worklist.pop()
        worklist.record_reads("reader", ["a", "b", "c"])
        worklist.dirty(["a"])
        worklist.dirty(["c", "unread"])
        config, delta = worklist.pop_delta()
        assert config == "reader"
        assert delta == frozenset({"a", "c"})

    def test_delta_resets_between_requeues(self):
        worklist = DependencyWorklist()
        worklist.add("reader")
        worklist.pop()
        worklist.record_reads("reader", ["a", "b"])
        worklist.dirty(["a"])
        assert worklist.pop_delta() == ("reader", frozenset({"a"}))
        worklist.dirty(["b"])
        assert worklist.pop_delta() == ("reader", frozenset({"b"}))


class TestStoreVersions:
    def test_versions_bump_only_on_growth(self):
        store = AbsStore()
        addr = ("x", ())
        assert store.version(addr) == 0
        assert store.join(addr, {1}) is True
        assert store.version(addr) == 1
        assert store.join(addr, {1}) is False  # no growth
        assert store.version(addr) == 1
        assert store.join(addr, {2}) is True
        assert store.version(addr) == 2

    def test_clock_counts_growing_joins_store_wide(self):
        store = AbsStore()
        store.join(("x", ()), {1})
        store.join(("y", ()), {1})
        store.join(("x", ()), {1})  # redundant
        assert store.clock == 2


class TestMachineProtocol:
    def test_all_machines_satisfy_protocol(self):
        from repro.fj import parse_fj
        from repro.fj.examples import ALL_EXAMPLES
        from repro.fj.kcfa import FJKCFAMachine
        from repro.fj.poly import FJPolyMachine
        program = compile_program("((lambda (x) x) 7)")
        fj_program = parse_fj(ALL_EXAMPLES["pairs"])
        machines = [
            KCFAMachine(program, 1),
            FlatMachine(program, mcfa_allocator(1)),
            FJKCFAMachine(fj_program, 1),
            FJPolyMachine(fj_program, 1),
        ]
        for machine in machines:
            assert isinstance(machine, Machine)


class TestEngineDrivers:
    def test_single_store_counts_requeues(self):
        # Recursion forces the store to grow after its readers ran.
        program = compile_program("""
            (define (count n) (if (= n 0) 0 (count (- n 1))))
            (count 5)
        """)
        run = run_single_store(KCFAMachine(program, 0), Recorder())
        assert run.steps > 0
        assert run.requeues > 0
        assert run.delta_addresses >= run.requeues

    def test_budget_is_enforced(self):
        program = compile_program("""
            (define (loop n) (loop (+ n 1)))
            (loop 0)
        """)
        with pytest.raises(AnalysisTimeout):
            run_single_store(
                KCFAMachine(program, 1), Recorder(),
                EngineOptions(budget=Budget(max_steps=5)))

    def test_naive_driver_returns_states(self):
        program = compile_program("((lambda (x) x) 7)")
        run = run_naive(KCFAMachine(program, 0), Recorder())
        assert run.state_count == len(run.states) > 0
        assert all(isinstance(state, NaiveState)
                   for state in run.states)
        assert run.configs == frozenset(
            state.config for state in run.states)


AGREEMENT_SOURCES = {
    "identity": "((lambda (x) x) 7)",
    "id-twice": "(define (id x) x) (cons (id 1) (id 2))",
    "adders": """
        (define (make-adder n) (lambda (x) (+ x n)))
        (cons ((make-adder 1) 10) ((make-adder 2) 20))
    """,
    "even-odd": """
        (define (even? n) (if (= n 0) #t (odd? (- n 1))))
        (define (odd? n) (if (= n 0) #f (even? (- n 1))))
        (even? 10)
    """,
}


class TestEngineAgreement:
    """§3.7 single-store vs §3.6 naive: same answers on small terms.

    In general the single store may widen (lose precision vs. per-state
    stores), so the subset direction is the sound guarantee; on these
    small programs the results coincide exactly.
    """

    @pytest.mark.parametrize("k", [0, 1])
    @pytest.mark.parametrize("name", sorted(AGREEMENT_SOURCES))
    def test_single_store_matches_naive(self, name, k):
        program = compile_program(AGREEMENT_SOURCES[name])
        fast = analyze_kcfa(program, k)
        naive = analyze_kcfa_naive(program, k)
        assert fast.halt_values == naive.halt_values
        assert fast.callees == naive.callees
        assert fast.configs == naive.configs
        assert dict(fast.store.items()) == dict(naive.store.items())

    @pytest.mark.parametrize("name", sorted(AGREEMENT_SOURCES))
    def test_naive_store_never_exceeds_single_store(self, name):
        """Soundness direction that must hold for *any* program."""
        program = compile_program(AGREEMENT_SOURCES[name])
        fast = analyze_kcfa(program, 1)
        naive = analyze_kcfa_naive(program, 1)
        for addr, values in naive.store.items():
            assert values <= fast.store.get(addr)

    def test_flat_machine_runs_through_same_engine(self):
        """m-CFA and k-CFA share one driver; at depth 0 they agree."""
        program = compile_program(AGREEMENT_SOURCES["id-twice"])
        mcfa = analyze_mcfa(program, 0)
        kcfa = analyze_kcfa(program, 0)
        assert mcfa.halt_values == kcfa.halt_values
        assert {label: frozenset(lam.label for lam in lams)
                for label, lams in mcfa.callees.items()} == \
               {label: frozenset(lam.label for lam in lams)
                for label, lams in kcfa.callees.items()}
