"""Golden differential suite: reports must stay byte-identical.

The kernel refactor (one policy-parameterized AAM kernel behind every
analysis) is only allowed to move code, not results: the ``analyze``
bytes for every pre-existing analysis — across both value domains,
suite programs and random programs — are pinned here against golden
files captured from the seed implementation *before* the refactor.
The FJ report text is pinned the same way.

Regenerating (only when an output change is intended and reviewed)::

    REPRO_REGEN_GOLDENS=1 PYTHONPATH=src python -m pytest -q \
        tests/test_golden_reports.py

A missing golden file is a hard failure unless regeneration is
requested, so a new analysis cannot silently ship unpinned.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from shared_corpus import EXPLODES, small_sources

from repro.service.jobs import JobSpec, run_job

GOLDEN_DIR = Path(__file__).resolve().parent / "goldens"
# Strict opt-in: "0"/"false"/"no" must NOT silently flip the whole
# suite into write-mode (where every assertion is vacuous).
REGEN = os.environ.get("REPRO_REGEN_GOLDENS", "").lower() \
    in ("1", "true", "yes")

#: The analyses that existed before the kernel refactor.  New policies
#: are pinned too once they land, but these six (plus the three FJ
#: machines below) are the byte-compatibility contract with the seed.
SEED_SCHEME_ANALYSES = ("kcfa", "mcfa", "poly", "zero", "kcfa-gc",
                        "kcfa-naive")
SEED_FJ_ANALYSES = ("fj-kcfa", "fj-poly", "fj-kcfa-gc")
VALUE_MODES = ("interned", "plain")


#: The corpus and naive-driver exclusions are shared with the
#: differential service suite (tests/shared_corpus.py) so the
#: "server bytes == analyze bytes == pinned goldens" chain always
#: covers the same programs.
_scheme_sources = small_sources

#: Scheme policies pinned the day they landed (no seed baseline —
#: same contract as NEW_FJ_ANALYSES below).  ``pushdown``'s entry
#: environments are canonical argument signatures, so its bytes must
#: hold across value domains and hash seeds like everyone else's.
NEW_SCHEME_ANALYSES = ("pushdown",)

SCHEME_CASES = [
    (name, analysis, context, values)
    for name in sorted(_scheme_sources())
    for analysis in SEED_SCHEME_ANALYSES + NEW_SCHEME_ANALYSES
    for context in (1,)
    for values in VALUE_MODES
    if (name, analysis) not in EXPLODES
] + [
    # Context sweeps on the cheap polynomial analyses.
    ("eta", "mcfa", 0, "interned"),
    ("eta", "mcfa", 2, "interned"),
    ("eta", "kcfa", 2, "interned"),
    ("rand7", "poly", 2, "interned"),
]


def _check_golden(path: Path, actual: str) -> None:
    if REGEN:
        GOLDEN_DIR.mkdir(exist_ok=True)
        path.write_text(actual, encoding="utf-8")
        return
    assert path.is_file(), (
        f"golden file {path.name} is missing — run with "
        f"REPRO_REGEN_GOLDENS=1 to pin it")
    expected = path.read_text(encoding="utf-8")
    assert actual == expected, (
        f"report bytes drifted from golden {path.name}")


@pytest.mark.parametrize("name,analysis,context,values", SCHEME_CASES)
def test_scheme_report_bytes(name, analysis, context, values):
    source = _scheme_sources()[name]
    row = run_job(JobSpec(source=source, analysis=analysis,
                          context=context, values=values,
                          timeout=300.0))
    assert row["status"] == "ok", row.get("error")
    _check_golden(
        GOLDEN_DIR / f"{name}.{analysis}.{context}.{values}.txt",
        row["stdout"])


#: The post-kernel policies, pinned the day they landed.  Separate
#: from the seed lists above: these have no pre-refactor baseline,
#: but drift after pinning is still a bug.
NEW_FJ_ANALYSES = ("fj-mcfa", "fj-hybrid", "fj-obj")

FJ_CASES = [
    (name, analysis)
    for name in ("pairs", "dispatch", "linked_list", "oo_identity")
    for analysis in SEED_FJ_ANALYSES + NEW_FJ_ANALYSES
]


@pytest.mark.parametrize("name,analysis", FJ_CASES)
def test_fj_report_bytes(name, analysis):
    from repro.fj import parse_fj
    from repro.fj.examples import ALL_EXAMPLES
    from repro.reporting import fj_report
    from repro.service.jobs import run_fj_analysis

    program = parse_fj(ALL_EXAMPLES[name])
    result = run_fj_analysis(program, analysis, 1)
    _check_golden(GOLDEN_DIR / f"fj.{name}.{analysis}.1.txt",
                  fj_report(result) + "\n")
