"""Tests for the AnalysisResult API and benchsuite integration."""

import pytest

from repro.analysis import analyze_kcfa, analyze_mcfa
from repro.benchsuite import BY_NAME, SUITE
from repro.scheme.cps_transform import compile_program


class TestFlowQueries:
    def test_flow_of_joins_contexts(self):
        program = compile_program(
            "(define (id x) x) (cons (id 1) (id 2))")
        result = analyze_kcfa(program, 1)
        x_name = next(name for name in program.variables
                      if name.startswith("x"))
        from repro.analysis import AConst
        assert result.flow_of(x_name) == {AConst(1), AConst(2)}

    def test_lambdas_of_filters_closures(self):
        program = compile_program(
            "(let ((f (lambda (v) v))) (f f))")
        result = analyze_kcfa(program, 1)
        f_name = next(name for name in program.variables
                      if name.startswith("f"))
        lams = result.lambdas_of(f_name)
        assert len(lams) == 1
        assert next(iter(lams)).is_user


class TestInliningMetric:
    def test_cont_sites_excluded_by_default(self):
        program = compile_program("(let ((x 1)) x)")
        result = analyze_mcfa(program, 1)
        # all calls here are continuation applications
        assert result.supported_inlinings() == 0
        assert result.supported_inlinings(include_cont=True) > 0

    def test_unknown_operator_blocks_inlining(self):
        # car of quoted data gives basic-top; calling it is unknown
        program = compile_program("((car '(1)) 2)")
        result = analyze_mcfa(program, 1)
        assert result.supported_inlinings() == 0

    def test_polymorphic_site_not_inlinable(self):
        program = compile_program("""
            (define (call f) (f 0))
            (cons (call (lambda (a) a)) (call (lambda (b) b)))
        """)
        result = analyze_mcfa(program, 0)
        # the (f 0) site sees two lambdas under 0CFA
        sites = result.inlinable_call_sites()
        f_sites = [label for label, callees in result.callees.items()
                   if len(callees) == 2]
        assert f_sites
        assert all(label not in sites for label in f_sites)


class TestEnvironmentCounts:
    def test_counts_match_entries(self):
        program = compile_program(
            "(define (id x) x) (cons (id 1) (id 2))")
        result = analyze_kcfa(program, 1)
        id_lam = next(lam for lam in program.user_lams)
        assert result.environment_count(id_lam) == 2
        assert result.environment_counts()[id_lam.label] == 2

    def test_total_environments_sums(self):
        program = compile_program("((lambda (x) x) 1)")
        result = analyze_kcfa(program, 1)
        assert result.total_environments() == \
            sum(result.environment_counts().values())


class TestCallGraph:
    def test_graph_nodes_are_lambda_labels(self):
        program = compile_program(
            "(define (f x) x) (define (g y) (f y)) (g 2)")
        result = analyze_kcfa(program, 1)
        graph = result.call_graph()
        labels = {lam.label for lam in program.lams}
        for source, target in graph.edges():
            assert target in labels
            assert source in labels or source == "<toplevel>"

    def test_toplevel_edges_exist(self):
        program = compile_program("((lambda (x) x) 1)")
        result = analyze_kcfa(program, 1)
        graph = result.call_graph()
        assert any(source == "<toplevel>"
                   for source, _t in graph.edges())


class TestBenchsuiteIntegration:
    def test_suite_has_seven_programs(self):
        assert len(SUITE) == 7
        assert set(BY_NAME) == {
            "eta", "map", "sat", "regex", "interp", "scm2java",
            "scm2c"}

    def test_every_program_compiles(self, suite_compiled):
        for name, program in suite_compiled.items():
            assert program.term_count() > 100, name

    def test_descriptions_present(self):
        for bench in SUITE:
            assert bench.description

    @pytest.mark.parametrize("bench_name", list(BY_NAME))
    def test_analyzable_by_mcfa(self, bench_name, suite_compiled):
        result = analyze_mcfa(suite_compiled[bench_name], 1)
        assert result.halt_values
        assert result.supported_inlinings() > 0
